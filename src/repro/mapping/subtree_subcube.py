"""Subtree-to-subcube assignment of the supernodal tree.

The root supernode is shared by all ``p`` processors; at each branching the
processor set splits in two halves assigned to (groups of) children
balanced by subtree work; once a subtree's processor set reaches a single
processor, the whole subtree is executed sequentially there (the part of
the computation the paper performs "at levels >= log p").

Processor sets are contiguous power-of-two ranges, which on a hypercube are
exactly subcubes (ranks sharing the high address bits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symbolic.stree import SupernodalTree
from repro.util.flops import supernode_solve_flops
from repro.util.validation import check_power_of_two, require


@dataclass(frozen=True)
class ProcSet:
    """A contiguous range of processor ranks [start, start + size)."""

    start: int
    size: int

    def __post_init__(self) -> None:
        require(self.start >= 0, "ProcSet.start must be >= 0")
        check_power_of_two(self.size, "ProcSet.size")

    @property
    def stop(self) -> int:
        return self.start + self.size

    def ranks(self) -> range:
        return range(self.start, self.stop)

    def halves(self) -> tuple["ProcSet", "ProcSet"]:
        require(self.size >= 2, "cannot halve a single-processor set")
        h = self.size // 2
        return ProcSet(self.start, h), ProcSet(self.start + h, h)

    def __contains__(self, rank: int) -> bool:
        return self.start <= rank < self.stop


def _subtree_work(stree: SupernodalTree) -> np.ndarray:
    """Triangular-solve flops in the subtree rooted at each supernode."""
    work = np.zeros(stree.nsuper)
    for s in stree.topo_order():
        sn = stree.supernodes[s]
        work[s] += supernode_solve_flops(sn.n, sn.t)
        p = int(stree.parent[s])
        if p >= 0:
            work[p] += work[s]
    return work


def _split_children(children: list[int], work: np.ndarray) -> tuple[list[int], list[int]]:
    """Greedy 2-way partition of children balancing subtree work."""
    ordered = sorted(children, key=lambda c: -work[c])
    a: list[int] = []
    b: list[int] = []
    wa = wb = 0.0
    for c in ordered:
        if wa <= wb:
            a.append(c)
            wa += work[c]
        else:
            b.append(c)
            wb += work[c]
    return a, b


def subtree_to_subcube(stree: SupernodalTree, p: int) -> list[ProcSet]:
    """Assign a :class:`ProcSet` to every supernode.

    A supernode at tree level ``l`` of a balanced binary tree receives
    ``p / 2^l`` processors (down to 1), exactly as in the paper's Figure 1.
    Unbalanced trees are handled by splitting processor sets over children
    groups balanced by subtree solve-work; a supernode with a single child
    passes its whole processor set down (chains stay on the same subcube).
    """
    check_power_of_two(p, "p")
    work = _subtree_work(stree)
    assign: list[ProcSet | None] = [None] * stree.nsuper

    roots = stree.roots()
    if len(roots) == 1:
        assign[roots[0]] = ProcSet(0, p)
        stack = [roots[0]]
    else:
        # A forest: treat the roots as children of a virtual root.
        stack = []
        pending: list[tuple[list[int], ProcSet]] = [(roots, ProcSet(0, p))]
        while pending:
            group, procs = pending.pop()
            if len(group) == 1 or procs.size == 1:
                for r in group:
                    assign[r] = ProcSet(procs.start, 1) if len(group) > 1 else procs
                    stack.append(r)
                continue
            left, right = _split_children(group, work)
            lo, hi = procs.halves()
            pending.append((left, lo))
            pending.append((right, hi))

    while stack:
        s = stack.pop()
        procs = assign[s]
        assert procs is not None, "supernode visited before its processor set was assigned"
        kids = stree.children[s]
        if not kids:
            continue
        if procs.size == 1 or len(kids) == 1:
            for c in kids:
                assign[c] = procs
                stack.append(c)
            continue
        _assign_group(kids, procs, work, assign, stack)
    out = [ps for ps in assign]
    require(all(ps is not None for ps in out), "incomplete assignment")
    return out  # type: ignore[return-value]


def _assign_group(
    group: list[int],
    procs: ProcSet,
    work: np.ndarray,
    assign: list[ProcSet | None],
    stack: list[int],
) -> None:
    if len(group) == 1:
        assign[group[0]] = procs
        stack.append(group[0])
        return
    if procs.size == 1:
        for s in group:
            assign[s] = procs
            stack.append(s)
        return
    left, right = _split_children(group, work)
    lo, hi = procs.halves()
    _assign_group(left, lo, work, assign, stack)
    _assign_group(right, hi, work, assign, stack)


def level_of_parallelism(assign: list[ProcSet]) -> int:
    """Number of supernodes processed by more than one processor."""
    return sum(1 for ps in assign if ps.size > 1)
