"""Distribution of the factor across processors.

* :func:`subtree_to_subcube` — the paper's mapping of the supernodal
  elimination tree onto a hypercube: the root supernode gets all ``p``
  processors, each branch splits the processor set in half, and entire
  subtrees below ``log2 p`` levels run on a single processor.
* :class:`BlockCyclic1D` / :class:`BlockCyclic2D` — block-cyclic layouts
  of a supernode's dense trapezoid (1-D for the triangular solvers, 2-D
  for the factorization).
* :mod:`repro.mapping.redistribution` — converting the 2-D factorization
  layout into the 1-D solver layout (paper Section 4, Figure 6).
"""

from repro.mapping.subtree_subcube import ProcSet, subtree_to_subcube
from repro.mapping.layouts import BlockCyclic1D, BlockCyclic2D
from repro.mapping.redistribution import (
    redistribute_supernode,
    redistribution_time,
    total_redistribution_time,
)

__all__ = [
    "ProcSet",
    "subtree_to_subcube",
    "BlockCyclic1D",
    "BlockCyclic2D",
    "redistribute_supernode",
    "redistribution_time",
    "total_redistribution_time",
]
