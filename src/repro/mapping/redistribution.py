"""2-D -> 1-D redistribution of supernodes (paper Section 4, Figure 6).

Factorization wants each supernode 2-D block-cyclic over a ``qr x qc``
grid; the triangular solvers want it 1-D row block-cyclic over the same
``q`` processors.  The conversion is, per horizontal strip of the
supernode, an all-to-all personalized exchange among the processors of one
grid row, each holding ``n*t/q`` words — total time ``O(n t / q)``, the
same order as the solve work per processor, which is the paper's claim
(measured on the T3D at <= 0.9x, average ~0.5x of the solve time).

Two views are provided: :func:`redistribute_supernode` actually moves data
(for correctness tests), and :func:`redistribution_time` /
:func:`total_redistribution_time` give the simulated cost.
"""

from __future__ import annotations

import numpy as np

from repro.machine.collectives import all_to_all_personalized_time
from repro.machine.spec import MachineSpec
from repro.mapping.layouts import BlockCyclic1D, BlockCyclic2D
from repro.mapping.subtree_subcube import ProcSet
from repro.symbolic.stree import SupernodalTree


def redistribute_supernode(
    block: np.ndarray,
    layout2d: BlockCyclic2D,
    layout1d: BlockCyclic1D,
) -> tuple[dict[int, np.ndarray], dict[tuple[int, int], int]]:
    """Move a dense ``n x t`` trapezoid from a 2-D to a 1-D distribution.

    Returns ``(pieces, traffic)`` where ``pieces[rank]`` is the dense
    row-slab each rank owns afterwards (rows in 1-D layout order,
    concatenated block by block) and ``traffic[(src, dst)]`` counts the
    words moved between each processor pair (diagonal = data already in
    place).  The function emulates the exchange element-wise, which is what
    the correctness tests compare against direct slicing.
    """
    n, t = block.shape
    if (layout2d.n, layout2d.t) != (n, t):
        raise ValueError("2-D layout shape mismatch")
    if layout1d.n != n:
        raise ValueError("1-D layout must partition the n rows")
    pieces: dict[int, np.ndarray] = {}
    traffic: dict[tuple[int, int], int] = {}
    for rank in layout1d.procs.ranks():
        rows = layout1d.items_of(rank)
        pieces[rank] = block[rows, :].copy()
        for i in rows:
            for j in range(t):
                src = layout2d.owner_of_item(i, j)
                key = (src, rank)
                traffic[key] = traffic.get(key, 0) + 1
    return pieces, traffic


def redistribution_time(
    spec: MachineSpec, n: int, t: int, procs: ProcSet, *, algorithm: str = "pairwise"
) -> float:
    """Simulated time to convert one supernode from 2-D to 1-D layout.

    Each grid row of ``qc`` processors transposes its ``(n/qr) x t`` strip:
    an all-to-all personalized exchange with ``n*t/q`` words per processor.
    Grid rows proceed concurrently, so the supernode cost is one exchange.
    """
    q = procs.size
    if q == 1 or n == 0 or t == 0:
        return 0.0
    layout = BlockCyclic2D(n=n, t=t, b=1, procs=procs)
    qr, qc = layout.grid
    if qc == 1:
        return 0.0  # already row-partitioned
    words_per_proc = n * t / q
    return all_to_all_personalized_time(spec, qc, words_per_proc, algorithm=algorithm)


def total_redistribution_time(
    spec: MachineSpec,
    stree: SupernodalTree,
    assign: list[ProcSet],
    *,
    algorithm: str = "pairwise",
) -> float:
    """Simulated time to redistribute every shared supernode.

    Supernodes at the same tree level live on disjoint subcubes and convert
    concurrently, so the total is the sum over levels of the level maximum.
    Single-processor supernodes need no conversion.
    """
    per_level: dict[int, float] = {}
    for s, sn in enumerate(stree.supernodes):
        procs = assign[s]
        if procs.size == 1:
            continue
        cost = redistribution_time(spec, sn.n, sn.t, procs, algorithm=algorithm)
        lvl = int(stree.level[s])
        per_level[lvl] = max(per_level.get(lvl, 0.0), cost)
    return sum(per_level.values())
