"""Block-cyclic layouts of a supernode's dense trapezoid.

* 1-D row-wise (forward solve) / column-wise (backward solve, which for our
  ``n x t`` storage orientation is the same row partition of the storage —
  the paper's "column-wise partitioning of the t x n trapezoid").
* 2-D over a sqrt(q) x sqrt(q) logical grid (the factorization layout that
  Section 4's redistribution converts away from).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapping.subtree_subcube import ProcSet
from repro.util.blocks import block_count, block_range
from repro.util.validation import check_positive, is_power_of_two, require


@dataclass(frozen=True)
class BlockCyclic1D:
    """1-D block-cyclic partition of ``n`` items over a :class:`ProcSet`."""

    n: int
    b: int
    procs: ProcSet

    def __post_init__(self) -> None:
        check_positive(self.n, "n")
        check_positive(self.b, "b")

    @property
    def nblocks(self) -> int:
        return block_count(self.n, self.b)

    def owner_of_block(self, k: int) -> int:
        require(0 <= k < self.nblocks, f"block {k} out of range")
        return self.procs.start + k % self.procs.size

    def owner_of_item(self, i: int) -> int:
        return self.owner_of_block(i // self.b)

    def block_bounds(self, k: int) -> tuple[int, int]:
        return block_range(k, self.b, self.n)

    def blocks_of(self, rank: int) -> list[int]:
        require(rank in self.procs, f"rank {rank} not in {self.procs}")
        local = rank - self.procs.start
        return list(range(local, self.nblocks, self.procs.size))

    def items_of(self, rank: int) -> list[int]:
        out: list[int] = []
        for k in self.blocks_of(rank):
            lo, hi = self.block_bounds(k)
            out.extend(range(lo, hi))
        return out


@dataclass(frozen=True)
class BlockCyclic2D:
    """2-D block-cyclic partition of an ``n x t`` trapezoid over a proc grid.

    The processor set (size q, a power of two) is factored into the
    near-square grid ``qr x qc`` with ``qr >= qc`` — for odd log2(q) the
    grid is ``2qc x qc`` as in the paper's factorization code.
    """

    n: int
    t: int
    b: int
    procs: ProcSet

    def __post_init__(self) -> None:
        check_positive(self.n, "n")
        check_positive(self.t, "t")
        check_positive(self.b, "b")

    @property
    def grid(self) -> tuple[int, int]:
        q = self.procs.size
        qc = 1
        while (qc * 2) * (qc * 2) <= q:
            qc *= 2
        qr = q // qc
        require(qr * qc == q and is_power_of_two(qr), "bad grid factorisation")
        return qr, qc

    @property
    def nrow_blocks(self) -> int:
        return block_count(self.n, self.b)

    @property
    def ncol_blocks(self) -> int:
        return block_count(self.t, self.b)

    def owner_of_block(self, i: int, j: int) -> int:
        require(0 <= i < self.nrow_blocks, f"row block {i} out of range")
        require(0 <= j < self.ncol_blocks, f"col block {j} out of range")
        qr, qc = self.grid
        return self.procs.start + (i % qr) * qc + (j % qc)

    def owner_of_item(self, i: int, j: int) -> int:
        return self.owner_of_block(i // self.b, j // self.b)

    def words_per_proc(self) -> float:
        """Average words of the trapezoid held per processor."""
        return self.n * self.t / self.procs.size
