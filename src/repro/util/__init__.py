"""Small shared utilities: argument validation, block arithmetic, flop counting.

Nothing in here knows about sparse matrices or the machine model; these are
leaf helpers used across every other subpackage.
"""

from repro.util.blocks import (
    block_count,
    block_of,
    block_owner_cyclic,
    block_range,
    cyclic_blocks_of_owner,
    split_blocks,
)
from repro.util.validation import (
    check_index,
    check_positive,
    check_power_of_two,
    check_square,
    is_power_of_two,
    require,
)
from repro.util.flops import (
    gemm_flops,
    trsm_flops,
    cholesky_flops,
    supernode_solve_flops,
)

__all__ = [
    "block_count",
    "block_of",
    "block_owner_cyclic",
    "block_range",
    "cyclic_blocks_of_owner",
    "split_blocks",
    "check_index",
    "check_positive",
    "check_power_of_two",
    "check_square",
    "is_power_of_two",
    "require",
    "gemm_flops",
    "trsm_flops",
    "cholesky_flops",
    "supernode_solve_flops",
]
