"""Argument validation helpers.

These raise ``ValueError``/``IndexError`` with uniform messages so that the
public API fails fast and loudly instead of producing garbage results deep
inside a simulation.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str, *, strict: bool = True) -> None:
    """Validate that *value* is positive (or non-negative when not strict)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_index(index: int, size: int, name: str = "index") -> None:
    """Validate ``0 <= index < size``."""
    if not 0 <= index < size:
        raise IndexError(f"{name}={index} out of range [0, {size})")


def is_power_of_two(value: int) -> bool:
    """Return True iff *value* is a positive integral power of two."""
    return value >= 1 and (value & (value - 1)) == 0


def check_power_of_two(value: int, name: str) -> None:
    """Validate that *value* is a positive power of two.

    The subtree-to-subcube mapping and hypercube collectives both require
    processor counts of the form 2**k.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def check_square(shape: tuple[int, ...], name: str = "matrix") -> None:
    """Validate that *shape* describes a square 2-D array."""
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"{name} must be square, got shape {shape!r}")


def as_int(value: Any, name: str) -> int:
    """Coerce numpy/python integers to ``int``, rejecting non-integral input."""
    out = int(value)
    if out != value:
        raise ValueError(f"{name} must be integral, got {value!r}")
    return out
