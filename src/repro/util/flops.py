"""Floating-point operation counts for the dense kernels.

The paper reports performance in MFLOPS; the counts below are the standard
ones (each multiply-add pair counted as 2 flops) so that simulated MFLOPS
are comparable with the paper's Figure 7/8 numbers.
"""

from __future__ import annotations


def trsm_flops(t: int, m: int = 1) -> int:
    """Flops to solve a dense t x t triangular system with m right-hand sides.

    ``x_i = (b_i - sum_j L_ij x_j) / L_ii`` costs t divides plus
    t(t-1)/2 multiply-adds per RHS: ``t**2 * m`` flops total.
    """
    return t * t * m


def gemm_flops(rows: int, cols: int, m: int = 1) -> int:
    """Flops of a (rows x cols) @ (cols x m) dense multiply-accumulate."""
    return 2 * rows * cols * m


def cholesky_flops(t: int) -> int:
    """Flops of a dense t x t Cholesky factorization (~t^3/3)."""
    return t * t * t // 3 + t * t


def supernode_solve_flops(n: int, t: int, m: int = 1) -> int:
    """Flops for one triangular solve over an n x t trapezoidal supernode.

    Triangular part: ``t^2 m``; rectangular update: ``2 (n - t) t m``.
    Identical for forward elimination and backward substitution.
    """
    if not 0 <= t <= n:
        raise ValueError(f"supernode requires 0 <= t <= n, got t={t}, n={n}")
    return trsm_flops(t, m) + gemm_flops(n - t, t, m)
