"""Block-cyclic index arithmetic.

The pipelined triangular solvers partition the rows (forward) or columns
(backward) of each trapezoidal supernode among ``q`` processors in a
block-cyclic fashion with block size ``b`` (paper Section 2, Figure 3).
These helpers centralise the index algebra: global row -> block, block ->
owner, owner -> list of blocks, block -> half-open global range.
"""

from __future__ import annotations

from repro.util.validation import check_positive


def block_count(n: int, b: int) -> int:
    """Number of blocks covering ``n`` items with block size ``b`` (last may be short)."""
    check_positive(b, "block size b")
    return -(-n // b)


def block_of(index: int, b: int) -> int:
    """Block number containing global *index*."""
    return index // b


def block_range(block: int, b: int, n: int) -> tuple[int, int]:
    """Half-open global index range ``[lo, hi)`` of *block* within ``n`` items."""
    lo = block * b
    hi = min(lo + b, n)
    if lo >= n:
        raise IndexError(f"block {block} starts at {lo} >= n={n}")
    return lo, hi


def block_owner_cyclic(block: int, q: int) -> int:
    """Owner of *block* under a cyclic distribution over ``q`` processors."""
    check_positive(q, "processor count q")
    return block % q


def cyclic_blocks_of_owner(owner: int, nblocks: int, q: int) -> list[int]:
    """All block numbers owned by *owner* under a cyclic distribution."""
    return list(range(owner, nblocks, q))


def split_blocks(n: int, b: int) -> list[tuple[int, int]]:
    """Half-open ranges of all blocks of size ``b`` covering ``n`` items."""
    return [block_range(k, b, n) for k in range(block_count(n, b))]
