"""Interconnect topologies.

Only two things matter to the cost model: the hop distance between two
ranks and (for collectives) the dimensionality.  The paper's T3D is a 3-D
torus; its analysis uses hypercube collectives — both are provided, plus a
fully-connected idealisation (hop distance 1 everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_index, check_positive, check_power_of_two


@dataclass(frozen=True)
class Topology:
    """Base: a set of ``p`` ranks with a hop metric."""

    p: int

    def __post_init__(self) -> None:
        check_positive(self.p, "p")

    def hops(self, src: int, dst: int) -> int:
        raise NotImplementedError

    def diameter(self) -> int:
        return max(self.hops(0, d) for d in range(self.p))


@dataclass(frozen=True)
class FullyConnected(Topology):
    """Idealised crossbar: every pair is one hop apart."""

    def hops(self, src: int, dst: int) -> int:
        check_index(src, self.p, "src")
        check_index(dst, self.p, "dst")
        return 0 if src == dst else 1


@dataclass(frozen=True)
class Hypercube(Topology):
    """d-dimensional hypercube, p = 2^d; hop distance = Hamming distance."""

    def __post_init__(self) -> None:
        super().__post_init__()
        check_power_of_two(self.p, "hypercube size p")

    @property
    def dims(self) -> int:
        return self.p.bit_length() - 1

    def hops(self, src: int, dst: int) -> int:
        check_index(src, self.p, "src")
        check_index(dst, self.p, "dst")
        return (src ^ dst).bit_count()

    def neighbors(self, rank: int) -> list[int]:
        check_index(rank, self.p, "rank")
        return [rank ^ (1 << d) for d in range(self.dims)]


def _mesh_coords(rank: int, shape: tuple[int, ...]) -> tuple[int, ...]:
    coords = []
    for extent in reversed(shape):
        coords.append(rank % extent)
        rank //= extent
    return tuple(reversed(coords))


@dataclass(frozen=True)
class Mesh2D(Topology):
    """Near-square 2-D mesh (no wraparound); hop = Manhattan distance."""

    def _shape(self) -> tuple[int, int]:
        rows = int(self.p**0.5)
        while self.p % rows:
            rows -= 1
        return rows, self.p // rows

    def hops(self, src: int, dst: int) -> int:
        check_index(src, self.p, "src")
        check_index(dst, self.p, "dst")
        shape = self._shape()
        a, b = _mesh_coords(src, shape), _mesh_coords(dst, shape)
        return sum(abs(x - y) for x, y in zip(a, b))


@dataclass(frozen=True)
class Mesh3D(Topology):
    """Near-cubic 3-D torus (the T3D's network); hop = wrapped Manhattan."""

    def _shape(self) -> tuple[int, int, int]:
        z = max(1, round(self.p ** (1.0 / 3.0)))
        while self.p % z:
            z -= 1
        rest = self.p // z
        y = max(1, int(rest**0.5))
        while rest % y:
            y -= 1
        return z, y, rest // y

    def hops(self, src: int, dst: int) -> int:
        check_index(src, self.p, "src")
        check_index(dst, self.p, "dst")
        shape = self._shape()
        a, b = _mesh_coords(src, shape), _mesh_coords(dst, shape)
        return sum(min(abs(x - y), e - abs(x - y)) for x, y, e in zip(a, b, shape))


def make_topology(name: str, p: int) -> Topology:
    """Build a topology by name: hypercube | mesh2d | mesh3d | full."""
    table = {
        "hypercube": Hypercube,
        "mesh2d": Mesh2D,
        "mesh3d": Mesh3D,
        "full": FullyConnected,
    }
    try:
        return table[name](p)
    except KeyError:
        raise ValueError(f"unknown topology {name!r}; options: {sorted(table)}") from None
