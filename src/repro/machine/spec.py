"""Machine parameters and kernel time model.

The model has two parts:

* **Communication**: a message of ``w`` 8-byte words between processors at
  hop distance ``h`` takes ``t_s + t_w * w + t_h * h`` seconds — the
  standard cut-through model the paper's analysis assumes.
* **Computation**: a dense kernel executing ``f`` flops over ``nrhs``
  right-hand-side columns takes ``t_call + f * t_flop * eff(nrhs)``
  seconds, where ``eff(nrhs) = blas3_factor + (1 - blas3_factor)/nrhs``.
  ``t_call`` models per-kernel index arithmetic and loop overhead;
  ``eff`` models the BLAS-3 effect the paper observes ("the use of
  multiple right-hand side vectors enhances the single processor
  performance due to effective use of BLAS-3"): with one RHS a flop costs
  the full ``t_flop``; with many RHS the cost per flop approaches
  ``blas3_factor * t_flop``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_positive


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of the simulated distributed-memory machine."""

    t_flop: float = 1.0e-7  # seconds per flop at NRHS=1 (10 MFLOPS)
    t_s: float = 5.0e-5  # message startup, seconds
    t_w: float = 1.0e-6  # per 8-byte word transfer time, seconds
    t_h: float = 0.0  # per-hop time (0 = cut-through routing ignored)
    t_call: float = 2.0e-6  # per dense-kernel-call overhead, seconds
    blas3_factor: float = 0.25  # asymptotic flop-time multiplier for large NRHS
    topology: str = "hypercube"

    def __post_init__(self) -> None:
        check_positive(self.t_flop, "t_flop")
        check_positive(self.t_s, "t_s", strict=False)
        check_positive(self.t_w, "t_w", strict=False)
        check_positive(self.t_h, "t_h", strict=False)
        check_positive(self.t_call, "t_call", strict=False)
        if not 0.0 < self.blas3_factor <= 1.0:
            raise ValueError(f"blas3_factor must be in (0, 1], got {self.blas3_factor}")

    # -- computation ---------------------------------------------------
    def flop_efficiency(self, nrhs: int = 1) -> float:
        """Effective per-flop time multiplier for a kernel over nrhs columns."""
        check_positive(nrhs, "nrhs")
        return self.blas3_factor + (1.0 - self.blas3_factor) / nrhs

    def compute_time(self, flops: float, *, nrhs: int = 1, calls: int = 1) -> float:
        """Seconds for *flops* flops across *calls* dense-kernel invocations."""
        check_positive(flops, "flops", strict=False)
        return calls * self.t_call + flops * self.t_flop * self.flop_efficiency(nrhs)

    # -- communication -------------------------------------------------
    def message_time(self, words: float, hops: int = 1) -> float:
        """Seconds for one message of *words* 8-byte words across *hops* links."""
        check_positive(words, "words", strict=False)
        if words == 0:
            return 0.0
        return self.t_s + self.t_w * words + self.t_h * max(hops, 1)

    def mflops(self, flops: float, seconds: float) -> float:
        """Convenience: MFLOPS of *flops* done in *seconds*."""
        if seconds <= 0:
            return float("inf")
        return flops / seconds / 1.0e6

    def with_(self, **kwargs) -> "MachineSpec":
        """Return a copy with some parameters replaced."""
        return replace(self, **kwargs)
