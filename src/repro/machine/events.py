"""Discrete-event task-graph simulator.

The execution model:

* A :class:`Task` is bound to one processor, has a fixed compute cost in
  seconds, a scheduling priority (lower runs first among simultaneously
  ready tasks on the same processor), and optionally a ``run`` thunk that
  performs real numeric work when the task is dispatched.  Dispatch order
  always respects dependencies, so thunk side effects are deterministic and
  independent of the simulated timing parameters.
* An edge ``(src -> dst, words)`` means *dst* cannot start before *src*
  finishes; if the two tasks live on different processors the data arrives
  ``t_s + t_w*words + t_h*hops`` after *src* finishes (cut-through model,
  non-blocking send).  Same-processor edges carry no cost.
* Each processor executes one task at a time, non-preemptively, choosing
  among its ready tasks by priority.

This is exactly the machinery needed to reproduce the paper's pipelined
algorithms: the wavefront of Figure 3 emerges from the dependency structure
rather than being hard-coded.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.machine.spec import MachineSpec
from repro.machine.topology import Topology, make_topology
from repro.util.validation import check_positive, require


@dataclass
class Task:
    """One unit of work bound to a processor."""

    tid: int
    proc: int
    cost: float
    priority: tuple[Any, ...] = ()
    label: str = ""
    run: Callable[[], None] | None = None


@dataclass
class _Edge:
    src: int
    dst: int
    words: float


@dataclass
class TaskGraph:
    """A static DAG of processor-bound tasks with weighted message edges."""

    nproc: int
    tasks: list[Task] = field(default_factory=list)
    edges: list[_Edge] = field(default_factory=list)

    def add_task(
        self,
        proc: int,
        cost: float,
        *,
        priority: tuple[Any, ...] = (),
        label: str = "",
        run: Callable[[], None] | None = None,
    ) -> int:
        """Append a task; returns its id."""
        require(0 <= proc < self.nproc, f"proc {proc} out of range [0, {self.nproc})")
        check_positive(cost, "task cost", strict=False)
        tid = len(self.tasks)
        self.tasks.append(Task(tid=tid, proc=proc, cost=cost, priority=priority, label=label, run=run))
        return tid

    def add_edge(self, src: int, dst: int, words: float = 0.0) -> None:
        """Declare that *dst* depends on *src*, carrying *words* of data."""
        require(0 <= src < len(self.tasks), f"unknown src task {src}")
        require(0 <= dst < len(self.tasks), f"unknown dst task {dst}")
        require(src != dst, "self edge")
        check_positive(words, "edge words", strict=False)
        self.edges.append(_Edge(src, dst, words))

    @property
    def ntasks(self) -> int:
        return len(self.tasks)

    def total_work(self) -> float:
        return sum(t.cost for t in self.tasks)


@dataclass
class MessageRecord:
    """One cross-processor message observed during simulation."""

    src_proc: int
    dst_proc: int
    words: float
    depart: float
    arrive: float


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    makespan: float
    start: list[float]
    finish: list[float]
    busy: list[float]
    messages: list[MessageRecord]
    nproc: int

    @property
    def total_busy(self) -> float:
        return sum(self.busy)

    @property
    def comm_volume_words(self) -> float:
        return sum(m.words for m in self.messages)

    @property
    def message_count(self) -> int:
        return len(self.messages)

    def efficiency(self, serial_time: float) -> float:
        """Parallel efficiency relative to a given serial time."""
        if self.makespan <= 0:
            return 1.0
        return serial_time / (self.nproc * self.makespan)

    def idle_fraction(self) -> float:
        """Average fraction of the makespan each processor sat idle."""
        if self.makespan <= 0:
            return 0.0
        return 1.0 - self.total_busy / (self.nproc * self.makespan)


def critical_path(graph: TaskGraph, spec: MachineSpec, topo: Topology | None = None) -> float:
    """Length of the longest cost+message path (infinite-processor bound)."""
    topo = topo or make_topology(spec.topology, graph.nproc)
    n = graph.ntasks
    best = [0.0] * n
    incoming: list[list[_Edge]] = [[] for _ in range(n)]
    for e in graph.edges:
        incoming[e.dst].append(e)
    # Task ids are required to be topologically ordered by construction
    # (builders add tasks bottom-up); verify cheaply.
    for e in graph.edges:
        require(e.src < e.dst, "task ids must be topologically ordered (src < dst)")
    for tid in range(n):
        t = graph.tasks[tid]
        ready = 0.0
        for e in incoming[tid]:
            src = graph.tasks[e.src]
            delay = 0.0
            if src.proc != t.proc:
                delay = spec.message_time(e.words, topo.hops(src.proc, t.proc))
            ready = max(ready, best[e.src] + delay)
        best[tid] = ready + t.cost
    return max(best, default=0.0)


def simulate(graph: TaskGraph, spec: MachineSpec, *, execute: bool = True) -> SimResult:
    """Run the event-driven simulation; returns timing and message stats.

    When *execute* is true, each task's ``run`` thunk is invoked at
    dispatch (in an order consistent with the DAG), so the simulation also
    produces the real numeric results of the algorithm being simulated.
    """
    topo = make_topology(spec.topology, graph.nproc)
    n = graph.ntasks
    indeg = [0] * n
    succs: list[list[_Edge]] = [[] for _ in range(n)]
    for e in graph.edges:
        indeg[e.dst] += 1
        succs[e.src].append(e)

    start = [0.0] * n
    finish = [0.0] * n
    ready_at = [0.0] * n  # earliest start implied by arrived inputs
    remaining = indeg[:]

    # Per-proc ready heaps: (priority, tid, earliest_start)
    ready: list[list[tuple[tuple, int]]] = [[] for _ in range(graph.nproc)]
    proc_free = [0.0] * graph.nproc
    proc_running = [False] * graph.nproc
    busy = [0.0] * graph.nproc
    messages: list[MessageRecord] = []

    for tid in range(n):
        if remaining[tid] == 0:
            t = graph.tasks[tid]
            heapq.heappush(ready[t.proc], ((t.priority, tid), tid))

    # Event queue: (time, kind, payload). kinds: 0 = task finish (payload tid),
    # 1 = wake proc (payload proc).
    events: list[tuple[float, int, int]] = []
    scheduled = [False] * n
    done_count = 0

    def try_dispatch(proc: int, now: float) -> None:
        """Dispatch the best ready task on *proc* whose inputs have arrived."""
        if proc_running[proc]:
            return
        heap = ready[proc]
        # Collect tasks whose data has arrived (ready_at <= max(now, proc_free)).
        t0 = max(now, proc_free[proc])
        arrived: list[tuple[tuple, int]] = []
        deferred: list[tuple[tuple, int]] = []
        while heap:
            key, tid = heapq.heappop(heap)
            if scheduled[tid]:
                continue
            if ready_at[tid] <= t0:
                arrived.append((key, tid))
                break  # heap order => this is the best arrived task
            deferred.append((key, tid))
        for item in deferred:
            heapq.heappush(heap, item)
        if arrived:
            key, tid = arrived[0]
            t = graph.tasks[tid]
            scheduled[tid] = True
            proc_running[proc] = True
            start[tid] = max(t0, ready_at[tid])
            finish[tid] = start[tid] + t.cost
            busy[proc] += t.cost
            if t.run is not None:
                t.run()
            heapq.heappush(events, (finish[tid], 0, tid))
        elif heap or deferred:
            # Everything ready-listed is still in flight; wake at the
            # earliest arrival.
            pending = [ready_at[tid] for _, tid in deferred if not scheduled[tid]]
            pending += [ready_at[tid] for _, tid in heap if not scheduled[tid]]
            if pending:
                heapq.heappush(events, (min(p for p in pending if p > t0), 1, proc))

    for proc in range(graph.nproc):
        try_dispatch(proc, 0.0)

    while events:
        now, kind, payload = heapq.heappop(events)
        if kind == 0:
            tid = payload
            t = graph.tasks[tid]
            proc_running[t.proc] = False
            proc_free[t.proc] = max(proc_free[t.proc], now)
            done_count += 1
            for e in succs[tid]:
                dst = graph.tasks[e.dst]
                if dst.proc != t.proc:
                    delay = spec.message_time(e.words, topo.hops(t.proc, dst.proc))
                    if e.words > 0 or delay > 0:
                        messages.append(
                            MessageRecord(t.proc, dst.proc, e.words, now, now + delay)
                        )
                    arrival = now + delay
                else:
                    arrival = now
                ready_at[e.dst] = max(ready_at[e.dst], arrival)
                remaining[e.dst] -= 1
                if remaining[e.dst] == 0:
                    heapq.heappush(ready[dst.proc], ((dst.priority, e.dst), e.dst))
                    try_dispatch(dst.proc, now)
            try_dispatch(t.proc, now)
        else:
            try_dispatch(payload, now)

    if done_count != n:
        raise RuntimeError(
            f"simulation deadlocked: {done_count}/{n} tasks completed (cyclic graph?)"
        )
    return SimResult(
        makespan=max(finish, default=0.0),
        start=start,
        finish=finish,
        busy=busy,
        messages=messages,
        nproc=graph.nproc,
    )
