"""SPMD process layer: write rank-local message-passing code, run it on
the simulated machine.

The task-graph interface (:mod:`repro.machine.events`) is ideal for
algorithms whose structure is known up front.  Real message-passing codes
are written differently — each rank runs a sequential program with
``send``/``recv``/``compute`` calls.  This module provides exactly that
model on top of the same cost accounting, using generator coroutines:

    def program(rank: int, env: Env):
        if rank == 0:
            yield env.compute(flops=1000)
            yield env.send(1, data=np.arange(4), words=4)
        else:
            msg = yield env.recv(0)
            ...

Semantics (matching mpi4py-style blocking point-to-point):

* ``send`` is asynchronous (buffered): the sender continues immediately;
  the message arrives ``t_s + t_w*words + t_h*hops`` later.
* ``recv`` blocks until a matching message (by source and tag) arrives;
  messages between a pair are delivered in send order.
* ``compute`` advances the rank's clock by a modeled kernel time.
* ``barrier`` synchronises all ranks (charged as a hypercube reduction +
  broadcast of one word).

The run is deterministic; ties are broken by rank.  Deadlocks (every
live rank blocked on a recv that can never be satisfied) are detected and
reported with the blocked ranks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.machine.spec import MachineSpec
from repro.machine.topology import make_topology
from repro.util.validation import check_positive, require


# ------------------------------------------------------------------ actions
@dataclass(frozen=True)
class Send:
    dst: int
    data: Any
    words: float
    tag: int = 0


@dataclass(frozen=True)
class Recv:
    src: int
    tag: int = 0


@dataclass(frozen=True)
class Compute:
    seconds: float


@dataclass(frozen=True)
class Barrier:
    pass


class Env:
    """Factory for the actions a rank may yield."""

    def __init__(self, spec: MachineSpec, size: int):
        self._spec = spec
        self.size = size

    def send(self, dst: int, data: Any = None, *, words: float = 0.0, tag: int = 0) -> Send:
        require(0 <= dst < self.size, f"dst {dst} out of range")
        check_positive(words, "words", strict=False)
        return Send(dst=dst, data=data, words=words, tag=tag)

    def recv(self, src: int, *, tag: int = 0) -> Recv:
        require(0 <= src < self.size, f"src {src} out of range")
        return Recv(src=src, tag=tag)

    def compute(self, *, seconds: float | None = None, flops: float = 0.0, nrhs: int = 1) -> Compute:
        if seconds is None:
            seconds = self._spec.compute_time(flops, nrhs=nrhs)
        check_positive(seconds, "seconds", strict=False)
        return Compute(seconds=seconds)

    def barrier(self) -> Barrier:
        return Barrier()


Program = Callable[[int, Env], Generator]


@dataclass
class SpmdResult:
    """Timing outcome of an SPMD run."""

    makespan: float
    finish_times: list[float]
    busy: list[float]
    message_count: int
    comm_volume_words: float
    returns: list[Any] = field(default_factory=list)


class DeadlockError(RuntimeError):
    """All live ranks are blocked on unmatched receives."""


def run_spmd(program: Program, size: int, spec: MachineSpec) -> SpmdResult:
    """Execute *program* on every rank of a *size*-processor machine."""
    check_positive(size, "size")
    topo = make_topology(spec.topology, size)
    env = Env(spec, size)
    gens: list[Generator | None] = [program(rank, env) for rank in range(size)]
    clock = [0.0] * size
    busy = [0.0] * size
    returns: list[Any] = [None] * size

    # in-flight and delivered messages: (src, dst, tag) -> FIFO of
    # (arrival_time, data); matching is by send order per channel.
    mailbox: dict[tuple[int, int, int], list[tuple[float, Any]]] = {}
    # per-rank blocked state: (channel_key, resume_generator)
    blocked: dict[int, tuple[int, int, int]] = {}
    barrier_wait: set[int] = set()
    msg_count = 0
    volume = 0.0

    # run queue ordered by (clock, rank); blocked ranks are excluded
    ready: list[tuple[float, int]] = [(0.0, r) for r in range(size)]
    heapq.heapify(ready)
    pending_value: dict[int, Any] = {}

    def step(rank: int) -> None:
        """Advance one rank until it blocks, yields time, or finishes."""
        nonlocal msg_count, volume
        gen = gens[rank]
        assert gen is not None, "finished rank must not be stepped"
        try:
            action = gen.send(pending_value.pop(rank, None))
        except StopIteration as stop:
            returns[rank] = stop.value
            gens[rank] = None
            return
        if isinstance(action, Compute):
            clock[rank] += action.seconds
            busy[rank] += action.seconds
            heapq.heappush(ready, (clock[rank], rank))
        elif isinstance(action, Send):
            arrival = clock[rank] + (
                spec.message_time(action.words, topo.hops(rank, action.dst))
                if action.dst != rank
                else 0.0
            )
            key = (rank, action.dst, action.tag)
            mailbox.setdefault(key, []).append((arrival, action.data))
            if action.dst != rank and action.words > 0:
                msg_count += 1
                volume += action.words
            # unblock the receiver if it was waiting on this channel
            if blocked.get(action.dst) == key:
                del blocked[action.dst]
                _deliver(action.dst, key)
            heapq.heappush(ready, (clock[rank], rank))
        elif isinstance(action, Recv):
            key = (action.src, rank, action.tag)
            if mailbox.get(key):
                _deliver(rank, key)
            else:
                blocked[rank] = key
        elif isinstance(action, Barrier):
            barrier_wait.add(rank)
            if len(barrier_wait) == size:
                _release_barrier()
        else:
            raise TypeError(f"rank {rank} yielded unsupported action {action!r}")

    def _deliver(rank: int, key: tuple[int, int, int]) -> None:
        arrival, data = mailbox[key].pop(0)
        clock[rank] = max(clock[rank], arrival)
        pending_value[rank] = data
        heapq.heappush(ready, (clock[rank], rank))

    def _release_barrier() -> None:
        cost = 2.0 * spec.message_time(1, 1) * max(size.bit_length() - 1, 0)
        t = max(clock) + cost
        for r in list(barrier_wait):
            clock[r] = t
            heapq.heappush(ready, (t, r))
        barrier_wait.clear()

    while True:
        while ready:
            _, rank = heapq.heappop(ready)
            if gens[rank] is None or rank in blocked or rank in barrier_wait:
                continue
            step(rank)
        live = [r for r in range(size) if gens[r] is not None]
        if not live:
            break
        if all(r in blocked or r in barrier_wait for r in live):
            raise DeadlockError(
                f"deadlock: ranks {sorted(blocked)} blocked on receives "
                f"{[blocked[r] for r in sorted(blocked)]}"
                + (f"; ranks {sorted(barrier_wait)} at barrier" if barrier_wait else "")
            )

    return SpmdResult(
        makespan=max(clock) if clock else 0.0,
        finish_times=clock,
        busy=busy,
        message_count=msg_count,
        comm_volume_words=volume,
        returns=returns,
    )
