"""Execution-trace analysis and ASCII Gantt rendering.

Turns a :class:`~repro.machine.events.SimResult` (plus its
:class:`~repro.machine.events.TaskGraph`) into per-processor utilisation
statistics and a terminal-friendly Gantt chart — the tool used to diagnose
pipeline behaviour (e.g. the Figure 3/4 wavefronts and the backward-ring
direction bug class) and to report busy/idle/communication breakdowns in
the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.events import SimResult, TaskGraph
from repro.util.validation import check_positive, require


@dataclass(frozen=True)
class ProcessorStats:
    """Utilisation of one processor over a simulated run."""

    proc: int
    busy_seconds: float
    idle_seconds: float
    tasks_run: int
    messages_sent: int
    messages_received: int
    words_sent: float

    @property
    def utilisation(self) -> float:
        total = self.busy_seconds + self.idle_seconds
        return self.busy_seconds / total if total > 0 else 1.0


def processor_stats(graph: TaskGraph, sim: SimResult) -> list[ProcessorStats]:
    """Per-processor busy/idle/message statistics."""
    tasks_run = [0] * graph.nproc
    for tid, task in enumerate(graph.tasks):
        tasks_run[task.proc] += 1
    sent = [0] * graph.nproc
    received = [0] * graph.nproc
    words = [0.0] * graph.nproc
    for msg in sim.messages:
        sent[msg.src_proc] += 1
        received[msg.dst_proc] += 1
        words[msg.src_proc] += msg.words
    return [
        ProcessorStats(
            proc=p,
            busy_seconds=sim.busy[p],
            idle_seconds=max(sim.makespan - sim.busy[p], 0.0),
            tasks_run=tasks_run[p],
            messages_sent=sent[p],
            messages_received=received[p],
            words_sent=words[p],
        )
        for p in range(graph.nproc)
    ]


def utilisation_summary(graph: TaskGraph, sim: SimResult) -> str:
    """One line per processor: bar + numbers."""
    stats = processor_stats(graph, sim)
    lines = [
        f"makespan {sim.makespan * 1e3:.3f} ms, "
        f"{graph.ntasks} tasks, {sim.message_count} messages, "
        f"{sim.comm_volume_words:.0f} words"
    ]
    for s in stats:
        bar = "#" * int(round(s.utilisation * 40))
        lines.append(
            f"P{s.proc:<3d} |{bar:<40s}| {s.utilisation * 100:5.1f}% busy, "
            f"{s.tasks_run:5d} tasks, {s.messages_sent:4d} msgs out"
        )
    return "\n".join(lines)


def gantt(
    graph: TaskGraph,
    sim: SimResult,
    *,
    width: int = 100,
    label_chars: int = 1,
) -> str:
    """ASCII Gantt chart: one row per processor, time left to right.

    Each task paints its label's first ``label_chars`` characters over its
    time span; '.' is idle.  Overlapping zero-cost tasks are invisible
    (they occupy no time), which is the desired behaviour for relays.
    """
    check_positive(width, "width")
    require(sim.makespan > 0, "empty simulation")
    scale = width / sim.makespan
    rows = [["."] * width for _ in range(graph.nproc)]
    for tid, task in enumerate(graph.tasks):
        if task.cost <= 0:
            continue
        lo = int(sim.start[tid] * scale)
        hi = max(int(sim.finish[tid] * scale), lo + 1)
        mark = (task.label[: label_chars] or "#") if task.label else "#"
        for c in range(lo, min(hi, width)):
            rows[task.proc][c] = mark[0]
    header = f"time 0 .. {sim.makespan * 1e3:.3f} ms ({width} cols)"
    return "\n".join([header] + [f"P{p:<3d} " + "".join(r) for p, r in enumerate(rows)])


def critical_tasks(graph: TaskGraph, sim: SimResult, top: int = 10) -> list[tuple[int, str, float]]:
    """The *top* tasks finishing last — where the makespan is decided."""
    order = np.argsort(sim.finish)[::-1][:top]
    return [(int(t), graph.tasks[int(t)].label, float(sim.finish[int(t)])) for t in order]
