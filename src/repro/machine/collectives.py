"""Collective-communication cost formulas (hypercube algorithms).

Closed-form times from Kumar, Grama, Gupta & Karypis, *Introduction to
Parallel Computing* (ref [8] of the paper) — the same source the paper's
analysis cites for the all-to-all personalized cost of redistribution
(Section 4).  ``m`` is the per-processor message size in words; ``q`` is
the number of participating processors.

These are used (a) directly for the redistribution/collection phases whose
internal schedule we do not simulate task-by-task, and (b) in the closed-
form scalability models of :mod:`repro.analysis.models`.
"""

from __future__ import annotations

import math

from repro.machine.spec import MachineSpec
from repro.util.validation import check_positive


def _log2(q: int) -> int:
    check_positive(q, "q")
    return max(int(math.ceil(math.log2(q))), 0) if q > 1 else 0


def broadcast_time(spec: MachineSpec, q: int, m: float) -> float:
    """One-to-all broadcast of *m* words among *q* procs: (t_s + t_w m) log q."""
    if q <= 1 or m <= 0:
        return 0.0
    return (spec.t_s + spec.t_w * m) * _log2(q)


def reduce_time(spec: MachineSpec, q: int, m: float) -> float:
    """All-to-one reduction; same cost shape as a broadcast."""
    return broadcast_time(spec, q, m)


def gather_time(spec: MachineSpec, q: int, m: float) -> float:
    """All-to-one gather of *m* words per proc: t_s log q + t_w m (q - 1)."""
    if q <= 1 or m <= 0:
        return 0.0
    return spec.t_s * _log2(q) + spec.t_w * m * (q - 1)


def all_to_all_personalized_time(
    spec: MachineSpec, q: int, m: float, *, algorithm: str = "pairwise"
) -> float:
    """All-to-all personalized exchange; *m* words from each proc to each other.

    ``pairwise``  — q-1 exchange steps of m words each (optimal volume on a
    fully-connected / E-cube routed network):
    ``(t_s + t_w m)(q - 1)``.  Total per-proc data m(q-1), i.e. the
    O(n t / q) the paper quotes for supernode redistribution.

    ``hypercube`` — log q store-and-forward steps of m q/2 words:
    ``(t_s + t_w m q / 2) log q``; fewer startups, more volume.
    """
    if q <= 1 or m <= 0:
        return 0.0
    if algorithm == "pairwise":
        return (spec.t_s + spec.t_w * m) * (q - 1)
    if algorithm == "hypercube":
        return (spec.t_s + spec.t_w * m * q / 2.0) * _log2(q)
    raise ValueError(f"unknown all-to-all algorithm {algorithm!r}")
