"""Calibrated machine presets.

``cray_t3d()`` is tuned so that the *single-processor* simulated
performance of the supernodal triangular solve and of supernodal Cholesky
land in the ranges the paper reports for the T3D (Figure 7):

* trisolve, NRHS = 1:  ~5-8 MFLOPS   (paper: 6.6 on BCSSTK15)
* trisolve, NRHS = 30: ~25-35 MFLOPS (paper: ~30)
* factorization:       ~30-40 MFLOPS (paper: 34.5)

The factorization runs almost entirely inside large BLAS-3 kernels, which
the model represents through the ``blas3_factor`` (flops executed in
many-column kernels approach ``blas3_factor * t_flop`` per flop).  The
messaging parameters are in the T3D's shmem ballpark scaled to the paper's
observed solve/communication balance.  Calibration reproduces *ratios and
shapes*, not absolute Cray seconds — see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.machine.spec import MachineSpec


def cray_t3d() -> MachineSpec:
    """Cray-T3D-like preset (150 MHz Alpha EV4 PEs, 3-D torus, shmem)."""
    return MachineSpec(
        t_flop=9.0e-8,  # ~11 MFLOPS BLAS-1/2 ceiling; ~6.6 net after overheads
        t_s=5.0e-6,  # message startup (T3D shmem-class latency)
        t_w=1.0e-7,  # ~80 MB/s per-word (8 B) transfer
        t_h=2.0e-8,
        t_call=4.0e-6,  # per dense-kernel overhead (index computations)
        blas3_factor=0.20,  # BLAS-3 ~5x faster per flop than BLAS-1/2
        topology="hypercube",
    )


def ideal_machine() -> MachineSpec:
    """Zero-overhead communication; isolates load balance / critical path."""
    return MachineSpec(
        t_flop=1.0e-7,
        t_s=0.0,
        t_w=0.0,
        t_h=0.0,
        t_call=0.0,
        blas3_factor=1.0,
        topology="full",
    )


def laptop_like() -> MachineSpec:
    """A modern-node preset: fast flops, relatively slower network."""
    return MachineSpec(
        t_flop=5.0e-10,  # 2 GFLOPS scalar
        t_s=2.0e-6,
        t_w=4.0e-9,
        t_h=1.0e-8,
        t_call=5.0e-7,
        blas3_factor=0.10,
        topology="mesh3d",
    )
