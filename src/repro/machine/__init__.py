"""Simulated distributed-memory message-passing machine.

This package is the substitution for the paper's Cray T3D (see DESIGN.md):
a deterministic discrete-event simulator with per-processor clocks and the
linear message-cost model ``t_s + t_w * words (+ t_h * hops)`` that the
paper's own analysis (and Kumar et al.'s *Introduction to Parallel
Computing*) uses.  Algorithms are expressed as task graphs
(:class:`TaskGraph`): tasks are bound to processors, carry compute costs
and optional real numeric work, and edges crossing processors become
messages.  The simulator yields makespans, per-processor busy/idle traces,
and message statistics.
"""

from repro.machine.spec import MachineSpec
from repro.machine.topology import Hypercube, Mesh2D, Mesh3D, FullyConnected, make_topology
from repro.machine.events import Task, TaskGraph, SimResult, simulate
from repro.machine.collectives import (
    broadcast_time,
    all_to_all_personalized_time,
    reduce_time,
    gather_time,
)
from repro.machine.presets import cray_t3d, ideal_machine, laptop_like
from repro.machine.trace import gantt, processor_stats, utilisation_summary
from repro.machine.spmd import Env, DeadlockError, SpmdResult, run_spmd

__all__ = [
    "MachineSpec",
    "Hypercube",
    "Mesh2D",
    "Mesh3D",
    "FullyConnected",
    "make_topology",
    "Task",
    "TaskGraph",
    "SimResult",
    "simulate",
    "broadcast_time",
    "all_to_all_personalized_time",
    "reduce_time",
    "gather_time",
    "cray_t3d",
    "ideal_machine",
    "laptop_like",
    "gantt",
    "processor_stats",
    "utilisation_summary",
    "Env",
    "DeadlockError",
    "SpmdResult",
    "run_spmd",
]
