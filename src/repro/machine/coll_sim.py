"""Collective operations as simulated task graphs.

:mod:`repro.machine.collectives` gives the closed-form hypercube costs the
paper's analysis uses; this module builds the same algorithms as task
graphs for the event simulator so the formulas can be validated against
the execution model (and so whole-program simulations can embed
collectives without switching cost models).

Implemented: recursive-doubling one-to-all broadcast, all-to-one
reduction, and the pairwise-exchange all-to-all personalized used by the
Section 4 redistribution.
"""

from __future__ import annotations

from repro.machine.events import SimResult, TaskGraph, simulate
from repro.machine.spec import MachineSpec
from repro.util.validation import check_positive, check_power_of_two


def broadcast_graph(q: int, m: float, *, root: int = 0) -> TaskGraph:
    """Recursive-doubling broadcast of *m* words from *root* over q procs.

    At step d (d = log q - 1 .. 0), every processor that already holds the
    data sends to its partner at distance 2^d.
    """
    check_power_of_two(q, "q")
    check_positive(m, "message words")
    g = TaskGraph(nproc=q)
    # last task per proc participating so far
    holder: dict[int, int] = {root: g.add_task(root, 0.0, priority=(0, 0), label="src")}
    step = 1
    d = q // 2
    while d >= 1:
        new_holders = {}
        for rank, tid in holder.items():
            partner = rank ^ d
            if partner in holder or partner in new_holders:
                continue
            recv = g.add_task(partner, 0.0, priority=(step, partner), label=f"recv{step}")
            g.add_edge(tid, recv, words=m)
            new_holders[partner] = recv
        holder.update(new_holders)
        d //= 2
        step += 1
    return g


def reduce_graph(q: int, m: float, *, root: int = 0) -> TaskGraph:
    """Recursive-halving all-to-one reduction (mirror of the broadcast)."""
    check_power_of_two(q, "q")
    check_positive(m, "message words")
    g = TaskGraph(nproc=q)
    current = {rank: g.add_task(rank, 0.0, priority=(0, rank), label="leaf") for rank in range(q)}
    step = 1
    d = 1
    while d < q:
        survivors: dict[int, int] = {}
        for rank, tid in current.items():
            low = rank ^ d
            if rank & d:  # sender this round
                continue
            recv = g.add_task(rank, 0.0, priority=(step, rank), label=f"acc{step}")
            g.add_edge(tid, recv)
            partner_tid = current.get(rank | d)
            if partner_tid is not None:
                g.add_edge(partner_tid, recv, words=m)
            survivors[rank] = recv
            del low
        current = survivors
        d *= 2
        step += 1
    return g


def all_to_all_personalized_graph(q: int, m: float) -> TaskGraph:
    """Pairwise-exchange all-to-all personalized: q-1 rounds; in round r,
    processor i exchanges m words with processor ``i XOR r``."""
    check_power_of_two(q, "q")
    check_positive(m, "message words")
    g = TaskGraph(nproc=q)
    last = {rank: g.add_task(rank, 0.0, priority=(0, rank), label="start") for rank in range(q)}
    for r in range(1, q):
        nxt = {}
        for rank in range(q):
            partner = rank ^ r
            recv = g.add_task(rank, 0.0, priority=(r, rank), label=f"x{r}")
            g.add_edge(last[rank], recv)  # local ordering
            g.add_edge(last[partner], recv, words=m)  # partner's data
            nxt[rank] = recv
        last = nxt
    return g


def simulated_collective_time(graph: TaskGraph, spec: MachineSpec) -> tuple[float, SimResult]:
    """Makespan of a collective graph under *spec*."""
    sim = simulate(graph, spec)
    return sim.makespan, sim
