"""repro — parallel sparse triangular solvers (Gupta & Kumar, SC'95).

A full reproduction of *Parallel Algorithms for Forward and Back
Substitution in Direct Solution of Sparse Linear Systems*: sparse
substrate, fill-reducing orderings, symbolic/numeric supernodal Cholesky,
a simulated distributed-memory machine, the paper's pipelined
block-cyclic triangular solvers with subtree-to-subcube mapping, the
2-D -> 1-D factor redistribution, and the scalability analysis tooling.

Quickstart::

    import numpy as np
    from repro import ParallelSparseSolver, grid2d_laplacian

    a = grid2d_laplacian(32)                      # 2-D model problem
    solver = ParallelSparseSolver(a, p=16).prepare()
    x, report = solver.solve(np.ones(a.n))
    print(report.fbsolve_seconds, report.fbsolve_mflops, report.residual)
"""

from repro.core.solver import ParallelSparseSolver, SolveReport, TrisolveRun
from repro.machine.presets import cray_t3d, ideal_machine, laptop_like
from repro.machine.spec import MachineSpec
from repro.sparse.generators import (
    fe_mesh_2d,
    fe_mesh_3d,
    grid2d_laplacian,
    grid3d_laplacian,
    model_problem,
    random_spd,
)
from repro.sparse.csc import LowerCSC, SymCSC
from repro.symbolic.analyze import SymbolicFactor, analyze

__version__ = "1.0.0"

__all__ = [
    "ParallelSparseSolver",
    "SolveReport",
    "TrisolveRun",
    "MachineSpec",
    "cray_t3d",
    "ideal_machine",
    "laptop_like",
    "SymCSC",
    "LowerCSC",
    "grid2d_laplacian",
    "grid3d_laplacian",
    "fe_mesh_2d",
    "fe_mesh_3d",
    "random_spd",
    "model_problem",
    "SymbolicFactor",
    "analyze",
    "__version__",
]
