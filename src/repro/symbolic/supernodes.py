"""Supernode detection.

A (fundamental) supernode is a maximal run of consecutive columns
``i_1 .. i_t`` of L such that each ``i_{j+1}`` is the parent of ``i_j`` in
the elimination tree and all t columns have identical below-diagonal
pattern (paper Section 2.1).  Equivalently, on a postordered tree:
``parent(j) == j + 1``, node ``j+1`` has exactly one child, and
``count(j) == count(j+1) + 1``.

The optional *relaxation* merges a child supernode into its parent when
doing so introduces at most ``relax`` artificial zeros per column — the
standard amalgamation trick that fattens tiny supernodes so the dense
kernels (and the pipelined parallel algorithm) get reasonable block sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symbolic.etree import NO_PARENT
from repro.util.validation import require


@dataclass(frozen=True)
class SupernodePartition:
    """Partition of columns 0..n-1 into supernodes of consecutive columns.

    ``boundaries`` has length nsuper+1 with ``boundaries[0] == 0`` and
    ``boundaries[-1] == n``; supernode s owns columns
    ``boundaries[s] : boundaries[s+1]``.
    """

    boundaries: np.ndarray

    def __post_init__(self) -> None:
        b = np.asarray(self.boundaries, dtype=np.int64)
        object.__setattr__(self, "boundaries", b)
        require(b.ndim == 1 and b.shape[0] >= 1, "boundaries must be non-empty 1-D")
        require(b[0] == 0, "boundaries must start at 0")
        require(bool(np.all(np.diff(b) > 0)), "boundaries must be strictly increasing")

    @property
    def nsuper(self) -> int:
        return int(self.boundaries.shape[0] - 1)

    @property
    def n(self) -> int:
        return int(self.boundaries[-1])

    def columns(self, s: int) -> tuple[int, int]:
        """Half-open column range of supernode *s*."""
        return int(self.boundaries[s]), int(self.boundaries[s + 1])

    def width(self, s: int) -> int:
        lo, hi = self.columns(s)
        return hi - lo

    def column_to_supernode(self) -> np.ndarray:
        """Array mapping each column to its supernode index."""
        out = np.empty(self.n, dtype=np.int64)
        for s in range(self.nsuper):
            lo, hi = self.columns(s)
            out[lo:hi] = s
        return out


def find_supernodes(
    parent: np.ndarray,
    col_counts: np.ndarray,
    *,
    relax: int = 0,
) -> SupernodePartition:
    """Fundamental supernodes, optionally relaxed by amalgamation.

    *parent* must be a postordered elimination tree (children < parent and
    subtrees contiguous); *col_counts* is nnz per column of L including the
    diagonal.
    """
    n = parent.shape[0]
    require(col_counts.shape[0] == n, "col_counts must match parent length")
    nchildren = np.zeros(n, dtype=np.int64)
    for j in range(n):
        p = int(parent[j])
        if p != NO_PARENT:
            nchildren[p] += 1

    starts = [0]
    for j in range(1, n):
        fundamental = (
            int(parent[j - 1]) == j
            and nchildren[j] == 1
            and int(col_counts[j - 1]) == int(col_counts[j]) + 1
        )
        relaxed = (
            relax > 0
            and int(parent[j - 1]) == j
            and nchildren[j] == 1
            and 0 <= int(col_counts[j - 1]) - int(col_counts[j]) - 1 <= relax
        )
        if not (fundamental or relaxed):
            starts.append(j)
    return SupernodePartition(np.asarray(starts + [n], dtype=np.int64))
