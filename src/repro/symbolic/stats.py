"""Elimination-tree and load-balance statistics.

Quantifies the structural assumptions behind the paper's analysis:
nested dissection gives *almost balanced* trees (Section 3.1), and the
overhead due to residual imbalance "tends to saturate at 3 to 4
processors ... and does not continue to increase" — a claim the test
suite checks with :func:`subtree_imbalance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.symbolic.stree import SupernodalTree
from repro.util.flops import supernode_solve_flops
from repro.util.validation import check_power_of_two

if TYPE_CHECKING:  # avoid a circular import at package-init time
    from repro.mapping.subtree_subcube import ProcSet


@dataclass(frozen=True)
class TreeStats:
    """Shape statistics of a supernodal elimination tree."""

    nsuper: int
    height: int
    n_leaves: int
    max_supernode_width: int
    mean_supernode_width: float
    top_separator_width: int
    total_solve_flops: int

    @property
    def is_chainlike(self) -> bool:
        """Heuristic: a path-shaped tree (the RCM failure mode)."""
        return self.n_leaves <= max(self.nsuper // 20, 2)


def tree_stats(stree: SupernodalTree) -> TreeStats:
    """Collect the shape statistics of *stree*."""
    widths = [sn.t for sn in stree.supernodes]
    leaves = sum(1 for s in range(stree.nsuper) if not stree.children[s])
    roots = stree.roots()
    top_width = max((stree.supernodes[r].t for r in roots), default=0)
    return TreeStats(
        nsuper=stree.nsuper,
        height=int(stree.level.max()) + 1 if stree.nsuper else 0,
        n_leaves=leaves,
        max_supernode_width=max(widths, default=0),
        mean_supernode_width=float(np.mean(widths)) if widths else 0.0,
        top_separator_width=top_width,
        total_solve_flops=stree.solve_flops(),
    )


def work_per_processor(
    stree: SupernodalTree, assign: list[ProcSet], *, nrhs: int = 1
) -> np.ndarray:
    """Triangular-solve flops charged to each processor.

    A supernode's work is split evenly over its processor set (the
    block-cyclic mapping is balanced to within one block).
    """
    p = max(ps.stop for ps in assign)
    work = np.zeros(p)
    for s, sn in enumerate(stree.supernodes):
        procs = assign[s]
        share = supernode_solve_flops(sn.n, sn.t, nrhs) / procs.size
        work[procs.start : procs.stop] += share
    return work


def subtree_imbalance(stree: SupernodalTree, p: int) -> float:
    """Load-imbalance factor ``max_work / mean_work`` under subtree-to-subcube.

    1.0 is perfect balance.  The paper observes this saturating around
    3-4 processors for nested-dissection trees rather than growing with p.
    """
    check_power_of_two(p, "p")
    from repro.mapping.subtree_subcube import subtree_to_subcube

    assign = subtree_to_subcube(stree, p)
    work = work_per_processor(stree, assign)
    mean = float(work.mean())
    return float(work.max()) / mean if mean > 0 else 1.0


def per_level_profile(stree: SupernodalTree) -> list[tuple[int, int, int]]:
    """Per tree level: (level, supernode count, solve flops at that level)."""
    out: dict[int, list[int]] = {}
    for s, sn in enumerate(stree.supernodes):
        lvl = int(stree.level[s])
        entry = out.setdefault(lvl, [0, 0])
        entry[0] += 1
        entry[1] += supernode_solve_flops(sn.n, sn.t)
    return [(lvl, cnt, fl) for lvl, (cnt, fl) in sorted(out.items())]
