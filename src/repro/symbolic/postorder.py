"""Tree utilities: children lists, postorder, levels.

Postordering the elimination tree is what makes the columns of each
supernode (and of each subtree) contiguous, which both the supernode
detector and the subtree-to-subcube mapping require.  A postorder is itself
an equivalent reordering of the matrix (it preserves the fill pattern up to
renumbering), so the driver composes it with the fill-reducing permutation.
"""

from __future__ import annotations

import numpy as np

from repro.ordering.permutation import Permutation
from repro.symbolic.etree import NO_PARENT


def children_lists(parent: np.ndarray) -> list[list[int]]:
    """Children of each node, each list sorted ascending."""
    n = parent.shape[0]
    kids: list[list[int]] = [[] for _ in range(n)]
    for j in range(n):
        p = int(parent[j])
        if p != NO_PARENT:
            kids[p].append(j)
    return kids


def postorder(parent: np.ndarray) -> Permutation:
    """A postorder permutation (new <- old) of the forest.

    Children are visited in ascending order, iteratively (no recursion, so
    path-shaped trees of 10^5 nodes are fine).
    """
    n = parent.shape[0]
    kids = children_lists(parent)
    roots = [j for j in range(n) if parent[j] == NO_PARENT]
    out = np.empty(n, dtype=np.int64)
    k = 0
    for root in roots:
        stack: list[tuple[int, int]] = [(root, 0)]
        while stack:
            node, child_idx = stack.pop()
            if child_idx < len(kids[node]):
                stack.append((node, child_idx + 1))
                stack.append((kids[node][child_idx], 0))
            else:
                out[k] = node
                k += 1
    if k != n:
        raise ValueError("parent array does not describe a forest")
    return Permutation(out)


def relabel_tree(parent: np.ndarray, perm: Permutation) -> np.ndarray:
    """Parent array after renumbering nodes with *perm* (new <- old)."""
    inv = perm.inverse().perm
    n = parent.shape[0]
    out = np.full(n, NO_PARENT, dtype=np.int64)
    for old in range(n):
        p = int(parent[old])
        if p != NO_PARENT:
            out[inv[old]] = inv[p]
    return out


def tree_levels(parent: np.ndarray) -> np.ndarray:
    """Depth of each node (roots at level 0).

    Matches the paper's Figure 1 convention: the topmost (root) supernode is
    level 0 and levels grow downwards.
    """
    n = parent.shape[0]
    level = -np.ones(n, dtype=np.int64)
    for j in range(n - 1, -1, -1):
        p = int(parent[j])
        if p == NO_PARENT:
            level[j] = 0
        else:
            if level[p] < 0:
                # Parents always have higher indices, so a reverse sweep
                # sees every parent before its children.
                raise ValueError("parent array must satisfy parent[j] > j")
            level[j] = level[p] + 1
    return level


def subtree_sizes(parent: np.ndarray) -> np.ndarray:
    """Number of nodes in the subtree rooted at each node (incl. itself)."""
    n = parent.shape[0]
    size = np.ones(n, dtype=np.int64)
    for j in range(n):
        p = int(parent[j])
        if p != NO_PARENT:
            size[p] += size[j]
    return size
