"""The supernodal elimination tree (assembly tree).

Each node is a :class:`Supernode`: a dense trapezoidal block of L of width
``t`` (its columns) and height ``n`` (those columns plus every fill row
below them) — exactly the object the paper's Figures 2-4 operate on.  The
tree structure drives both the multifrontal factorization and the
subtree-to-subcube mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.symbolic.etree import NO_PARENT
from repro.symbolic.supernodes import SupernodePartition
from repro.util.validation import require


@dataclass(frozen=True)
class Supernode:
    """One dense trapezoidal supernode.

    Attributes
    ----------
    index : position in the supernodal tree's node list.
    col_lo, col_hi : half-open global column range (width ``t = col_hi - col_lo``).
    rows : global row indices of the trapezoid, length ``n``; the first
        ``t`` entries are exactly ``col_lo .. col_hi - 1`` and the remaining
        ``n - t`` (the "below" part that updates ancestors) are sorted
        ascending and all ``>= col_hi``.
    """

    index: int
    col_lo: int
    col_hi: int
    rows: np.ndarray

    @property
    def t(self) -> int:
        """Supernode width (number of columns)."""
        return self.col_hi - self.col_lo

    @property
    def n(self) -> int:
        """Trapezoid height (columns + below-diagonal rows)."""
        return int(self.rows.shape[0])

    @property
    def below(self) -> np.ndarray:
        """Row indices below the supernode's own columns (length n - t)."""
        return self.rows[self.t :]


@dataclass
class SupernodalTree:
    """Supernodes plus their tree structure and per-node levels."""

    supernodes: list[Supernode]
    parent: np.ndarray
    children: list[list[int]] = field(init=False)
    level: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        ns = len(self.supernodes)
        require(self.parent.shape[0] == ns, "parent array size mismatch")
        self.children = [[] for _ in range(ns)]
        for s in range(ns):
            p = int(self.parent[s])
            if p != NO_PARENT:
                require(p > s, "supernodal tree parents must have higher indices")
                self.children[p].append(s)
        # Levels follow the paper's Figure 1: roots at level 0.
        self.level = -np.ones(ns, dtype=np.int64)
        for s in range(ns - 1, -1, -1):
            p = int(self.parent[s])
            self.level[s] = 0 if p == NO_PARENT else self.level[p] + 1

    @property
    def nsuper(self) -> int:
        return len(self.supernodes)

    @property
    def n(self) -> int:
        return max((sn.col_hi for sn in self.supernodes), default=0)

    def roots(self) -> list[int]:
        return [s for s in range(self.nsuper) if self.parent[s] == NO_PARENT]

    def bottom_up_levels(self) -> np.ndarray:
        """Per-supernode level counted from the leaves (leaves at 0).

        ``bottom_up_levels()[s] = 1 + max(levels of children)`` — the earliest
        parallel step at which supernode ``s`` can run in a level-scheduled
        forward elimination, and (reversed) the dependency depth of the
        backward substitution.  Complements :attr:`level`, which counts from
        the roots (paper Figure 1).
        """
        out = np.zeros(self.nsuper, dtype=np.int64)
        for s in range(self.nsuper):
            if self.children[s]:
                out[s] = 1 + max(int(out[c]) for c in self.children[s])
        return out

    def topo_order(self) -> range:
        """Bottom-up order: node indices ascend from leaves to roots.

        Column-contiguous supernodes over a postordered etree are already
        topologically sorted by construction (children precede parents).
        """
        return range(self.nsuper)

    def factor_nnz(self) -> int:
        """Nonzeros of L counted through the trapezoids."""
        total = 0
        for sn in self.supernodes:
            t, n = sn.t, sn.n
            total += t * (t + 1) // 2 + (n - t) * t
        return total

    def solve_flops(self, nrhs: int = 1) -> int:
        """Flops of one forward (or backward) triangular solve."""
        from repro.util.flops import supernode_solve_flops

        return sum(supernode_solve_flops(sn.n, sn.t, nrhs) for sn in self.supernodes)

    def factor_flops(self) -> int:
        """Flops of the supernodal Cholesky factorization."""
        total = 0
        for sn in self.supernodes:
            t, n = sn.t, sn.n
            # Dense t x t Cholesky + triangular solve for the below block
            # + symmetric rank-t update of the (n-t) x (n-t) frontal part.
            total += t**3 // 3 + (n - t) * t * t + (n - t) ** 2 * t
        return total


def build_supernodal_tree(
    l_indptr: np.ndarray,
    l_indices: np.ndarray,
    partition: SupernodePartition,
) -> SupernodalTree:
    """Assemble the supernodal tree from the factor pattern and a partition.

    The row structure of a supernode is the union of its columns' patterns
    restricted to rows ``>= col_hi`` (for fundamental supernodes this equals
    the first column's pattern; the union form also supports relaxed
    amalgamation).  The tree parent of a supernode is the supernode owning
    its smallest below-row.
    """
    col_to_sn = partition.column_to_supernode()
    nodes: list[Supernode] = []
    parent = np.full(partition.nsuper, NO_PARENT, dtype=np.int64)
    for s in range(partition.nsuper):
        lo, hi = partition.columns(s)
        below: set[int] = set()
        for j in range(lo, hi):
            col_rows = l_indices[l_indptr[j] : l_indptr[j + 1]]
            for i in col_rows:
                if int(i) >= hi:
                    below.add(int(i))
        below_arr = np.asarray(sorted(below), dtype=np.int64)
        rows = np.concatenate([np.arange(lo, hi, dtype=np.int64), below_arr])
        nodes.append(Supernode(index=s, col_lo=lo, col_hi=hi, rows=rows))
        if below_arr.size:
            parent[s] = int(col_to_sn[below_arr[0]])
    return SupernodalTree(supernodes=nodes, parent=parent)
