"""One-call symbolic analysis driver.

``analyze(a, method=...)`` runs the full pre-numeric pipeline:

1. fill-reducing ordering (nested dissection by default);
2. permute ``A`` and compute the elimination tree;
3. postorder the tree and fold the postorder into the permutation (a
   postorder is pattern-equivalent, so fill is unchanged);
4. symbolic factorization (pattern of L);
5. supernode detection and supernodal-tree assembly.

The returned :class:`SymbolicFactor` carries everything the numeric phase
and the parallel mapping need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ordering.api import order as compute_order
from repro.ordering.permutation import Permutation
from repro.sparse.csc import SymCSC
from repro.symbolic.etree import elimination_tree
from repro.symbolic.pattern import symbolic_factor_pattern
from repro.symbolic.postorder import postorder, relabel_tree
from repro.symbolic.stree import SupernodalTree, build_supernodal_tree
from repro.symbolic.supernodes import SupernodePartition, find_supernodes


@dataclass(frozen=True)
class SymbolicFactor:
    """Output of symbolic analysis.

    Attributes
    ----------
    perm : total permutation (new <- old) including ordering and postorder.
    a_perm : the reordered matrix ``P A P^T``.
    etree_parent : elimination tree of ``a_perm`` (postordered).
    l_indptr, l_indices : CSC pattern of L (diagonal-first columns).
    partition : supernode partition of the columns.
    stree : the supernodal elimination tree.
    """

    perm: Permutation
    a_perm: SymCSC
    etree_parent: np.ndarray
    l_indptr: np.ndarray
    l_indices: np.ndarray
    partition: SupernodePartition
    stree: SupernodalTree

    @property
    def n(self) -> int:
        return self.a_perm.n

    @property
    def factor_nnz(self) -> int:
        return int(self.l_indptr[-1])


def analyze(
    a: SymCSC,
    *,
    method: str = "nested_dissection",
    relax: int = 0,
    order_kwargs: dict | None = None,
) -> SymbolicFactor:
    """Run ordering + symbolic factorization + supernode analysis on *a*."""
    perm0 = compute_order(a, method, **(order_kwargs or {}))
    a1 = a.permuted(perm0.perm)
    parent1 = elimination_tree(a1)
    post = postorder(parent1)
    if not np.array_equal(post.perm, np.arange(a.n)):
        # total[new] = perm0[post[new]]: postorder re-numbers the already
        # ordered variables.
        perm = Permutation(perm0.perm[post.perm])
        a2 = a1.permuted(post.perm)
        parent2 = relabel_tree(parent1, post)
    else:
        perm, a2, parent2 = perm0, a1, parent1
    l_indptr, l_indices = symbolic_factor_pattern(a2, parent2)
    counts = np.diff(l_indptr)
    partition = find_supernodes(parent2, counts, relax=relax)
    stree = build_supernodal_tree(l_indptr, l_indices, partition)
    return SymbolicFactor(
        perm=perm,
        a_perm=a2,
        etree_parent=parent2,
        l_indptr=l_indptr,
        l_indices=l_indices,
        partition=partition,
        stree=stree,
    )
