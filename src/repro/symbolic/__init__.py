"""Symbolic factorization.

Everything that can be computed from the *pattern* of the reordered matrix:

* the elimination tree (Liu's algorithm with path compression);
* its postordering (which makes supernode columns contiguous);
* the fill pattern of the Cholesky factor L;
* fundamental supernodes and the supernodal elimination tree, whose nodes
  are the dense trapezoidal blocks (width t, height n) that the paper's
  pipelined solvers operate on.

The one-call driver is :func:`analyze`.
"""

from repro.symbolic.etree import elimination_tree
from repro.symbolic.postorder import postorder, tree_levels, children_lists
from repro.symbolic.pattern import symbolic_factor_pattern
from repro.symbolic.supernodes import find_supernodes, SupernodePartition
from repro.symbolic.stree import SupernodalTree, Supernode, build_supernodal_tree
from repro.symbolic.analyze import SymbolicFactor, analyze
from repro.symbolic.stats import TreeStats, subtree_imbalance, tree_stats, work_per_processor

__all__ = [
    "elimination_tree",
    "postorder",
    "tree_levels",
    "children_lists",
    "symbolic_factor_pattern",
    "find_supernodes",
    "SupernodePartition",
    "SupernodalTree",
    "Supernode",
    "build_supernodal_tree",
    "SymbolicFactor",
    "analyze",
    "TreeStats",
    "subtree_imbalance",
    "tree_stats",
    "work_per_processor",
]
