"""Elimination tree computation (Liu 1990, ref [13] of the paper).

The elimination tree of an SPD matrix A has ``parent(j) = min { i > j :
L[i, j] != 0 }``.  Liu's algorithm computes it from the lower-triangular
pattern of A alone in near-linear time using path compression through
"virtual ancestors".
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import SymCSC

NO_PARENT = -1


def elimination_tree(a: SymCSC) -> np.ndarray:
    """Parent array of the elimination tree; roots have parent -1.

    Works column by column over the *upper* triangle — equivalently, for
    each column j it processes the rows i < j with A[j, i] != 0, which in
    our lower-triangle CSC storage are the columns i whose row list
    contains j.  To stay O(nnz * inverse-ackermann) we iterate the lower
    triangle rows directly: for column j of A (rows i >= j), entry (i, j)
    says "row i has a nonzero in column j", which is exactly what the
    classic algorithm consumes when it reaches column i.
    """
    n = a.n
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    ancestor = np.full(n, NO_PARENT, dtype=np.int64)

    # Build, for each row i, the list of columns j < i with A[i, j] != 0.
    # Our storage is exactly that: column j holds rows i >= j.
    row_cols: list[list[int]] = [[] for _ in range(n)]
    for j in range(n):
        rows, _ = a.column(j)
        for i in rows:
            if int(i) > j:
                row_cols[int(i)].append(j)

    for i in range(n):
        for j in row_cols[i]:
            # Walk from j to the root of its current virtual tree,
            # compressing paths, and attach the root under i.
            k = j
            while ancestor[k] != NO_PARENT and ancestor[k] != i:
                nxt = ancestor[k]
                ancestor[k] = i
                k = nxt
            if ancestor[k] == NO_PARENT:
                ancestor[k] = i
                parent[k] = i
    return parent


def is_valid_etree(parent: np.ndarray) -> bool:
    """Check parent[j] > j or -1, and acyclicity (testing helper)."""
    n = parent.shape[0]
    for j in range(n):
        p = int(parent[j])
        if p != NO_PARENT and not (j < p < n):
            return False
    return True
