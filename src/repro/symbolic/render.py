"""Rendering of elimination trees (Graphviz DOT and ASCII).

Produces the Figure 1(b)-style picture: the supernodal tree with each
node's column range and, optionally, its subtree-to-subcube processor set.
DOT output can be piped to ``dot -Tpng`` where Graphviz is available; the
ASCII form is what the examples print.
"""

from __future__ import annotations

from repro.mapping.subtree_subcube import ProcSet
from repro.symbolic.stree import SupernodalTree


def _node_label(stree: SupernodalTree, s: int, assign: list[ProcSet] | None) -> str:
    sn = stree.supernodes[s]
    cols = f"{sn.col_lo}" if sn.t == 1 else f"{sn.col_lo}..{sn.col_hi - 1}"
    label = f"sn{s}: cols {cols} (t={sn.t}, n={sn.n})"
    if assign is not None:
        ps = assign[s]
        label += f"\\nP{ps.start}" if ps.size == 1 else f"\\nP{ps.start}-P{ps.stop - 1}"
    return label


def to_dot(
    stree: SupernodalTree,
    *,
    assign: list[ProcSet] | None = None,
    graph_name: str = "etree",
) -> str:
    """Graphviz DOT source for the supernodal tree (root at top)."""
    lines = [f"digraph {graph_name} {{", "  rankdir=TB;", "  node [shape=box];"]
    for s in range(stree.nsuper):
        lines.append(f'  n{s} [label="{_node_label(stree, s, assign)}"];')
    for s in range(stree.nsuper):
        p = int(stree.parent[s])
        if p >= 0:
            lines.append(f"  n{p} -> n{s};")
    lines.append("}")
    return "\n".join(lines)


def to_ascii(
    stree: SupernodalTree,
    *,
    assign: list[ProcSet] | None = None,
    max_nodes: int = 200,
) -> str:
    """Indented ASCII rendering (roots first, children beneath)."""
    lines: list[str] = []
    count = 0

    def walk(s: int, depth: int) -> None:
        nonlocal count
        if count >= max_nodes:
            return
        count += 1
        lines.append("  " * depth + _node_label(stree, s, assign).replace("\\n", "  "))
        for c in sorted(stree.children[s], reverse=True):
            walk(c, depth + 1)

    for root in stree.roots():
        walk(root, 0)
    if count >= max_nodes:
        lines.append(f"... ({stree.nsuper - max_nodes} more supernodes)")
    return "\n".join(lines)
