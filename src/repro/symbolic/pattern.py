"""Fill pattern of the Cholesky factor L.

Uses the row-subtree characterisation (Liu): the nonzero columns of row i
of L are precisely the nodes on the paths in the elimination tree from each
``k`` with ``A[i, k] != 0, k < i`` up towards ``i``.  Traversing those paths
with marking touches every nonzero of L exactly once, so the whole symbolic
factorization is O(nnz(L)).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import SymCSC
from repro.symbolic.etree import NO_PARENT


def symbolic_factor_pattern(
    a: SymCSC, parent: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSC pattern (indptr, indices) of L, diagonal first, rows sorted.

    *parent* must be the elimination tree of *a* (in the same ordering).
    """
    n = a.n
    cols_of_row: list[list[int]] = [[] for _ in range(n)]
    # Precompute, for each row i, the columns k < i with A[i, k] != 0
    # (the transpose view of our lower-triangle CSC storage).
    row_lists: list[list[int]] = [[] for _ in range(n)]
    for k in range(n):
        rows, _ = a.column(k)
        for i in rows:
            if int(i) > k:
                row_lists[int(i)].append(k)

    mark = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        mark[i] = i
        for k in row_lists[i]:
            j = k
            while j != NO_PARENT and j < i and mark[j] != i:
                cols_of_row[i].append(j)
                mark[j] = i
                j = int(parent[j])

    counts = np.ones(n, dtype=np.int64)  # diagonal entries
    for i in range(n):
        for j in cols_of_row[i]:
            counts[j] += 1
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    fill = indptr[:-1].copy()
    for j in range(n):
        indices[fill[j]] = j  # diagonal leads each column
        fill[j] += 1
    for i in range(n):
        for j in sorted(cols_of_row[i]):
            indices[fill[j]] = i
            fill[j] += 1
    # Rows within a column arrive in increasing i automatically (outer loop
    # over i ascending), so each column is diagonal-first then sorted.
    return indptr, indices


def column_counts(a: SymCSC, parent: np.ndarray) -> np.ndarray:
    """nnz of each column of L (including the diagonal)."""
    indptr, _ = symbolic_factor_pattern(a, parent)
    return np.diff(indptr)
