"""Assembly of :class:`~repro.sparse.csc.SymCSC` matrices from various sources.

All builders normalise to the canonical storage contract: lower triangle
only, duplicate entries summed, row indices sorted within each column, and
an explicit (possibly zero) diagonal entry leading every column.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import SymCSC
from repro.util.validation import require


def from_triplets(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    *,
    coords: np.ndarray | None = None,
) -> SymCSC:
    """Build a symmetric matrix from COO triplets.

    Entries may be given in either triangle (or both); an entry ``(i, j)``
    is interpreted as the symmetric pair ``A[i,j] = A[j,i]``.  Duplicates
    are summed.  A unit diagonal entry is *not* added automatically, but a
    structural (zero-valued) diagonal slot is always present so downstream
    code can rely on ``indices[indptr[j]] == j``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    require(rows.shape == cols.shape == vals.shape, "triplet arrays must match in length")
    if rows.size and (rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= n):
        raise ValueError("triplet index out of range")

    # Map everything into the lower triangle.
    lo_r = np.maximum(rows, cols)
    lo_c = np.minimum(rows, cols)

    # Append a structural zero diagonal so every column has its pivot slot.
    diag = np.arange(n, dtype=np.int64)
    lo_r = np.concatenate([lo_r, diag])
    lo_c = np.concatenate([lo_c, diag])
    vals = np.concatenate([vals, np.zeros(n)])

    # Sort by (col, row) and sum duplicates.
    order = np.lexsort((lo_r, lo_c))
    lo_r, lo_c, vals = lo_r[order], lo_c[order], vals[order]
    keep = np.ones(lo_r.shape[0], dtype=bool)
    keep[1:] = (lo_r[1:] != lo_r[:-1]) | (lo_c[1:] != lo_c[:-1])
    group = np.cumsum(keep) - 1
    summed = np.zeros(int(group[-1]) + 1 if group.size else 0)
    np.add.at(summed, group, vals)
    lo_r, lo_c = lo_r[keep], lo_c[keep]

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, lo_c + 1, 1)
    np.cumsum(indptr, out=indptr)
    return SymCSC(n=n, indptr=indptr, indices=lo_r, data=summed, coords=coords)


def from_dense(dense: np.ndarray, *, tol: float = 0.0) -> SymCSC:
    """Build from a dense symmetric array, dropping entries with ``|a| <= tol``."""
    dense = np.asarray(dense, dtype=np.float64)
    require(dense.ndim == 2 and dense.shape[0] == dense.shape[1], "dense matrix must be square")
    if not np.allclose(dense, dense.T, atol=1e-12, rtol=1e-12):
        raise ValueError("matrix must be symmetric")
    n = dense.shape[0]
    rows, cols = np.nonzero(np.abs(np.tril(dense)) > tol)
    return from_triplets(n, rows, cols, dense[rows, cols])


def from_scipy(mat) -> SymCSC:
    """Build from any scipy sparse matrix (must be structurally symmetric)."""
    from scipy import sparse

    mat = sparse.csc_matrix(mat)
    require(mat.shape[0] == mat.shape[1], "matrix must be square")
    if (abs(mat - mat.T) > 1e-12 * max(1.0, abs(mat).max())).nnz != 0:
        raise ValueError("matrix must be symmetric")
    low = sparse.tril(mat).tocoo()
    return from_triplets(mat.shape[0], low.row, low.col, low.data)
