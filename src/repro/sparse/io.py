"""Matrix-Market-style I/O for symmetric sparse matrices.

Supports the ``coordinate real symmetric`` flavour of the MatrixMarket
exchange format, which is how the Harwell-Boeing test matrices the paper
uses (BCSSTK15 etc.) are distributed today.  We implement our own reader
and writer so the library has no runtime dependency on data files being in
scipy's supported variants, and so pattern-only files get deterministic
values.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.sparse.build import from_triplets
from repro.sparse.csc import SymCSC


def write_matrix_market(a: SymCSC, path: str | Path) -> None:
    """Write the lower triangle of *a* in MatrixMarket coordinate format."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real symmetric\n")
        fh.write(f"% written by repro; n={a.n} nnz_lower={a.nnz_lower}\n")
        fh.write(f"{a.n} {a.n} {a.nnz_lower}\n")
        for j in range(a.n):
            rows, vals = a.column(j)
            for i, v in zip(rows, vals):
                fh.write(f"{int(i) + 1} {j + 1} {float(v)!r}\n")


def read_matrix_market(path: str | Path) -> SymCSC:
    """Read a ``coordinate real|pattern symmetric`` MatrixMarket file."""
    path = Path(path)
    with path.open() as fh:
        return _parse_matrix_market(fh)


def _parse_matrix_market(fh: io.TextIOBase) -> SymCSC:
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise ValueError("not a MatrixMarket file (missing %%MatrixMarket header)")
    tokens = header.lower().split()
    if "coordinate" not in tokens:
        raise ValueError("only coordinate-format MatrixMarket files are supported")
    if "symmetric" not in tokens:
        raise ValueError("only symmetric MatrixMarket matrices are supported")
    pattern = "pattern" in tokens

    line = fh.readline()
    while line.startswith("%"):
        line = fh.readline()
    nrows, ncols, nnz = (int(x) for x in line.split())
    if nrows != ncols:
        raise ValueError(f"matrix must be square, got {nrows} x {ncols}")

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    for k in range(nnz):
        parts = fh.readline().split()
        rows[k] = int(parts[0]) - 1
        cols[k] = int(parts[1]) - 1
        if pattern:
            # Deterministic SPD-friendly values: -1 off-diagonal, row-degree
            # dominance is added below.
            vals[k] = 1.0 if rows[k] == cols[k] else -1.0
        else:
            vals[k] = float(parts[2])

    if pattern:
        # Enforce diagonal dominance so the pattern matrix is SPD.
        deg = np.zeros(nrows)
        off = rows != cols
        np.add.at(deg, rows[off], 1.0)
        np.add.at(deg, cols[off], 1.0)
        rows = np.concatenate([rows[off], np.arange(nrows)])
        cols = np.concatenate([cols[off], np.arange(nrows)])
        vals = np.concatenate([vals[off], deg + 1.0])
    return from_triplets(nrows, rows, cols, vals)
