"""Elementary sparse linear-algebra operations used for verification.

These are deliberately simple reference implementations — the production
paths all go through the supernodal kernels; these exist so that every
solver variant can be checked against an independent computation.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import LowerCSC, SymCSC


def matvec(a: SymCSC, x: np.ndarray) -> np.ndarray:
    """``A @ x`` for a symmetric matrix stored as a lower triangle.

    *x* may be a vector of length n or an ``(n, m)`` block of vectors.
    """
    x = np.asarray(x, dtype=np.float64)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    y = np.zeros_like(x)
    for j in range(a.n):
        rows, vals = a.column(j)
        # Lower-triangle contribution A[rows, j] * x[j]
        y[rows] += vals[:, None] * x[j]
        # Mirror (strictly lower) contribution A[j, rows] * x[rows]
        strict = rows != j
        if strict.any():
            y[j] += vals[strict] @ x[rows[strict]]
    return y[:, 0] if squeeze else y


def lower_triangular_matvec(l: LowerCSC, x: np.ndarray) -> np.ndarray:
    """``L @ x`` for a lower-triangular CSC matrix."""
    x = np.asarray(x, dtype=np.float64)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    y = np.zeros_like(x)
    for j in range(l.n):
        rows, vals = l.column(j)
        y[rows] += vals[:, None] * x[j]
    return y[:, 0] if squeeze else y


def residual_norm(a: SymCSC, x: np.ndarray, b: np.ndarray) -> float:
    """``||A x - b||_2`` (Frobenius norm for multiple right-hand sides)."""
    return float(np.linalg.norm(matvec(a, x) - b))


def relative_residual(a: SymCSC, x: np.ndarray, b: np.ndarray) -> float:
    """``||A x - b|| / ||b||`` with a floor to avoid division by zero."""
    denom = max(float(np.linalg.norm(b)), np.finfo(float).tiny)
    return residual_norm(a, x, b) / denom
