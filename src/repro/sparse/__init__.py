"""Sparse matrix substrate.

Defines the compressed-sparse-column structures used throughout the solver
(:class:`SymCSC` for the SPD input matrix, :class:`LowerCSC` for triangular
factors), triplet assembly, Matrix-Market-style I/O, and the workload
generators that stand in for the paper's Harwell-Boeing test matrices.
"""

from repro.sparse.csc import LowerCSC, SymCSC
from repro.sparse.build import from_triplets, from_dense, from_scipy
from repro.sparse.ops import (
    matvec,
    residual_norm,
    relative_residual,
    lower_triangular_matvec,
)
from repro.sparse.generators import (
    grid2d_laplacian,
    grid3d_laplacian,
    fe_mesh_2d,
    fe_mesh_3d,
    random_spd,
    model_problem,
)
from repro.sparse.io import read_matrix_market, write_matrix_market

__all__ = [
    "LowerCSC",
    "SymCSC",
    "from_triplets",
    "from_dense",
    "from_scipy",
    "matvec",
    "residual_norm",
    "relative_residual",
    "lower_triangular_matvec",
    "grid2d_laplacian",
    "grid3d_laplacian",
    "fe_mesh_2d",
    "fe_mesh_3d",
    "random_spd",
    "model_problem",
    "read_matrix_market",
    "write_matrix_market",
]
