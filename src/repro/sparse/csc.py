"""Compressed-sparse-column matrix structures.

Two concrete classes:

* :class:`SymCSC` — a symmetric matrix stored as its **lower triangle**
  (diagonal included) in CSC form.  This is the input to ordering, symbolic
  factorization, and numeric Cholesky.
* :class:`LowerCSC` — a lower-triangular matrix (the Cholesky factor ``L``)
  in CSC form with sorted row indices and the diagonal entry first in every
  column, which is what the simplicial solvers and the supernode extractor
  expect.

Both are immutable after construction; all mutation happens in the builders
(:mod:`repro.sparse.build`) and the factorization routines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_index, require


def _validate_csc(n: int, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray) -> None:
    require(indptr.ndim == 1 and indptr.shape[0] == n + 1, "indptr must have length n+1")
    require(indptr[0] == 0, "indptr[0] must be 0")
    require(bool(np.all(np.diff(indptr) >= 0)), "indptr must be non-decreasing")
    nnz = int(indptr[-1])
    require(indices.shape[0] == nnz, f"indices length {indices.shape[0]} != nnz {nnz}")
    require(data.shape[0] == nnz, f"data length {data.shape[0]} != nnz {nnz}")
    if nnz and (indices.min() < 0 or indices.max() >= n):
        raise ValueError("row index out of range")


@dataclass(frozen=True)
class SymCSC:
    """Symmetric sparse matrix, lower triangle stored in CSC.

    Attributes
    ----------
    n : int
        Matrix order.
    indptr, indices, data :
        Standard CSC arrays over the lower triangle; within each column the
        row indices are sorted ascending and the first entry of column ``j``
        is the diagonal ``(j, j)``.
    coords : optional ``(n, d)`` float array
        Geometric coordinates of the graph vertices, when the matrix comes
        from a mesh generator.  Used by the geometric nested-dissection
        ordering; ``None`` for purely algebraic matrices.
    """

    n: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    coords: np.ndarray | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        _validate_csc(self.n, self.indptr, self.indices, self.data)
        for j in range(min(self.n, 1)):  # cheap spot check; full check in builders
            if self.indptr[j] < self.indptr[j + 1]:
                require(int(self.indices[self.indptr[j]]) == j, "diagonal must lead each column")

    # -- basic queries -------------------------------------------------
    @property
    def nnz_lower(self) -> int:
        """Stored nonzeros (lower triangle incl. diagonal)."""
        return int(self.indptr[-1])

    @property
    def nnz(self) -> int:
        """Nonzeros of the full symmetric matrix."""
        return 2 * self.nnz_lower - self.n

    def column(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Row indices and values of lower-triangle column *j*."""
        check_index(j, self.n, "column")
        lo, hi = int(self.indptr[j]), int(self.indptr[j + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def diagonal(self) -> np.ndarray:
        """Dense vector of diagonal entries."""
        return self.data[self.indptr[:-1]].copy()

    # -- conversions ---------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Full dense symmetric matrix (small matrices / testing only)."""
        out = np.zeros((self.n, self.n))
        for j in range(self.n):
            rows, vals = self.column(j)
            out[rows, j] = vals
            out[j, rows] = vals
        return out

    def to_scipy(self):
        """Full symmetric matrix as ``scipy.sparse.csc_matrix``."""
        from scipy import sparse

        lower = sparse.csc_matrix(
            (self.data, self.indices, self.indptr), shape=(self.n, self.n)
        )
        strict = sparse.tril(lower, k=-1)
        return (lower + strict.T).tocsc()

    def pattern_full(self) -> tuple[np.ndarray, np.ndarray]:
        """CSC (indptr, indices) of the *full* symmetric pattern.

        Orderings and the symbolic phase need the whole adjacency structure,
        not just the lower half.
        """
        from scipy import sparse

        full = self.to_scipy()
        full.sort_indices()
        return full.indptr.astype(np.int64), full.indices.astype(np.int64)

    def permuted(self, perm: np.ndarray) -> "SymCSC":
        """Return ``P A P^T`` where row/col ``perm[k]`` of A becomes k of the result.

        *perm* is given in "new <- old" convention: ``perm[new] = old``.
        """
        from repro.sparse.build import from_triplets

        perm = np.asarray(perm, dtype=np.int64)
        require(perm.shape == (self.n,), "perm must have length n")
        inv = np.empty(self.n, dtype=np.int64)
        inv[perm] = np.arange(self.n)
        rows, cols, vals = [], [], []
        for j in range(self.n):
            r, v = self.column(j)
            rows.append(inv[r])
            cols.append(np.full(r.shape, inv[j], dtype=np.int64))
            vals.append(v)
        coords = self.coords[perm] if self.coords is not None else None
        return from_triplets(
            self.n,
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
            coords=coords,
        )


@dataclass(frozen=True)
class LowerCSC:
    """Lower-triangular sparse matrix in CSC with diagonal-first columns."""

    n: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        _validate_csc(self.n, self.indptr, self.indices, self.data)

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    def column(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        check_index(j, self.n, "column")
        lo, hi = int(self.indptr[j]), int(self.indptr[j + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n, self.n))
        for j in range(self.n):
            rows, vals = self.column(j)
            out[rows, j] = vals
        return out

    def to_scipy(self):
        from scipy import sparse

        return sparse.csc_matrix((self.data, self.indices, self.indptr), shape=(self.n, self.n))

    def transpose_dense(self) -> np.ndarray:
        return self.to_dense().T
