"""Harwell-Boeing (HB) format reader and writer.

The paper's test matrices (BCSSTK15, BCSSTK31, ...) are distributed in the
Harwell-Boeing exchange format: a fixed-width, Fortran-formatted header of
4-5 lines followed by column pointers, row indices, and (optionally)
values, each printed with a Fortran edit descriptor such as ``(13I6)`` or
``(5E15.8)``.  This module implements enough of the format to read the
``RSA``/``PSA`` (real/pattern symmetric assembled) variants those
collections use, plus a writer for round-tripping.

Reference: Duff, Grimes & Lewis, "Sparse Matrix Test Problems",
ACM TOMS 15(1), 1989.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from repro.sparse.build import from_triplets
from repro.sparse.csc import SymCSC
from repro.util.validation import require

_FMT_RE = re.compile(
    r"\(\s*(?P<count>\d+)\s*(?P<kind>[IEFDG])\s*(?P<width>\d+)(?:\.(?P<prec>\d+))?\s*\)",
    re.IGNORECASE,
)


def parse_fortran_format(fmt: str) -> tuple[int, str, int]:
    """Parse an edit descriptor like ``(13I6)`` or ``(5E15.8)``.

    Returns ``(fields_per_line, kind, field_width)``.  Repeat-group forms
    like ``(1P,5E15.8)`` are normalised by dropping scale factors.
    """
    cleaned = fmt.strip().upper().replace("1P,", "").replace("1P", "")
    m = _FMT_RE.search(cleaned)
    if not m:
        raise ValueError(f"unsupported Fortran format {fmt!r}")
    return int(m.group("count")), m.group("kind"), int(m.group("width"))


def _read_fixed(lines: list[str], start: int, total: int, fmt: str) -> tuple[list[str], int]:
    """Read *total* fixed-width fields starting at line *start*."""
    per_line, _, width = parse_fortran_format(fmt)
    out: list[str] = []
    row = start
    while len(out) < total:
        if row >= len(lines):
            raise ValueError("unexpected end of HB file")
        line = lines[row].rstrip("\n")
        for k in range(per_line):
            if len(out) >= total:
                break
            field = line[k * width : (k + 1) * width].strip()
            if field:
                out.append(field)
        row += 1
    return out, row


def read_harwell_boeing(path: str | Path) -> SymCSC:
    """Read an RSA/PSA Harwell-Boeing file into a :class:`SymCSC`."""
    lines = Path(path).read_text().splitlines()
    require(len(lines) >= 4, "HB file too short")

    # line 2: TOTCRD PTRCRD INDCRD VALCRD RHSCRD (the last may be absent)
    card_counts = [int(tok) for tok in lines[1].split()]
    require(len(card_counts) >= 4, "malformed HB card-count line")
    ptrcrd, indcrd, valcrd = card_counts[1], card_counts[2], card_counts[3]

    # line 3: MXTYPE NROW NCOL NNZERO (NELTVL)
    head = lines[2].split()
    mxtype = head[0].upper()
    nrow, ncol, nnz = int(head[1]), int(head[2]), int(head[3])
    require(nrow == ncol, "HB matrix must be square")
    require(len(mxtype) == 3, f"bad MXTYPE {mxtype!r}")
    require(mxtype[1] == "S", "only symmetric (xSx) HB matrices are supported")
    require(mxtype[0] in ("R", "P"), "only real or pattern HB matrices are supported")
    require(mxtype[2] == "A", "only assembled HB matrices are supported")
    pattern = mxtype[0] == "P"

    # line 4: PTRFMT INDFMT VALFMT RHSFMT — fixed 16-char fields
    fmt_line = lines[3]
    ptrfmt = fmt_line[0:16].strip()
    indfmt = fmt_line[16:32].strip()
    valfmt = fmt_line[32:52].strip() if not pattern else ""

    data_start = 4
    # optional RHS header line when RHSCRD > 0
    if len(card_counts) >= 5 and card_counts[4] > 0:
        data_start = 5

    ptr_fields, row_after = _read_fixed(lines, data_start, ncol + 1, ptrfmt)
    require(row_after - data_start == ptrcrd, "pointer card count mismatch")
    ind_fields, row_after2 = _read_fixed(lines, row_after, nnz, indfmt)
    require(row_after2 - row_after == indcrd, "index card count mismatch")
    indptr = np.array([int(x) - 1 for x in ptr_fields], dtype=np.int64)
    indices = np.array([int(x) - 1 for x in ind_fields], dtype=np.int64)

    if pattern:
        vals = None
    else:
        val_fields, row_after3 = _read_fixed(lines, row_after2, nnz, valfmt)
        require(row_after3 - row_after2 == valcrd, "value card count mismatch")
        vals = np.array([float(x.replace("D", "E").replace("d", "e")) for x in val_fields])

    cols = np.repeat(np.arange(ncol, dtype=np.int64), np.diff(indptr))
    if vals is None:
        # pattern matrices get deterministic SPD values (-1 off-diagonal,
        # dominance-enforcing diagonal), like the MatrixMarket reader
        off = indices != cols
        deg = np.zeros(nrow)
        np.add.at(deg, indices[off], 1.0)
        np.add.at(deg, cols[off], 1.0)
        rows_all = np.concatenate([indices[off], np.arange(nrow)])
        cols_all = np.concatenate([cols[off], np.arange(nrow)])
        vals_all = np.concatenate([-np.ones(int(off.sum())), deg + 1.0])
        return from_triplets(nrow, rows_all, cols_all, vals_all)
    return from_triplets(nrow, indices, cols, vals)


def write_harwell_boeing(a: SymCSC, path: str | Path, *, title: str = "repro matrix", key: str = "REPRO") -> None:
    """Write the lower triangle of *a* as an RSA Harwell-Boeing file."""
    n = a.n
    nnz = a.nnz_lower
    ptrfmt, indfmt, valfmt = "(13I6)", "(13I6)", "(5E15.8)"

    def fixed(values: list[str], per_line: int, width: int) -> list[str]:
        out = []
        for k in range(0, len(values), per_line):
            out.append("".join(v.rjust(width) for v in values[k : k + per_line]))
        return out

    ptr_lines = fixed([str(int(x) + 1) for x in a.indptr], 13, 6)
    ind_lines = fixed([str(int(x) + 1) for x in a.indices], 13, 6)
    val_lines = fixed([f"{float(v):.8E}" for v in a.data], 5, 15)
    total = len(ptr_lines) + len(ind_lines) + len(val_lines)

    with Path(path).open("w") as fh:
        fh.write(f"{title:<72s}{key:<8s}\n")
        fh.write(
            f"{total:14d}{len(ptr_lines):14d}{len(ind_lines):14d}{len(val_lines):14d}\n"
        )
        fh.write(f"{'RSA':<14s}{n:14d}{n:14d}{nnz:14d}{0:14d}\n")
        fh.write(f"{ptrfmt:<16s}{indfmt:<16s}{valfmt:<20s}\n")
        for line in ptr_lines + ind_lines + val_lines:
            fh.write(line + "\n")
