"""Workload generators.

The paper's analysis (Section 3) covers coefficient matrices whose graphs
are two- or three-dimensional *neighbourhood graphs* — finite-difference and
finite-element discretisations.  These generators produce exactly that
class, plus synthetic stand-ins for the Harwell-Boeing matrices the paper
benchmarks (see ``repro.experiments.matrices``):

* :func:`grid2d_laplacian` — 5-point stencil on a k x k grid (model 2-D).
* :func:`grid3d_laplacian` — 7-point stencil on a k x k x k grid (model 3-D,
  the CUBE35 analogue).
* :func:`fe_mesh_2d` / :func:`fe_mesh_3d` — 9- / 27-point stencils with
  jittered vertex coordinates and randomised element weights, which mimic
  the denser connectivity and irregularity of structural FE matrices
  (the BCSSTK / HSCT / COPTER analogues).
* :func:`random_spd` — an algebraic (non-geometric) control workload.

All matrices are made symmetric positive definite by strict diagonal
dominance, so Cholesky factorization never needs pivoting (matching the
paper's SPD setting).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.build import from_triplets
from repro.sparse.csc import SymCSC
from repro.util.validation import check_positive


def _assemble_spd(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    coords: np.ndarray | None,
    *,
    shift: float = 1.0,
) -> SymCSC:
    """Assemble off-diagonal triplets and add a dominance-enforcing diagonal."""
    absrow = np.zeros(n)
    np.add.at(absrow, rows, np.abs(vals))
    np.add.at(absrow, cols, np.abs(vals))
    diag = absrow + shift
    rows = np.concatenate([rows, np.arange(n)])
    cols = np.concatenate([cols, np.arange(n)])
    vals = np.concatenate([vals, diag])
    return from_triplets(n, rows, cols, vals, coords=coords)


def grid2d_laplacian(k: int) -> SymCSC:
    """5-point Laplacian on a k x k grid: N = k^2, SPD, with coordinates."""
    check_positive(k, "grid dimension k")
    idx = np.arange(k * k).reshape(k, k)
    right = (idx[:, :-1].ravel(), idx[:, 1:].ravel())
    down = (idx[:-1, :].ravel(), idx[1:, :].ravel())
    rows = np.concatenate([right[0], down[0]])
    cols = np.concatenate([right[1], down[1]])
    vals = -np.ones(rows.shape[0])
    xx, yy = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
    coords = np.column_stack([xx.ravel(), yy.ravel()]).astype(np.float64)
    return _assemble_spd(k * k, rows, cols, vals, coords)


def grid3d_laplacian(k: int) -> SymCSC:
    """7-point Laplacian on a k x k x k grid: N = k^3, SPD, with coordinates."""
    check_positive(k, "grid dimension k")
    idx = np.arange(k**3).reshape(k, k, k)
    pairs = [
        (idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()),
        (idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()),
        (idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()),
    ]
    rows = np.concatenate([p[0] for p in pairs])
    cols = np.concatenate([p[1] for p in pairs])
    vals = -np.ones(rows.shape[0])
    xx, yy, zz = np.meshgrid(np.arange(k), np.arange(k), np.arange(k), indexing="ij")
    coords = np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()]).astype(np.float64)
    return _assemble_spd(k**3, rows, cols, vals, coords)


def fe_mesh_2d(k: int, *, seed: int = 0, jitter: float = 0.25) -> SymCSC:
    """9-point (Moore-neighbourhood) FE-like mesh on a k x k grid.

    Randomised negative element weights and jittered coordinates give the
    irregular, denser-per-row structure typical of 2-D structural matrices
    such as BCSSTK15 while staying in the 2-D neighbourhood-graph class.
    """
    check_positive(k, "grid dimension k")
    rng = np.random.default_rng(seed)
    idx = np.arange(k * k).reshape(k, k)
    pairs = [
        (idx[:, :-1].ravel(), idx[:, 1:].ravel()),
        (idx[:-1, :].ravel(), idx[1:, :].ravel()),
        (idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()),
        (idx[:-1, 1:].ravel(), idx[1:, :-1].ravel()),
    ]
    rows = np.concatenate([p[0] for p in pairs])
    cols = np.concatenate([p[1] for p in pairs])
    vals = -rng.uniform(0.5, 1.5, rows.shape[0])
    xx, yy = np.meshgrid(np.arange(k, dtype=float), np.arange(k, dtype=float), indexing="ij")
    coords = np.column_stack([xx.ravel(), yy.ravel()])
    coords += rng.uniform(-jitter, jitter, coords.shape)
    return _assemble_spd(k * k, rows, cols, vals, coords)


def fe_mesh_3d(k: int, *, seed: int = 0, jitter: float = 0.2) -> SymCSC:
    """Denser 3-D FE-like mesh: 7-point plus in-plane diagonals, randomised.

    The 3-D analogue of :func:`fe_mesh_2d`; a stand-in for irregular 3-D
    structural matrices such as COPTER2 / HSCT21954.
    """
    check_positive(k, "grid dimension k")
    rng = np.random.default_rng(seed)
    idx = np.arange(k**3).reshape(k, k, k)
    pairs = [
        (idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()),
        (idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()),
        (idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()),
        (idx[:, :-1, :-1].ravel(), idx[:, 1:, 1:].ravel()),
        (idx[:-1, :, :-1].ravel(), idx[1:, :, 1:].ravel()),
        (idx[:-1, :-1, :].ravel(), idx[1:, 1:, :].ravel()),
    ]
    rows = np.concatenate([p[0] for p in pairs])
    cols = np.concatenate([p[1] for p in pairs])
    vals = -rng.uniform(0.5, 1.5, rows.shape[0])
    xx, yy, zz = np.meshgrid(
        np.arange(k, dtype=float), np.arange(k, dtype=float), np.arange(k, dtype=float),
        indexing="ij",
    )
    coords = np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])
    coords += rng.uniform(-jitter, jitter, coords.shape)
    return _assemble_spd(k**3, rows, cols, vals, coords)


def anisotropic_laplacian(k: int, *, epsilon: float = 0.01) -> SymCSC:
    """5-point Laplacian with strong coupling in x and weak in y.

    The classic anisotropic model problem: separators aligned with the
    weak direction are much "cheaper" numerically, which exercises the
    orderings' robustness to non-uniform edge weights (structure — and
    hence the parallel algorithms — is identical to the isotropic grid).
    """
    check_positive(k, "grid dimension k")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    idx = np.arange(k * k).reshape(k, k)
    right = (idx[:, :-1].ravel(), idx[:, 1:].ravel())
    down = (idx[:-1, :].ravel(), idx[1:, :].ravel())
    rows = np.concatenate([right[0], down[0]])
    cols = np.concatenate([right[1], down[1]])
    vals = np.concatenate(
        [-np.ones(right[0].shape[0]), -np.full(down[0].shape[0], epsilon)]
    )
    xx, yy = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
    coords = np.column_stack([xx.ravel(), yy.ravel()]).astype(np.float64)
    return _assemble_spd(k * k, rows, cols, vals, coords)


def graded_mesh_2d(k: int, *, grading: float = 2.0, seed: int = 0) -> SymCSC:
    """2-D mesh with vertices geometrically concentrated toward one corner.

    Models adaptive-refinement meshes: the coordinate distribution is
    x -> x^grading, which makes geometric median cuts produce unbalanced
    vertex counts per side — a stress test for the separator balance the
    subtree-to-subcube mapping relies on.
    """
    check_positive(k, "grid dimension k")
    if grading < 1.0:
        raise ValueError(f"grading must be >= 1, got {grading}")
    base = fe_mesh_2d(k, seed=seed, jitter=0.0)
    coords = base.coords / max(k - 1, 1)
    graded = coords**grading * max(k - 1, 1)
    return SymCSC(
        n=base.n,
        indptr=base.indptr,
        indices=base.indices,
        data=base.data,
        coords=graded,
    )


def random_spd(n: int, *, density: float = 0.01, seed: int = 0) -> SymCSC:
    """Random symmetric positive definite matrix with ~density off-diag fill.

    Purely algebraic (no coordinates): exercises the non-geometric ordering
    paths (minimum degree, BFS-separator nested dissection).
    """
    check_positive(n, "n")
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    m = max(n - 1, int(density * n * (n - 1) / 2))
    rows = rng.integers(0, n, m)
    cols = rng.integers(0, n, m)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    # A random spanning path keeps the graph connected.
    path = np.arange(n - 1)
    rows = np.concatenate([rows, path])
    cols = np.concatenate([cols, path + 1])
    vals = -rng.uniform(0.1, 1.0, rows.shape[0])
    return _assemble_spd(n, rows, cols, vals, None)


def model_problem(name: str, size: int, *, seed: int = 0) -> SymCSC:
    """Dispatch a named model problem.

    ``name`` is one of ``grid2d``, ``grid3d``, ``fe2d``, ``fe3d``,
    ``random``; ``size`` is the grid edge (grids/meshes) or n (random).
    """
    dispatch = {
        "grid2d": lambda: grid2d_laplacian(size),
        "aniso2d": lambda: anisotropic_laplacian(size),
        "graded2d": lambda: graded_mesh_2d(size, seed=seed),
        "grid3d": lambda: grid3d_laplacian(size),
        "fe2d": lambda: fe_mesh_2d(size, seed=seed),
        "fe3d": lambda: fe_mesh_3d(size, seed=seed),
        "random": lambda: random_spd(size, seed=seed),
    }
    try:
        return dispatch[name]()
    except KeyError:
        raise ValueError(f"unknown model problem {name!r}; options: {sorted(dispatch)}") from None
