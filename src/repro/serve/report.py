"""Observability for the solve service: per-batch and aggregate stats.

Every flushed batch leaves one :class:`BatchRecord` on the service's
:class:`ServeReport` — what triggered it, how wide it was, how long its
requests queued, how long the solve took.  The aggregates answer the
economic question the serving layer exists for: what batch width did the
coalescer actually achieve, and how many columns per second did that buy
(the paper's Figures 7–8 argument, measured online).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class BatchRecord:
    """One executed batch: composition, queueing, and solve cost."""

    key: str
    requests: int
    columns: int
    trigger: str  # "full" | "deadline" | "idle" | "drain"
    wait_max: float   # longest queue wait in the batch (service-clock seconds)
    wait_mean: float  # mean queue wait across the batch's requests
    exec_seconds: float  # wall-clock seconds of the packed solve

    @property
    def columns_per_second(self) -> float:
        return self.columns / self.exec_seconds if self.exec_seconds > 0 else float("inf")


@dataclass
class ServeReport:
    """Lifetime statistics of one :class:`~repro.serve.service.SolveService`."""

    batches: list[BatchRecord] = field(default_factory=list)
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    peak_queue_columns: int = 0

    # ------------------------------------------------------------ aggregates
    @property
    def nbatches(self) -> int:
        return len(self.batches)

    @property
    def total_columns(self) -> int:
        return sum(b.columns for b in self.batches)

    @property
    def mean_batch_width(self) -> float:
        return self.total_columns / self.nbatches if self.nbatches else 0.0

    @property
    def exec_seconds(self) -> float:
        return sum(b.exec_seconds for b in self.batches)

    @property
    def columns_per_second(self) -> float:
        """Amortised solve throughput: total columns over total solve time."""
        secs = self.exec_seconds
        return self.total_columns / secs if secs > 0 else float("inf")

    @property
    def trigger_counts(self) -> dict[str, int]:
        return dict(Counter(b.trigger for b in self.batches))

    @property
    def wait_max(self) -> float:
        return max((b.wait_max for b in self.batches), default=0.0)

    def snapshot(self) -> "ServeReport":
        """An independent copy safe to read while the service keeps running."""
        return replace(self, batches=list(self.batches))

    def summary(self) -> str:
        """Human-readable digest (the CLI demo and benchmarks print this)."""
        triggers = ", ".join(
            f"{name}={count}" for name, count in sorted(self.trigger_counts.items())
        ) or "none"
        lines = [
            f"requests : {self.submitted} submitted, {self.completed} completed, "
            f"{self.failed} failed, {self.cancelled} cancelled, "
            f"{self.rejected} rejected",
            f"batches  : {self.nbatches} ({triggers})",
            f"widths   : mean {self.mean_batch_width:.2f} columns/batch, "
            f"peak queue {self.peak_queue_columns} columns",
            f"waits    : max {self.wait_max * 1e3:.3f} ms in queue",
            f"solve    : {self.total_columns} columns in "
            f"{self.exec_seconds * 1e3:.3f} ms "
            f"({self.columns_per_second:.0f} columns/s amortised)",
        ]
        return "\n".join(lines)
