"""The request coalescer: a deterministic batching state machine.

A stream of independent solve requests against the same cached factor is
the repo's "heavy traffic" workload, and the paper's Figures 7–8 argument
says its throughput lives or dies on NRHS width: one 16-column fused
solve costs far less than sixteen 1-column solves, because every
per-level gather/scatter/divide is paid once instead of sixteen times.
The :class:`Coalescer` performs that aggregation online — it queues
pending requests per factor and decides, from nothing but the injected
clock, when a batch should form:

``full``
    a factor's pending columns reach ``max_batch`` — flush immediately,
    taking whole requests (a request's columns always stay in one batch)
    up to ``max_batch`` columns;
``deadline``
    the oldest pending request has waited ``max_wait`` — flush whatever
    is there, so latency under light load is bounded;
``idle``
    no new request has arrived for ``idle_wait`` (< ``max_wait``) — the
    stream has gone quiet, so waiting longer cannot widen the batch and
    would only add latency;
``drain``
    shutdown — flush unconditionally.

Backpressure is a bound on total queued *columns* across all factors:
:meth:`Coalescer.offer` raises :class:`QueueFullError` instead of
queueing without limit, and the caller answers the client immediately.

The coalescer owns no lock and starts no thread: it is a plain state
machine whose every transition happens inside a caller-held lock
(:class:`repro.serve.service.SolveService` serializes access under its
condition variable).  That, plus the injectable clock, is what makes the
flush policy unit-testable to the exact simulated microsecond.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.serve.clock import Clock


class QueueFullError(RuntimeError):
    """Raised by :meth:`Coalescer.offer` when the column queue is full."""


@dataclass
class SolveRequest:
    """One queued solve: a right-hand-side block and the future awaiting it.

    ``rhs`` is the caller's ``(n, width)`` float64 copy; ``squeeze``
    records whether the caller passed a plain vector and should get one
    back.  ``arrival`` is stamped by :meth:`Coalescer.offer` from the
    injected clock, so queue-wait accounting is deterministic under a
    fake clock.
    """

    key: str
    rhs: np.ndarray
    squeeze: bool
    future: Future
    seq: int
    arrival: float = 0.0

    @property
    def width(self) -> int:
        return int(self.rhs.shape[1])


@dataclass(frozen=True)
class Batch:
    """A flushed group of same-factor requests, ready to solve as one block."""

    key: str
    requests: tuple[SolveRequest, ...]
    trigger: str  # "full" | "deadline" | "idle" | "drain"
    formed_at: float

    @property
    def columns(self) -> int:
        return sum(r.width for r in self.requests)

    @property
    def waits(self) -> list[float]:
        """Per-request queue waits (seconds on the service clock)."""
        return [self.formed_at - r.arrival for r in self.requests]


@dataclass
class _KeyQueue:
    """Per-factor FIFO plus the arrival bookkeeping the flush rules read."""

    requests: deque = field(default_factory=deque)
    columns: int = 0
    last_arrival: float = 0.0


class Coalescer:
    """Packs pending requests into batches under the four flush rules.

    Parameters
    ----------
    clock :
        The time source; every arrival stamp and deadline comparison
        uses it, nothing else.
    max_batch :
        Flush a factor's queue as soon as its pending columns reach
        this; also the widest batch ever formed and the widest single
        request :meth:`offer` accepts.
    max_wait :
        Upper bound on any request's queue wait before its batch is
        flushed regardless of width.
    idle_wait :
        Flush when no request (for that factor) has arrived for this
        long; defaults to ``max_wait / 4``, pass ``0`` to flush the
        moment the dispatcher sees an empty arrival gap, or ``None`` to
        disable the idle rule entirely.
    max_queue :
        Backpressure bound on total queued columns across all factors;
        defaults to ``16 * max_batch``.
    """

    def __init__(
        self,
        *,
        clock: Clock,
        max_batch: int = 16,
        max_wait: float = 2e-3,
        idle_wait: float | None = -1.0,
        max_queue: int | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if idle_wait is not None and idle_wait == -1.0:
            idle_wait = max_wait / 4.0
        if idle_wait is not None and idle_wait < 0:
            raise ValueError(f"idle_wait must be >= 0 or None, got {idle_wait}")
        self._clock = clock
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.idle_wait = None if idle_wait is None else float(idle_wait)
        self.max_queue = int(max_queue) if max_queue is not None else 16 * self.max_batch
        if self.max_queue < self.max_batch:
            raise ValueError(
                f"max_queue ({self.max_queue}) must be >= max_batch "
                f"({self.max_batch}) or a full batch could never form"
            )
        self._queues: dict[str, _KeyQueue] = {}
        self._pending_columns = 0
        self.offered = 0
        self.rejected = 0
        self.peak_columns = 0

    # ------------------------------------------------------------- intake
    def offer(self, request: SolveRequest) -> None:
        """Queue *request*, stamping its arrival from the clock.

        Raises :class:`QueueFullError` when the request would push the
        total queued columns past ``max_queue`` — the caller surfaces
        that to the client instead of queueing unboundedly.
        """
        w = request.width
        if w > self.max_batch:
            raise ValueError(
                f"request is {w} columns wide but max_batch is "
                f"{self.max_batch}; a request must fit in one batch"
            )
        if self._pending_columns + w > self.max_queue:
            self.rejected += 1
            raise QueueFullError(
                f"solve queue is full ({self._pending_columns} of "
                f"{self.max_queue} columns pending)"
            )
        now = self._clock.now()
        request.arrival = now
        kq = self._queues.setdefault(request.key, _KeyQueue())
        kq.requests.append(request)
        kq.columns += w
        kq.last_arrival = now
        self._pending_columns += w
        self.offered += 1
        self.peak_columns = max(self.peak_columns, self._pending_columns)

    # ------------------------------------------------------------- state
    @property
    def pending_columns(self) -> int:
        return self._pending_columns

    @property
    def pending_requests(self) -> int:
        return sum(len(kq.requests) for kq in self._queues.values())

    @property
    def empty(self) -> bool:
        return self._pending_columns == 0

    # ------------------------------------------------------------- flush
    def _take(self, key: str, trigger: str, now: float) -> Batch:
        kq = self._queues[key]
        taken: list[SolveRequest] = []
        cols = 0
        while kq.requests and cols + kq.requests[0].width <= self.max_batch:
            req = kq.requests.popleft()
            cols += req.width
            taken.append(req)
        kq.columns -= cols
        self._pending_columns -= cols
        return Batch(key=key, requests=tuple(taken), trigger=trigger, formed_at=now)

    def _due(self, kq: _KeyQueue, now: float) -> str | None:
        """Which non-full rule (if any) has fired for this queue at *now*."""
        if not kq.requests:
            return None
        deadline_at = kq.requests[0].arrival + self.max_wait
        idle_at = (
            kq.last_arrival + self.idle_wait if self.idle_wait is not None else None
        )
        if idle_at is not None and idle_at <= now and idle_at <= deadline_at:
            return "idle"
        if deadline_at <= now:
            return "deadline"
        if idle_at is not None and idle_at <= now:
            return "idle"
        return None

    def take_ready(self, now: float | None = None) -> Batch | None:
        """The next batch due at *now* (clock time when omitted), if any.

        Full queues flush first; otherwise the deadline/idle rules are
        checked per factor in registration order — a deterministic scan,
        so the same arrival schedule always forms the same batches.
        """
        if now is None:
            now = self._clock.now()
        for key, kq in self._queues.items():
            if kq.columns >= self.max_batch:
                return self._take(key, "full", now)
        for key, kq in self._queues.items():
            trigger = self._due(kq, now)
            if trigger is not None:
                return self._take(key, trigger, now)
        return None

    def take_drain(self, now: float | None = None) -> Batch | None:
        """The next batch regardless of deadlines (shutdown draining)."""
        if now is None:
            now = self._clock.now()
        for key, kq in self._queues.items():
            if kq.requests:
                return self._take(key, "drain", now)
        return None

    def next_deadline(self) -> float | None:
        """The earliest future instant a flush rule can fire, or ``None``.

        ``None`` means "nothing pending — sleep until an arrival".  A
        full queue reports the current instant (flush is already due).
        """
        soonest: float | None = None
        for kq in self._queues.values():
            if not kq.requests:
                continue
            if kq.columns >= self.max_batch:
                return self._clock.now()
            at = kq.requests[0].arrival + self.max_wait
            if self.idle_wait is not None:
                at = min(at, kq.last_arrival + self.idle_wait)
            soonest = at if soonest is None else min(soonest, at)
        return soonest
