"""The request-coalescing solve service.

:class:`SolveService` is the serving layer over the cached execution
backends: register a factorized system once, then :meth:`submit`
single- or few-column solve requests from any thread and receive
futures.  A dispatcher packs pending requests for the same factor into
one multi-column batch (:class:`~repro.serve.batcher.Coalescer`) and
runs it as a single solve on the configured backend — so a stream of
width-1 requests is served at multi-RHS throughput while every caller
still sees an ordinary single-solve answer.

Coalescing is *observably transparent*: the canonical kernels are
column-slice invariant (:mod:`repro.numeric.kernels`), so column ``i``
of a packed batch is bitwise identical to the standalone NRHS=1 solve
of the same right-hand side.  Batching changes when the answer arrives,
never what it is.

Two execution modes share all of the above:

* **threaded** (production) — a real clock drives a dispatcher thread
  that sleeps on the coalescer's next deadline and wakes on arrivals;
* **manual-pump** (deterministic) — a :class:`~repro.serve.clock.FakeClock`
  cannot put a thread to sleep, so the service starts none; the test
  advances the clock and calls :meth:`pump`/:meth:`drain` itself, making
  every flush decision reproducible to the exact simulated instant.

Registration reuses the weakref caches of :mod:`repro.exec.cache`
(plans, level programs, prepared factors, packed panels), so the
service adds no per-request preparation cost on top of the cached
backends.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.numeric.supernodal import SupernodalFactor
from repro.numeric.trisolve import as_rhs_matrix
from repro.serve.batcher import Batch, Coalescer, SolveRequest
from repro.serve.clock import Clock, MonotonicClock
from repro.serve.report import BatchRecord, ServeReport

#: Backends a service may execute batches on (all bitwise-identical).
SERVE_BACKENDS = ("serial", "threads", "fused")


@dataclass(frozen=True)
class _Entry:
    """One registered system: its size and a packed-block solve function."""

    name: str
    n: int
    solve: Callable[[np.ndarray], np.ndarray]


def _solve_fn(
    backend: str,
    factor: SupernodalFactor,
    perm,
    *,
    certify: bool,
    workers: int | None,
) -> Callable[[np.ndarray], np.ndarray]:
    """Build the packed-batch solve path and warm every cache it uses."""
    from repro.exec import (
        fused_panels_for,
        plan_for,
        prepare_factor,
        program_for,
        solve_exec,
        solve_fused,
    )
    from repro.numeric.trisolve import solve_supernodal

    prepare_factor(factor)  # validates the diagonal once, at registration
    if backend == "fused":
        program = program_for(factor.stree, certify=certify)
        fused_panels_for(factor)
        core = lambda bmat: solve_fused(factor, bmat, program=program)
    elif backend == "threads":
        plan = plan_for(factor.stree, certify=certify)
        core = lambda bmat: solve_exec(factor, bmat, workers=workers, plan=plan)
    else:  # serial
        core = lambda bmat: solve_supernodal(factor, bmat)
    if perm is None:
        return core
    return lambda bmat: perm.unapply_to_vector(core(perm.apply_to_vector(bmat)))


class SolveService:
    """Thread-safe, request-coalescing front end over the cached backends.

    Parameters
    ----------
    backend :
        How packed batches execute: ``"fused"`` (default), ``"threads"``
        or ``"serial"`` — all bitwise-identical, so the choice is purely
        a throughput knob.
    max_batch, max_wait, idle_wait, max_queue :
        The coalescer's flush policy and backpressure bound (see
        :class:`~repro.serve.batcher.Coalescer`).
    clock :
        The time source.  A real clock (default) starts a dispatcher
        thread; a clock with ``drives_threads=False`` (the fake clock)
        selects manual-pump mode.
    workers :
        Thread count for ``backend="threads"`` batches.
    """

    def __init__(
        self,
        *,
        backend: str = "fused",
        max_batch: int = 16,
        max_wait: float = 2e-3,
        idle_wait: float | None = -1.0,
        max_queue: int | None = None,
        clock: Clock | None = None,
        workers: int | None = None,
    ):
        if backend not in SERVE_BACKENDS:
            raise ValueError(
                f"backend must be one of {SERVE_BACKENDS}, got {backend!r}"
            )
        if workers is not None and backend != "threads":
            raise ValueError("workers is only meaningful with backend='threads'")
        self.backend = backend
        self.workers = workers
        self._clock = clock if clock is not None else MonotonicClock()
        self._cond = threading.Condition()
        self._coalescer = Coalescer(
            clock=self._clock,
            max_batch=max_batch,
            max_wait=max_wait,
            idle_wait=idle_wait,
            max_queue=max_queue,
        )
        self._entries: dict[str, _Entry] = {}
        self._report = ServeReport()
        self._seq = 0
        self._stopping = False
        self._closed = False
        self.manual = not self._clock.drives_threads
        self._thread: threading.Thread | None = None
        if not self.manual:
            self._thread = threading.Thread(
                target=self._loop, name="repro-solve-service", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, *, timeout: float | None = 30.0) -> None:
        """Stop accepting requests, drain every pending one, stop the thread.

        Draining answers — it never abandons: each remaining request is
        flushed in a ``trigger="drain"`` batch and its future resolved.
        Idempotent; safe to call from any thread.
        """
        with self._cond:
            if self._closed:
                return
            self._stopping = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():  # pragma: no cover - defensive
                raise RuntimeError("solve service dispatcher failed to stop")
        else:
            self.drain()
        with self._cond:
            self._closed = True

    # ------------------------------------------------------------ registry
    def register(self, name: str, target) -> str:
        """Register a factorized system under *name* and warm its caches.

        *target* is either a prepared
        :class:`~repro.core.solver.ParallelSparseSolver` (requests and
        answers are in the original ordering, exactly like
        ``solver.solve``) or a bare
        :class:`~repro.numeric.supernodal.SupernodalFactor` (requests
        are in factor ordering).  Returns *name*, the key to submit
        against.
        """
        from repro.core.solver import ParallelSparseSolver

        if isinstance(target, ParallelSparseSolver):
            sym, factor, _ = target._require_prepared()
            solve = _solve_fn(
                self.backend, factor, sym.perm,
                certify=target.verify, workers=self.workers,
            )
            n = factor.n
        elif isinstance(target, SupernodalFactor):
            solve = _solve_fn(
                self.backend, target, None, certify=False, workers=self.workers
            )
            n = target.n
        else:
            raise TypeError(
                "register() takes a prepared ParallelSparseSolver or a "
                f"SupernodalFactor, got {type(target).__name__}"
            )
        with self._cond:
            if self._stopping or self._closed:
                raise RuntimeError("cannot register on a closed service")
            if name in self._entries:
                raise ValueError(f"key {name!r} is already registered")
            self._entries[name] = _Entry(name=name, n=n, solve=solve)
        return name

    @property
    def keys(self) -> tuple[str, ...]:
        with self._cond:
            return tuple(self._entries)

    # ------------------------------------------------------------ submit
    def submit(self, b: np.ndarray, *, key: str = "default") -> Future:
        """Queue one solve request; returns a future for its solution.

        *b* is a length-``n`` vector or an ``(n, w)`` block with
        ``w <= max_batch``; the future resolves to the same shape.  The
        result is bitwise identical to the standalone solve of *b* on
        the service's backend, whatever batch it lands in.  Raises
        :class:`~repro.serve.batcher.QueueFullError` under backpressure
        and :class:`RuntimeError` once the service is closing.
        """
        with self._cond:
            entry = self._entries.get(key)
            if entry is None:
                raise KeyError(
                    f"no system registered under {key!r} "
                    f"(registered: {sorted(self._entries)})"
                )
        rhs, squeeze = as_rhs_matrix(b, entry.n)
        fut: Future = Future()
        with self._cond:
            if self._stopping or self._closed:
                raise RuntimeError("solve service is closed to new requests")
            self._seq += 1
            request = SolveRequest(
                key=key, rhs=rhs, squeeze=squeeze, future=fut, seq=self._seq
            )
            self._coalescer.offer(request)  # may raise QueueFullError
            self._report.submitted += 1
            self._report.peak_queue_columns = max(
                self._report.peak_queue_columns, self._coalescer.peak_columns
            )
            self._cond.notify_all()
        return fut

    # ------------------------------------------------------------ pumping
    def pump(self) -> Batch | None:
        """Manual mode: form and execute the next due batch, if any.

        Returns the executed batch (its futures are resolved on return)
        or ``None`` when no flush rule has fired at the fake clock's
        current instant.
        """
        self._require_manual("pump")
        with self._cond:
            batch = self._coalescer.take_ready()
        if batch is not None:
            self._execute(batch)
        return batch

    def pump_until_idle(self) -> int:
        """Manual mode: pump every batch due *now*; returns how many ran."""
        count = 0
        while self.pump() is not None:
            count += 1
        return count

    def drain(self) -> int:
        """Manual mode: flush and execute everything pending, deadlines or not."""
        self._require_manual("drain")
        count = 0
        while True:
            with self._cond:
                batch = self._coalescer.take_drain()
            if batch is None:
                return count
            self._execute(batch)
            count += 1

    def _require_manual(self, what: str) -> None:
        if self._thread is not None:
            raise RuntimeError(
                f"{what}() is for manual-pump services (fake clock); this "
                "service runs a dispatcher thread"
            )

    # ------------------------------------------------------------ dispatcher
    def _loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    batch = self._coalescer.take_ready()
                    if batch is not None:
                        break
                    if self._stopping:
                        batch = self._coalescer.take_drain()
                        if batch is None:
                            return
                        break
                    deadline = self._coalescer.next_deadline()
                    timeout = (
                        None
                        if deadline is None
                        else max(0.0, deadline - self._clock.now())
                    )
                    self._clock.wait(self._cond, timeout)
            self._execute(batch)

    # ------------------------------------------------------------ execution
    def _execute(self, batch: Batch) -> None:
        """Solve one packed batch and resolve its futures (lock not held)."""
        entry = self._entries[batch.key]
        packed = np.concatenate([r.rhs for r in batch.requests], axis=1)
        t0 = time.perf_counter()
        error: BaseException | None = None
        try:
            solution = entry.solve(packed)
        except BaseException as exc:
            error = exc
        exec_seconds = time.perf_counter() - t0

        completed = failed = cancelled = 0
        col = 0
        for request in batch.requests:
            if not request.future.set_running_or_notify_cancel():
                cancelled += 1
                col += request.width
                continue
            if error is not None:
                request.future.set_exception(error)
                failed += 1
                continue
            block = solution[:, col:col + request.width].copy()
            col += request.width
            request.future.set_result(block[:, 0] if request.squeeze else block)
            completed += 1

        waits = batch.waits
        record = BatchRecord(
            key=batch.key,
            requests=len(batch.requests),
            columns=batch.columns,
            trigger=batch.trigger,
            wait_max=max(waits),
            wait_mean=sum(waits) / len(waits),
            exec_seconds=exec_seconds,
        )
        with self._cond:
            self._report.batches.append(record)
            self._report.completed += completed
            self._report.failed += failed
            self._report.cancelled += cancelled
            self._report.rejected = self._coalescer.rejected
            self._report.peak_queue_columns = max(
                self._report.peak_queue_columns, self._coalescer.peak_columns
            )

    # ------------------------------------------------------------ stats
    def report(self) -> ServeReport:
        """A consistent snapshot of the service's lifetime statistics."""
        with self._cond:
            self._report.rejected = self._coalescer.rejected
            self._report.peak_queue_columns = max(
                self._report.peak_queue_columns, self._coalescer.peak_columns
            )
            return self._report.snapshot()

    @property
    def pending_columns(self) -> int:
        with self._cond:
            return self._coalescer.pending_columns
