"""Request-coalescing serving layer over the cached execution backends.

The paper's multi-RHS economics (Figures 7–8) say triangular-solve
throughput comes from width: one ``(n, 16)`` solve costs far less than
sixteen ``(n, 1)`` solves.  This package applies that argument to the
ROADMAP's serving scenario — a stream of independent single-RHS
requests — by coalescing pending requests for the same cached factor
into one fused multi-column solve, transparently: the canonical kernels
are column-slice invariant, so every caller's answer is bitwise
identical to a standalone solve of their request.

Public surface:

* :class:`SolveService` — register factors, ``submit()`` requests from
  any thread, receive futures; batches flush on ``max_batch`` fill, a
  ``max_wait`` deadline, an idle arrival gap, or shutdown drain, with
  bounded-queue backpressure.
* :class:`Coalescer` / :class:`Batch` / :class:`SolveRequest` — the
  deterministic batching state machine.
* :class:`Clock` / :class:`MonotonicClock` / :class:`FakeClock` — the
  injectable time source; the fake clock runs the service in
  manual-pump mode for sleep-free, flake-free tests.
* :class:`ServeReport` / :class:`BatchRecord` — per-batch and aggregate
  serving statistics.
* :exc:`QueueFullError` — the backpressure signal.

``ParallelSparseSolver.serving()`` wires a solver into a service as a
context manager; ``python -m repro serve-demo`` exercises the whole
stack from the command line.
"""

from repro.serve.batcher import Batch, Coalescer, QueueFullError, SolveRequest
from repro.serve.clock import Clock, FakeClock, MonotonicClock
from repro.serve.report import BatchRecord, ServeReport
from repro.serve.service import SERVE_BACKENDS, SolveService

__all__ = [
    "SERVE_BACKENDS",
    "Batch",
    "BatchRecord",
    "Clock",
    "Coalescer",
    "FakeClock",
    "MonotonicClock",
    "QueueFullError",
    "ServeReport",
    "SolveRequest",
    "SolveService",
]
