"""Injectable time sources for the solve service.

Every timing decision the coalescer makes — "has the oldest request
waited out ``max_wait``?", "has the arrival stream gone idle?", "how
long may the dispatcher sleep?" — goes through a :class:`Clock`, never
through :mod:`time` directly.  That single seam is what makes a
timing-dependent concurrent subsystem deterministically testable:

* :class:`MonotonicClock` is the production clock — ``time.monotonic``
  for ``now()``, ``Condition.wait`` for the dispatcher's interruptible
  sleep.
* :class:`FakeClock` is the test clock — time is a number that moves
  only when the test calls :meth:`FakeClock.advance`.  It refuses to
  ``wait`` (``drives_threads`` is false), which forces the service into
  manual-pump mode: the test advances time and pumps the coalescer
  explicitly, so every flush decision happens at an exact, reproducible
  instant.  No test built on it contains a single ``time.sleep``.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Monotonic time plus an interruptible wait, as one injectable seam.

    ``drives_threads`` declares whether the clock can put a real
    dispatcher thread to sleep: true for wall-clock time, false for
    simulated time (a thread sleeping on simulated time could only be
    woken by the thread that is asleep).
    """

    drives_threads: bool

    def now(self) -> float:
        """Current monotonic time in seconds."""
        ...

    def wait(self, cond: threading.Condition, timeout: float | None) -> bool:
        """Sleep on *cond* (which the caller holds) up to *timeout* seconds.

        Returns true when woken by a notify, false on timeout — the
        ``Condition.wait`` contract.
        """
        ...


class MonotonicClock:
    """The production clock: real monotonic time, real condition waits."""

    drives_threads = True

    def now(self) -> float:
        return time.monotonic()

    def wait(self, cond: threading.Condition, timeout: float | None) -> bool:
        return cond.wait(timeout)


class FakeClock:
    """Simulated time for deterministic tests: advances only on demand.

    ``now()`` returns the simulated instant; :meth:`advance` moves it
    forward (never backward — time stays monotonic even when faked).
    ``wait`` raises: a service built on a fake clock must run in
    manual-pump mode, where the test itself decides when the coalescer
    looks at the clock.
    """

    drives_threads = False

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move simulated time forward by *dt* seconds; returns the new now."""
        if dt < 0:
            raise ValueError(f"cannot advance a monotonic clock by {dt}")
        self._now += float(dt)
        return self._now

    def wait(self, cond: threading.Condition, timeout: float | None) -> bool:
        raise RuntimeError(
            "FakeClock cannot block a dispatcher thread — run the service "
            "in manual-pump mode (pump()/drain()) and advance() the clock "
            "from the test instead"
        )
