"""One-shot reproduction report.

``generate_report()`` runs a compact version of every experiment and
renders a single text document — the quick way to audit the reproduction
on a new machine without going through pytest-benchmark.  The full-size
artefacts remain the domain of ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from repro.analysis.models import figure5_table
from repro.experiments.fig5 import isoefficiency_experiment
from repro.experiments.fig7 import fig7_rows, format_fig7
from repro.experiments.fig8 import fig8_series, format_fig8
from repro.machine.presets import cray_t3d


@dataclass(frozen=True)
class ReportOptions:
    """Scope knobs for :func:`generate_report`."""

    matrices: tuple[str, ...] = ("bcsstk15", "cube35")
    ps: tuple[int, ...] = (1, 16, 64)
    nrhs_list: tuple[int, ...] = (1, 10, 30)
    iso_ps: tuple[int, ...] = (64, 128, 256, 512)
    include_fig8: bool = True


def generate_report(options: ReportOptions | None = None) -> str:
    """Run the experiment battery and render the findings."""
    opt = options or ReportOptions()
    buf = io.StringIO()
    w = buf.write

    w("REPRODUCTION REPORT — Gupta & Kumar, SC'95 parallel sparse trisolve\n")
    spec = cray_t3d()
    w(
        f"simulated machine: t_flop={spec.t_flop:.2e}s t_s={spec.t_s:.1e}s "
        f"t_w={spec.t_w:.1e}s blas3={spec.blas3_factor}\n\n"
    )

    w("== Figure 7: per-matrix solve/factor table ==\n")
    for matrix in opt.matrices:
        rows = fig7_rows(matrix, ps=opt.ps, nrhs_list=opt.nrhs_list, check=True)
        w(format_fig7(rows) + "\n")
        worst = max(r.residual for r in rows)
        w(f"  worst residual across the table: {worst:.2e}\n\n")

    if opt.include_fig8:
        w("== Figure 8: MFLOPS vs p ==\n")
        for matrix in opt.matrices:
            series = fig8_series(matrix, ps=opt.ps, nrhs_list=opt.nrhs_list)
            w(format_fig8(series) + "\n\n")

    w("== Figure 5: isoefficiency ==\n")
    for r in figure5_table():
        w(
            f"  {r.matrix_type:<10} {r.partitioning:<24} solve {r.solve_iso:<11} "
            f"factor {r.factor_iso}\n"
        )
    for kind in ("2d", "3d"):
        solve = isoefficiency_experiment(kind=kind, system="trisolve-model", ps=opt.iso_ps)
        factor = isoefficiency_experiment(kind=kind, system="factor-model", ps=opt.iso_ps)
        w(
            f"  measured ({kind}): trisolve W ~ p^{solve.exponent:.2f} (paper 2.0), "
            f"factor W ~ p^{factor.exponent:.2f} (paper 1.5)\n"
        )

    w("\n== Section 4: redistribution ==\n")
    ratios = []
    for matrix in opt.matrices:
        for r in fig7_rows(matrix, ps=opt.ps[-1:], nrhs_list=(1,), check=False):
            ratios.append(r.redistribution_ratio)
            w(f"  {matrix}: redistribute/FBsolve = {r.redistribution_ratio:.3f}\n")
    w(
        f"  max {max(ratios):.3f}, mean {np.mean(ratios):.3f} "
        f"(paper bound: <= 0.9, average ~0.5)\n"
    )
    return buf.getvalue()
