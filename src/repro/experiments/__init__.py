"""Experiment drivers: one per table/figure of the paper's evaluation.

The registry (:mod:`repro.experiments.matrices`) defines synthetic
analogues of the five Harwell-Boeing test matrices (scaled to pure-Python
runtimes; see DESIGN.md Section 2), and each ``figN`` module regenerates
the corresponding artefact.  The ``benchmarks/`` tree calls into these
drivers so that `pytest benchmarks/ --benchmark-only` reproduces the
whole evaluation.
"""

from repro.experiments.matrices import WORKLOADS, Workload, get_workload, prepared
from repro.experiments.fig7 import fig7_rows, format_fig7
from repro.experiments.fig8 import fig8_series, format_fig8
from repro.experiments.fig5 import isoefficiency_experiment
from repro.experiments.scaling import scaling_law_experiment

__all__ = [
    "WORKLOADS",
    "Workload",
    "get_workload",
    "prepared",
    "fig7_rows",
    "format_fig7",
    "fig8_series",
    "format_fig8",
    "isoefficiency_experiment",
    "scaling_law_experiment",
]
