"""Figure 7: the paper's main results table.

For each test matrix and processor count, report factorization time and
MFLOPS, the 2-D -> 1-D redistribution time, and FBsolve time / MFLOPS for
a range of right-hand-side counts — the same rows the paper prints for
BCSSTK15, BCSSTK31, HSCT21954, CUBE35 and COPTER2 on the T3D.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.matrices import get_workload, prepared
from repro.machine.spec import MachineSpec

DEFAULT_NRHS = (1, 5, 10, 20, 30)


@dataclass(frozen=True)
class Fig7Row:
    """One (matrix, p, nrhs) cell of the Figure 7 table."""

    matrix: str
    paper_name: str
    n: int
    p: int
    nrhs: int
    factor_seconds: float
    factor_mflops: float
    redistribute_seconds: float
    fbsolve_seconds: float
    fbsolve_mflops: float
    redistribution_ratio: float
    residual: float


def fig7_rows(
    matrix: str,
    *,
    ps: tuple[int, ...] = (1, 16, 64),
    nrhs_list: tuple[int, ...] = DEFAULT_NRHS,
    spec: MachineSpec | None = None,
    seed: int = 7,
    check: bool = True,
) -> list[Fig7Row]:
    """Compute the Figure 7 rows for one workload."""
    wl = get_workload(matrix)
    rows: list[Fig7Row] = []
    rng = np.random.default_rng(seed)
    for p in ps:
        solver = prepared(matrix, p, spec=spec) if spec is None else prepared(matrix, p, spec=spec)
        bmat = rng.normal(size=(solver.a.n, max(nrhs_list)))
        for nrhs in nrhs_list:
            _, rep = solver.solve(bmat[:, :nrhs], check=check)
            rows.append(
                Fig7Row(
                    matrix=matrix,
                    paper_name=wl.paper_name,
                    n=solver.a.n,
                    p=p,
                    nrhs=nrhs,
                    factor_seconds=rep.factor_seconds,
                    factor_mflops=rep.factor_mflops,
                    redistribute_seconds=rep.redistribute_seconds,
                    fbsolve_seconds=rep.fbsolve_seconds,
                    fbsolve_mflops=rep.fbsolve_mflops,
                    redistribution_ratio=rep.redistribution_ratio,
                    residual=rep.residual if rep.residual is not None else float("nan"),
                )
            )
    return rows


def format_fig7(rows: list[Fig7Row]) -> str:
    """Render rows in the layout of the paper's Figure 7."""
    if not rows:
        return "(no rows)"
    out: list[str] = []
    head = rows[0]
    out.append(
        f"{head.paper_name} analogue '{head.matrix}': N = {head.n}"
    )
    for p in sorted({r.p for r in rows}):
        sub = [r for r in rows if r.p == p]
        r0 = sub[0]
        out.append(
            f"  p = {p}   Factorization time = {r0.factor_seconds:.4f} s   "
            f"Factorization MFLOPS = {r0.factor_mflops:.1f}   "
            f"Time to redistribute L = {r0.redistribute_seconds:.4f} s"
        )
        out.append("    NRHS           " + "".join(f"{r.nrhs:>10d}" for r in sub))
        out.append(
            "    FBsolve time   " + "".join(f"{r.fbsolve_seconds:10.4f}" for r in sub)
        )
        out.append(
            "    FBsolve MFLOPS " + "".join(f"{r.fbsolve_mflops:10.1f}" for r in sub)
        )
        out.append(
            "    redist/solve   " + "".join(f"{r.redistribution_ratio:10.2f}" for r in sub)
        )
    return "\n".join(out)
