"""Equations 1-2: measured parallel time against the closed-form models.

Sweeps N and p on model 2-D / 3-D meshes, records the simulated FBsolve
time, and compares its shape with the paper's T_P expressions: the work
term ``~ W/p`` must dominate at small p, the ``O(sqrt N)`` / ``O(N^{2/3})``
pipeline-drain term at medium p, and the ``O(p)`` startup term at large p.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.models import sparse_trisolve_model_2d, sparse_trisolve_model_3d
from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d
from repro.machine.spec import MachineSpec
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse.generators import grid2d_laplacian, grid3d_laplacian


@dataclass(frozen=True)
class ScalingPoint:
    kind: str
    n: int
    p: int
    measured_seconds: float
    model_seconds: float


def scaling_law_experiment(
    *,
    kind: str = "2d",
    sizes: tuple[int, ...] = (16, 24, 32, 48),
    ps: tuple[int, ...] = (1, 4, 16, 64),
    spec: MachineSpec | None = None,
    seed: int = 12,
) -> list[ScalingPoint]:
    """Measured vs modeled T_P over an (N, p) grid."""
    spec = spec or cray_t3d()
    rng = np.random.default_rng(seed)
    model = sparse_trisolve_model_2d if kind == "2d" else sparse_trisolve_model_3d
    build = grid2d_laplacian if kind == "2d" else grid3d_laplacian
    out: list[ScalingPoint] = []
    for size in sizes:
        a = build(size)
        base = ParallelSparseSolver(a, p=1, spec=spec).prepare()
        b = rng.normal(size=(a.n, 1))
        for p in ps:
            solver = ParallelSparseSolver(a, p=p, spec=spec)
            solver.symbolic, solver.factor = base.symbolic, base.factor
            solver.assign = subtree_to_subcube(base.symbolic.stree, p)
            _, rep = solver.solve(b, check=False)
            out.append(
                ScalingPoint(
                    kind=kind,
                    n=a.n,
                    p=p,
                    measured_seconds=rep.fbsolve_seconds,
                    model_seconds=2.0 * model(spec, a.n, p),
                )
            )
    return out
