"""Figure 8: FBsolve MFLOPS versus processor count, one curve per NRHS.

Reproduces the four panels of the paper's Figure 8 (BCSSTK15, BCSSTK31,
CUBE35, COPTER2): performance grows with p and the curves for larger NRHS
lie strictly higher and scale further (BLAS-3 + amortised index math).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.matrices import prepared
from repro.machine.spec import MachineSpec

DEFAULT_PS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
DEFAULT_NRHS = (1, 5, 10, 20, 30)


@dataclass(frozen=True)
class Fig8Series:
    """One curve: MFLOPS as a function of p for a fixed NRHS."""

    matrix: str
    nrhs: int
    ps: tuple[int, ...]
    mflops: tuple[float, ...]
    seconds: tuple[float, ...]


def fig8_series(
    matrix: str,
    *,
    ps: tuple[int, ...] = DEFAULT_PS,
    nrhs_list: tuple[int, ...] = DEFAULT_NRHS,
    spec: MachineSpec | None = None,
    seed: int = 8,
) -> list[Fig8Series]:
    """Compute the Figure 8 curves for one workload."""
    rng = np.random.default_rng(seed)
    series: list[Fig8Series] = []
    per_nrhs: dict[int, list[tuple[float, float]]] = {nr: [] for nr in nrhs_list}
    for p in ps:
        solver = prepared(matrix, p, spec=spec)
        bmat = rng.normal(size=(solver.a.n, max(nrhs_list)))
        for nrhs in nrhs_list:
            _, rep = solver.solve(bmat[:, :nrhs], check=False)
            per_nrhs[nrhs].append((rep.fbsolve_mflops, rep.fbsolve_seconds))
    for nrhs in nrhs_list:
        vals = per_nrhs[nrhs]
        series.append(
            Fig8Series(
                matrix=matrix,
                nrhs=nrhs,
                ps=tuple(ps),
                mflops=tuple(v[0] for v in vals),
                seconds=tuple(v[1] for v in vals),
            )
        )
    return series


def format_fig8(series: list[Fig8Series]) -> str:
    """ASCII rendering of the Figure 8 panel for one matrix."""
    if not series:
        return "(no series)"
    out = [f"{series[0].matrix}: FBsolve MFLOPS vs p"]
    out.append("    p      " + "".join(f"  NRHS={s.nrhs:<5d}" for s in series))
    for i, p in enumerate(series[0].ps):
        out.append(f"  {p:5d}    " + "".join(f"{s.mflops[i]:10.1f}  " for s in series))
    return "\n".join(out)
