"""Synthetic analogues of the paper's five test matrices.

The paper benchmarks on Harwell-Boeing / NASA matrices that we cannot ship
(and whose full sizes are impractical for a pure-Python multifrontal
factorization).  Each analogue preserves the *class* that drives the
paper's analysis — 2-D vs 3-D neighbourhood graph, regular vs irregular —
at a documented scale factor.  The scalability conclusions depend on the
class and on N, not on the specific matrix.

==============  =========  ========================  ==============================
paper matrix    paper N    analogue                  class
==============  =========  ========================  ==============================
BCSSTK15        3 948      fe_mesh_2d(63)  N=3969    2-D structural (same N!)
BCSSTK31        35 588     fe_mesh_3d(13)  N=2197    3-D irregular shell (scaled)
HSCT21954       21 954     fe_mesh_3d(12)  N=1728    3-D irregular aero (scaled)
CUBE35          42 875     grid3d(14)      N=2744    3-D regular grid (scaled)
COPTER2         55 476     fe_mesh_3d(13)' N=2197    3-D irregular rotor (scaled)
==============  =========  ========================  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d
from repro.machine.spec import MachineSpec
from repro.sparse.csc import SymCSC
from repro.sparse.generators import fe_mesh_2d, fe_mesh_3d, grid2d_laplacian, grid3d_laplacian


@dataclass(frozen=True)
class Workload:
    """One registered test matrix analogue."""

    name: str
    paper_name: str
    paper_n: int
    kind: str  # "2d" | "3d"
    build: Callable[[], SymCSC]

    def matrix(self) -> SymCSC:
        return self.build()


WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in [
        Workload("bcsstk15", "BCSSTK15", 3948, "2d", lambda: fe_mesh_2d(63, seed=15)),
        Workload("bcsstk31", "BCSSTK31", 35588, "3d", lambda: fe_mesh_3d(13, seed=31)),
        Workload("hsct21954", "HSCT21954", 21954, "3d", lambda: fe_mesh_3d(12, seed=219)),
        Workload("cube35", "CUBE35", 42875, "3d", lambda: grid3d_laplacian(14)),
        Workload("copter2", "COPTER2", 55476, "3d", lambda: fe_mesh_3d(13, seed=2)),
        # Smaller controls used by fast tests and the quickstart example.
        Workload("grid2d-small", "(model)", 0, "2d", lambda: grid2d_laplacian(16)),
        Workload("grid3d-small", "(model)", 0, "3d", lambda: grid3d_laplacian(7)),
    ]
}


def get_workload(name: str) -> Workload:
    """Look up a registered workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; options: {sorted(WORKLOADS)}") from None


# ---------------------------------------------------------------- caching
# Symbolic analysis + numeric factorization are independent of p, the
# machine spec, and NRHS; cache them so sweeps only pay for simulation.
_PREPARED: dict[str, ParallelSparseSolver] = {}


def prepared(
    name: str, p: int, *, spec: MachineSpec | None = None, b: int = 8, variant: str = "column"
) -> ParallelSparseSolver:
    """A ready-to-solve solver for workload *name* on *p* processors.

    The expensive, p-independent phases (ordering, symbolic, numeric
    factorization) are computed once per workload and shared.
    """
    spec = spec or cray_t3d()
    base = _PREPARED.get(name)
    if base is None:
        wl = get_workload(name)
        base = ParallelSparseSolver(wl.matrix(), p=1, spec=spec, b=b).prepare()
        _PREPARED[name] = base
    solver = ParallelSparseSolver(base.a, p=p, spec=spec, b=b, variant=variant)
    solver.symbolic = base.symbolic
    solver.factor = base.factor
    from repro.mapping.subtree_subcube import subtree_to_subcube

    solver.assign = subtree_to_subcube(base.symbolic.stree, p)
    return solver


def clear_cache() -> None:
    """Drop all cached factorizations (mainly for tests)."""
    _PREPARED.clear()
