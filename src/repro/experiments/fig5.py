"""Figure 5 / Equations 5-9: measured isoefficiency of the triangular solvers.

The paper proves the sparse triangular solvers have isoefficiency
``W ~ p^2`` (for both 2-D and 3-D neighbourhood-graph matrices) while the
companion factorization scales as ``p^{3/2}``.  This experiment measures
both empirically on the simulated machine: for each p it grows the model
problem until efficiency reaches a target, then fits ``W ~ p^k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.isoefficiency import fit_growth_exponent, isoefficiency_curve
from repro.core.factor_model import parallel_factor_time, serial_factor_time
from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d
from repro.machine.spec import MachineSpec
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse.generators import grid2d_laplacian, grid3d_laplacian


@dataclass(frozen=True)
class IsoefficiencyResult:
    """Empirical isoefficiency of one system (solver or factorization)."""

    system: str
    kind: str  # 2d | 3d
    target_efficiency: float
    points: list[tuple[int, float, float]]  # (p, W, achieved E)
    exponent: float


_SOLVER_CACHE: dict[tuple[str, int], ParallelSparseSolver] = {}


def _prepared_model(kind: str, size: int) -> ParallelSparseSolver:
    key = (kind, size)
    solver = _SOLVER_CACHE.get(key)
    if solver is None:
        a = grid2d_laplacian(size) if kind == "2d" else grid3d_laplacian(size)
        solver = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        _SOLVER_CACHE[key] = solver
    return solver


def _trisolve_runner(kind: str, spec: MachineSpec, seed: int = 5):
    rng = np.random.default_rng(seed)

    def runner(size: int, p: int) -> tuple[float, float, float]:
        base = _prepared_model(kind, size)
        stree = base.symbolic.stree
        w = float(stree.solve_flops(1)) * 2.0
        b = rng.normal(size=(base.a.n, 1))
        # Serial time: simulate on one processor.
        s1 = ParallelSparseSolver(base.a, p=1, spec=spec)
        s1.symbolic, s1.factor = base.symbolic, base.factor
        s1.assign = subtree_to_subcube(stree, 1)
        _, rep1 = s1.solve(b, check=False)
        sp = ParallelSparseSolver(base.a, p=p, spec=spec)
        sp.symbolic, sp.factor = base.symbolic, base.factor
        sp.assign = subtree_to_subcube(stree, p)
        _, repp = sp.solve(b, check=False)
        return w, rep1.fbsolve_seconds, repp.fbsolve_seconds

    return runner


def _factor_runner(kind: str, spec: MachineSpec):
    def runner(size: int, p: int) -> tuple[float, float, float]:
        base = _prepared_model(kind, size)
        stree = base.symbolic.stree
        w = float(stree.factor_flops())
        ts = serial_factor_time(spec, stree)
        tp = parallel_factor_time(spec, stree, subtree_to_subcube(stree, p))
        return w, ts, tp

    return runner


def _trisolve_model_runner(kind: str, spec: MachineSpec):
    """Closed-form Equation 1/2 runner — converges to the asymptotic
    exponent at processor counts far beyond what simulation reaches."""
    from repro.analysis.models import sparse_trisolve_model_2d, sparse_trisolve_model_3d

    model = sparse_trisolve_model_2d if kind == "2d" else sparse_trisolve_model_3d

    def runner(size: int, p: int) -> tuple[float, float, float]:
        n = size * size if kind == "2d" else size**3
        import math

        w = 2.0 * n * math.log2(max(n, 2)) if kind == "2d" else 2.0 * float(n) ** (4.0 / 3.0)
        return w, model(spec, n, 1), model(spec, n, p)

    return runner


def _factor_model_runner(kind: str, spec: MachineSpec):
    """Closed-form 2-D-partitioned factorization model (Figure 5 row):
    W = O(N^{3/2}) (2-D) or O(N^2) (3-D), T_o = O(N sqrt(p)) resp.
    O(N^{4/3} sqrt(p)) — isoefficiency O(p^{3/2})."""
    import math

    def runner(size: int, p: int) -> tuple[float, float, float]:
        n = float(size * size if kind == "2d" else size**3)
        w = n**1.5 if kind == "2d" else n * n
        eff = spec.t_flop * spec.blas3_factor
        ts = w * eff
        comm = (n if kind == "2d" else n ** (4.0 / 3.0)) * math.sqrt(p) * spec.t_w
        tp = ts / p + comm / p + math.sqrt(n) * spec.t_s
        return w, ts, tp

    return runner


def isoefficiency_experiment(
    *,
    kind: str = "2d",
    system: str = "trisolve",
    ps: tuple[int, ...] = (4, 8, 16, 32),
    target_e: float = 0.3,
    size_lo: int = 6,
    size_hi: int = 70,
    spec: MachineSpec | None = None,
) -> IsoefficiencyResult:
    """Measure the isoefficiency exponent of the chosen system.

    ``system`` is "trisolve" (expect k ~ 2) or "factor" (expect k ~ 1.5,
    the paper's O(p^1.5) for 2-D partitioned factorization).
    """
    spec = spec or cray_t3d()
    if system == "trisolve":
        runner = _trisolve_runner(kind, spec)
    elif system == "factor":
        runner = _factor_runner(kind, spec)
    elif system == "trisolve-model":
        runner = _trisolve_model_runner(kind, spec)
        size_hi = max(size_hi, 100_000)
    elif system == "factor-model":
        runner = _factor_model_runner(kind, spec)
        size_hi = max(size_hi, 100_000)
    else:
        raise ValueError(f"unknown system {system!r}")
    if kind == "3d" and system in ("trisolve", "factor"):
        size_hi = min(size_hi, 16)
    points = isoefficiency_curve(
        runner, ps, target_e, size_lo=size_lo, size_hi=size_hi
    )
    exponent = fit_growth_exponent([(p, w) for p, w, _ in points])
    return IsoefficiencyResult(
        system=system,
        kind=kind,
        target_efficiency=target_e,
        points=points,
        exponent=exponent,
    )
