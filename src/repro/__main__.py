"""Command-line interface: ``python -m repro <command>``.

Commands
--------
solve      solve a model problem on the simulated machine and print the
           Figure-7-style per-phase report
fig7       regenerate the Figure 7 table for one registered workload
fig8       regenerate a Figure 8 MFLOPS-vs-p panel
fig5       print the Figure 5 table and measured isoefficiency exponents
schedules  print the Figure 3/4 pipelined step schedules
report     run the full reproduction report (all experiments, compact)
workloads  list the registered paper-matrix analogues
verify     run the repo-wide static verification gate (source lint,
           structural invariants, SPMD communication lint); same as
           ``python -m repro.verify``
serve-demo run the request-coalescing solve service against a stream of
           concurrent single-RHS requests and print its ServeReport
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.core.solver import ParallelSparseSolver
    from repro.sparse.generators import model_problem

    a = model_problem(args.matrix, args.size, seed=args.seed)
    solver = ParallelSparseSolver(
        a, p=args.p, b=args.block, ordering=args.ordering, verify=not args.no_verify
    ).prepare()
    if args.verify_comm:
        from repro.core.spmd_backward import make_backward_program
        from repro.core.spmd_forward import make_forward_program
        from repro.verify.comm import lint_spmd

        rng = np.random.default_rng(args.seed)
        probe = solver.symbolic.perm.apply_to_vector(rng.normal(size=(a.n, 1)))
        prog, size, y = make_forward_program(
            solver.factor, solver.assign, probe, b=args.block, nproc=args.p
        )
        lint_spmd(prog, size).raise_if_errors("forward SPMD communication lint")
        prog, size, _ = make_backward_program(
            solver.factor, solver.assign, y, b=args.block, nproc=args.p
        )
        lint_spmd(prog, size).raise_if_errors("backward SPMD communication lint")
        print("SPMD communication lint: clean (forward + backward)")
    rng = np.random.default_rng(args.seed)
    b = rng.normal(size=(a.n, args.nrhs))
    _, rep = solver.solve(
        b, refine=args.refine, backend=args.backend, workers=args.workers
    )
    print(f"matrix {args.matrix}(size={args.size}): N={a.n}, nnz={a.nnz}, "
          f"factor nnz={solver.symbolic.factor_nnz}")
    if rep.backend == "sim":
        kind = "simulated"
        print(f"p={rep.p} nrhs={rep.nrhs} backend=sim")
    else:
        kind = "wall-clock"
        from repro.exec import default_workers, plan_for

        nw = 1
        if rep.backend == "threads":
            nw = rep.workers if rep.workers is not None else default_workers()
        stats = plan_for(solver.symbolic.stree).stats()
        print(f"nrhs={rep.nrhs} backend={rep.backend} workers={nw} "
              f"tasks={stats['ntasks']} levels={stats['nlevels']}")
        if rep.schedule_certificate:
            print(f"schedule certificate: {rep.schedule_certificate}")
    print(f"  factorization : {rep.factor_seconds * 1e3:10.3f} ms  "
          f"({rep.factor_mflops:8.1f} MFLOPS, simulated)")
    print(f"  redistribute  : {rep.redistribute_seconds * 1e3:10.3f} ms  "
          f"({rep.redistribution_ratio:.2f}x FBsolve, simulated)")
    print(f"  forward       : {rep.forward.seconds * 1e3:10.3f} ms  ({kind})")
    print(f"  backward      : {rep.backward.seconds * 1e3:10.3f} ms  ({kind})")
    print(f"  FBsolve       : {rep.fbsolve_seconds * 1e3:10.3f} ms  "
          f"({rep.fbsolve_mflops:8.1f} MFLOPS, {kind})")
    print(f"  residual      : {rep.residual:.2e}")
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.experiments.fig7 import fig7_rows, format_fig7

    rows = fig7_rows(args.matrix, ps=tuple(args.p), nrhs_list=tuple(args.nrhs))
    print(format_fig7(rows))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from repro.experiments.fig8 import fig8_series, format_fig8

    series = fig8_series(args.matrix, ps=tuple(args.p), nrhs_list=tuple(args.nrhs))
    print(format_fig8(series))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.analysis.models import figure5_table
    from repro.experiments.fig5 import isoefficiency_experiment

    for r in figure5_table():
        print(f"{r.matrix_type:<10} {r.partitioning:<26} solve iso {r.solve_iso:<12} "
              f"factor iso {r.factor_iso:<12} overall {r.overall_iso}")
    print()
    for kind in ("2d", "3d"):
        solve = isoefficiency_experiment(kind=kind, system="trisolve-model")
        factor = isoefficiency_experiment(kind=kind, system="factor-model")
        print(f"measured exponents ({kind}): trisolve {solve.exponent:.2f} "
              f"(paper 2.0), factor {factor.exponent:.2f} (paper 1.5)")
    return 0


def _cmd_schedules(args: argparse.Namespace) -> int:
    from repro.core.schedules import (
        pipelined_backward_schedule,
        pipelined_forward_schedule,
        pram_forward_schedule,
    )

    nb, tb, q = args.nb, args.tb, args.q
    for title, step in (
        ("Figure 3(a): EREW-PRAM", pram_forward_schedule(nb, tb)),
        ("Figure 3(b): row priority", pipelined_forward_schedule(nb, tb, q, priority="row")),
        ("Figure 3(c): column priority", pipelined_forward_schedule(nb, tb, q, priority="column")),
        ("Figure 4: backward", pipelined_backward_schedule(nb, tb, q)),
    ):
        print(title)
        for i in range(nb):
            print("  " + " ".join(f"{int(v):3d}" if v else "  ." for v in step[i]))
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import ReportOptions, generate_report

    opts = ReportOptions(
        matrices=tuple(args.matrix),
        ps=tuple(args.p),
        nrhs_list=tuple(args.nrhs),
        include_fig8=not args.no_fig8,
    )
    print(generate_report(opts))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.__main__ import main as verify_main

    argv = ["--corpus", args.corpus]
    if args.no_solvers:
        argv.append("--no-solvers")
    if args.json:
        argv.append("--json")
    return verify_main(argv)


def _cmd_serve_demo(args: argparse.Namespace) -> int:
    import threading

    from repro.core.solver import ParallelSparseSolver
    from repro.sparse.generators import model_problem

    a = model_problem(args.matrix, args.size, seed=args.seed)
    solver = ParallelSparseSolver(a, p=1, ordering=args.ordering).prepare()
    rng = np.random.default_rng(args.seed)
    rhs = [rng.normal(size=a.n) for _ in range(args.requests)]

    results: list[np.ndarray | None] = [None] * args.requests
    with solver.serving(
        backend=args.backend,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        max_queue=max(args.requests, args.max_batch),
    ) as service:

        def submitter(worker: int) -> None:
            for i in range(worker, args.requests, args.submitters):
                results[i] = service.submit(rhs[i]).result(timeout=60.0)

        threads = [
            threading.Thread(target=submitter, args=(w,))
            for w in range(args.submitters)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report = service.report()

    # Coalescing must be observably transparent: spot-check a few
    # responses bitwise against standalone width-1 solves.
    for i in range(0, args.requests, max(1, args.requests // 8)):
        x_alone, _ = solver.solve(rhs[i], check=False, backend=args.backend)
        if not np.array_equal(results[i], x_alone):
            print(f"request {i}: coalesced response differs from standalone solve",
                  file=sys.stderr)
            return 1
    from repro.sparse.ops import relative_residual

    worst = max(
        relative_residual(a, results[i][:, None], rhs[i][:, None])
        for i in range(args.requests)
    )
    print(f"matrix {args.matrix}(size={args.size}): N={a.n}, "
          f"{args.requests} single-RHS requests from {args.submitters} threads, "
          f"backend={args.backend}, max_batch={args.max_batch}, "
          f"max_wait={args.max_wait * 1e3:g} ms")
    print(report.summary())
    print(f"transparency: sampled responses bitwise-equal to standalone solves; "
          f"worst residual {worst:.2e}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.experiments.matrices import WORKLOADS

    print(f"{'name':<14} {'paper matrix':<12} {'paper N':>8} {'class':<5}")
    for w in WORKLOADS.values():
        print(f"{w.name:<14} {w.paper_name:<12} {w.paper_n:>8} {w.kind:<5}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    s = sub.add_parser("solve", help="solve a model problem")
    s.add_argument("--matrix", default="grid2d",
                   choices=["grid2d", "grid3d", "fe2d", "fe3d", "random"])
    s.add_argument("--size", type=int, default=16)
    s.add_argument("--p", type=int, default=16)
    s.add_argument("--nrhs", type=int, default=1)
    s.add_argument("--block", type=int, default=8)
    s.add_argument("--refine", type=int, default=0)
    s.add_argument("--ordering", default="nested_dissection")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--backend", default="sim",
                   choices=["sim", "serial", "threads", "fused"],
                   help="triangular-solve execution: 'sim' walks the SPMD "
                        "solvers through the machine simulator; 'serial', "
                        "'threads' and 'fused' run them for real and report "
                        "wall-clock ('fused' batches whole elimination-tree "
                        "levels into vectorized array ops)")
    s.add_argument("--workers", type=int, default=None,
                   help="thread count for --backend threads (default: one "
                        "per core, capped)")
    s.add_argument("--no-verify", action="store_true",
                   help="skip the cheap structural invariant checks in prepare()")
    s.add_argument("--verify-comm", action="store_true",
                   help="statically lint the SPMD solver communication "
                        "protocol for this instance before solving")
    s.set_defaults(func=_cmd_solve)

    s = sub.add_parser("fig7", help="Figure 7 table for a workload")
    s.add_argument("--matrix", default="bcsstk15")
    s.add_argument("--p", type=int, nargs="+", default=[1, 16, 64])
    s.add_argument("--nrhs", type=int, nargs="+", default=[1, 5, 10, 20, 30])
    s.set_defaults(func=_cmd_fig7)

    s = sub.add_parser("fig8", help="Figure 8 panel for a workload")
    s.add_argument("--matrix", default="cube35")
    s.add_argument("--p", type=int, nargs="+", default=[1, 4, 16, 64, 256])
    s.add_argument("--nrhs", type=int, nargs="+", default=[1, 5, 10, 20, 30])
    s.set_defaults(func=_cmd_fig8)

    s = sub.add_parser("fig5", help="Figure 5 + isoefficiency exponents")
    s.set_defaults(func=_cmd_fig5)

    s = sub.add_parser("schedules", help="Figure 3/4 step schedules")
    s.add_argument("--nb", type=int, default=8)
    s.add_argument("--tb", type=int, default=4)
    s.add_argument("--q", type=int, default=4)
    s.set_defaults(func=_cmd_schedules)

    s = sub.add_parser("report", help="run the full reproduction report")
    s.add_argument("--matrix", nargs="+", default=["bcsstk15", "cube35"])
    s.add_argument("--p", type=int, nargs="+", default=[1, 16, 64])
    s.add_argument("--nrhs", type=int, nargs="+", default=[1, 10, 30])
    s.add_argument("--no-fig8", action="store_true")
    s.set_defaults(func=_cmd_report)

    s = sub.add_parser("workloads", help="list registered workloads")
    s.set_defaults(func=_cmd_workloads)

    s = sub.add_parser(
        "serve-demo",
        help="demo the request-coalescing solve service under concurrent load",
    )
    s.add_argument("--matrix", default="grid3d",
                   choices=["grid2d", "grid3d", "fe2d", "fe3d", "random"])
    s.add_argument("--size", type=int, default=8)
    s.add_argument("--requests", type=int, default=64)
    s.add_argument("--submitters", type=int, default=4,
                   help="concurrent submitter threads")
    s.add_argument("--max-batch", type=int, default=16,
                   help="coalescer flush width (columns)")
    s.add_argument("--max-wait", type=float, default=2e-3,
                   help="coalescer deadline in seconds")
    s.add_argument("--backend", default="fused",
                   choices=["serial", "threads", "fused"])
    s.add_argument("--ordering", default="nested_dissection")
    s.add_argument("--seed", type=int, default=0)
    s.set_defaults(func=_cmd_serve_demo)

    s = sub.add_parser("verify", help="repo-wide static verification gate")
    s.add_argument("--corpus", choices=["repo", "bad"], default="repo")
    s.add_argument("--no-solvers", action="store_true",
                   help="skip the SPMD solver communication-lint section")
    s.add_argument("--json", action="store_true",
                   help="emit findings as schema-stable JSON")
    s.set_defaults(func=_cmd_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
