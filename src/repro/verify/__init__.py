"""Static verification layer: communication linting, structural invariant
checking, and repo-specific source lint.

The paper's pipelined block-cyclic solvers and subtree-to-subcube mapping
are correct only under delicate ordering invariants — every send needs a
matching receive, the elimination tree must be postordered, block-cyclic
layouts must conform to the supernode partition.  This package checks all
of them *before* anything executes:

* :mod:`repro.verify.comm` — SPMD communication linter
  (:func:`lint_spmd`) and task-graph schedule checker
  (:func:`lint_task_graph`); finds guaranteed deadlock cycles, unmatched
  sends/receives, tag mismatches and receive races without running the
  timing simulator.
* :mod:`repro.verify.invariants` — structural checkers for CSC matrices,
  elimination trees / postorder, supernode partitions, subtree-to-subcube
  maps and block-cyclic layouts.
* :mod:`repro.verify.effects` / :mod:`repro.verify.schedule` — the
  schedule certifier for the real shared-memory execution layer
  (:mod:`repro.exec`): per-task read/write effect summaries, a
  happens-before race check over the dependency-counted task tree,
  exactly-once coverage proofs, and a canonical determinism
  certificate (:func:`certify_plan`).
* :mod:`repro.verify.lint` — AST lint with repo-specific rules
  (unseeded randomness, CSC index-array mutation, bare asserts,
  unused imports).
* :mod:`repro.verify.gate` — the repo-wide analysis gate behind
  ``python -m repro.verify``.

Checkers report :class:`Finding` records through :class:`Report`
(fail-fast callers use :meth:`Report.raise_if_errors`, which raises
:class:`VerificationError` carrying the full report).
"""

from repro.verify.comm import lint_spmd, lint_task_graph, spmd_deadlock_rules
from repro.verify.effects import (
    Effect,
    backward_effects,
    effect_conflicts,
    forward_effects,
)
from repro.verify.findings import (
    Finding,
    Report,
    Severity,
    VerificationError,
    merge,
)
from repro.verify.gate import (
    run_bad_corpus,
    run_gate,
    run_schedule_certification,
    run_solver_comm_lint,
    run_source_lint,
    run_structure_checks,
)
from repro.verify.schedule import ScheduleCertificate, certify_plan, plan_digest
from repro.verify.invariants import (
    check_assignment,
    check_block_cyclic_conformance,
    check_csc,
    check_csc_arrays,
    check_etree,
    check_postordered,
    check_supernode_partition,
    check_symbolic,
)
from repro.verify.lint import lint_file, lint_paths, lint_source

__all__ = [
    "Effect",
    "Finding",
    "Report",
    "ScheduleCertificate",
    "Severity",
    "VerificationError",
    "backward_effects",
    "certify_plan",
    "effect_conflicts",
    "forward_effects",
    "merge",
    "plan_digest",
    "run_schedule_certification",
    "lint_spmd",
    "lint_task_graph",
    "spmd_deadlock_rules",
    "check_assignment",
    "check_block_cyclic_conformance",
    "check_csc",
    "check_csc_arrays",
    "check_etree",
    "check_postordered",
    "check_supernode_partition",
    "check_symbolic",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_gate",
    "run_bad_corpus",
    "run_source_lint",
    "run_structure_checks",
    "run_solver_comm_lint",
]
