"""Finding / report containers shared by every checker in :mod:`repro.verify`.

A checker never raises on a bad input — it appends :class:`Finding`
records to a :class:`Report` so that one pass can surface *every*
violation (and so the repo-wide gate can aggregate results across
heterogeneous checkers).  Callers that want fail-fast behaviour use
:meth:`Report.raise_if_errors`, which throws :class:`VerificationError`
carrying the full report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the gate (guaranteed-wrong programs or
    structures); ``WARNING`` findings are reported but do not change the
    exit code (constructs that are only correct under extra assumptions,
    e.g. in-order message delivery).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``rule`` is a stable kebab-case identifier (e.g. ``spmd-deadlock-cycle``);
    ``location`` is either ``path:line`` for source findings or a logical
    position such as ``rank 3 @ step 7`` for schedule findings.
    """

    rule: str
    severity: Severity
    location: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity.value}: {self.location}: [{self.rule}] {self.message}"


@dataclass
class Report:
    """An append-only collection of findings from one or more checkers."""

    findings: list[Finding] = field(default_factory=list)

    def add(
        self,
        rule: str,
        message: str,
        *,
        location: str = "<input>",
        severity: Severity = Severity.ERROR,
    ) -> None:
        """Record one finding."""
        self.findings.append(
            Finding(rule=rule, severity=severity, location=location, message=message)
        )

    def extend(self, other: "Report") -> None:
        """Fold another report's findings into this one."""
        self.findings.extend(other.findings)

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity findings were recorded."""
        return not self.errors()

    def rules(self) -> set[str]:
        """The distinct rule identifiers present in this report."""
        return {f.rule for f in self.findings}

    def by_rule(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def raise_if_errors(self, context: str = "verification failed") -> None:
        """Raise :class:`VerificationError` when any ERROR finding exists."""
        if not self.ok:
            raise VerificationError(context, self)

    def render(self) -> str:
        """Human-readable multi-line summary (one line per finding)."""
        if not self.findings:
            return "no findings"
        lines = [str(f) for f in self.findings]
        ne, nw = len(self.errors()), len(self.warnings())
        lines.append(f"{ne} error(s), {nw} warning(s)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)


def merge(reports: Iterable[Report]) -> Report:
    """Combine several reports into one."""
    out = Report()
    for r in reports:
        out.extend(r)
    return out


class VerificationError(ValueError):
    """A checker found ERROR-severity violations; carries the full report."""

    def __init__(self, context: str, report: Report):
        self.report = report
        detail = "\n".join(str(f) for f in report.errors())
        super().__init__(f"{context}:\n{detail}")
