"""Static schedule certifier for the shared-memory execution plans.

:func:`certify_plan` takes an :class:`~repro.exec.plan.ExecPlan` (and
optionally the :class:`~repro.symbolic.stree.SupernodalTree` it was
built from) and *proves*, without executing anything, the three
properties the engine's docstrings promise:

1. **Race-freedom.**  The per-task read/write effect summaries of
   :mod:`repro.verify.effects` are crossed against the happens-before
   relation induced by the engine's dependency counting.  A dependency
   edge ``i -> d`` is *guaranteed* only when task ``d``'s counter equals
   its true in-degree — a smaller counter means ``d`` can start before
   some predecessor finished, so none of its in-edges order anything.
   Every conflicting effect pair (same space, overlapping rows, at least
   one write, different supernodes) must be ordered by the transitive
   closure of the guaranteed edges; read-after-write pairs must be
   ordered *writer-first*.
2. **Exactly-once coverage.**  The supernode column ranges tile
   ``0..n`` with no overlap and no gap (every solution row is written by
   exactly one node per sweep), and each child contribution buffer is
   consumed by exactly one scatter whose indices map the child's
   below-rows bijectively into the parent's trapezoid.
3. **Reduction-order determinism.**  Every node's child list ascends —
   the fixed reduction order that makes results bitwise identical for
   every worker count — and the certificate digest is a canonical hash
   over the steps, the ordered reduction lists, the scatter indices and
   the task topology, so two runs (any worker counts) can be checked
   for schedule equivalence by comparing two hex strings.

:func:`certify_level_program` extends the proof to the fused backend's
:class:`~repro.exec.plan.LevelProgram`: the program's flat index vectors
(accumulator layout, width-1 lane, contribution scatter, backward
gather) are decoded back against the plan's steps — rules prefixed
``schedule-program-`` — and the plan's effect summaries, re-tasked onto
the level chain, are crossed against the chain's happens-before.  A
certified program earns its plan's digest: the fused and threaded
backends provably execute the same schedule.

Findings use the shared :class:`~repro.verify.findings.Report`
machinery; rules are prefixed ``schedule-``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.verify.effects import (
    READ,
    WRITE,
    Effect,
    backward_effects,
    effect_conflicts,
    format_index_set,
    forward_effects,
    level_effects,
)
from repro.verify.findings import Report
from repro.util.validation import require

if TYPE_CHECKING:
    from repro.exec.plan import ExecPlan, LevelProgram
    from repro.symbolic.stree import SupernodalTree

#: Bumped whenever the canonical serialization behind the digest changes.
CERT_SCHEMA = "repro-schedule-cert/1"


@dataclass(frozen=True)
class ScheduleCertificate:
    """The certifier's verdict for one plan.

    ``digest`` is the determinism certificate: equal digests mean equal
    schedules (same steps, same reduction orders, same task topology),
    hence bitwise-equal results regardless of worker count.  ``report``
    carries every violated property; :attr:`ok` is True iff none.
    """

    digest: str
    report: Report
    nsuper: int
    ntasks: int

    @property
    def ok(self) -> bool:
        return self.report.ok


# ------------------------------------------------------------------ digest
def plan_digest(plan: "ExecPlan") -> str:
    """Canonical sha256 over the schedule-defining parts of *plan*.

    Covers: per-step column ranges, below-rows, ordered child
    (reduction) lists and scatter indices; per-task node lists; and the
    task parent topology.  Deliberately excludes the aggregation grain
    and anything runtime-dependent (worker counts never enter), so the
    digest is a pure function of the schedule's semantics.
    """
    h = hashlib.sha256(CERT_SCHEMA.encode())

    def put(values) -> None:
        h.update(np.ascontiguousarray(values, dtype=np.int64).tobytes())

    put([len(plan.steps), len(plan.tasks)])
    for st in plan.steps:
        put([st.s, st.col_lo, st.col_hi, st.t, st.n, len(st.children)])
        put(st.below)
        put(list(st.children))
        for idx in st.child_scatter:
            put([idx.size])
            put(idx)
    for task in plan.tasks:
        put([task.index, task.root, len(task.nodes)])
        put(list(task.nodes))
    put(plan.task_parent)
    return h.hexdigest()


# ------------------------------------------------------- structural checks
def _check_partition(plan: "ExecPlan", report: Report, name: str) -> None:
    """Each supernode must belong to exactly one task, listed ascending."""
    owner: dict[int, int] = {}
    for ti, task in enumerate(plan.tasks):
        if list(task.nodes) != sorted(task.nodes):
            report.add(
                "schedule-task-partition",
                f"task {ti} lists nodes {list(task.nodes)} out of ascending order",
                location=f"{name}/task {ti}",
            )
        for s in task.nodes:
            if s in owner:
                report.add(
                    "schedule-task-partition",
                    f"supernode {s} appears in tasks {owner[s]} and {ti}",
                    location=f"{name}/task {ti}",
                )
            owner[s] = ti
    missing = sorted(set(range(len(plan.steps))) - set(owner))
    if missing:
        report.add(
            "schedule-task-partition",
            f"supernodes {missing} belong to no task — they would never run",
            location=f"{name}/tasks",
        )


def _check_coverage(plan: "ExecPlan", report: Report, name: str, n: int) -> None:
    """The column ranges must tile ``[0, n)`` with no overlap and no gap."""
    ranges = sorted(
        (st.col_lo, st.col_hi, st.s) for st in plan.steps if st.col_hi > st.col_lo
    )
    cursor = 0
    for lo, hi, s in ranges:
        if lo < cursor:
            report.add(
                "schedule-coverage-overlap",
                f"columns [{lo}, {min(cursor, hi)}) are written by supernode {s} "
                "and by an earlier supernode — not exactly-once",
                location=f"{name}/supernode {s}",
            )
        elif lo > cursor:
            report.add(
                "schedule-coverage-gap",
                f"columns [{cursor}, {lo}) are owned by no supernode — never solved",
                location=f"{name}/columns",
            )
        cursor = max(cursor, hi)
    if cursor < n:
        report.add(
            "schedule-coverage-gap",
            f"columns [{cursor}, {n}) are owned by no supernode — never solved",
            location=f"{name}/columns",
        )


def _check_scatters(plan: "ExecPlan", report: Report, name: str) -> None:
    """Scatter indices must map each child's below-rows bijectively."""
    consumed: dict[int, int] = {}
    for st in plan.steps:
        loc = f"{name}/supernode {st.s}"
        rows = np.concatenate(
            [np.arange(st.col_lo, st.col_hi, dtype=np.int64), st.below]
        )
        if st.t != st.col_hi - st.col_lo or st.n != rows.size:
            report.add(
                "schedule-step-shape",
                f"supernode {st.s} declares t={st.t}, n={st.n} but its column "
                f"range and below-rows give t={st.col_hi - st.col_lo}, "
                f"n={rows.size}",
                location=loc,
            )
        if len(st.children) != len(st.child_scatter):
            report.add(
                "schedule-scatter-arity",
                f"supernode {st.s} has {len(st.children)} children but "
                f"{len(st.child_scatter)} scatter index arrays",
                location=loc,
            )
            continue
        for c, idx in zip(st.children, st.child_scatter):
            if c in consumed:
                report.add(
                    "schedule-duplicate-consumer",
                    f"contribution of supernode {c} is scattered by both "
                    f"supernode {consumed[c]} and supernode {st.s} — "
                    "it must be consumed exactly once",
                    location=loc,
                )
            consumed[c] = st.s
            child_below = plan.steps[c].below
            if idx.size != child_below.size:
                report.add(
                    "schedule-scatter-mismatch",
                    f"scatter for child {c} has {idx.size} indices but the "
                    f"child contributes {child_below.size} rows",
                    location=loc,
                )
                continue
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= rows.size):
                report.add(
                    "schedule-scatter-bounds",
                    f"scatter for child {c} indexes row {int(idx.max())} of a "
                    f"{rows.size}-row accumulator",
                    location=loc,
                )
                continue
            if idx.size >= 2 and np.any(np.diff(idx) <= 0):
                dup = int(idx[np.flatnonzero(np.diff(idx) <= 0)[0] + 1])
                report.add(
                    "schedule-scatter-overlap",
                    f"scatter for child {c} targets accumulator row {dup} "
                    "more than once (or out of order) — the fancy-indexed "
                    "`acc[idx] += u` would drop a contribution",
                    location=loc,
                )
                continue
            if not np.array_equal(rows[idx], child_below):
                bad = int(np.flatnonzero(rows[idx] != child_below)[0])
                report.add(
                    "schedule-scatter-mismatch",
                    f"scatter for child {c} maps its below-row "
                    f"{int(child_below[bad])} to parent row {int(rows[idx][bad])}"
                    " — the contribution lands on the wrong equation",
                    location=loc,
                )
    # Every node with below-rows produces a contribution that someone
    # must consume (forward) — except roots of the forest, which cannot
    # have below-rows in a well-formed factor.
    for st in plan.steps:
        if st.below.size and st.s not in consumed:
            report.add(
                "schedule-unconsumed-contrib",
                f"supernode {st.s} produces a {st.below.size}-row contribution "
                "that no scatter consumes — its updates are lost",
                location=f"{name}/supernode {st.s}",
            )


def _check_reduction_order(plan: "ExecPlan", report: Report, name: str) -> None:
    """Child lists must strictly ascend — the canonical reduction order."""
    for st in plan.steps:
        ch = list(st.children)
        if ch != sorted(set(ch)):
            report.add(
                "schedule-reduction-order",
                f"supernode {st.s} reduces children in order {ch} — not "
                "strictly ascending, so the floating-point sum depends on "
                "the plan, not on the structure",
                location=f"{name}/supernode {st.s}",
            )


def _check_tree(plan: "ExecPlan", stree: "SupernodalTree", report: Report, name: str) -> None:
    """The plan's steps must agree with the assembly tree they claim to run."""
    if len(plan.steps) != stree.nsuper:
        report.add(
            "schedule-tree-mismatch",
            f"plan has {len(plan.steps)} steps but the tree has "
            f"{stree.nsuper} supernodes",
            location=f"{name}/steps",
        )
        return
    for st in plan.steps:
        sn = stree.supernodes[st.s]
        loc = f"{name}/supernode {st.s}"
        if (st.col_lo, st.col_hi) != (sn.col_lo, sn.col_hi):
            report.add(
                "schedule-tree-mismatch",
                f"supernode {st.s} covers columns [{st.col_lo}, {st.col_hi}) "
                f"in the plan but [{sn.col_lo}, {sn.col_hi}) in the tree",
                location=loc,
            )
        if not np.array_equal(st.below, sn.below):
            report.add(
                "schedule-tree-mismatch",
                f"supernode {st.s}'s below-rows differ between plan and tree",
                location=loc,
            )
        if set(st.children) != set(stree.children[st.s]):
            report.add(
                "schedule-tree-mismatch",
                f"supernode {st.s} scatters children {sorted(st.children)} "
                f"but the assembly tree gives {sorted(stree.children[st.s])}",
                location=loc,
            )


# ------------------------------------------------------ happens-before
def _guaranteed_reachability(
    ntasks: int,
    ndeps: Sequence[int],
    dependents: Sequence[Sequence[int]],
    report: Report,
    name: str,
    phase: str,
) -> np.ndarray | None:
    """Transitive closure of the *guaranteed* dependency edges.

    The engine starts task ``d`` when its counter — initialized to
    ``ndeps[d]`` — reaches zero.  An edge ``i -> d`` therefore orders
    ``i`` before ``d`` only if the counter equals the true in-degree;
    a smaller counter lets ``d`` fire after a proper subset of its
    predecessors, so *no* in-edge is guaranteed, and a larger one means
    ``d`` (and everything after it) never runs.  Returns the boolean
    reachability matrix, or ``None`` when the guaranteed edges contain a
    cycle (reported; race analysis is skipped — nothing would run).
    """
    loc = f"{name}/{phase}"
    in_deg = [0] * ntasks
    for i in range(ntasks):
        for d in dependents[i]:
            in_deg[d] += 1
    guaranteed = [True] * ntasks
    for d in range(ntasks):
        if ndeps[d] == in_deg[d]:
            continue
        guaranteed[d] = False
        if ndeps[d] > in_deg[d]:
            report.add(
                "schedule-dep-count",
                f"[{phase}] task {d} waits for {ndeps[d]} predecessors but "
                f"only {in_deg[d]} tasks signal it — it would stall forever",
                location=loc,
            )
        else:
            report.add(
                "schedule-dep-count",
                f"[{phase}] task {d} waits for only {ndeps[d]} of its "
                f"{in_deg[d]} predecessors — it can start before the rest "
                "finish, so none of its dependency edges order anything",
                location=loc,
            )

    # Kahn order over every edge (guaranteed or not) to detect cycles and
    # to get a topological sequence for closure propagation.
    counts = list(in_deg)
    order = [i for i in range(ntasks) if counts[i] == 0]
    head = 0
    while head < len(order):
        i = order[head]
        head += 1
        for d in dependents[i]:
            counts[d] -= 1
            if counts[d] == 0:
                order.append(d)
    if len(order) != ntasks:
        stuck = sorted(set(range(ntasks)) - set(order))
        report.add(
            "schedule-cycle",
            f"[{phase}] tasks {stuck} form a dependency cycle — the engine "
            "would stall before running them",
            location=loc,
        )
        return None

    reach = np.zeros((ntasks, ntasks), dtype=bool)
    np.fill_diagonal(reach, True)
    for i in reversed(order):
        for d in dependents[i]:
            if guaranteed[d]:
                reach[i] |= reach[d]
    return reach


def _check_phase_races(
    phase: str,
    ntasks: int,
    pos: dict[int, int],
    effects: list[Effect],
    ndeps: Sequence[int],
    dependents: Sequence[Sequence[int]],
    report: Report,
    name: str,
) -> None:
    """Prove every conflicting effect pair of one sweep is ordered.

    ``pos`` gives each node's program order *inside* its task (used for
    the within-task stale-read direction check); cross-task ordering
    comes from the guaranteed dependency edges alone.
    """
    reach = _guaranteed_reachability(ntasks, ndeps, dependents, report, name, phase)
    if reach is None:
        return

    loc = f"{name}/{phase}"
    for a, b, overlap in effect_conflicts(effects):
        if a.task == b.task:
            # Sequential within one worker; only the read-after-write
            # direction can still be wrong.
            if {a.mode, b.mode} == {READ, WRITE}:
                w, r = (a, b) if a.mode == WRITE else (b, a)
                if pos.get(w.node, 0) > pos.get(r.node, 0):
                    report.add(
                        "schedule-stale-read",
                        f"[{phase}] within task {a.task}: {r.describe()} runs "
                        f"before {w.describe()} — it reads stale values",
                        location=loc,
                    )
            continue
        a_before_b = bool(reach[a.task, b.task])
        b_before_a = bool(reach[b.task, a.task])
        if not a_before_b and not b_before_a:
            report.add(
                "schedule-race",
                f"[{phase}] tasks {a.task} and {b.task} are unordered but "
                f"conflict on rows {format_index_set(overlap)}: "
                f"{a.describe()} vs {b.describe()}",
                location=loc,
            )
        elif {a.mode, b.mode} == {READ, WRITE}:
            w, r = (a, b) if a.mode == WRITE else (b, a)
            if reach[r.task, w.task]:
                report.add(
                    "schedule-stale-read",
                    f"[{phase}] task {r.task} is ordered *before* task "
                    f"{w.task} yet {r.describe()} depends on {w.describe()}",
                    location=loc,
                )


# ------------------------------------------------------------------ public
def certify_plan(
    plan: "ExecPlan",
    stree: "SupernodalTree | None" = None,
    *,
    nrhs: int = 1,
    name: str = "plan",
) -> ScheduleCertificate:
    """Statically certify one execution plan; never raises on bad plans.

    Runs every structural proof (task partition, exactly-once column
    coverage, scatter bijectivity, canonical reduction order, optional
    assembly-tree cross-check) and the happens-before race analysis for
    both sweeps, then computes the determinism digest.  ``nrhs`` is the
    right-hand-side width the plan will be run with; every task accesses
    all columns of the block, so the effect summaries — and therefore
    the findings and the digest — are provably identical for every
    ``nrhs >= 1`` (the parameter exists so callers can certify the exact
    workload they run).

    Callers that want fail-fast semantics use
    ``certify_plan(...).report.raise_if_errors()``.
    """
    require(nrhs >= 1, f"nrhs must be >= 1, got {nrhs!r}")
    report = Report()
    n = stree.n if stree is not None else max(
        (st.col_hi for st in plan.steps), default=0
    )
    _check_partition(plan, report, name)
    _check_coverage(plan, report, name, n)
    _check_scatters(plan, report, name)
    _check_reduction_order(plan, report, name)
    if stree is not None:
        _check_tree(plan, stree, report, name)

    # Program order inside a task: the forward sweep walks nodes
    # ascending, the backward sweep descending.
    fwd_pos: dict[int, int] = {}
    bwd_pos: dict[int, int] = {}
    for task in plan.tasks:
        for k, s in enumerate(task.nodes):
            fwd_pos[s] = k
        for k, s in enumerate(reversed(task.nodes)):
            bwd_pos[s] = k

    fwd_ndeps, fwd_dependents = plan.forward_deps()
    _check_phase_races(
        "forward", plan.ntasks, fwd_pos, forward_effects(plan),
        fwd_ndeps, fwd_dependents, report, name,
    )
    bwd_ndeps, bwd_dependents = plan.backward_deps()
    _check_phase_races(
        "backward", plan.ntasks, bwd_pos, backward_effects(plan),
        bwd_ndeps, bwd_dependents, report, name,
    )
    return ScheduleCertificate(
        digest=plan_digest(plan),
        report=report,
        nsuper=len(plan.steps),
        ntasks=plan.ntasks,
    )


# ------------------------------------------------------- level programs
def _program_members(program: "LevelProgram", li: int) -> list[int]:
    """Every supernode a level's execution actually touches, ascending."""
    lvl = program.levels[li]
    members: list[int] = []
    if lvl.ones is not None:
        members.extend(int(s) for s in lvl.ones.nodes)
    for g in lvl.groups:
        members.extend(int(s) for s in g.nodes)
    return sorted(members)


def _check_program_structure(
    program: "LevelProgram", plan: "ExecPlan", report: Report, name: str
) -> None:
    """Decode the program against the plan it claims to compile.

    The fused executor trusts the program's flat index vectors blindly —
    this check re-derives, from the plan's steps alone, what every vector
    must contain, so a mutated layout, scatter, gather or lane can never
    certify.  Nothing here consults ``compile_level_program``: the
    compiler's output is judged against the plan, not against itself.
    """
    steps = plan.steps
    ns = len(steps)
    loc0 = f"{name}/program"
    if program.nsuper != ns or len(program.levels) != (
        int(plan.node_level.max()) + 1 if ns else 0
    ):
        report.add(
            "schedule-program-shape",
            f"program covers {program.nsuper} supernodes in "
            f"{len(program.levels)} levels but the plan has {ns} supernodes",
            location=loc0,
        )
        return
    if not np.array_equal(program.node_level, plan.node_level):
        report.add(
            "schedule-program-shape",
            "program's node levels differ from the plan's bottom-up levels",
            location=loc0,
        )
        return

    # The level barrier is the program's only ordering device: every
    # child must sit strictly below its parent or the contribution
    # hand-off happens inside one unordered level.
    lvl_of = program.node_level
    for st in steps:
        for c in st.children:
            if int(lvl_of[c]) >= int(lvl_of[st.s]):
                report.add(
                    "schedule-program-level",
                    f"child {c} (level {int(lvl_of[c])}) is not strictly below "
                    f"its parent {st.s} (level {int(lvl_of[st.s])}) — the level "
                    "barrier cannot order their contribution hand-off",
                    location=loc0,
                )

    # Membership: levels must partition the supernodes, each node listed
    # in the level node_level assigns it to.
    owner = np.full(ns, -1, dtype=np.int64)
    clean = True
    for lvl in program.levels:
        for s in _program_members(program, lvl.index):
            if s < 0 or s >= ns:
                report.add(
                    "schedule-program-partition",
                    f"level {lvl.index} lists unknown supernode {s}",
                    location=loc0,
                )
                clean = False
                continue
            if owner[s] != -1:
                report.add(
                    "schedule-program-partition",
                    f"supernode {s} appears in levels {int(owner[s])} "
                    f"and {lvl.index}",
                    location=loc0,
                )
                clean = False
            owner[s] = lvl.index
            if int(lvl_of[s]) != lvl.index:
                report.add(
                    "schedule-program-partition",
                    f"supernode {s} executes in level {lvl.index} but "
                    f"node_level places it at {int(lvl_of[s])}",
                    location=loc0,
                )
                clean = False
    missing = np.flatnonzero(owner == -1)
    if missing.size:
        report.add(
            "schedule-program-partition",
            f"supernodes {missing.tolist()} appear in no level — never solved",
            location=loc0,
        )
        clean = False
    if not clean:
        return  # the per-level decodes below would only cascade

    # Contribution arena: the per-node slices must tile [0, contrib_total).
    regions = sorted(
        (int(program.contrib_off[s]), steps[s].n - steps[s].t)
        for s in range(ns)
        if steps[s].n - steps[s].t > 0
    )
    cursor = 0
    for start, length in regions:
        if start != cursor:
            report.add(
                "schedule-program-contrib",
                f"contribution slices {'overlap' if start < cursor else 'leave a gap'} "
                f"at arena row {min(start, cursor)}",
                location=loc0,
            )
            break
        cursor += length
    else:
        if cursor != program.contrib_total:
            report.add(
                "schedule-program-contrib",
                f"contribution slices end at row {cursor} but the arena "
                f"declares {program.contrib_total}",
                location=loc0,
            )

    for lvl in program.levels:
        loc = f"{name}/program level {lvl.index}"
        members = _program_members(program, lvl.index)
        ones = lvl.ones

        # --- accumulator layout: per-node intervals must tile [0, size),
        # tops inside [0, top_total), belows after it.
        intervals: list[tuple[int, int]] = []
        layout_ok = True
        for s in members:
            st = steps[s]
            if st.t:
                to = int(program.node_top_off[s])
                if to < 0 or to + st.t > lvl.top_total:
                    report.add(
                        "schedule-program-layout",
                        f"supernode {s}'s top block [{to}, {to + st.t}) falls "
                        f"outside the level's top region [0, {lvl.top_total})",
                        location=loc,
                    )
                    layout_ok = False
                intervals.append((to, st.t))
            nb = st.n - st.t
            if nb:
                bo = int(program.node_below_off[s])
                if bo < lvl.top_total or bo + nb > lvl.size:
                    report.add(
                        "schedule-program-layout",
                        f"supernode {s}'s below block [{bo}, {bo + nb}) falls "
                        f"outside the level's below region "
                        f"[{lvl.top_total}, {lvl.size})",
                        location=loc,
                    )
                    layout_ok = False
                intervals.append((bo, nb))
        if layout_ok:
            intervals.sort()
            cursor = 0
            for start, length in intervals:
                if start != cursor:
                    report.add(
                        "schedule-program-layout",
                        f"level accumulator rows "
                        f"{'overlap' if start < cursor else 'are unused'} at "
                        f"row {min(start, cursor)} — panels must tile the level",
                        location=loc,
                    )
                    layout_ok = False
                    break
                cursor += length
            if layout_ok and cursor != lvl.size:
                report.add(
                    "schedule-program-layout",
                    f"level panels end at accumulator row {cursor} but the "
                    f"level declares size {lvl.size}",
                    location=loc,
                )
                layout_ok = False

        # --- the width-1 lane's vectorized arrays.
        if ones is not None:
            kb = ones.k_below
            counts: list[int] = []
            lane_ok = kb <= ones.k
            if not lane_ok:
                report.add(
                    "schedule-program-lane",
                    f"lane declares {kb} below-owning nodes out of {ones.k}",
                    location=loc,
                )
            for i in range(ones.k):
                s = int(ones.nodes[i])
                st = steps[s]
                nb = st.n - st.t
                if st.t != 1:
                    report.add(
                        "schedule-program-lane",
                        f"supernode {s} (panel width {st.t}) sits in the "
                        "width-1 lane",
                        location=loc,
                    )
                    lane_ok = False
                    continue
                if int(program.node_top_off[s]) != i or int(ones.cols[i]) != st.col_lo:
                    report.add(
                        "schedule-program-lane",
                        f"lane node {s} maps to accumulator row "
                        f"{int(program.node_top_off[s])} / column "
                        f"{int(ones.cols[i])}, expected row {i} / column "
                        f"{st.col_lo}",
                        location=loc,
                    )
                    lane_ok = False
                if i < kb:
                    if nb == 0:
                        report.add(
                            "schedule-program-lane",
                            f"lane node {s} has no below-rows but sits in the "
                            f"leading k_below={kb} segment",
                            location=loc,
                        )
                        lane_ok = False
                    counts.append(nb)
                elif nb:
                    report.add(
                        "schedule-program-lane",
                        f"lane node {s} has {nb} below-rows but sits after "
                        "the k_below split — its contribution would be lost",
                        location=loc,
                    )
                    lane_ok = False
            if lane_ok:
                carr = np.array(counts, dtype=np.int64)
                exp_starts = (
                    np.concatenate(([0], np.cumsum(carr)[:-1])) if kb
                    else np.empty(0, dtype=np.int64)
                )
                exp_rep = np.repeat(np.arange(kb, dtype=np.int64), carr)
                exp_below = (
                    np.concatenate(
                        [steps[int(ones.nodes[i])].below for i in range(kb)]
                    ).astype(np.int64) if kb else np.empty(0, dtype=np.int64)
                )
                if (
                    not np.array_equal(ones.seg_starts, exp_starts)
                    or not np.array_equal(ones.rep_idx, exp_rep)
                    or not np.array_equal(ones.below_rows, exp_below)
                ):
                    report.add(
                        "schedule-program-lane",
                        "lane segment starts / owner indices / below rows do "
                        "not decode to the plan's width-1 panels — the "
                        "vectorized reduceat would sum the wrong segments",
                        location=loc,
                    )
                for i in range(kb):
                    s = int(ones.nodes[i])
                    if int(program.contrib_off[s]) != ones.contrib_lo + int(
                        exp_starts[i]
                    ):
                        report.add(
                            "schedule-program-lane",
                            f"lane node {s}'s contribution slice is not "
                            "contiguous with the lane's — the one-subtract "
                            "contribution write would land elsewhere",
                            location=loc,
                        )
                        break

        # --- bucket arrays must restate the plan's per-node facts.
        for g in lvl.groups:
            for i in range(g.nodes.size):
                s = int(g.nodes[i])
                st = steps[s]
                nb = st.n - st.t
                bad = (
                    st.t != g.t
                    or int(g.col_lo[i]) != st.col_lo
                    or int(g.nb[i]) != nb
                    or (g.t and int(g.top_off[i]) != int(program.node_top_off[s]))
                    or (nb and int(g.below_off[i]) != int(program.node_below_off[s]))
                    or (nb and int(g.contrib_off[i]) != int(program.contrib_off[s]))
                )
                if bad:
                    report.add(
                        "schedule-program-bucket",
                        f"bucket t={g.t} misdescribes supernode {s} "
                        "(width, columns, offsets or contribution slice)",
                        location=loc,
                    )

        if not layout_ok:
            continue  # the vector decodes below assume a clean layout

        # --- the level's top gather.
        exp_top = np.full(lvl.top_total, -1, dtype=np.int64)
        for s in members:
            st = steps[s]
            if st.t:
                to = int(program.node_top_off[s])
                exp_top[to:to + st.t] = np.arange(
                    st.col_lo, st.col_hi, dtype=np.int64
                )
        if not np.array_equal(lvl.top_src, exp_top):
            report.add(
                "schedule-program-gather",
                "top gather vector does not fetch each panel's own columns",
                location=loc,
            )

        # --- the flattened contribution scatter, in the plan's
        # (parent ascending, child ascending) reduction order.
        dst_parts: list[np.ndarray] = []
        src_parts: list[np.ndarray] = []
        for s in members:
            st = steps[s]
            for c, idx in zip(st.children, st.child_scatter):
                nbc = steps[c].n - steps[c].t
                if not nbc:
                    continue
                idx64 = idx.astype(np.int64)
                dst_parts.append(np.where(
                    idx64 < st.t,
                    program.node_top_off[s] + idx64,
                    program.node_below_off[s] + idx64 - st.t,
                ))
                src_parts.append(
                    program.contrib_off[c] + np.arange(nbc, dtype=np.int64)
                )
        exp_dst = (np.concatenate(dst_parts) if dst_parts
                   else np.empty(0, dtype=np.int64))
        exp_src = (np.concatenate(src_parts) if src_parts
                   else np.empty(0, dtype=np.int64))
        if not np.array_equal(lvl.scatter_dst, exp_dst) or not np.array_equal(
            lvl.scatter_src, exp_src
        ):
            report.add(
                "schedule-program-scatter",
                "flattened scatter differs from the plan's deterministic "
                "(parent-ascending, child-ascending) contribution replay — "
                "results would depend on the program, not the structure",
                location=loc,
            )

        # --- the backward gather: width-1 belows first, then buckets.
        exp_g = np.full(int(lvl.gather_rows.size), -1, dtype=np.int64)
        gather_ok = True
        gpos = 0
        if ones is not None:
            for i in range(ones.k_below):
                below = steps[int(ones.nodes[i])].below
                if gpos + below.size > exp_g.size:
                    gather_ok = False
                    break
                exp_g[gpos:gpos + below.size] = below
                gpos += below.size
        for g in lvl.groups:
            if not g.t:
                continue
            for i in range(g.nodes.size):
                nb = int(g.nb[i])
                if not nb:
                    continue
                go = int(g.gather_off[i])
                if go < 0 or go + nb > exp_g.size:
                    gather_ok = False
                    continue
                exp_g[go:go + nb] = steps[int(g.nodes[i])].below
        if (
            not gather_ok
            or np.any(exp_g < 0)
            or not np.array_equal(lvl.gather_rows, exp_g)
        ):
            report.add(
                "schedule-program-gather",
                "backward gather vector does not fetch each panel's "
                "below-rows at its declared offset",
                location=loc,
            )

        # --- the arena sizing must cover this level.
        if (
            program.max_acc < lvl.size
            or program.max_gather < int(lvl.scatter_src.size)
            or program.max_gather < int(lvl.gather_rows.size)
        ):
            report.add(
                "schedule-program-workspace",
                f"declared workspace maxima cannot hold level {lvl.index}",
                location=loc,
            )


def certify_level_program(
    program: "LevelProgram",
    plan: "ExecPlan",
    stree: "SupernodalTree | None" = None,
    *,
    name: str = "fused",
) -> ScheduleCertificate:
    """Statically certify a fused level program against its plan.

    Extends :func:`certify_plan` in three moves: first the plan itself is
    certified (a faithful compilation of a broken plan is still broken);
    then the program's flat layout, lane, scatter and gather vectors are
    decoded back against the plan's steps (rules ``schedule-program-*``);
    finally the plan's per-node effect summaries are re-tasked onto the
    level chain (:func:`repro.verify.effects.level_effects`) and crossed
    against the chain's happens-before — level ``i`` before ``i + 1``
    forward, reversed backward — proving the level barriers order every
    conflicting access.

    The certificate's ``digest`` is the *plan's* canonical digest: a
    certified program is proven to be a re-layout of exactly that
    schedule, so the fused backend earns the identical determinism
    certificate the threaded backend carries, for every worker count.
    """
    base = certify_plan(plan, stree, name=name)
    report = Report()
    report.extend(base.report)
    _check_program_structure(program, plan, report, name)

    nlev = len(program.levels)
    ndeps = [0 if i == 0 else 1 for i in range(nlev)]
    dependents = [[i + 1] if i + 1 < nlev else [] for i in range(nlev)]
    # Within a level, nodes of a valid program never conflict (columns
    # are disjoint, ancestors sit strictly higher); same-level hand-offs
    # are already rejected by schedule-program-level above, so ascending
    # node order stands in for the within-level program order.
    pos: dict[int, int] = {}
    counters: dict[int, int] = {}
    for s in range(program.nsuper):
        li = int(program.node_level[s])
        pos[s] = counters.get(li, 0)
        counters[li] = pos[s] + 1

    _check_phase_races(
        "forward", nlev, pos,
        level_effects(forward_effects(plan), program.node_level),
        ndeps, dependents, report, name,
    )
    bwd_ndeps = [0 if i == nlev - 1 else 1 for i in range(nlev)]
    bwd_dependents = [[i - 1] if i > 0 else [] for i in range(nlev)]
    _check_phase_races(
        "backward", nlev, pos,
        level_effects(backward_effects(plan), program.node_level),
        bwd_ndeps, bwd_dependents, report, name,
    )
    return ScheduleCertificate(
        digest=base.digest,
        report=report,
        nsuper=program.nsuper,
        ntasks=nlev,
    )


__all__ = [
    "CERT_SCHEMA",
    "ScheduleCertificate",
    "certify_level_program",
    "certify_plan",
    "plan_digest",
]
