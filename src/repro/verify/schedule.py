"""Static schedule certifier for the shared-memory execution plans.

:func:`certify_plan` takes an :class:`~repro.exec.plan.ExecPlan` (and
optionally the :class:`~repro.symbolic.stree.SupernodalTree` it was
built from) and *proves*, without executing anything, the three
properties the engine's docstrings promise:

1. **Race-freedom.**  The per-task read/write effect summaries of
   :mod:`repro.verify.effects` are crossed against the happens-before
   relation induced by the engine's dependency counting.  A dependency
   edge ``i -> d`` is *guaranteed* only when task ``d``'s counter equals
   its true in-degree — a smaller counter means ``d`` can start before
   some predecessor finished, so none of its in-edges order anything.
   Every conflicting effect pair (same space, overlapping rows, at least
   one write, different supernodes) must be ordered by the transitive
   closure of the guaranteed edges; read-after-write pairs must be
   ordered *writer-first*.
2. **Exactly-once coverage.**  The supernode column ranges tile
   ``0..n`` with no overlap and no gap (every solution row is written by
   exactly one node per sweep), and each child contribution buffer is
   consumed by exactly one scatter whose indices map the child's
   below-rows bijectively into the parent's trapezoid.
3. **Reduction-order determinism.**  Every node's child list ascends —
   the fixed reduction order that makes results bitwise identical for
   every worker count — and the certificate digest is a canonical hash
   over the steps, the ordered reduction lists, the scatter indices and
   the task topology, so two runs (any worker counts) can be checked
   for schedule equivalence by comparing two hex strings.

Findings use the shared :class:`~repro.verify.findings.Report`
machinery; rules are prefixed ``schedule-``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.verify.effects import (
    READ,
    WRITE,
    Effect,
    backward_effects,
    effect_conflicts,
    format_index_set,
    forward_effects,
)
from repro.verify.findings import Report
from repro.util.validation import require

if TYPE_CHECKING:
    from repro.exec.plan import ExecPlan
    from repro.symbolic.stree import SupernodalTree

#: Bumped whenever the canonical serialization behind the digest changes.
CERT_SCHEMA = "repro-schedule-cert/1"


@dataclass(frozen=True)
class ScheduleCertificate:
    """The certifier's verdict for one plan.

    ``digest`` is the determinism certificate: equal digests mean equal
    schedules (same steps, same reduction orders, same task topology),
    hence bitwise-equal results regardless of worker count.  ``report``
    carries every violated property; :attr:`ok` is True iff none.
    """

    digest: str
    report: Report
    nsuper: int
    ntasks: int

    @property
    def ok(self) -> bool:
        return self.report.ok


# ------------------------------------------------------------------ digest
def plan_digest(plan: "ExecPlan") -> str:
    """Canonical sha256 over the schedule-defining parts of *plan*.

    Covers: per-step column ranges, below-rows, ordered child
    (reduction) lists and scatter indices; per-task node lists; and the
    task parent topology.  Deliberately excludes the aggregation grain
    and anything runtime-dependent (worker counts never enter), so the
    digest is a pure function of the schedule's semantics.
    """
    h = hashlib.sha256(CERT_SCHEMA.encode())

    def put(values) -> None:
        h.update(np.ascontiguousarray(values, dtype=np.int64).tobytes())

    put([len(plan.steps), len(plan.tasks)])
    for st in plan.steps:
        put([st.s, st.col_lo, st.col_hi, st.t, st.n, len(st.children)])
        put(st.below)
        put(list(st.children))
        for idx in st.child_scatter:
            put([idx.size])
            put(idx)
    for task in plan.tasks:
        put([task.index, task.root, len(task.nodes)])
        put(list(task.nodes))
    put(plan.task_parent)
    return h.hexdigest()


# ------------------------------------------------------- structural checks
def _check_partition(plan: "ExecPlan", report: Report, name: str) -> None:
    """Each supernode must belong to exactly one task, listed ascending."""
    owner: dict[int, int] = {}
    for ti, task in enumerate(plan.tasks):
        if list(task.nodes) != sorted(task.nodes):
            report.add(
                "schedule-task-partition",
                f"task {ti} lists nodes {list(task.nodes)} out of ascending order",
                location=f"{name}/task {ti}",
            )
        for s in task.nodes:
            if s in owner:
                report.add(
                    "schedule-task-partition",
                    f"supernode {s} appears in tasks {owner[s]} and {ti}",
                    location=f"{name}/task {ti}",
                )
            owner[s] = ti
    missing = sorted(set(range(len(plan.steps))) - set(owner))
    if missing:
        report.add(
            "schedule-task-partition",
            f"supernodes {missing} belong to no task — they would never run",
            location=f"{name}/tasks",
        )


def _check_coverage(plan: "ExecPlan", report: Report, name: str, n: int) -> None:
    """The column ranges must tile ``[0, n)`` with no overlap and no gap."""
    ranges = sorted(
        (st.col_lo, st.col_hi, st.s) for st in plan.steps if st.col_hi > st.col_lo
    )
    cursor = 0
    for lo, hi, s in ranges:
        if lo < cursor:
            report.add(
                "schedule-coverage-overlap",
                f"columns [{lo}, {min(cursor, hi)}) are written by supernode {s} "
                "and by an earlier supernode — not exactly-once",
                location=f"{name}/supernode {s}",
            )
        elif lo > cursor:
            report.add(
                "schedule-coverage-gap",
                f"columns [{cursor}, {lo}) are owned by no supernode — never solved",
                location=f"{name}/columns",
            )
        cursor = max(cursor, hi)
    if cursor < n:
        report.add(
            "schedule-coverage-gap",
            f"columns [{cursor}, {n}) are owned by no supernode — never solved",
            location=f"{name}/columns",
        )


def _check_scatters(plan: "ExecPlan", report: Report, name: str) -> None:
    """Scatter indices must map each child's below-rows bijectively."""
    consumed: dict[int, int] = {}
    for st in plan.steps:
        loc = f"{name}/supernode {st.s}"
        rows = np.concatenate(
            [np.arange(st.col_lo, st.col_hi, dtype=np.int64), st.below]
        )
        if st.t != st.col_hi - st.col_lo or st.n != rows.size:
            report.add(
                "schedule-step-shape",
                f"supernode {st.s} declares t={st.t}, n={st.n} but its column "
                f"range and below-rows give t={st.col_hi - st.col_lo}, "
                f"n={rows.size}",
                location=loc,
            )
        if len(st.children) != len(st.child_scatter):
            report.add(
                "schedule-scatter-arity",
                f"supernode {st.s} has {len(st.children)} children but "
                f"{len(st.child_scatter)} scatter index arrays",
                location=loc,
            )
            continue
        for c, idx in zip(st.children, st.child_scatter):
            if c in consumed:
                report.add(
                    "schedule-duplicate-consumer",
                    f"contribution of supernode {c} is scattered by both "
                    f"supernode {consumed[c]} and supernode {st.s} — "
                    "it must be consumed exactly once",
                    location=loc,
                )
            consumed[c] = st.s
            child_below = plan.steps[c].below
            if idx.size != child_below.size:
                report.add(
                    "schedule-scatter-mismatch",
                    f"scatter for child {c} has {idx.size} indices but the "
                    f"child contributes {child_below.size} rows",
                    location=loc,
                )
                continue
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= rows.size):
                report.add(
                    "schedule-scatter-bounds",
                    f"scatter for child {c} indexes row {int(idx.max())} of a "
                    f"{rows.size}-row accumulator",
                    location=loc,
                )
                continue
            if idx.size >= 2 and np.any(np.diff(idx) <= 0):
                dup = int(idx[np.flatnonzero(np.diff(idx) <= 0)[0] + 1])
                report.add(
                    "schedule-scatter-overlap",
                    f"scatter for child {c} targets accumulator row {dup} "
                    "more than once (or out of order) — the fancy-indexed "
                    "`acc[idx] += u` would drop a contribution",
                    location=loc,
                )
                continue
            if not np.array_equal(rows[idx], child_below):
                bad = int(np.flatnonzero(rows[idx] != child_below)[0])
                report.add(
                    "schedule-scatter-mismatch",
                    f"scatter for child {c} maps its below-row "
                    f"{int(child_below[bad])} to parent row {int(rows[idx][bad])}"
                    " — the contribution lands on the wrong equation",
                    location=loc,
                )
    # Every node with below-rows produces a contribution that someone
    # must consume (forward) — except roots of the forest, which cannot
    # have below-rows in a well-formed factor.
    for st in plan.steps:
        if st.below.size and st.s not in consumed:
            report.add(
                "schedule-unconsumed-contrib",
                f"supernode {st.s} produces a {st.below.size}-row contribution "
                "that no scatter consumes — its updates are lost",
                location=f"{name}/supernode {st.s}",
            )


def _check_reduction_order(plan: "ExecPlan", report: Report, name: str) -> None:
    """Child lists must strictly ascend — the canonical reduction order."""
    for st in plan.steps:
        ch = list(st.children)
        if ch != sorted(set(ch)):
            report.add(
                "schedule-reduction-order",
                f"supernode {st.s} reduces children in order {ch} — not "
                "strictly ascending, so the floating-point sum depends on "
                "the plan, not on the structure",
                location=f"{name}/supernode {st.s}",
            )


def _check_tree(plan: "ExecPlan", stree: "SupernodalTree", report: Report, name: str) -> None:
    """The plan's steps must agree with the assembly tree they claim to run."""
    if len(plan.steps) != stree.nsuper:
        report.add(
            "schedule-tree-mismatch",
            f"plan has {len(plan.steps)} steps but the tree has "
            f"{stree.nsuper} supernodes",
            location=f"{name}/steps",
        )
        return
    for st in plan.steps:
        sn = stree.supernodes[st.s]
        loc = f"{name}/supernode {st.s}"
        if (st.col_lo, st.col_hi) != (sn.col_lo, sn.col_hi):
            report.add(
                "schedule-tree-mismatch",
                f"supernode {st.s} covers columns [{st.col_lo}, {st.col_hi}) "
                f"in the plan but [{sn.col_lo}, {sn.col_hi}) in the tree",
                location=loc,
            )
        if not np.array_equal(st.below, sn.below):
            report.add(
                "schedule-tree-mismatch",
                f"supernode {st.s}'s below-rows differ between plan and tree",
                location=loc,
            )
        if set(st.children) != set(stree.children[st.s]):
            report.add(
                "schedule-tree-mismatch",
                f"supernode {st.s} scatters children {sorted(st.children)} "
                f"but the assembly tree gives {sorted(stree.children[st.s])}",
                location=loc,
            )


# ------------------------------------------------------ happens-before
def _guaranteed_reachability(
    ntasks: int,
    ndeps: Sequence[int],
    dependents: Sequence[Sequence[int]],
    report: Report,
    name: str,
    phase: str,
) -> np.ndarray | None:
    """Transitive closure of the *guaranteed* dependency edges.

    The engine starts task ``d`` when its counter — initialized to
    ``ndeps[d]`` — reaches zero.  An edge ``i -> d`` therefore orders
    ``i`` before ``d`` only if the counter equals the true in-degree;
    a smaller counter lets ``d`` fire after a proper subset of its
    predecessors, so *no* in-edge is guaranteed, and a larger one means
    ``d`` (and everything after it) never runs.  Returns the boolean
    reachability matrix, or ``None`` when the guaranteed edges contain a
    cycle (reported; race analysis is skipped — nothing would run).
    """
    loc = f"{name}/{phase}"
    in_deg = [0] * ntasks
    for i in range(ntasks):
        for d in dependents[i]:
            in_deg[d] += 1
    guaranteed = [True] * ntasks
    for d in range(ntasks):
        if ndeps[d] == in_deg[d]:
            continue
        guaranteed[d] = False
        if ndeps[d] > in_deg[d]:
            report.add(
                "schedule-dep-count",
                f"[{phase}] task {d} waits for {ndeps[d]} predecessors but "
                f"only {in_deg[d]} tasks signal it — it would stall forever",
                location=loc,
            )
        else:
            report.add(
                "schedule-dep-count",
                f"[{phase}] task {d} waits for only {ndeps[d]} of its "
                f"{in_deg[d]} predecessors — it can start before the rest "
                "finish, so none of its dependency edges order anything",
                location=loc,
            )

    # Kahn order over every edge (guaranteed or not) to detect cycles and
    # to get a topological sequence for closure propagation.
    counts = list(in_deg)
    order = [i for i in range(ntasks) if counts[i] == 0]
    head = 0
    while head < len(order):
        i = order[head]
        head += 1
        for d in dependents[i]:
            counts[d] -= 1
            if counts[d] == 0:
                order.append(d)
    if len(order) != ntasks:
        stuck = sorted(set(range(ntasks)) - set(order))
        report.add(
            "schedule-cycle",
            f"[{phase}] tasks {stuck} form a dependency cycle — the engine "
            "would stall before running them",
            location=loc,
        )
        return None

    reach = np.zeros((ntasks, ntasks), dtype=bool)
    np.fill_diagonal(reach, True)
    for i in reversed(order):
        for d in dependents[i]:
            if guaranteed[d]:
                reach[i] |= reach[d]
    return reach


def _check_phase_races(
    phase: str,
    plan: "ExecPlan",
    effects: list[Effect],
    ndeps: Sequence[int],
    dependents: Sequence[Sequence[int]],
    report: Report,
    name: str,
) -> None:
    """Prove every conflicting effect pair of one sweep is ordered."""
    reach = _guaranteed_reachability(
        plan.ntasks, ndeps, dependents, report, name, phase
    )
    if reach is None:
        return

    # Program order inside a task: the forward sweep walks nodes
    # ascending, the backward sweep descending.
    pos: dict[int, int] = {}
    for task in plan.tasks:
        nodes = task.nodes if phase == "forward" else tuple(reversed(task.nodes))
        for k, s in enumerate(nodes):
            pos[s] = k

    loc = f"{name}/{phase}"
    for a, b, overlap in effect_conflicts(effects):
        if a.task == b.task:
            # Sequential within one worker; only the read-after-write
            # direction can still be wrong.
            if {a.mode, b.mode} == {READ, WRITE}:
                w, r = (a, b) if a.mode == WRITE else (b, a)
                if pos.get(w.node, 0) > pos.get(r.node, 0):
                    report.add(
                        "schedule-stale-read",
                        f"[{phase}] within task {a.task}: {r.describe()} runs "
                        f"before {w.describe()} — it reads stale values",
                        location=loc,
                    )
            continue
        a_before_b = bool(reach[a.task, b.task])
        b_before_a = bool(reach[b.task, a.task])
        if not a_before_b and not b_before_a:
            report.add(
                "schedule-race",
                f"[{phase}] tasks {a.task} and {b.task} are unordered but "
                f"conflict on rows {format_index_set(overlap)}: "
                f"{a.describe()} vs {b.describe()}",
                location=loc,
            )
        elif {a.mode, b.mode} == {READ, WRITE}:
            w, r = (a, b) if a.mode == WRITE else (b, a)
            if reach[r.task, w.task]:
                report.add(
                    "schedule-stale-read",
                    f"[{phase}] task {r.task} is ordered *before* task "
                    f"{w.task} yet {r.describe()} depends on {w.describe()}",
                    location=loc,
                )


# ------------------------------------------------------------------ public
def certify_plan(
    plan: "ExecPlan",
    stree: "SupernodalTree | None" = None,
    *,
    nrhs: int = 1,
    name: str = "plan",
) -> ScheduleCertificate:
    """Statically certify one execution plan; never raises on bad plans.

    Runs every structural proof (task partition, exactly-once column
    coverage, scatter bijectivity, canonical reduction order, optional
    assembly-tree cross-check) and the happens-before race analysis for
    both sweeps, then computes the determinism digest.  ``nrhs`` is the
    right-hand-side width the plan will be run with; every task accesses
    all columns of the block, so the effect summaries — and therefore
    the findings and the digest — are provably identical for every
    ``nrhs >= 1`` (the parameter exists so callers can certify the exact
    workload they run).

    Callers that want fail-fast semantics use
    ``certify_plan(...).report.raise_if_errors()``.
    """
    require(nrhs >= 1, f"nrhs must be >= 1, got {nrhs!r}")
    report = Report()
    n = stree.n if stree is not None else max(
        (st.col_hi for st in plan.steps), default=0
    )
    _check_partition(plan, report, name)
    _check_coverage(plan, report, name, n)
    _check_scatters(plan, report, name)
    _check_reduction_order(plan, report, name)
    if stree is not None:
        _check_tree(plan, stree, report, name)

    fwd_ndeps, fwd_dependents = plan.forward_deps()
    _check_phase_races(
        "forward", plan, forward_effects(plan), fwd_ndeps, fwd_dependents,
        report, name,
    )
    bwd_ndeps, bwd_dependents = plan.backward_deps()
    _check_phase_races(
        "backward", plan, backward_effects(plan), bwd_ndeps, bwd_dependents,
        report, name,
    )
    return ScheduleCertificate(
        digest=plan_digest(plan),
        report=report,
        nsuper=len(plan.steps),
        ntasks=plan.ntasks,
    )


__all__ = [
    "CERT_SCHEMA",
    "ScheduleCertificate",
    "certify_plan",
    "plan_digest",
]
