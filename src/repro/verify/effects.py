"""Read/write effect summaries for execution-plan tasks.

The shared-memory engine (:mod:`repro.exec.engine`) runs an
:class:`~repro.exec.plan.ExecPlan` by dependency counting; its
correctness argument is that no two concurrent tasks ever touch the same
memory.  This module makes that argument checkable: it derives, purely
from the plan's column ranges and scatter indices, exactly which
locations every task reads and writes in each sweep.

Three address spaces cover everything the engine's hot loops touch (the
right-hand-side *column* dimension is never split across tasks — every
access spans all ``nrhs`` columns — so row indices alone discriminate):

``("x",)``
    The shared solution block, indexed by global row ``0..n-1``.  The
    forward sweep reads and writes each supernode's own column range;
    the backward sweep additionally reads the ancestor rows ``below``.
``("contrib", c)``
    Supernode ``c``'s contribution buffer, indexed by the *global* rows
    it updates (``c``'s below-rows).  Written once by the task running
    ``c``, read once by the task running ``c``'s parent (the scatter).
``("acc", s)``
    Supernode ``s``'s local accumulator, indexed by local trapezoid row.
    Private to the node by construction — it appears in summaries so
    scatter indices can be bounds-checked against the trapezoid height.

:func:`effect_conflicts` then reports every pair of effects from
*different* supernodes that overlaps on a space with at least one write
— the exact pair set the happens-before check in
:mod:`repro.verify.schedule` must prove ordered.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.exec.plan import ExecPlan

FORWARD = "forward"
BACKWARD = "backward"
READ = "read"
WRITE = "write"

#: The shared solution block (rows of ``x`` / ``y``).
X_SPACE: tuple = ("x",)


def contrib_space(node: int) -> tuple:
    """The contribution buffer produced by supernode *node*."""
    return ("contrib", int(node))


def acc_space(node: int) -> tuple:
    """The node-local accumulator of supernode *node*."""
    return ("acc", int(node))


@dataclass(frozen=True)
class Effect:
    """One read or write of one index set in one address space.

    ``task`` is the executing task, ``node`` the supernode whose step
    performs the access, ``rows`` the sorted affected indices (global
    rows for ``x``/``contrib`` spaces, local trapezoid rows for ``acc``).
    """

    task: int
    node: int
    phase: str
    mode: str
    space: tuple
    rows: np.ndarray

    def describe(self) -> str:
        space = self.space[0] if self.space == X_SPACE else f"{self.space[0]}[{self.space[1]}]"
        return (
            f"{self.mode} of {space} rows {format_index_set(self.rows)} "
            f"by supernode {self.node} (task {self.task})"
        )


def _cols(lo: int, hi: int) -> np.ndarray:
    return np.arange(lo, hi, dtype=np.int64)


def forward_effects(plan: "ExecPlan") -> list[Effect]:
    """Effect summary of the forward sweep (``L y = b``), task by task.

    Mirrors ``repro.exec.engine._forward_mat`` exactly: each node reads
    its own slice of ``y`` and every child's contribution buffer,
    scatters into its private accumulator, writes its own ``y`` slice
    back, and (when it has below-rows) writes its own contribution
    buffer.  The consumer's ``contrib[c] = None`` release is not
    modelled — it is covered by the read it follows.
    """
    out: list[Effect] = []
    for ti, task in enumerate(plan.tasks):
        for s in task.nodes:
            st = plan.steps[s]
            if st.t:
                cols = _cols(st.col_lo, st.col_hi)
                out.append(Effect(ti, s, FORWARD, READ, X_SPACE, cols))
                out.append(Effect(ti, s, FORWARD, WRITE, X_SPACE, cols))
            for c, idx in zip(st.children, st.child_scatter):
                out.append(
                    Effect(ti, s, FORWARD, READ, contrib_space(c), plan.steps[c].below)
                )
                out.append(Effect(ti, s, FORWARD, WRITE, acc_space(s), np.sort(idx)))
            if st.n > st.t:
                out.append(Effect(ti, s, FORWARD, WRITE, contrib_space(s), st.below))
    return out


def backward_effects(plan: "ExecPlan") -> list[Effect]:
    """Effect summary of the backward sweep (``L^T x = y``), task by task.

    Mirrors ``repro.exec.engine._backward_mat``: each node gathers the
    already-solved ancestor rows ``x[below]``, then solves and writes its
    own column range.  No contribution buffers exist in this sweep.
    """
    out: list[Effect] = []
    for ti, task in enumerate(plan.tasks):
        for s in task.nodes:
            st = plan.steps[s]
            if not st.t:
                continue
            cols = _cols(st.col_lo, st.col_hi)
            if st.n > st.t:
                out.append(Effect(ti, s, BACKWARD, READ, X_SPACE, st.below))
            out.append(Effect(ti, s, BACKWARD, READ, X_SPACE, cols))
            out.append(Effect(ti, s, BACKWARD, WRITE, X_SPACE, cols))
    return out


def level_effects(effects: list[Effect], node_level: np.ndarray) -> list[Effect]:
    """Re-task an effect summary onto a level schedule.

    The fused backend (:mod:`repro.exec.fused`) executes one
    elimination-tree level per step, so its scheduling unit is the level,
    not the plan task.  Each node still performs exactly the accesses the
    plan summaries describe — the level program is a re-*layout* of the
    same schedule, not a different algorithm — so the fused summary is
    the plan summary with ``task`` replaced by the node's level.  The
    certifier crosses these against the level chain's happens-before
    (level ``i`` completes before level ``i + 1`` starts).
    """
    return [replace(e, task=int(node_level[e.node])) for e in effects]


def effect_conflicts(
    effects: list[Effect],
) -> list[tuple[Effect, Effect, np.ndarray]]:
    """Every conflicting effect pair, with the overlapping index set.

    Two effects conflict when they name the same space, come from
    different supernodes, overlap on at least one index, and at least
    one of them is a write.  Pairs within one supernode are excluded:
    a node's own read-then-write sequence (and the legitimate ``+=``
    scatter reduction into its accumulator) is sequential by
    construction.  Same-*task* pairs across different nodes are
    included — the schedule checker validates their program order.
    """
    by_space: dict[tuple, list[Effect]] = {}
    for e in effects:
        by_space.setdefault(e.space, []).append(e)
    out: list[tuple[Effect, Effect, np.ndarray]] = []
    for effs in by_space.values():
        for i, a in enumerate(effs):
            a_lo = int(a.rows[0]) if a.rows.size else 0
            a_hi = int(a.rows[-1]) if a.rows.size else -1
            for b in effs[i + 1 :]:
                if a.node == b.node or (a.mode == READ and b.mode == READ):
                    continue
                if not b.rows.size or not a.rows.size:
                    continue
                # Cheap bounding-interval rejection before the exact test.
                if int(b.rows[-1]) < a_lo or int(b.rows[0]) > a_hi:
                    continue
                overlap = np.intersect1d(a.rows, b.rows)
                if overlap.size:
                    out.append((a, b, overlap))
    return out


def format_index_set(rows: np.ndarray) -> str:
    """Compact run-length rendering of a sorted index set: ``[3..7, 12]``."""
    if rows.size == 0:
        return "[]"
    parts: list[str] = []
    start = prev = int(rows[0])
    for r in rows[1:]:
        r = int(r)
        if r == prev + 1:
            prev = r
            continue
        parts.append(f"{start}..{prev}" if prev > start else f"{start}")
        start = prev = r
    parts.append(f"{start}..{prev}" if prev > start else f"{start}")
    return "[" + ", ".join(parts) + "]"


__all__ = [
    "BACKWARD",
    "FORWARD",
    "READ",
    "WRITE",
    "X_SPACE",
    "Effect",
    "acc_space",
    "backward_effects",
    "contrib_space",
    "effect_conflicts",
    "format_index_set",
    "forward_effects",
    "level_effects",
]
