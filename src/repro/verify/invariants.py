"""Structural invariant checkers for the solver's core data structures.

The pipelined solvers (paper Figures 3-4) and the subtree-to-subcube
mapping are correct only under ordering invariants that used to be
checked implicitly (or not at all) deep inside a simulation run.  Each
checker here validates one of them *statically*, in near-linear time,
and reports every violation with the rule id and location instead of
raising on the first:

* :func:`check_csc_arrays` / :func:`check_csc` — CSC well-formedness for
  :class:`~repro.sparse.csc.SymCSC` / :class:`~repro.sparse.csc.LowerCSC`
  (monotone ``indptr``, in-range sorted row indices, no duplicates,
  diagonal-first columns, lower-triangularity).
* :func:`check_etree` — elimination-tree validity: ``parent[j] > j`` or
  root, which also implies acyclicity.
* :func:`check_postordered` — subtree contiguity: every node's
  descendants occupy exactly ``[j - size(j) + 1, j]``, the property the
  supernode detector and subtree-to-subcube mapping both require.
* :func:`check_supernode_partition` — partition boundaries cover the
  columns and every supernode is a parent chain in the etree.
* :func:`check_assignment` — subtree-to-subcube conformance: one
  :class:`~repro.mapping.subtree_subcube.ProcSet` per supernode, inside
  the machine, each child's set contained in its parent's.
* :func:`check_block_cyclic_conformance` — the block-cyclic trapezoid
  layout of every shared supernode tiles the storage rows exactly,
  aligned to the triangle boundary, with every block owner a member of
  the supernode's processor set.

All functions return a :class:`~repro.verify.findings.Report`; use
``report.raise_if_errors()`` for fail-fast call sites.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import SupernodeBlocks
from repro.mapping.subtree_subcube import ProcSet
from repro.sparse.csc import LowerCSC, SymCSC
from repro.symbolic.etree import NO_PARENT
from repro.symbolic.stree import SupernodalTree
from repro.symbolic.supernodes import SupernodePartition
from repro.verify.findings import Report

_MAX_PER_RULE = 10  # cap repeated findings so huge bad inputs stay readable


class _Capped:
    """Append findings to a report, capping repeats of the same rule."""

    def __init__(self, report: Report, name: str):
        self.report = report
        self.name = name
        self.counts: dict[str, int] = {}

    def add(self, rule: str, message: str, *, location: str | None = None) -> None:
        c = self.counts.get(rule, 0)
        self.counts[rule] = c + 1
        if c < _MAX_PER_RULE:
            self.report.add(rule, message, location=location or self.name)
        elif c == _MAX_PER_RULE:
            self.report.add(rule, "further violations suppressed", location=self.name)


# ----------------------------------------------------------------- CSC shape
def check_csc_arrays(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray | None = None,
    *,
    diagonal_first: bool = True,
    name: str = "csc",
) -> Report:
    """Validate raw CSC arrays describing a lower-triangular pattern.

    Operates on bare arrays (not a constructed matrix object) so that
    inputs the :class:`~repro.sparse.csc.SymCSC` constructor would reject
    outright can still be fully diagnosed.
    """
    report = Report()
    out = _Capped(report, name)
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    if indptr.ndim != 1 or indptr.shape[0] != n + 1:
        out.add("csc-indptr-shape", f"indptr must have length n+1={n + 1}, got shape {indptr.shape}")
        return report
    if int(indptr[0]) != 0:
        out.add("csc-indptr-start", f"indptr[0] must be 0, got {int(indptr[0])}")
    steps = np.diff(indptr)
    for j in np.nonzero(steps < 0)[0]:
        out.add(
            "csc-indptr-monotone",
            f"indptr decreases at column {int(j)}: "
            f"{int(indptr[j])} -> {int(indptr[j + 1])}",
            location=f"{name} column {int(j)}",
        )
    nnz = int(indptr[-1])
    if indices.shape[0] != nnz:
        out.add(
            "csc-indices-length",
            f"indices length {indices.shape[0]} != indptr[-1] = {nnz}",
        )
        return report
    if data is not None and np.asarray(data).shape[0] != nnz:
        out.add("csc-data-length", f"data length {np.asarray(data).shape[0]} != nnz {nnz}")
    if nnz and (int(indices.min()) < 0 or int(indices.max()) >= n):
        bad = np.nonzero((indices < 0) | (indices >= n))[0]
        for k in bad[:_MAX_PER_RULE]:
            out.add(
                "csc-index-range",
                f"row index {int(indices[k])} out of range [0, {n}) at position {int(k)}",
            )
    if not report.ok:
        return report  # structure too broken for per-column checks
    for j in range(n):
        lo, hi = int(indptr[j]), int(indptr[j + 1])
        col = indices[lo:hi]
        if col.shape[0] == 0:
            continue
        where = f"{name} column {j}"
        if diagonal_first and int(col[0]) != j:
            out.add(
                "csc-diagonal-first",
                f"column {j} must start with its diagonal, got row {int(col[0])}",
                location=where,
            )
        if int(col.min()) < j:
            out.add(
                "csc-lower-triangular",
                f"column {j} contains row {int(col.min())} above the diagonal",
                location=where,
            )
        body = col[1:] if diagonal_first and int(col[0]) == j else col
        if body.shape[0] > 1 and not bool(np.all(np.diff(body) > 0)):
            if bool(np.any(np.diff(body) == 0)):
                out.add("csc-duplicate-index", f"column {j} has duplicate row indices", location=where)
            else:
                out.add("csc-sorted-indices", f"column {j} row indices are not sorted", location=where)
    return report


def check_csc(a: SymCSC | LowerCSC, *, name: str | None = None) -> Report:
    """Well-formedness of a constructed CSC matrix (both classes share the
    lower-triangular, diagonal-first column convention)."""
    label = name or type(a).__name__
    return check_csc_arrays(a.n, a.indptr, a.indices, a.data, name=label)


# ------------------------------------------------------------------- etrees
def check_etree(parent: np.ndarray, *, name: str = "etree") -> Report:
    """Elimination-tree validity: every parent strictly above its child."""
    report = Report()
    out = _Capped(report, name)
    parent = np.asarray(parent)
    n = parent.shape[0]
    for j in range(n):
        p = int(parent[j])
        if p != NO_PARENT and not (j < p < n):
            out.add(
                "etree-parent-order",
                f"parent[{j}] = {p} must be -1 or in ({j}, {n})",
                location=f"{name} node {j}",
            )
    return report


def check_postordered(parent: np.ndarray, *, name: str = "etree") -> Report:
    """Subtree contiguity: node ``j``'s descendants are exactly
    ``[j - size(j) + 1, j - 1]``.

    This is the postorder property that makes supernode columns and
    subtree-to-subcube subtrees contiguous column ranges.  A valid but
    non-postordered etree (e.g. ``parent = [2, 3, 3, -1]``) fails here
    while passing :func:`check_etree`.
    """
    report = Report()
    out = _Capped(report, name)
    parent = np.asarray(parent)
    structural = check_etree(parent, name=name)
    if not structural.ok:
        report.extend(structural)
        return report
    n = parent.shape[0]
    size = np.ones(n, dtype=np.int64)
    children: list[list[int]] = [[] for _ in range(n)]
    for j in range(n):
        p = int(parent[j])
        if p != NO_PARENT:
            size[p] += size[j]
            children[p].append(j)
    first = np.arange(n, dtype=np.int64) - size + 1  # candidate first descendant
    for j in range(n):
        lo = int(first[j])
        kids = sorted(children[j], key=lambda c: int(first[c]))
        cursor = lo
        for c in kids:
            if int(first[c]) != cursor:
                out.add(
                    "etree-not-postordered",
                    f"subtree of node {j} is not contiguous: child {c} covers "
                    f"[{int(first[c])}, {c}] but columns [{cursor}, ...] were "
                    "expected next",
                    location=f"{name} node {j}",
                )
                break
            cursor = c + 1
        else:
            if cursor != j:
                out.add(
                    "etree-not-postordered",
                    f"children of node {j} cover [{lo}, {cursor - 1}] but its "
                    f"subtree interval is [{lo}, {j - 1}]",
                    location=f"{name} node {j}",
                )
    return report


# --------------------------------------------------------------- supernodes
def check_supernode_partition(
    partition: SupernodePartition,
    parent: np.ndarray | None = None,
    *,
    n: int | None = None,
    name: str = "supernodes",
) -> Report:
    """Partition conformance: boundaries cover ``[0, n]`` and, when the
    etree is supplied, every supernode is a ``parent[j] == j + 1`` chain."""
    report = Report()
    out = _Capped(report, name)
    b = np.asarray(partition.boundaries)
    if n is not None and int(b[-1]) != n:
        out.add(
            "supernode-coverage",
            f"partition covers columns [0, {int(b[-1])}) but the matrix has {n}",
        )
    if parent is not None:
        parent = np.asarray(parent)
        if n is None and parent.shape[0] != int(b[-1]):
            out.add(
                "supernode-coverage",
                f"partition covers {int(b[-1])} columns but etree has {parent.shape[0]} nodes",
            )
        for s in range(partition.nsuper):
            lo, hi = partition.columns(s)
            hi = min(hi, parent.shape[0])
            for j in range(lo, hi - 1):
                if int(parent[j]) != j + 1:
                    out.add(
                        "supernode-chain",
                        f"supernode {s} spans columns [{lo}, {hi}) but "
                        f"parent[{j}] = {int(parent[j])} != {j + 1}: columns "
                        "are not an elimination-tree chain",
                        location=f"{name} supernode {s}",
                    )
                    break
    return report


# ----------------------------------------------------- subcube maps, layouts
def check_assignment(
    stree: SupernodalTree,
    assign: list[ProcSet],
    p: int,
    *,
    name: str = "assign",
) -> Report:
    """Subtree-to-subcube conformance of a supernode -> ProcSet map."""
    report = Report()
    out = _Capped(report, name)
    if len(assign) != stree.nsuper:
        out.add(
            "mapping-assignment-size",
            f"assignment has {len(assign)} entries for {stree.nsuper} supernodes",
        )
        return report
    for s, ps in enumerate(assign):
        where = f"{name} supernode {s}"
        if ps.start < 0 or ps.stop > p:
            out.add(
                "mapping-proc-range",
                f"supernode {s} assigned ranks [{ps.start}, {ps.stop}) outside "
                f"the {p}-processor machine",
                location=where,
            )
        parent = int(stree.parent[s])
        if parent != NO_PARENT:
            pp = assign[parent]
            if not (pp.start <= ps.start and ps.stop <= pp.stop):
                out.add(
                    "mapping-subcube-containment",
                    f"supernode {s} runs on ranks [{ps.start}, {ps.stop}) but "
                    f"its parent {parent} owns [{pp.start}, {pp.stop}): "
                    "subtree-to-subcube requires child subcubes inside the "
                    "parent's",
                    location=where,
                )
    return report


def check_block_cyclic_conformance(
    stree: SupernodalTree,
    assign: list[ProcSet],
    b: int,
    *,
    name: str = "layout",
) -> Report:
    """Block-cyclic layout conformance for every shared supernode.

    Rebuilds each shared supernode's :class:`SupernodeBlocks` and checks
    that the row blocks tile ``[0, t)`` then ``[t, n)`` exactly (triangle
    aligned, no gaps or overlaps, no block wider than *b*) and that every
    block owner is a member of the supernode's processor set.
    """
    report = Report()
    out = _Capped(report, name)
    if len(assign) != stree.nsuper:
        out.add(
            "mapping-assignment-size",
            f"assignment has {len(assign)} entries for {stree.nsuper} supernodes",
        )
        return report
    for s, sn in enumerate(stree.supernodes):
        ps = assign[s]
        if ps.size <= 1:
            continue
        where = f"{name} supernode {s}"
        try:
            blocks = SupernodeBlocks(n=sn.n, t=sn.t, b=b, procs=ps)
            nblocks = blocks.nblocks
        except ValueError as exc:
            out.add("layout-invalid", f"supernode {s}: {exc}", location=where)
            continue
        cursor = 0
        for k in range(nblocks):
            lo, hi = blocks.bounds(k)
            expected_start = sn.t if k == blocks.n_tri_blocks else cursor
            if lo != expected_start or hi <= lo or hi - lo > b:
                out.add(
                    "layout-block-tiling",
                    f"supernode {s} block {k} covers [{lo}, {hi}) but "
                    f"[{expected_start}, ...] was expected (b={b}, t={sn.t}, n={sn.n})",
                    location=where,
                )
                break
            if blocks.is_triangle(k) and hi > sn.t:
                out.add(
                    "layout-triangle-alignment",
                    f"supernode {s} triangle block {k} crosses the triangle "
                    f"boundary t={sn.t}",
                    location=where,
                )
                break
            owner = blocks.owner(k)
            if owner not in ps:
                out.add(
                    "layout-owner-range",
                    f"supernode {s} block {k} owned by rank {owner} outside "
                    f"processor set [{ps.start}, {ps.stop})",
                    location=where,
                )
            cursor = hi
        else:
            if cursor != sn.n:
                out.add(
                    "layout-block-tiling",
                    f"supernode {s} blocks cover [0, {cursor}) of {sn.n} storage rows",
                    location=where,
                )
    return report


# ------------------------------------------------------------ whole pipeline
def check_symbolic(sym, *, name: str = "symbolic") -> Report:
    """All structural invariants of one symbolic factorization, in order."""
    report = Report()
    report.extend(check_csc(sym.a_perm, name=f"{name}.a_perm"))
    report.extend(check_etree(sym.etree_parent, name=f"{name}.etree"))
    report.extend(check_postordered(sym.etree_parent, name=f"{name}.etree"))
    report.extend(
        check_csc_arrays(
            sym.n, sym.l_indptr, sym.l_indices, name=f"{name}.L-pattern"
        )
    )
    report.extend(
        check_supernode_partition(
            sym.partition, sym.etree_parent, n=sym.n, name=f"{name}.partition"
        )
    )
    return report
