"""Repo-specific AST lint rules, runnable as ``python -m repro.verify``.

Rules (all locations are ``path:line``):

* ``lint-unseeded-random`` — ``np.random.default_rng()`` called without a
  seed, or any legacy ``np.random.<fn>`` global-state call.  Outside the
  matrix generators (``sparse/generators.py``) every random stream in
  this repo must be explicitly seeded: the simulator's determinism
  guarantee (and every regression baseline) depends on it.
* ``lint-csc-mutation`` — in-place mutation of CSC index arrays
  (``x.indptr[...] = ...``, ``x.indices.sort()``, ...).  ``SymCSC`` /
  ``LowerCSC`` are frozen contracts shared across the symbolic, mapping
  and numeric layers; mutating their index arrays invalidates every
  derived structure (etree, supernodes, layouts) silently.
* ``lint-bare-assert`` — ``assert`` without a message in ``src/``.
  Asserts vanish under ``python -O`` and a bare one gives no diagnostic;
  hot-path invariants must either use :func:`repro.util.validation.require`
  or carry a message.
* ``lint-unused-import`` (warning) — imported name never referenced
  (names re-exported via ``__all__`` and ``__future__`` imports are
  exempt; a trailing ``# noqa`` comment suppresses any rule on its line).

The checker is a plain :mod:`ast` walk — no third-party linter needed —
so the repo-wide gate runs anywhere the package itself runs.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.verify.findings import Report, Severity

#: Legacy ``np.random`` attributes that use (or seed) hidden global state.
_LEGACY_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "normal",
        "uniform",
        "choice",
        "shuffle",
        "permutation",
        "standard_normal",
        "RandomState",
    }
)

#: ndarray methods that mutate in place when called on an index array.
_MUTATING_METHODS = frozenset({"sort", "fill", "put", "resize", "partition", "setfield"})

#: Attribute names that hold CSC index arrays across this codebase.
_CSC_INDEX_ATTRS = frozenset({"indptr", "indices"})

#: Modules allowed to draw from np.random freely (they own the seeds).
_RANDOM_EXEMPT_SUFFIXES = ("sparse/generators.py",)


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


class _Linter(ast.NodeVisitor):
    def __init__(self, filename: str, source: str, report: Report):
        self.filename = filename
        self.report = report
        self.lines = source.splitlines()
        self.numpy_aliases: set[str] = {"np", "numpy"}
        self.random_exempt = filename.replace("\\", "/").endswith(_RANDOM_EXEMPT_SUFFIXES)
        # import tracking for the unused-import rule
        self.imported: dict[str, tuple[int, str]] = {}  # alias -> (line, shown name)
        self.used_names: set[str] = set()
        self.exported: set[str] = set()

    # ------------------------------------------------------------- helpers
    def _suppressed(self, line: int) -> bool:
        if 1 <= line <= len(self.lines):
            return "# noqa" in self.lines[line - 1]
        return False

    def _add(self, rule: str, line: int, message: str, *, warning: bool = False) -> None:
        if self._suppressed(line):
            return
        self.report.add(
            rule,
            message,
            location=f"{self.filename}:{line}",
            severity=Severity.WARNING if warning else Severity.ERROR,
        )

    # ------------------------------------------------------------- imports
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            if alias.name in ("numpy",):
                self.numpy_aliases.add(name)
            self.imported[name] = (node.lineno, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            name = alias.asname or alias.name
            self.imported[name] = (node.lineno, f"{node.module or ''}.{alias.name}")

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used_names.add(node.id)
        self.generic_visit(node)

    def _collect_annotation_names(self, annotation: ast.AST | None) -> None:
        """Count names inside string ('forward-reference') annotations as used."""
        if annotation is None:
            return
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                try:
                    expr = ast.parse(sub.value, mode="eval")
                except SyntaxError:
                    continue
                for name in ast.walk(expr):
                    if isinstance(name, ast.Name):
                        self.used_names.add(name.id)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._collect_annotation_names(node.returns)
        for arg in (
            node.args.args
            + node.args.posonlyargs
            + node.args.kwonlyargs
            + [a for a in (node.args.vararg, node.args.kwarg) if a is not None]
        ):
            self._collect_annotation_names(arg.annotation)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._collect_annotation_names(node.annotation)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # __all__ = [...] marks re-exports as used.
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                self.exported.update(
                    elt.value
                    for elt in ast.walk(node.value)
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                )
        self._check_store_mutation(node.targets, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_mutation([node.target], node.lineno)
        self.generic_visit(node)

    # ------------------------------------------------------ rule: np.random
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if len(chain) >= 3 and chain[0] in self.numpy_aliases and chain[1] == "random":
            tail = chain[2]
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    self._add(
                        "lint-unseeded-random",
                        node.lineno,
                        "np.random.default_rng() without a seed breaks the "
                        "simulator's determinism guarantee; pass an explicit seed",
                    )
            elif tail in _LEGACY_RANDOM and not self.random_exempt:
                self._add(
                    "lint-unseeded-random",
                    node.lineno,
                    f"np.random.{tail} uses hidden global random state; use a "
                    "seeded np.random.default_rng(seed) generator",
                )
        # x.indices.sort() and friends
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr in _CSC_INDEX_ATTRS
        ):
            self._add(
                "lint-csc-mutation",
                node.lineno,
                f"in-place .{node.func.attr}() on a CSC '{node.func.value.attr}' "
                "array; CSC structures are immutable contracts — rebuild via "
                "repro.sparse.build instead",
            )
        self.generic_visit(node)

    # -------------------------------------------------- rule: csc mutation
    def _check_store_mutation(self, targets: Sequence[ast.AST], line: int) -> None:
        for target in targets:
            for sub in ast.walk(target):  # type: ignore[arg-type]
                if (
                    isinstance(sub, ast.Subscript)
                    and isinstance(sub.value, ast.Attribute)
                    and sub.value.attr in _CSC_INDEX_ATTRS
                ):
                    self._add(
                        "lint-csc-mutation",
                        line,
                        f"element store into a CSC '{sub.value.attr}' array; "
                        "CSC structures are immutable contracts — rebuild via "
                        "repro.sparse.build instead",
                    )

    # ---------------------------------------------------- rule: bare assert
    def visit_Assert(self, node: ast.Assert) -> None:
        if node.msg is None:
            self._add(
                "lint-bare-assert",
                node.lineno,
                "bare assert in src/ (vanishes under -O and gives no "
                "diagnostic); use repro.util.validation.require(cond, msg) "
                "or add a message",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------ finishing
    def finish(self) -> None:
        for name, (line, shown) in self.imported.items():
            if name.startswith("_"):
                continue
            if name in self.used_names or name in self.exported:
                continue
            self._add(
                "lint-unused-import",
                line,
                f"'{shown}' imported but unused",
                warning=True,
            )


def lint_source(source: str, filename: str = "<string>") -> Report:
    """Lint one source string; *filename* is used for rule exemptions and
    finding locations."""
    report = Report()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.add(
            "lint-syntax-error",
            f"cannot parse: {exc.msg}",
            location=f"{filename}:{exc.lineno or 0}",
        )
        return report
    linter = _Linter(filename, source, report)
    linter.visit(tree)
    linter.finish()
    return report


def lint_file(path: str | Path) -> Report:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_paths(paths: Iterable[str | Path]) -> Report:
    """Lint every ``.py`` file under the given files/directories."""
    report = Report()
    for entry in paths:
        p = Path(entry)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            report.extend(lint_file(f))
    return report
