"""Seeded corpus of known-bad inputs for the verification gate.

Every case here is a miniature, deterministic reproduction of a real bug
class in this codebase's domain — a deadlocking SPMD schedule, a
non-postordered elimination tree, a malformed CSC matrix, a layout /
supernode-partition mismatch, a forbidden source construct.  The gate
(``python -m repro.verify --corpus bad``) runs each case through the
matching checker and requires that (a) at least one ERROR finding is
produced and (b) the expected rule fires — so the corpus doubles as an
end-to-end self-test that the checkers still catch what they were built
to catch.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Generator

import numpy as np

from repro.machine.events import TaskGraph
from repro.machine.spmd import Env
from repro.mapping.subtree_subcube import ProcSet
from repro.symbolic.supernodes import SupernodePartition
from repro.verify.comm import lint_spmd, lint_task_graph
from repro.verify.findings import Report
from repro.verify.invariants import (
    check_assignment,
    check_block_cyclic_conformance,
    check_csc_arrays,
    check_postordered,
    check_supernode_partition,
)
from repro.verify.lint import lint_source


@dataclass(frozen=True)
class BadCase:
    """One known-bad input: run it, get a report that must contain errors."""

    name: str
    description: str
    expect_rules: frozenset[str]
    run: Callable[[], Report]


# ------------------------------------------------------------ SPMD programs
def _head_to_head(rank: int, env: Env) -> Generator:
    """Both ranks receive before sending: the canonical deadlock cycle."""
    other = 1 - rank
    _ = yield env.recv(other, tag=7)
    yield env.send(other, data=rank, words=1, tag=7)


def _orphan_send(rank: int, env: Env) -> Generator:
    """Rank 0 posts a message nobody ever receives."""
    if rank == 0:
        yield env.send(1, data="orphan", words=4, tag=3)
    yield env.compute(seconds=0.0)


def _tag_skew(rank: int, env: Env) -> Generator:
    """Sender and receiver disagree on the tag: blocked recv + stale message."""
    if rank == 0:
        yield env.send(1, data=42, words=1, tag=1)
    else:
        _ = yield env.recv(0, tag=2)


def _racy_channel(rank: int, env: Env) -> Generator:
    """Two in-flight messages on one channel when the first recv matches."""
    if rank == 0:
        yield env.send(1, data="a", words=1, tag=5)
        yield env.send(1, data="b", words=1, tag=5)
        yield env.recv(1, tag=6)
    else:
        first = yield env.recv(0, tag=5)
        _ = yield env.recv(0, tag=5)
        yield env.send(0, data=first, words=1, tag=6)


def _barrier_skip(rank: int, env: Env) -> Generator:
    """Rank 1 exits before the barrier rank 0 waits at."""
    if rank == 0:
        yield env.barrier()
    else:
        yield env.compute(seconds=0.0)


# ------------------------------------------------------- structural inputs
def _bad_csc() -> Report:
    # Decreasing indptr, an out-of-range row, and a column led by a
    # non-diagonal entry — three distinct malformations in one matrix.
    indptr = np.array([0, 2, 1, 4])
    indices = np.array([0, 2, 1, 9])
    return check_csc_arrays(3, indptr, indices, name="bad-csc")


def _bad_etree() -> Report:
    # Valid etree (parents above children) whose subtrees interleave:
    # node 0 hangs under 2 while node 1 hangs under 3, so the subtree of
    # 2 is {0, 2} — not a contiguous column range.
    parent = np.array([2, 3, 3, -1])
    return check_postordered(parent, name="bad-etree")


def _bad_partition() -> Report:
    # Supernode {0,1,2} claims a chain but parent[1] jumps to node 4.
    parent = np.array([1, 4, 3, 4, -1])
    partition = SupernodePartition(np.array([0, 3, 5]))
    return check_supernode_partition(partition, parent, n=5, name="bad-partition")


def _bad_mapping() -> Report:
    from repro.sparse.generators import grid2d_laplacian
    from repro.symbolic.analyze import analyze

    sym = analyze(grid2d_laplacian(4))
    stree = sym.stree
    # Child subcubes escape their parents' and the 2-processor machine:
    # every supernode pinned to a different, non-nested range.
    assign = [ProcSet(s % 3, 2) for s in range(stree.nsuper)]
    report = check_assignment(stree, assign, 2, name="bad-mapping")
    report.extend(check_block_cyclic_conformance(stree, assign, b=2, name="bad-mapping"))
    return report


def _cyclic_graph() -> Report:
    g = TaskGraph(nproc=2)
    a = g.add_task(0, 1.0, label="a")
    b = g.add_task(1, 1.0, label="b")
    c = g.add_task(0, 1.0, label="c")
    g.add_edge(a, b)
    g.add_edge(b, c)
    g.add_edge(c, a)  # cycle: the simulator would stall at runtime
    return lint_task_graph(g)


# ----------------------------------------------------- execution-plan mutants
def _plan_and_tree():
    """A small pristine execution plan to mutate (grid2d(5), grain 64)."""
    from repro.exec.plan import build_plan
    from repro.sparse.generators import grid2d_laplacian
    from repro.symbolic.analyze import analyze

    sym = analyze(grid2d_laplacian(5))
    return build_plan(sym.stree, grain=64), sym.stree


def _certify(plan, stree) -> Report:
    from repro.verify.schedule import certify_plan

    return certify_plan(plan, stree).report


def _plan_dropped_dependency() -> Report:
    # Remove one child task from a parent's dependency list: the parent's
    # forward counter under-counts, so it can start before that child has
    # published its contribution — a latent data race.
    plan, stree = _plan_and_tree()
    task_children = [list(c) for c in plan.task_children]
    tp = next(i for i in range(plan.ntasks) if task_children[i])
    task_children[tp].pop(0)
    return _certify(dataclasses.replace(plan, task_children=task_children), stree)


def _plan_scatter_overlap() -> Report:
    # Duplicate one scatter index: `acc[idx] += u` with a repeated target
    # silently drops a child contribution under numpy fancy indexing.
    plan, stree = _plan_and_tree()
    steps = list(plan.steps)
    si = next(
        i for i, st in enumerate(steps)
        if any(idx.size >= 2 for idx in st.child_scatter)
    )
    scatters = list(steps[si].child_scatter)
    ci = next(i for i, idx in enumerate(scatters) if idx.size >= 2)
    idx = scatters[ci].copy()
    idx[1] = idx[0]
    scatters[ci] = idx
    steps[si] = dataclasses.replace(steps[si], child_scatter=tuple(scatters))
    return _certify(dataclasses.replace(plan, steps=steps), stree)


def _plan_duplicated_columns() -> Report:
    # Two supernodes claim the same column range: those solution rows are
    # written twice and the displaced range is never written at all.
    plan, stree = _plan_and_tree()
    steps = list(plan.steps)
    steps[1] = dataclasses.replace(
        steps[1], col_lo=steps[0].col_lo, col_hi=steps[0].col_hi
    )
    return _certify(dataclasses.replace(plan, steps=steps), stree)


def _plan_permuted_reduction() -> Report:
    # Reverse one node's child list (scatters permuted consistently, so
    # every contribution still lands on the right rows): numerically the
    # sums are reassociated, so results stop being bitwise reproducible.
    plan, stree = _plan_and_tree()
    steps = list(plan.steps)
    si = next(i for i, st in enumerate(steps) if len(st.children) >= 2)
    st = steps[si]
    steps[si] = dataclasses.replace(
        st,
        children=tuple(reversed(st.children)),
        child_scatter=tuple(reversed(st.child_scatter)),
    )
    return _certify(dataclasses.replace(plan, steps=steps), stree)


def _program_swapped_scatter() -> Report:
    # Swap two entries of a level's flattened scatter-source vector: every
    # contribution row still lands exactly once, but two child rows trade
    # places — silently wrong values with a structurally plausible layout.
    from repro.exec.plan import compile_level_program
    from repro.verify.schedule import certify_level_program

    plan, stree = _plan_and_tree()
    program = compile_level_program(plan)
    li = next(
        i for i, lvl in enumerate(program.levels) if lvl.scatter_src.size >= 2
    )
    lvl = program.levels[li]
    src = lvl.scatter_src.copy()
    src[0], src[1] = src[1], src[0]
    levels = list(program.levels)
    levels[li] = dataclasses.replace(lvl, scatter_src=src)
    mutated = dataclasses.replace(program, levels=tuple(levels))
    return certify_level_program(mutated, plan, stree).report


_BAD_SOURCE = '''\
import numpy as np
import os

def scramble(a):
    rng = np.random.default_rng()
    a.indices[0] = 3
    a.indptr.sort()
    assert a.n > 0
    return np.random.rand(a.n)
'''


def _bad_source() -> Report:
    return lint_source(_BAD_SOURCE, "corpus/bad_source.py")


def known_bad_cases() -> list[BadCase]:
    """The full seeded corpus, in gate execution order."""
    return [
        BadCase(
            "spmd-head-to-head",
            "two ranks each blocked on a receive from the other",
            frozenset({"spmd-deadlock-cycle"}),
            lambda: lint_spmd(_head_to_head, 2),
        ),
        BadCase(
            "spmd-orphan-send",
            "a message sent but never received",
            frozenset({"spmd-unmatched-send"}),
            lambda: lint_spmd(_orphan_send, 2),
        ),
        BadCase(
            "spmd-tag-skew",
            "sender and receiver disagree on the message tag",
            frozenset({"spmd-tag-mismatch", "spmd-unmatched-recv"}),
            lambda: lint_spmd(_tag_skew, 2),
        ),
        BadCase(
            "spmd-barrier-skip",
            "a rank terminates without reaching the barrier others wait at",
            frozenset({"spmd-barrier-mismatch"}),
            lambda: lint_spmd(_barrier_skip, 2),
        ),
        BadCase(
            "malformed-csc",
            "decreasing indptr, out-of-range index, non-diagonal-first column",
            frozenset({"csc-indptr-monotone"}),
            _bad_csc,
        ),
        BadCase(
            "non-postordered-etree",
            "valid elimination tree whose subtrees are not contiguous",
            frozenset({"etree-not-postordered"}),
            _bad_etree,
        ),
        BadCase(
            "broken-supernode-chain",
            "supernode partition that is not an elimination-tree chain",
            frozenset({"supernode-chain"}),
            _bad_partition,
        ),
        BadCase(
            "layout-supernode-mismatch",
            "processor sets that violate subcube containment and the machine size",
            frozenset({"mapping-subcube-containment", "mapping-proc-range"}),
            _bad_mapping,
        ),
        BadCase(
            "task-graph-cycle",
            "cyclic task dependencies that would stall the event simulator",
            frozenset({"graph-cycle"}),
            _cyclic_graph,
        ),
        BadCase(
            "plan-dropped-dependency",
            "a task's dependency count misses one child — premature start race",
            frozenset({"schedule-dep-count", "schedule-race"}),
            _plan_dropped_dependency,
        ),
        BadCase(
            "plan-scatter-overlap",
            "a duplicated scatter index that drops a child contribution",
            frozenset({"schedule-scatter-overlap"}),
            _plan_scatter_overlap,
        ),
        BadCase(
            "plan-duplicated-columns",
            "two supernodes writing the same solution column range",
            frozenset({"schedule-coverage-overlap", "schedule-coverage-gap"}),
            _plan_duplicated_columns,
        ),
        BadCase(
            "plan-permuted-reduction",
            "a child reduction list out of ascending order — nondeterministic sums",
            frozenset({"schedule-reduction-order"}),
            _plan_permuted_reduction,
        ),
        BadCase(
            "program-swapped-scatter",
            "a fused level program whose scatter replays child rows out of place",
            frozenset({"schedule-program-scatter"}),
            _program_swapped_scatter,
        ),
        BadCase(
            "forbidden-source-constructs",
            "unseeded RNG, CSC index mutation, and a bare assert in one file",
            frozenset(
                {"lint-unseeded-random", "lint-csc-mutation", "lint-bare-assert"}
            ),
            _bad_source,
        ),
    ]


def racy_program_case() -> BadCase:
    """A warning-level case (receive race): flagged, but not gate-fatal."""
    return BadCase(
        "spmd-recv-race",
        "two in-flight messages on one channel at match time",
        frozenset({"spmd-recv-race"}),
        lambda: lint_spmd(_racy_channel, 2),
    )
