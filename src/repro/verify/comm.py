"""Static SPMD communication linter and task-graph schedule checker.

:func:`lint_spmd` walks a rank program (the same generator-coroutine shape
:func:`repro.machine.spmd.run_spmd` executes) through a *timing-free
logical scheduler*: no :class:`~repro.machine.spec.MachineSpec` clocks, no
makespans — only the message-matching semantics documented in
``machine/spmd.py`` (send is buffered, recv blocks on an exact
``(src, tag)`` channel, per-channel delivery is FIFO, barriers require all
ranks).  Because matching is by exact channel and FIFO order, the logical
walk matches the simulator's delivery decisions without charging any time,
so every finding is a *guaranteed* property of the program:

* ``spmd-deadlock-cycle`` — a cycle of ranks each blocked on a receive
  from the next; the runtime :class:`~repro.machine.spmd.DeadlockError`
  would fire on the same program, but only after burning a run.
* ``spmd-unmatched-recv`` — a rank blocked on a channel no live rank can
  ever feed (sender terminated, or starved behind the deadlock).
* ``spmd-tag-mismatch`` — the blocked receiver's source *did* send it
  undelivered messages, just under a different tag (the classic
  protocol-skew bug in pipelined codes).
* ``spmd-unmatched-send`` — a message still buffered when its program
  terminated: sent, never received.  The runtime tolerates these
  silently; statically they are protocol leaks.
* ``spmd-barrier-mismatch`` — ranks waiting at a barrier that other
  (terminated or blocked) ranks will never reach.
* ``spmd-recv-race`` (warning) — a receive matched while more than one
  message was queued on its channel; correctness then depends on
  in-order delivery, which the paper's globally-unique-tag protocol is
  designed to avoid.

Each finding carries the real source location (``file:line``) of the
suspended ``yield``, read off the generator frame.

:func:`lint_task_graph` performs the analogous static checks on
:class:`~repro.machine.events.TaskGraph` schedules: dependency cycles
(which the event simulator only reports *after* running to quiescence)
and task-id orderings that break the critical-path analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.machine.events import TaskGraph
from repro.machine.spec import MachineSpec
from repro.machine.spmd import Barrier, Compute, Env, Program, Recv, Send
from repro.util.validation import check_positive
from repro.verify.findings import Report, Severity

#: Channel key — (src, dst, tag), identical to the simulator's mailbox key.
Channel = tuple[int, int, int]


@dataclass
class _SentMessage:
    data: Any
    words: float
    location: str
    seq: int


@dataclass
class CommTrace:
    """What the logical walk observed (useful for tests and reporting)."""

    steps: list[int] = field(default_factory=list)
    sends: int = 0
    recvs: int = 0
    barriers: int = 0
    finished: list[bool] = field(default_factory=list)


def _frame_location(gen: Any, fallback: str) -> str:
    frame = getattr(gen, "gi_frame", None)
    if frame is None:
        return fallback
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


def lint_spmd(
    program: Program,
    size: int,
    spec: MachineSpec | None = None,
    *,
    max_steps: int = 1_000_000,
) -> Report:
    """Statically check an SPMD rank program for communication bugs.

    The program is walked rank by rank under pure matching semantics; the
    returned :class:`Report` lists every guaranteed communication defect.
    *spec* is only consulted by ``env.compute`` to convert flops to
    seconds and defaults to an arbitrary valid spec — no timing decision
    feeds back into matching.
    """
    check_positive(size, "size")
    spec = spec or MachineSpec()
    env = Env(spec, size)
    report = Report()

    gens: list[Any] = [program(rank, env) for rank in range(size)]
    pending: dict[int, Any] = {}
    blocked: dict[int, Channel] = {}
    blocked_loc: dict[int, str] = {}
    barrier_wait: set[int] = set()
    barrier_loc: dict[int, str] = {}
    channels: dict[Channel, deque[_SentMessage]] = {}
    steps = [0] * size
    total_steps = 0
    seq = 0
    aborted = False

    def loc_of(rank: int) -> str:
        return _frame_location(gens[rank], f"rank {rank}")

    def deliver(rank: int, key: Channel, where: str) -> None:
        """Pop the FIFO head of *key* into *rank*'s resume value."""
        queue = channels[key]
        if len(queue) > 1:
            report.add(
                "spmd-recv-race",
                f"rank {rank} receive on (src={key[0]}, tag={key[2]}) matched "
                f"with {len(queue)} messages queued on the channel; result "
                "depends on in-order delivery",
                location=where,
                severity=Severity.WARNING,
            )
        msg = queue.popleft()
        if not queue:
            del channels[key]
        pending[rank] = msg.data

    def run_rank(rank: int) -> bool:
        """Advance *rank* until it blocks or finishes; True if it progressed."""
        nonlocal total_steps, seq, aborted
        progressed = False
        while gens[rank] is not None and not aborted:
            if total_steps >= max_steps:
                report.add(
                    "spmd-step-limit",
                    f"aborted after {max_steps} actions without quiescence "
                    "(runaway or extremely large program)",
                    location=loc_of(rank),
                )
                aborted = True
                return progressed
            try:
                action = gens[rank].send(pending.pop(rank, None))
            except StopIteration:
                gens[rank] = None
                return True
            where = loc_of(rank)
            steps[rank] += 1
            total_steps += 1
            progressed = True
            if isinstance(action, Compute):
                continue
            if isinstance(action, Send):
                key = (rank, action.dst, action.tag)
                channels.setdefault(key, deque()).append(
                    _SentMessage(data=action.data, words=action.words, location=where, seq=seq)
                )
                seq += 1
                if blocked.get(action.dst) == key:
                    del blocked[action.dst]
                    del blocked_loc[action.dst]
                    deliver(action.dst, key, where)
                continue
            if isinstance(action, Recv):
                key = (action.src, rank, action.tag)
                if channels.get(key):
                    deliver(rank, key, where)
                    continue
                blocked[rank] = key
                blocked_loc[rank] = where
                return progressed
            if isinstance(action, Barrier):
                barrier_wait.add(rank)
                barrier_loc[rank] = where
                if len(barrier_wait) == size:
                    barrier_wait.clear()
                    barrier_loc.clear()
                    continue  # this rank may keep running; others resume next pass
                return progressed
            report.add(
                "spmd-bad-action",
                f"rank {rank} yielded unsupported action {action!r}",
                location=where,
            )
            gens[rank] = None
            return True
        return progressed

    # Round-robin passes until global quiescence.
    made_progress = True
    while made_progress and not aborted:
        made_progress = False
        for rank in range(size):
            if gens[rank] is None or rank in blocked or rank in barrier_wait:
                continue
            if run_rank(rank):
                made_progress = True

    live = [r for r in range(size) if gens[r] is not None]
    finished = [gens[r] is None for r in range(size)]
    if live and not aborted:
        _report_stuck(
            report, size, blocked, blocked_loc, barrier_wait, barrier_loc, channels, finished
        )
    # Messages still buffered after every program stopped moving.
    for (src, dst, tag), queue in sorted(channels.items()):
        for msg in queue:
            report.add(
                "spmd-unmatched-send",
                f"message from rank {src} to rank {dst} with tag {tag} "
                f"({msg.words:g} words) was sent but never received",
                location=msg.location,
            )
    return report


def _report_stuck(
    report: Report,
    size: int,
    blocked: dict[int, Channel],
    blocked_loc: dict[int, str],
    barrier_wait: set[int],
    barrier_loc: dict[int, str],
    channels: dict[Channel, deque[_SentMessage]],
    finished: list[bool],
) -> None:
    """Classify a quiescent-but-unfinished state into findings."""
    # Wait-for graph over recv-blocked ranks: r waits on blocked[r][0].
    on_cycle: set[int] = set()
    color: dict[int, int] = {}  # 0 visiting, 1 done
    for start in sorted(blocked):
        if start in color:
            continue
        path: list[int] = []
        node = start
        while node in blocked and node not in color:
            color[node] = 0
            path.append(node)
            node = blocked[node][0]
            if node in path:
                cycle = path[path.index(node) :]
                on_cycle.update(cycle)
                chain = " -> ".join(str(r) for r in cycle + [cycle[0]])
                detail = "; ".join(
                    f"rank {r} waits on recv(src={blocked[r][0]}, tag={blocked[r][2]})"
                    for r in cycle
                )
                report.add(
                    "spmd-deadlock-cycle",
                    f"guaranteed deadlock: ranks {chain} each blocked on a "
                    f"receive from the next ({detail})",
                    location=blocked_loc[cycle[0]],
                )
                break
        for r in path:
            color[r] = 1

    for rank in sorted(blocked):
        if rank in on_cycle:
            continue
        src, _, tag = blocked[rank]
        if finished[src]:
            why = f"rank {src} terminated without sending it"
        elif src in barrier_wait:
            why = f"rank {src} is stuck at a barrier"
        elif src in blocked:
            why = f"rank {src} is itself blocked (starved behind the stall)"
        else:
            why = f"rank {src} made no further progress"
        report.add(
            "spmd-unmatched-recv",
            f"rank {rank} blocked forever on recv(src={src}, tag={tag}); {why}",
            location=blocked_loc[rank],
        )
        # A pending message on the same (src -> rank) pair under another
        # tag is the tell-tale of a tag-skew bug.
        skewed = sorted(
            t for (s, d, t), q in channels.items() if s == src and d == rank and q
        )
        if skewed:
            report.add(
                "spmd-tag-mismatch",
                f"rank {rank} waits on tag {tag} from rank {src}, but rank "
                f"{src} has undelivered message(s) to it under tag(s) "
                f"{skewed} — likely a tag mismatch",
                location=blocked_loc[rank],
            )

    if barrier_wait:
        absent = [r for r in range(size) if r not in barrier_wait]
        never = [r for r in absent if finished[r] or r in blocked]
        report.add(
            "spmd-barrier-mismatch",
            f"ranks {sorted(barrier_wait)} wait at a barrier that ranks "
            f"{never or absent} will never reach",
            location=next(iter(sorted(barrier_loc.values())), "<barrier>"),
        )


def spmd_deadlock_rules() -> frozenset[str]:
    """Rule ids that imply :func:`repro.machine.spmd.run_spmd` would raise
    :class:`~repro.machine.spmd.DeadlockError` on the same program."""
    return frozenset(
        {"spmd-deadlock-cycle", "spmd-unmatched-recv", "spmd-barrier-mismatch"}
    )


# ---------------------------------------------------------------- task graphs
def lint_task_graph(graph: TaskGraph) -> Report:
    """Static checks on a task-graph schedule.

    * ``graph-cycle`` — the dependency DAG has a cycle; the event
      simulator would run to quiescence and *then* raise, the linter
      names the offending tasks up front.
    * ``graph-task-order`` (warning) — an edge with ``src >= dst``:
      legal for :func:`~repro.machine.events.simulate` but rejected by
      :func:`~repro.machine.events.critical_path`, which assumes
      builders append tasks bottom-up.
    """
    report = Report()
    n = graph.ntasks
    indeg = [0] * n
    succs: list[list[int]] = [[] for _ in range(n)]
    for e in graph.edges:
        indeg[e.dst] += 1
        succs[e.src].append(e.dst)
        if e.src >= e.dst:
            report.add(
                "graph-task-order",
                f"edge {e.src} -> {e.dst} violates the bottom-up id order "
                "(src < dst) assumed by critical_path()",
                location=f"task {e.src}",
                severity=Severity.WARNING,
            )
    # Kahn peeling; whatever survives lies on (or downstream of) a cycle.
    queue = deque(t for t in range(n) if indeg[t] == 0)
    seen = 0
    indeg_work = indeg[:]
    while queue:
        t = queue.popleft()
        seen += 1
        for d in succs[t]:
            indeg_work[d] -= 1
            if indeg_work[d] == 0:
                queue.append(d)
    if seen != n:
        stuck = [t for t in range(n) if indeg_work[t] > 0]
        labels = ", ".join(
            f"{t}({graph.tasks[t].label})" if graph.tasks[t].label else str(t)
            for t in stuck[:12]
        )
        report.add(
            "graph-cycle",
            f"dependency cycle: {n - seen} task(s) can never become ready "
            f"(involved or starved: {labels}{'...' if len(stuck) > 12 else ''})",
            location=f"task {stuck[0]}" if stuck else "<graph>",
        )
    return report
