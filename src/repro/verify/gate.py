"""Repo-wide verification gate: AST lint + structural invariants + SPMD lint
+ schedule certification.

``run_gate`` is what ``python -m repro.verify`` executes: it lints every
source file under ``src/repro``, checks the structural invariants of a
small deterministic workload battery end to end (ordering -> symbolic ->
mapping -> layouts), statically verifies the communication structure
of the repo's real SPMD forward/backward solver programs, and certifies
the shared-memory execution plans of a 2-D/3-D grid battery for
race-freedom, exactly-once coverage and reduction-order determinism —
all without running the simulator or the thread pool.
``run_bad_corpus`` is the negative gate: it must find errors in every
seeded known-bad input, proving the checkers still catch what they were
built to catch.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.verify.comm import lint_spmd
from repro.verify.corpus import known_bad_cases
from repro.verify.findings import Report, Severity
from repro.verify.invariants import (
    check_assignment,
    check_block_cyclic_conformance,
    check_csc,
    check_symbolic,
)
from repro.verify.lint import lint_paths


def default_source_root() -> Path:
    """The ``src/repro`` directory this installed package was loaded from."""
    return Path(__file__).resolve().parent.parent


def run_source_lint(root: Path | None = None) -> Report:
    """AST-lint every Python file of the package source tree."""
    return lint_paths([root or default_source_root()])


def run_structure_checks() -> Report:
    """Structural invariants over a small deterministic workload battery."""
    from repro.sparse.generators import fe_mesh_2d, grid2d_laplacian, grid3d_laplacian
    from repro.mapping.subtree_subcube import subtree_to_subcube
    from repro.symbolic.analyze import analyze

    report = Report()
    battery = [
        ("grid2d(6)", grid2d_laplacian(6), 0),
        ("grid3d(3)", grid3d_laplacian(3), 0),
        ("fe2d(6)", fe_mesh_2d(6, seed=3), 2),
    ]
    for name, a, relax in battery:
        report.extend(check_csc(a, name=name))
        sym = analyze(a, relax=relax)
        report.extend(check_symbolic(sym, name=name))
        for p in (1, 4):
            assign = subtree_to_subcube(sym.stree, p)
            report.extend(check_assignment(sym.stree, assign, p, name=f"{name} p={p}"))
            report.extend(
                check_block_cyclic_conformance(
                    sym.stree, assign, b=4, name=f"{name} p={p}"
                )
            )
    return report


def run_solver_comm_lint(*, p: int = 4, b: int = 4) -> Report:
    """Statically lint the repo's real SPMD solver programs.

    Builds a small factored system, derives the forward- and
    backward-substitution rank programs, and walks them through the
    communication linter.  The walk also produces the numeric solution,
    which is checked against a direct dense solve — so this section
    guards both the protocol and the values it transports.
    """
    from repro.core.spmd_backward import make_backward_program
    from repro.core.spmd_forward import make_forward_program
    from repro.mapping.subtree_subcube import subtree_to_subcube
    from repro.numeric.supernodal import cholesky_supernodal
    from repro.sparse.generators import grid2d_laplacian
    from repro.symbolic.analyze import analyze

    report = Report()
    a = grid2d_laplacian(6)
    sym = analyze(a)
    factor = cholesky_supernodal(sym)
    assign = subtree_to_subcube(sym.stree, p)
    rng = np.random.default_rng(2026)
    rhs = rng.normal(size=(a.n, 2))
    rhs_perm = sym.perm.apply_to_vector(rhs)

    program, size, y = make_forward_program(factor, assign, rhs_perm, b=b, nproc=p)
    fwd = lint_spmd(program, size)
    for f in fwd:
        report.add(f.rule, f"[spmd-forward] {f.message}", location=f.location,
                   severity=f.severity)

    program, size, x = make_backward_program(factor, assign, y.copy(), b=b, nproc=p)
    bwd = lint_spmd(program, size)
    for f in bwd:
        report.add(f.rule, f"[spmd-backward] {f.message}", location=f.location,
                   severity=f.severity)

    if fwd.ok and bwd.ok:
        dense = np.linalg.solve(a.to_dense(), rhs)
        if not np.allclose(sym.perm.unapply_to_vector(x), dense, atol=1e-8):
            report.add(
                "spmd-wrong-solution",
                "communication structure is clean but the walked SPMD solve "
                "does not match the dense solution",
                location="spmd-solvers",
            )
    return report


#: The standard schedule-certification battery: (label, builder, sizes).
#: Grains span "one task per supernode" (0) through heavy aggregation;
#: nrhs ∈ {1, 4} exercises the certifier's claim that effect summaries
#: are independent of the right-hand-side width.
SCHEDULE_BATTERY_GRAINS = (0, 256, 4096)
SCHEDULE_BATTERY_NRHS = (1, 4)


def run_schedule_certification() -> Report:
    """Certify the execution plans of the standard workload battery.

    For every (matrix, grain) the plan must certify clean — no races, no
    coverage violation, canonical reduction order — and its determinism
    certificate must be byte-identical across ``nrhs`` values and across
    an independent rebuild of the same plan (``schedule-cert-unstable``
    otherwise).  This is the static counterpart of the runtime test that
    solves are bitwise identical across worker counts.

    The fused backend's :class:`~repro.exec.plan.LevelProgram` compiled
    from each plan must certify clean too
    (:func:`~repro.verify.schedule.certify_level_program`), and its
    certificate digest must equal the plan's — one structure, one
    determinism certificate, for every backend and every grain
    (``schedule-cert-divergent`` otherwise).
    """
    from repro.exec.plan import build_plan, compile_level_program
    from repro.sparse.generators import grid2d_laplacian, grid3d_laplacian
    from repro.symbolic.analyze import analyze
    from repro.verify.schedule import certify_level_program, certify_plan

    report = Report()
    battery = [
        ("grid2d(8)", grid2d_laplacian(8)),
        ("grid2d(12)", grid2d_laplacian(12)),
        ("grid3d(4)", grid3d_laplacian(4)),
    ]
    for name, a in battery:
        sym = analyze(a)
        for grain in SCHEDULE_BATTERY_GRAINS:
            label = f"{name} grain={grain}"
            plan = build_plan(sym.stree, grain=grain)
            digests = set()
            for nrhs in SCHEDULE_BATTERY_NRHS:
                cert = certify_plan(plan, sym.stree, nrhs=nrhs, name=label)
                digests.add(cert.digest)
                for f in cert.report:
                    report.add(
                        f.rule,
                        f"[schedule nrhs={nrhs}] {f.message}",
                        location=f.location,
                        severity=f.severity,
                    )
            rebuilt = certify_plan(
                build_plan(sym.stree, grain=grain), sym.stree, name=label
            )
            digests.add(rebuilt.digest)
            if len(digests) != 1:
                report.add(
                    "schedule-cert-unstable",
                    f"{label}: determinism certificate differs across nrhs or "
                    f"across plan rebuilds ({sorted(digests)}) — the hash is "
                    "not a pure function of the structure",
                    location=label,
                )
            fused = certify_level_program(
                compile_level_program(plan), plan, sym.stree, name=label
            )
            for f in fused.report:
                report.add(
                    f.rule,
                    f"[fused] {f.message}",
                    location=f.location,
                    severity=f.severity,
                )
            if fused.digest not in digests:
                report.add(
                    "schedule-cert-divergent",
                    f"{label}: the fused level program's certificate digest "
                    "differs from its plan's — the program is not a certified "
                    "re-layout of the schedule",
                    location=label,
                )
    return report


def run_gate(root: Path | None = None, *, include_solvers: bool = True) -> Report:
    """The full repo gate; returns the merged report of every section."""
    report = Report()
    report.extend(run_source_lint(root))
    report.extend(run_structure_checks())
    report.extend(run_schedule_certification())
    if include_solvers:
        report.extend(run_solver_comm_lint())
    return report


def run_bad_corpus() -> Report:
    """Run every seeded known-bad case; findings are *expected* here.

    The returned report carries each case's findings (so the CLI can show
    the rule and location for every detected defect).  A case that slips
    through without errors, or without its expected rule, is itself
    reported as a ``corpus-missed`` error — the checkers regressed.
    """
    report = Report()
    for case in known_bad_cases():
        result = case.run()
        for f in result:
            report.add(
                f.rule,
                f"[{case.name}] {f.message}",
                location=f.location,
                severity=f.severity,
            )
        if result.ok:
            report.add(
                "corpus-missed",
                f"known-bad case '{case.name}' ({case.description}) produced "
                "no errors — a checker regressed",
                location=f"corpus/{case.name}",
            )
        elif not (case.expect_rules & result.rules()):
            report.add(
                "corpus-missed",
                f"known-bad case '{case.name}' fired {sorted(result.rules())} "
                f"but none of the expected rules {sorted(case.expect_rules)}",
                location=f"corpus/{case.name}",
            )
    return report


def format_gate_output(report: Report, *, header: str) -> str:
    """Render a gate report the way the CLI prints it."""
    lines = [header]
    for f in report:
        lines.append(f"  {f}")
    ne = len(report.errors())
    nw = len(report.warnings())
    if ne or nw:
        lines.append(f"{header}: {ne} error(s), {nw} warning(s)")
    else:
        lines.append(f"{header}: clean")
    return "\n".join(lines)


def severity_exit_code(report: Report) -> int:
    """0 when the report has no errors, 1 otherwise."""
    return 0 if report.ok else 1


__all__ = [
    "run_gate",
    "run_schedule_certification",
    "run_source_lint",
    "run_structure_checks",
    "run_solver_comm_lint",
    "run_bad_corpus",
    "format_gate_output",
    "severity_exit_code",
    "default_source_root",
    "Severity",
]
