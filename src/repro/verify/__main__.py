"""CLI for the verification gate: ``python -m repro.verify``.

Exit codes: 0 — no ERROR findings; 1 — findings (including, by design,
every run against the known-bad corpus); 2 — a known-bad case was *not*
caught (checker regression).

Examples
--------
``python -m repro.verify``
    Full repo gate: source lint + structural invariants + schedule
    certification of the execution-plan battery + SPMD solver
    communication lint.
``python -m repro.verify --corpus bad``
    Run the seeded known-bad corpus (including the execution-plan
    mutants); prints each detected defect with its rule and location
    and exits non-zero.
``python -m repro.verify --json``
    Same gate, but emit the findings as schema-stable JSON
    (``repro-verify-report/1``) for CI artifacts and cross-PR diffing.
``python -m repro.verify --lint-only src/repro tests``
    Only the AST lint, over explicit paths.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.verify.findings import Report
from repro.verify.gate import (
    format_gate_output,
    run_bad_corpus,
    run_gate,
    run_source_lint,
    severity_exit_code,
)
from repro.verify.lint import lint_paths

#: Schema identifier for ``--json`` output; bump on breaking changes.
JSON_SCHEMA = "repro-verify-report/1"


def report_to_json(report: Report, *, mode: str, exit_code: int) -> dict:
    """Schema-stable machine-readable form of a gate report.

    The layout is part of the repo's CI contract: ``schema`` names the
    version, ``findings`` preserves checker order, and each finding
    carries exactly the four :class:`~repro.verify.findings.Finding`
    fields.  Tools diffing gate output across PRs rely on these keys
    staying put.
    """
    return {
        "schema": JSON_SCHEMA,
        "mode": mode,
        "ok": report.ok,
        "exit_code": exit_code,
        "summary": {
            "findings": len(report),
            "errors": len(report.errors()),
            "warnings": len(report.warnings()),
        },
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity.value,
                "location": f.location,
                "message": f.message,
            }
            for f in report
        ],
    }


def _emit(report: Report, *, mode: str, header: str, exit_code: int, as_json: bool) -> None:
    if as_json:
        print(json.dumps(report_to_json(report, mode=mode, exit_code=exit_code), indent=2))
    else:
        print(format_gate_output(report, header=header))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.verify", description="repo-wide static verification gate"
    )
    parser.add_argument(
        "--corpus",
        choices=["repo", "bad"],
        default="repo",
        help="'repo' (default): verify the clean repo; 'bad': run the "
        "seeded known-bad corpus (must exit non-zero)",
    )
    parser.add_argument(
        "--lint-only",
        nargs="*",
        metavar="PATH",
        default=None,
        help="run only the AST lint, over the given files/directories "
        "(default: the installed package source)",
    )
    parser.add_argument(
        "--no-solvers",
        action="store_true",
        help="skip the SPMD solver communication-lint section of the gate",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as schema-stable JSON (repro-verify-report/1) "
        "instead of the human-readable listing",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.lint_only is not None:
        paths = [Path(p) for p in args.lint_only] or None
        report = lint_paths(paths) if paths else run_source_lint()
        code = severity_exit_code(report)
        _emit(report, mode="lint", header="source lint", exit_code=code,
              as_json=args.json)
        return code
    if args.corpus == "bad":
        report = run_bad_corpus()
        # Findings are expected here: the corpus exists to be caught, so
        # the only healthy outcome is a non-zero exit full of findings.
        code = 2 if any(f.rule == "corpus-missed" for f in report) else 1
        _emit(report, mode="corpus-bad", header="known-bad corpus",
              exit_code=code, as_json=args.json)
        return code
    report = run_gate(include_solvers=not args.no_solvers)
    code = severity_exit_code(report)
    _emit(report, mode="gate", header="verification gate", exit_code=code,
          as_json=args.json)
    return code


if __name__ == "__main__":
    sys.exit(main())
