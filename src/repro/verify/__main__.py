"""CLI for the verification gate: ``python -m repro.verify``.

Exit codes: 0 — no ERROR findings; 1 — findings (including, by design,
every run against the known-bad corpus); 2 — a known-bad case was *not*
caught (checker regression).

Examples
--------
``python -m repro.verify``
    Full repo gate: source lint + structural invariants + SPMD solver
    communication lint.
``python -m repro.verify --corpus bad``
    Run the seeded known-bad corpus; prints each detected defect with
    its rule and location and exits non-zero.
``python -m repro.verify --lint-only src/repro tests``
    Only the AST lint, over explicit paths.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.verify.gate import (
    format_gate_output,
    run_bad_corpus,
    run_gate,
    run_source_lint,
    severity_exit_code,
)
from repro.verify.lint import lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.verify", description="repo-wide static verification gate"
    )
    parser.add_argument(
        "--corpus",
        choices=["repo", "bad"],
        default="repo",
        help="'repo' (default): verify the clean repo; 'bad': run the "
        "seeded known-bad corpus (must exit non-zero)",
    )
    parser.add_argument(
        "--lint-only",
        nargs="*",
        metavar="PATH",
        default=None,
        help="run only the AST lint, over the given files/directories "
        "(default: the installed package source)",
    )
    parser.add_argument(
        "--no-solvers",
        action="store_true",
        help="skip the SPMD solver communication-lint section of the gate",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.lint_only is not None:
        paths = [Path(p) for p in args.lint_only] or None
        report = lint_paths(paths) if paths else run_source_lint()
        print(format_gate_output(report, header="source lint"))
        return severity_exit_code(report)
    if args.corpus == "bad":
        report = run_bad_corpus()
        print(format_gate_output(report, header="known-bad corpus"))
        if any(f.rule == "corpus-missed" for f in report):
            return 2
        # Findings are expected here: the corpus exists to be caught, so
        # the only healthy outcome is a non-zero exit full of findings.
        return 1
    report = run_gate(include_solvers=not args.no_solvers)
    print(format_gate_output(report, header="verification gate"))
    return severity_exit_code(report)


if __name__ == "__main__":
    sys.exit(main())
