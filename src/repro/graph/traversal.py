"""Breadth-first traversal primitives.

Used by the level-set separator (nested dissection fallback for graphs
without coordinates), reverse Cuthill-McKee, and connectivity checks.
"""

from __future__ import annotations

import numpy as np

from repro.graph.structure import Adjacency
from repro.util.validation import check_index


def bfs_levels(g: Adjacency, root: int) -> np.ndarray:
    """BFS level of every vertex from *root*; unreachable vertices get -1."""
    check_index(root, g.n, "root")
    level = -np.ones(g.n, dtype=np.int64)
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        nxt = []
        for v in frontier:
            nb = g.neighbors(int(v))
            fresh = nb[level[nb] < 0]
            level[fresh] = depth
            nxt.append(fresh)
        frontier = np.unique(np.concatenate(nxt)) if nxt else np.empty(0, dtype=np.int64)
        # np.unique also removes duplicates introduced by two frontier
        # vertices discovering the same neighbour in one sweep.
        frontier = frontier[level[frontier] == depth]
    return level


def pseudo_peripheral(g: Adjacency, start: int = 0, *, max_sweeps: int = 8) -> int:
    """Find a vertex of (near-)maximal eccentricity by repeated BFS.

    The classic George-Liu heuristic: BFS from *start*, move to a
    minimum-degree vertex of the last level, repeat until the eccentricity
    stops growing.  Such a vertex seeds long, thin level structures, which
    makes level-set separators small.
    """
    check_index(start, g.n, "start")
    v = start
    ecc = -1
    for _ in range(max_sweeps):
        level = bfs_levels(g, v)
        reach = level >= 0
        new_ecc = int(level[reach].max())
        if new_ecc <= ecc:
            return v
        ecc = new_ecc
        last = np.flatnonzero(level == new_ecc)
        degrees = np.array([g.degree(int(u)) for u in last])
        v = int(last[int(np.argmin(degrees))])
    return v


def connected_components(g: Adjacency) -> np.ndarray:
    """Component label (0-based, dense) for every vertex."""
    label = -np.ones(g.n, dtype=np.int64)
    current = 0
    for seed in range(g.n):
        if label[seed] >= 0:
            continue
        level = bfs_levels(g, seed)
        label[level >= 0] = current
        current += 1
    return label
