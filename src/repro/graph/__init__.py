"""Graph algorithms over sparse-matrix adjacency structures.

Provides the pieces the fill-reducing orderings are built from: compressed
adjacency, breadth-first traversal, pseudo-peripheral vertices, connected
components, and vertex separators (geometric for meshes with coordinates,
level-structure based otherwise).
"""

from repro.graph.structure import Adjacency, adjacency_from_matrix
from repro.graph.traversal import bfs_levels, connected_components, pseudo_peripheral
from repro.graph.separators import (
    Separation,
    geometric_bisection,
    levelset_separator,
    find_separator,
)

__all__ = [
    "Adjacency",
    "adjacency_from_matrix",
    "bfs_levels",
    "connected_components",
    "pseudo_peripheral",
    "Separation",
    "geometric_bisection",
    "levelset_separator",
    "find_separator",
]
