"""Compressed adjacency structure of a symmetric sparse matrix's graph."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.csc import SymCSC
from repro.util.validation import check_index


@dataclass(frozen=True)
class Adjacency:
    """Undirected graph in CSR-ish compressed form (no self loops).

    ``neighbors(v)`` is ``indices[indptr[v]:indptr[v+1]]``.  ``coords`` is
    carried through from the originating matrix when available, enabling
    geometric separators.
    """

    n: int
    indptr: np.ndarray
    indices: np.ndarray
    coords: np.ndarray | None = field(default=None, compare=False)

    def neighbors(self, v: int) -> np.ndarray:
        check_index(v, self.n, "vertex")
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        check_index(v, self.n, "vertex")
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def nedges(self) -> int:
        return int(self.indptr[-1]) // 2

    def subgraph(self, vertices: np.ndarray) -> tuple["Adjacency", np.ndarray]:
        """Induced subgraph on *vertices*.

        Returns the subgraph (with vertices renumbered 0..len-1 in the order
        given) and the mapping ``local -> global`` (a copy of *vertices*).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        local = -np.ones(self.n, dtype=np.int64)
        local[vertices] = np.arange(vertices.shape[0])
        sub_ptr = np.zeros(vertices.shape[0] + 1, dtype=np.int64)
        chunks = []
        for k, v in enumerate(vertices):
            nb = local[self.neighbors(int(v))]
            nb = nb[nb >= 0]
            chunks.append(nb)
            sub_ptr[k + 1] = sub_ptr[k] + nb.shape[0]
        sub_idx = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        coords = self.coords[vertices] if self.coords is not None else None
        return Adjacency(vertices.shape[0], sub_ptr, sub_idx, coords), vertices.copy()


def adjacency_from_matrix(a: SymCSC) -> Adjacency:
    """Adjacency of the full symmetric pattern of *a*, self-loops removed."""
    indptr, indices = a.pattern_full()
    mask = np.ones(indices.shape[0], dtype=bool)
    for v in range(a.n):
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        mask[lo:hi] &= indices[lo:hi] != v
    new_ptr = np.zeros(a.n + 1, dtype=np.int64)
    for v in range(a.n):
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        new_ptr[v + 1] = new_ptr[v] + int(mask[lo:hi].sum())
    return Adjacency(a.n, new_ptr, indices[mask], a.coords)
