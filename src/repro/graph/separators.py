"""Vertex separators for nested dissection.

Two strategies:

* :func:`geometric_bisection` — for meshes with vertex coordinates
  (the paper's 2-D/3-D neighbourhood graphs): cut perpendicular to the
  widest coordinate axis at the median, then take the boundary vertices of
  one side as the separator.  For a k x k grid this yields the O(sqrt N)
  separators that the paper's analysis assumes (Lipton-Tarjan class).
* :func:`levelset_separator` — algebraic fallback: a median BFS level from
  a pseudo-peripheral vertex separates the graph (George-Liu).

Both return a :class:`Separation` = (left, separator, right) partition with
no edge between *left* and *right* — the invariant the symbolic phase's
balanced elimination trees depend on, and which the property tests check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.structure import Adjacency
from repro.graph.traversal import bfs_levels, pseudo_peripheral


@dataclass(frozen=True)
class Separation:
    """A vertex 3-partition (left | separator | right) of a graph."""

    left: np.ndarray
    separator: np.ndarray
    right: np.ndarray

    def __post_init__(self) -> None:
        total = self.left.shape[0] + self.separator.shape[0] + self.right.shape[0]
        seen = np.concatenate([self.left, self.separator, self.right])
        if np.unique(seen).shape[0] != total:
            raise ValueError("separation parts must be disjoint")


def _boundary_separator(g: Adjacency, side_mask: np.ndarray) -> Separation:
    """Make the vertices of ``side_mask`` adjacent to the other side the separator."""
    sep_mask = np.zeros(g.n, dtype=bool)
    for v in np.flatnonzero(side_mask):
        nb = g.neighbors(int(v))
        if nb.size and bool(np.any(~side_mask[nb])):
            sep_mask[v] = True
    left = np.flatnonzero(side_mask & ~sep_mask)
    right = np.flatnonzero(~side_mask)
    return Separation(left, np.flatnonzero(sep_mask), right)


def geometric_bisection(g: Adjacency) -> Separation:
    """Median cut perpendicular to the widest axis of the vertex coordinates."""
    if g.coords is None:
        raise ValueError("geometric bisection requires vertex coordinates")
    spread = g.coords.max(axis=0) - g.coords.min(axis=0)
    axis = int(np.argmax(spread))
    key = g.coords[:, axis]
    # Jitter-free median split: vertices strictly below the median value of
    # the chosen axis form one side; ties go by vertex number for
    # determinism.
    order = np.lexsort((np.arange(g.n), key))
    half = g.n // 2
    side_mask = np.zeros(g.n, dtype=bool)
    side_mask[order[:half]] = True
    return _boundary_separator(g, side_mask)


def levelset_separator(g: Adjacency) -> Separation:
    """George-Liu level-structure separator from a pseudo-peripheral vertex."""
    root = pseudo_peripheral(g)
    level = bfs_levels(g, root)
    reach = level >= 0
    if not bool(reach.all()):
        # Disconnected: the smaller piece separates trivially with an empty
        # separator; callers recurse into components independently.
        left = np.flatnonzero(reach)
        right = np.flatnonzero(~reach)
        return Separation(left, np.empty(0, dtype=np.int64), right)
    depth = int(level.max())
    if depth == 0:
        return Separation(np.empty(0, dtype=np.int64), np.arange(g.n), np.empty(0, dtype=np.int64))
    # Choose the level whose removal best balances the two sides.
    counts = np.bincount(level, minlength=depth + 1)
    below = np.cumsum(counts)
    best, best_score = 1, None
    for cut in range(1, depth + 1):
        left_sz = int(below[cut - 1])
        sep_sz = int(counts[cut])
        right_sz = g.n - left_sz - sep_sz
        score = (abs(left_sz - right_sz), sep_sz)
        if best_score is None or score < best_score:
            best, best_score = cut, score
    sep = np.flatnonzero(level == best)
    left = np.flatnonzero(level < best)
    right = np.flatnonzero(level > best)
    return Separation(left, sep, right)


def find_separator(g: Adjacency) -> Separation:
    """Dispatch: geometric when coordinates are available, level-set otherwise."""
    if g.coords is not None:
        return geometric_bisection(g)
    return levelset_separator(g)


def is_valid_separation(g: Adjacency, s: Separation) -> bool:
    """True iff no edge joins ``s.left`` and ``s.right`` (testing helper)."""
    in_left = np.zeros(g.n, dtype=bool)
    in_left[s.left] = True
    in_right = np.zeros(g.n, dtype=bool)
    in_right[s.right] = True
    for v in s.left:
        if bool(np.any(in_right[g.neighbors(int(v))])):
            return False
    return True
