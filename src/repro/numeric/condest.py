"""Condition-number estimation via the factored solve (Hager-Higham).

Estimates ``||A^{-1}||_1`` using only triangular solves with the existing
factor (the standard LAPACK-style condition estimator), giving
``cond_1(A) ~ ||A||_1 * ||A^{-1}||_1`` without ever forming the inverse.
Production sparse solvers (the WSMP lineage this paper fed into) expose
exactly this diagnostic next to the solve.
"""

from __future__ import annotations

import numpy as np

from repro.numeric.supernodal import SupernodalFactor
from repro.numeric.trisolve import solve_supernodal
from repro.sparse.csc import SymCSC
from repro.symbolic.analyze import SymbolicFactor
from repro.util.validation import check_positive


def one_norm(a: SymCSC) -> float:
    """Exact 1-norm (max absolute column sum) of the symmetric matrix."""
    sums = np.zeros(a.n)
    for j in range(a.n):
        rows, vals = a.column(j)
        av = np.abs(vals)
        sums[j] += av.sum()
        strict = rows != j
        sums[rows[strict]] += av[strict]
    return float(sums.max()) if a.n else 0.0


def inverse_norm_estimate(
    sym: SymbolicFactor, factor: SupernodalFactor, *, max_iter: int = 8
) -> float:
    """Hager's power-iteration estimate of ``||A^{-1}||_1``.

    Because A is symmetric, one solve per iteration suffices (the
    transpose solve equals the solve).
    """
    check_positive(max_iter, "max_iter")
    n = sym.n
    x = np.full(n, 1.0 / n)
    est = 0.0
    for _ in range(max_iter):
        y = solve_supernodal(factor, x)
        new_est = float(np.abs(y).sum())
        xi = np.sign(y)
        xi[xi == 0] = 1.0
        z = solve_supernodal(factor, xi)
        j = int(np.argmax(np.abs(z)))
        if np.abs(z[j]) <= float(z @ x):
            est = max(est, new_est)
            break
        est = max(est, new_est)
        x = np.zeros(n)
        x[j] = 1.0
    return est


def condest(sym: SymbolicFactor, factor: SupernodalFactor, a: SymCSC) -> float:
    """1-norm condition estimate of the *original* matrix A.

    The factor is of ``P A P^T``; permutation does not change the 1-norm
    of the inverse (it permutes rows/columns), so the estimate composes
    directly with ``one_norm(a)``.
    """
    return one_norm(a) * inverse_norm_estimate(sym, factor)
