"""Simplicial (column-by-column) sparse Cholesky.

The reference factorization: a left-looking algorithm over the symbolic
pattern.  Slow but simple and independent of the supernodal machinery, so
the two can validate each other.
"""

from __future__ import annotations

import numpy as np

from repro.numeric.frontal import NotPositiveDefiniteError
from repro.sparse.csc import LowerCSC, SymCSC
from repro.symbolic.analyze import SymbolicFactor


def cholesky_simplicial(sym: SymbolicFactor) -> LowerCSC:
    """Factor ``sym.a_perm`` into L over the precomputed symbolic pattern."""
    a: SymCSC = sym.a_perm
    n = a.n
    indptr, indices = sym.l_indptr, sym.l_indices
    data = np.zeros(int(indptr[-1]))

    # Dense work column + position lookup within each L column.
    work = np.zeros(n)
    # For the left-looking update we need, for each column j, the list of
    # columns k < j with L[j, k] != 0 — i.e. the rows view of the pattern.
    cols_of_row: list[list[int]] = [[] for _ in range(n)]
    for k in range(n):
        for ptr in range(int(indptr[k]) + 1, int(indptr[k + 1])):
            cols_of_row[int(indices[ptr])].append(k)

    # Position of row i within column k's index list, built lazily per column.
    for j in range(n):
        lo, hi = int(indptr[j]), int(indptr[j + 1])
        rows_j = indices[lo:hi]
        # Scatter A's column j.
        a_rows, a_vals = a.column(j)
        work[a_rows] = a_vals
        # Subtract contributions of all columns k < j with L[j,k] != 0.
        for k in cols_of_row[j]:
            klo, khi = int(indptr[k]), int(indptr[k + 1])
            rows_k = indices[klo:khi]
            # Find L[j, k] and update work[i] -= L[i,k] * L[j,k] for i >= j.
            pos = int(np.searchsorted(rows_k, j))
            ljk = data[klo + pos]
            tail = slice(klo + pos, khi)
            work[indices[tail]] -= data[tail] * ljk
        pivot = work[j]
        if pivot <= 0:
            raise NotPositiveDefiniteError(f"non-positive pivot {pivot} at column {j}")
        piv = np.sqrt(pivot)
        data[lo] = piv
        data[lo + 1 : hi] = work[rows_j[1:]] / piv
        work[rows_j] = 0.0
    return LowerCSC(n=n, indptr=indptr.copy(), indices=indices.copy(), data=data)
