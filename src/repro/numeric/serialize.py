"""Persistence for symbolic analyses and numeric factors.

Factorization is the expensive phase; production solvers let users factor
once and reuse the factor across runs (exactly the paper's multiple-RHS
scenario, extended across process lifetimes).  Everything is stored in a
single ``.npz`` (no pickle — the format is plain arrays, so files are
portable and safe to load).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.numeric.supernodal import SupernodalFactor
from repro.symbolic.stree import Supernode, SupernodalTree
from repro.util.validation import require

_FORMAT_VERSION = 1


def save_factor(factor: SupernodalFactor, path: str | Path) -> None:
    """Write a supernodal factor (structure + values) to ``path`` (.npz)."""
    stree = factor.stree
    arrays: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION]),
        "nsuper": np.array([stree.nsuper]),
        "parent": stree.parent.astype(np.int64),
        "col_lo": np.array([sn.col_lo for sn in stree.supernodes], dtype=np.int64),
        "col_hi": np.array([sn.col_hi for sn in stree.supernodes], dtype=np.int64),
        "rows_ptr": np.cumsum(
            [0] + [sn.rows.shape[0] for sn in stree.supernodes]
        ).astype(np.int64),
        "rows": np.concatenate([sn.rows for sn in stree.supernodes])
        if stree.nsuper
        else np.empty(0, dtype=np.int64),
        "block_ptr": np.cumsum([0] + [b.size for b in factor.blocks]).astype(np.int64),
        "block_data": np.concatenate([b.ravel() for b in factor.blocks])
        if factor.blocks
        else np.empty(0),
    }
    np.savez_compressed(Path(path), **arrays)


def load_factor(path: str | Path) -> SupernodalFactor:
    """Read a factor written by :func:`save_factor`."""
    with np.load(Path(path)) as data:
        require(int(data["version"][0]) == _FORMAT_VERSION, "unknown factor format version")
        nsuper = int(data["nsuper"][0])
        parent = data["parent"]
        col_lo, col_hi = data["col_lo"], data["col_hi"]
        rows_ptr, rows = data["rows_ptr"], data["rows"]
        block_ptr, block_data = data["block_ptr"], data["block_data"]
        supernodes = []
        blocks = []
        for s in range(nsuper):
            sn_rows = rows[rows_ptr[s] : rows_ptr[s + 1]]
            sn = Supernode(
                index=s, col_lo=int(col_lo[s]), col_hi=int(col_hi[s]), rows=sn_rows
            )
            supernodes.append(sn)
            flat = block_data[block_ptr[s] : block_ptr[s + 1]]
            blocks.append(flat.reshape(sn.n, sn.t).copy())
        stree = SupernodalTree(supernodes=supernodes, parent=parent)
        return SupernodalFactor(stree=stree, blocks=blocks)
