"""Canonical dense solve kernels shared by every real backend.

The repo has three real executions of the triangular solves — the serial
supernodal walker (:mod:`repro.numeric.trisolve`), the threaded engine
(:mod:`repro.exec.engine`) and the fused level program
(:mod:`repro.exec.fused`).  All three promise *bitwise identical*
solutions, which is only possible if every floating-point operation is
performed by the same kernel on the same operands in the same order.
This module is that single source of truth:

* :func:`solve_lower` / :func:`solve_lower_t` — the ``t x t`` diagonal
  solve.  Width-1 panels use an elementwise divide (the op the fused
  backend applies to a whole level of width-1 panels at once); wider
  panels call BLAS ``dtrsm`` directly, never LAPACK ``trtrs`` or a
  hand-rolled sweep, so the rounding of the triangular solve is the
  same function of the values everywhere.
* :func:`unit_dot` — the backward-substitution inner product of a
  width-1 panel, summed *sequentially in ascending row order* via
  ``np.add.reduceat``.  A BLAS ``dot`` may reassociate the sum, and the
  fused backend reduces whole levels with one ``reduceat`` call — so the
  per-node path must use the identical reduction.

Anything not covered here (elementwise adds/subtracts/multiplies, the
``rect @ solved`` GEMM on identical operands) is bitwise reproducible by
construction.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg.blas import dtrsm

#: The single-segment index set for :func:`unit_dot`'s ``reduceat``.
_SEG0 = np.zeros(1, dtype=np.intp)


def solve_lower(diag: np.ndarray, top: np.ndarray) -> np.ndarray:
    """Solve ``diag @ solved = top`` with *diag* dense lower triangular.

    ``top`` is the ``(t, m)`` right-hand-side block; the result is a new
    array (``top`` is never modified).  Width-1 panels are a scalar
    divide — exactly the op the fused backend broadcasts over a level.
    """
    if diag.shape[0] == 1:
        return top / diag[0, 0]
    return dtrsm(1.0, diag, top, lower=1)


def solve_lower_t(diag: np.ndarray, top: np.ndarray) -> np.ndarray:
    """Solve ``diag.T @ solved = top`` (the backward-substitution twin)."""
    if diag.shape[0] == 1:
        return top / diag[0, 0]
    return dtrsm(1.0, diag, top, lower=1, trans_a=1)


def unit_dot(rect: np.ndarray, xg: np.ndarray) -> np.ndarray:
    """``rect.T @ xg`` for a width-1 rectangle, summed in row order.

    *rect* is ``(nb, 1)``, *xg* the gathered ancestor rows ``(nb, m)``;
    returns the ``(1, m)`` dot.  The products are reduced by
    ``np.add.reduceat`` over one segment — the same reduction the fused
    backend applies per segment of a level-wide product buffer, so the
    two paths agree bitwise (a BLAS ``dot`` would not).
    """
    return np.add.reduceat(rect * xg, _SEG0, axis=0)
