"""Canonical dense solve kernels shared by every real backend.

The repo has three real executions of the triangular solves — the serial
supernodal walker (:mod:`repro.numeric.trisolve`), the threaded engine
(:mod:`repro.exec.engine`) and the fused level program
(:mod:`repro.exec.fused`).  All three promise *bitwise identical*
solutions, which is only possible if every floating-point operation is
performed by the same kernel on the same operands in the same order.
This module is that single source of truth:

* :func:`solve_lower` / :func:`solve_lower_t` — the ``t x t`` diagonal
  solve.  Width-1 panels use an elementwise divide (the op the fused
  backend applies to a whole level of width-1 panels at once); wider
  panels call BLAS ``dtrsm`` directly, never LAPACK ``trtrs`` or a
  hand-rolled sweep, so the rounding of the triangular solve is the
  same function of the values everywhere.
* :func:`unit_dot` — the backward-substitution inner product of a
  width-1 panel, summed *sequentially in ascending row order* via
  ``np.add.reduceat``.  A BLAS ``dot`` may reassociate the sum, and the
  fused backend reduces whole levels with one ``reduceat`` call — so the
  per-node path must use the identical reduction.
* :func:`rect_apply` / :func:`rect_apply_t` — the rectangle products
  ``R @ solved`` and ``R.T @ xg``.  These used to be plain GEMM calls,
  but BLAS ``dgemm`` picks different internal kernels for different
  right-hand-side widths, so column ``j`` of an ``(nb, t) @ (t, 16)``
  product is *not* bitwise equal to the ``(nb, t) @ (t, 1)`` product of
  the same column (measured on OpenBLAS; ``dtrsm`` does not have this
  problem).  The serving layer (:mod:`repro.serve`) coalesces
  independent single-column requests into wide batches and promises the
  packed result is indistinguishable from solving each column alone —
  so the canonical kernels accumulate in an order that is a fixed
  function of each *column*, never of the batch width:

  - ``rect_apply`` sums rank-1 terms ``R[:, k] * solved[k, :]`` in
    ascending ``k`` (elementwise broadcast products, one add per term);
  - ``rect_apply_t`` forms output row ``i`` as the ascending-row
    ``reduceat`` sum of ``R[:, i] * xg`` — :func:`unit_dot` applied per
    rectangle column.

  Every multi-column kernel is therefore **column-slice invariant**:
  column ``j`` of the ``m``-column result equals the 1-column result on
  ``operand[:, j:j+1]`` bit for bit, for every ``m``.

Anything not covered here (elementwise adds/subtracts/multiplies, row
gathers/scatters) is column-slice invariant and bitwise reproducible by
construction.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg.blas import dtrsm

#: The single-segment index set for :func:`unit_dot`'s ``reduceat``.
_SEG0 = np.zeros(1, dtype=np.intp)


def solve_lower(diag: np.ndarray, top: np.ndarray) -> np.ndarray:
    """Solve ``diag @ solved = top`` with *diag* dense lower triangular.

    ``top`` is the ``(t, m)`` right-hand-side block; the result is a new
    array (``top`` is never modified).  Width-1 panels are a scalar
    divide — exactly the op the fused backend broadcasts over a level.
    """
    if diag.shape[0] == 1:
        return top / diag[0, 0]
    return dtrsm(1.0, diag, top, lower=1)


def solve_lower_t(diag: np.ndarray, top: np.ndarray) -> np.ndarray:
    """Solve ``diag.T @ solved = top`` (the backward-substitution twin)."""
    if diag.shape[0] == 1:
        return top / diag[0, 0]
    return dtrsm(1.0, diag, top, lower=1, trans_a=1)


def unit_dot(rect: np.ndarray, xg: np.ndarray) -> np.ndarray:
    """``rect.T @ xg`` for a width-1 rectangle, summed in row order.

    *rect* is ``(nb, 1)``, *xg* the gathered ancestor rows ``(nb, m)``;
    returns the ``(1, m)`` dot.  The products are reduced by
    ``np.add.reduceat`` over one segment — the same reduction the fused
    backend applies per segment of a level-wide product buffer, so the
    two paths agree bitwise (a BLAS ``dot`` would not).
    """
    return np.add.reduceat(rect * xg, _SEG0, axis=0)


def rect_apply(
    rect: np.ndarray,
    solved: np.ndarray,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> np.ndarray:
    """``rect @ solved`` with a width-invariant accumulation order.

    *rect* is ``(nb, t)``, *solved* ``(t, m)``; returns the ``(nb, m)``
    product as the ascending-``k`` sum of rank-1 terms
    ``rect[:, k] * solved[k, :]``.  Each term is an elementwise
    broadcast product and each add is elementwise, so column ``j`` of
    the result depends only on ``solved[:, j]`` — never on ``m``.

    ``out`` (``(nb, m)``) receives the product, ``tmp`` (``(nb, m)``)
    holds the intermediate terms; both are allocated when omitted, so
    the zero-allocation fused path passes workspace slices and the
    serial walker passes nothing.
    """
    nb = rect.shape[0]
    t = rect.shape[1]
    if out is None:
        out = np.empty((nb, solved.shape[1]))
    np.multiply(rect[:, 0:1], solved[0:1], out=out)
    if t > 1:
        if tmp is None:
            tmp = np.empty_like(out)
        for k in range(1, t):
            np.multiply(rect[:, k : k + 1], solved[k : k + 1], out=tmp)
            np.add(out, tmp, out=out)
    return out


def rect_apply_t(
    rect: np.ndarray,
    xg: np.ndarray,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> np.ndarray:
    """``rect.T @ xg`` with a width-invariant accumulation order.

    *rect* is ``(nb, t)``, *xg* the gathered ancestor rows ``(nb, m)``;
    returns the ``(t, m)`` product where row ``i`` is
    :func:`unit_dot` of rectangle column ``i`` against *xg* — products
    reduced sequentially in ascending row order by ``np.add.reduceat``.
    Column-slice invariant for the same reason as :func:`rect_apply`.

    ``out`` (``(t, m)``) and ``tmp`` (``(nb, m)``) follow the same
    workspace convention as :func:`rect_apply`.
    """
    nb = rect.shape[0]
    t = rect.shape[1]
    if out is None:
        out = np.empty((t, xg.shape[1]))
    if tmp is None:
        tmp = np.empty((nb, xg.shape[1]))
    for i in range(t):
        np.multiply(rect[:, i : i + 1], xg, out=tmp)
        np.add.reduceat(tmp, _SEG0, axis=0, out=out[i : i + 1])
    return out
