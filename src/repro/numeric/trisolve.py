"""Serial forward elimination and backward substitution.

Implements Section 2 of the paper in its sequential form:

* **Forward** (``L y = b``): leaves to root.  At each supernode, gather the
  right-hand-side entries of the supernode's ``t`` columns into the top of
  a length-``n`` work vector, reduce the children's contribution blocks
  into it (ascending child order), solve the dense ``t x t`` triangle,
  multiply the ``(n-t) x t`` rectangle by the solved top and subtract it
  from the bottom — that bottom block is this node's contribution, passed
  up the assembly tree for the parent to scatter in.
* **Backward** (``L^T x = y``): root to leaves.  At each supernode, gather
  the bottom ``n - t`` entries from already-solved ancestor variables,
  subtract ``R^T`` times the bottom from the top, and solve the transposed
  triangle.

For ``m`` right-hand sides every vector op becomes the corresponding
``(· x m)`` matrix op — exactly the paper's NRHS generalisation.

The forward sweep deliberately uses the *hierarchical contribution* form
(per-node accumulators reduced in ascending child order) rather than
scattering each rectangle straight into ``y``: that is the one summation
order every schedule of the parallel backends can reproduce, so serial,
threaded and fused results are **bitwise identical** — same canonical
kernels (:mod:`repro.numeric.kernels`), same operands, same order.
Simplicial variants over :class:`LowerCSC` serve as independent references.
"""

from __future__ import annotations

import numpy as np

from repro.numeric.kernels import (
    rect_apply,
    rect_apply_t,
    solve_lower,
    solve_lower_t,
    unit_dot,
)
from repro.numeric.supernodal import SupernodalFactor
from repro.sparse.csc import LowerCSC


def _as_matrix(b: np.ndarray, n: int) -> tuple[np.ndarray, bool]:
    b = np.asarray(b, dtype=np.float64)
    if b.shape[0] != n:
        raise ValueError(f"rhs has {b.shape[0]} rows, expected {n}")
    if b.ndim == 1:
        return b[:, None].copy(), True
    if b.ndim == 2:
        return b.copy(), False
    raise ValueError("rhs must be a vector or a 2-D block of vectors")


def as_rhs_matrix(b: np.ndarray, n: int) -> tuple[np.ndarray, bool]:
    """Coerce *b* to a fresh float64 ``(n, nrhs)`` block.

    Returns ``(matrix, squeeze)`` where ``squeeze`` records whether the
    caller passed a plain vector and should get one back.  Shared by the
    serial solvers here and the real execution backends in
    :mod:`repro.exec`, so every backend normalises right-hand sides the
    same way.
    """
    return _as_matrix(b, n)


# ----------------------------------------------------------------- simplicial
def forward_simplicial(l: LowerCSC, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` column by column (reference implementation)."""
    y, squeeze = _as_matrix(b, l.n)
    for j in range(l.n):
        rows, vals = l.column(j)
        y[j] /= vals[0]
        if rows.shape[0] > 1:
            y[rows[1:]] -= np.outer(vals[1:], y[j])
    return y[:, 0] if squeeze else y


def backward_simplicial(l: LowerCSC, b: np.ndarray) -> np.ndarray:
    """Solve ``L^T x = b`` column by column (reference implementation)."""
    x, squeeze = _as_matrix(b, l.n)
    for j in range(l.n - 1, -1, -1):
        rows, vals = l.column(j)
        if rows.shape[0] > 1:
            x[j] -= vals[1:] @ x[rows[1:]]
        x[j] /= vals[0]
    return x[:, 0] if squeeze else x


# ----------------------------------------------------------------- supernodal
def forward_supernodal(f: SupernodalFactor, b: np.ndarray) -> np.ndarray:
    """Supernodal forward elimination ``L y = b`` (leaves -> root)."""
    y, squeeze = _as_matrix(b, f.n)
    stree = f.stree
    m = y.shape[1]
    contrib: list[np.ndarray | None] = [None] * stree.nsuper
    for s in stree.topo_order():
        sn = stree.supernodes[s]
        block = f.blocks[s]
        t = sn.t
        acc = np.zeros((sn.n, m))
        if t:
            acc[:t] = y[sn.col_lo : sn.col_hi]
        for c in stree.children[s]:
            u = contrib[c]
            if u is not None:
                if u.size:
                    acc[np.searchsorted(sn.rows, stree.supernodes[c].below)] += u
                contrib[c] = None
        if t:
            solved = solve_lower(block[:t, :t], acc[:t])
            y[sn.col_lo : sn.col_hi] = solved
            if sn.n > t:
                contrib[s] = acc[t:] - rect_apply(block[t:, :t], solved)
        elif sn.n:
            contrib[s] = acc
    return y[:, 0] if squeeze else y


def backward_supernodal(f: SupernodalFactor, b: np.ndarray) -> np.ndarray:
    """Supernodal backward substitution ``L^T x = b`` (root -> leaves)."""
    x, squeeze = _as_matrix(b, f.n)
    stree = f.stree
    for s in reversed(stree.topo_order()):
        sn = stree.supernodes[s]
        block = f.blocks[s]
        t = sn.t
        if not t:
            continue
        top = x[sn.col_lo : sn.col_hi]
        if sn.n > t:
            rect = block[t:, :t]
            xg = x[sn.below]
            top = top - (unit_dot(rect, xg) if t == 1 else rect_apply_t(rect, xg))
        x[sn.col_lo : sn.col_hi] = solve_lower_t(block[:t, :t], top)
    return x[:, 0] if squeeze else x


def solve_supernodal(f: SupernodalFactor, b: np.ndarray) -> np.ndarray:
    """Full solve ``A x = b`` given ``A = L L^T``: forward then backward."""
    return backward_supernodal(f, forward_supernodal(f, b))
