"""Multifrontal supernodal Cholesky.

Follows the organisation the paper inherits from Liu's multifrontal method
(ref [12]): process supernodes bottom-up; at each supernode assemble a
dense frontal matrix from the original-matrix entries plus the children's
update matrices (extend-add), factor its leading ``t`` columns, and pass
the trailing ``(n-t) x (n-t)`` Schur complement up to the parent.

The factor is returned as a :class:`SupernodalFactor`: one dense ``n x t``
trapezoid per supernode — the exact objects the parallel triangular solvers
partition row- or column-wise (paper Figures 2-4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numeric.frontal import dense_cholesky, trsm_lower
from repro.sparse.csc import LowerCSC
from repro.symbolic.analyze import SymbolicFactor
from repro.symbolic.stree import SupernodalTree


@dataclass
class SupernodalFactor:
    """The Cholesky factor stored supernode by supernode.

    ``blocks[s]`` is the dense ``n_s x t_s`` trapezoid of supernode ``s``:
    its top ``t_s x t_s`` part is lower triangular (the factored diagonal
    block) and the remaining ``(n_s - t_s) x t_s`` part is the
    below-diagonal rectangle.  Row ``r`` of the block corresponds to global
    row ``stree.supernodes[s].rows[r]``.
    """

    stree: SupernodalTree
    blocks: list[np.ndarray]

    @property
    def n(self) -> int:
        return self.stree.n

    def nnz(self) -> int:
        return self.stree.factor_nnz()

    def to_lower_csc(self, l_indptr: np.ndarray, l_indices: np.ndarray) -> LowerCSC:
        """Scatter the trapezoids into the simplicial CSC pattern."""
        data = np.zeros(int(l_indptr[-1]))
        for sn, block in zip(self.stree.supernodes, self.blocks):
            for local_j in range(sn.t):
                j = sn.col_lo + local_j
                lo, hi = int(l_indptr[j]), int(l_indptr[j + 1])
                col_rows = l_indices[lo:hi]
                #

                # The supernode's rows from local_j down are a superset of
                # this column's pattern (equality for fundamental
                # supernodes); match by searchsorted on the below part.
                sub_rows = sn.rows[local_j:]
                positions = np.searchsorted(sub_rows, col_rows)
                data[lo:hi] = block[local_j + positions, local_j]
        return LowerCSC(n=self.n, indptr=l_indptr.copy(), indices=l_indices.copy(), data=data)

    def to_dense(self) -> np.ndarray:
        """Dense L (testing only)."""
        out = np.zeros((self.n, self.n))
        for sn, block in zip(self.stree.supernodes, self.blocks):
            for local_j in range(sn.t):
                out[sn.rows[local_j:], sn.col_lo + local_j] = block[local_j:, local_j]
        return out


def cholesky_supernodal(sym: SymbolicFactor) -> SupernodalFactor:
    """Multifrontal factorization of ``sym.a_perm``."""
    a = sym.a_perm
    stree = sym.stree
    blocks: list[np.ndarray] = [None] * stree.nsuper  # type: ignore[list-item]
    # update matrix stack: update[s] = (rows, dense (k x k) lower part)
    pending: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    for s in stree.topo_order():
        sn = stree.supernodes[s]
        n_s, t_s = sn.n, sn.t
        front = np.zeros((n_s, n_s))
        rows = sn.rows
        pos_of_global = {int(g): i for i, g in enumerate(rows)}

        # Assemble original-matrix columns (lower triangle only).
        for local_j in range(t_s):
            j = sn.col_lo + local_j
            a_rows, a_vals = a.column(j)
            for g, v in zip(a_rows, a_vals):
                front[pos_of_global[int(g)], local_j] += v

        # Extend-add children's update matrices.
        for c in stree.children[s]:
            up_rows, up = pending.pop(c)
            idx = np.fromiter(
                (pos_of_global[int(g)] for g in up_rows), dtype=np.int64, count=up_rows.shape[0]
            )
            front[np.ix_(idx, idx)] += up

        # Factor the leading t columns of the frontal matrix.
        diag = dense_cholesky(front[:t_s, :t_s])
        below = trsm_lower(diag, front[t_s:, :t_s].T).T if n_s > t_s else front[t_s:, :t_s]
        block = np.zeros((n_s, t_s))
        block[:t_s, :] = np.tril(diag)
        block[t_s:, :] = below
        blocks[s] = block

        # Schur complement for the parent (lower triangle suffices but we
        # keep it full-symmetric for simple extend-add).
        if n_s > t_s:
            trailing = front[t_s:, t_s:]
            # Symmetrise the assembled trailing block: assembly only filled
            # its lower triangle from A and children.
            trailing = np.tril(trailing) + np.tril(trailing, -1).T
            update = trailing - below @ below.T
            pending[s] = (sn.below, update)

    if pending:
        raise AssertionError("unconsumed update matrices — broken assembly tree")
    return SupernodalFactor(stree=stree, blocks=blocks)
