"""LDL^T factorization (no square roots; symmetric quasi-definite support).

The paper's setting is SPD Cholesky, but production descendants of this
work (WSMP, MUMPS) ship the LDL^T variant for symmetric indefinite
systems.  We provide the simplicial form over the same symbolic pattern:
``A = L D L^T`` with unit lower-triangular L and diagonal D (no pivoting,
so the class covered is matrices whose leading minors are nonsingular —
e.g. quasi-definite KKT systems).  The triangular solves reuse the same
forward/backward structure with a diagonal scaling in between, so the
parallel algorithms of the paper apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csc import LowerCSC, SymCSC
from repro.symbolic.analyze import SymbolicFactor


class SingularPivotError(np.linalg.LinAlgError):
    """Raised when an exactly-zero pivot appears (matrix not LDL^T-factorable
    without pivoting)."""


@dataclass
class LDLTFactor:
    """Unit lower-triangular L (diagonal stored as 1) plus diagonal D."""

    l: LowerCSC
    d: np.ndarray

    @property
    def n(self) -> int:
        return self.l.n

    def inertia(self) -> tuple[int, int, int]:
        """(positive, negative, zero) counts of D — Sylvester's inertia of A."""
        pos = int(np.sum(self.d > 0))
        neg = int(np.sum(self.d < 0))
        return pos, neg, self.n - pos - neg


def ldlt_simplicial(sym: SymbolicFactor, *, pivot_tol: float = 0.0) -> LDLTFactor:
    """Factor ``sym.a_perm = L D L^T`` over the precomputed pattern.

    ``pivot_tol`` rejects pivots with ``|d| <= pivot_tol`` (0 = only exact
    zeros are rejected).
    """
    a: SymCSC = sym.a_perm
    n = a.n
    indptr, indices = sym.l_indptr, sym.l_indices
    data = np.zeros(int(indptr[-1]))
    d = np.zeros(n)
    work = np.zeros(n)

    cols_of_row: list[list[int]] = [[] for _ in range(n)]
    for k in range(n):
        for ptr in range(int(indptr[k]) + 1, int(indptr[k + 1])):
            cols_of_row[int(indices[ptr])].append(k)

    for j in range(n):
        lo, hi = int(indptr[j]), int(indptr[j + 1])
        rows_j = indices[lo:hi]
        a_rows, a_vals = a.column(j)
        work[a_rows] = a_vals
        for k in cols_of_row[j]:
            klo, khi = int(indptr[k]), int(indptr[k + 1])
            rows_k = indices[klo:khi]
            pos = int(np.searchsorted(rows_k, j))
            ljk = data[klo + pos]
            tail = slice(klo + pos, khi)
            # work[i] -= L[i,k] * d[k] * L[j,k]
            work[indices[tail]] -= data[tail] * (d[k] * ljk)
        pivot = work[j]
        if abs(pivot) <= pivot_tol:
            raise SingularPivotError(f"zero pivot at column {j}: {pivot!r}")
        d[j] = pivot
        data[lo] = 1.0
        data[lo + 1 : hi] = work[rows_j[1:]] / pivot
        work[rows_j] = 0.0
    return LDLTFactor(
        l=LowerCSC(n=n, indptr=indptr.copy(), indices=indices.copy(), data=data), d=d
    )


def ldlt_solve(f: LDLTFactor, b: np.ndarray) -> np.ndarray:
    """Solve ``(L D L^T) x = b`` by forward / scale / backward."""
    from repro.numeric.trisolve import backward_simplicial, forward_simplicial

    b = np.asarray(b, dtype=np.float64)
    squeeze = b.ndim == 1
    y = forward_simplicial(f.l, b)
    if squeeze:
        y = y / f.d
    else:
        y = y / f.d[:, None]
    return backward_simplicial(f.l, y)
