"""Dense kernels used inside supernodes.

Thin wrappers around LAPACK/BLAS via numpy/scipy with uniform error
handling; isolated here so the simulated machine model can charge the same
flop counts that these kernels actually execute.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from repro.util.validation import check_square


class NotPositiveDefiniteError(np.linalg.LinAlgError):
    """Raised when a frontal matrix fails dense Cholesky."""


def dense_cholesky(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of a dense SPD matrix (only the lower triangle
    of *a* is referenced)."""
    check_square(a.shape, "frontal block")
    try:
        return np.linalg.cholesky(np.tril(a) + np.tril(a, -1).T)
    except np.linalg.LinAlgError as exc:
        raise NotPositiveDefiniteError(str(exc)) from exc


def trsm_lower(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L x = b`` with L dense lower triangular; b may be a matrix."""
    check_square(l.shape, "triangular block")
    if l.shape[0] == 0:
        return b.copy()
    return solve_triangular(l, b, lower=True, check_finite=False)


def trsm_lower_t(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L^T x = b`` (the backward-substitution kernel)."""
    check_square(l.shape, "triangular block")
    if l.shape[0] == 0:
        return b.copy()
    return solve_triangular(l, b, lower=True, trans="T", check_finite=False)
