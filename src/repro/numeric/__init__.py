"""Numeric factorization and serial triangular solves.

* :func:`cholesky_simplicial` — reference column-by-column Cholesky
  producing a :class:`~repro.sparse.csc.LowerCSC`.
* :func:`cholesky_supernodal` — the production path: multifrontal
  supernodal Cholesky whose output stores each supernode as the dense
  n x t trapezoid that the paper's parallel solvers distribute and
  pipeline.
* :mod:`repro.numeric.trisolve` — serial forward elimination and backward
  substitution in both simplicial and supernodal forms; the supernodal
  versions are also what each processor runs on its private subtree below
  level log2(p).
"""

from repro.numeric.simplicial import cholesky_simplicial
from repro.numeric.supernodal import SupernodalFactor, cholesky_supernodal
from repro.numeric.trisolve import (
    forward_simplicial,
    backward_simplicial,
    forward_supernodal,
    backward_supernodal,
    solve_supernodal,
)
from repro.numeric.frontal import dense_cholesky, trsm_lower, trsm_lower_t
from repro.numeric.ldlt import LDLTFactor, ldlt_simplicial, ldlt_solve
from repro.numeric.condest import condest, inverse_norm_estimate, one_norm

__all__ = [
    "cholesky_simplicial",
    "SupernodalFactor",
    "cholesky_supernodal",
    "forward_simplicial",
    "backward_simplicial",
    "forward_supernodal",
    "backward_supernodal",
    "solve_supernodal",
    "dense_cholesky",
    "trsm_lower",
    "trsm_lower_t",
    "LDLTFactor",
    "ldlt_simplicial",
    "ldlt_solve",
    "condest",
    "inverse_norm_estimate",
    "one_norm",
]
