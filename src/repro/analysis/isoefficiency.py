"""Empirical isoefficiency estimation.

The isoefficiency function f_E(p) is the rate at which problem size W must
grow with p to keep efficiency fixed at E (paper Section 3.2).  Given any
runner that maps a size parameter to (serial time, parallel time), these
helpers find the size achieving a target efficiency at each p and fit the
growth exponent ``W ~ p^k``.  The paper proves k = 2 for the sparse
triangular solvers on both 2-D and 3-D neighbourhood-graph matrices
(Equations 5 and 9) and k = 1.5 for the corresponding factorization.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.util.validation import require

# runner(size, p) -> (work W, serial seconds, parallel seconds)
Runner = Callable[[int, int], tuple[float, float, float]]


def efficiency_of(runner: Runner, size: int, p: int) -> float:
    """Parallel efficiency of the runner at (size, p)."""
    _, ts, tp = runner(size, p)
    return ts / (p * tp)


def isoefficiency_curve(
    runner: Runner,
    ps: Sequence[int],
    target_e: float,
    *,
    size_lo: int,
    size_hi: int,
    tol: float = 0.02,
    max_iter: int = 48,
) -> list[tuple[int, float, float]]:
    """For each p, bisect the size parameter until efficiency ~= target_e.

    Returns a list of ``(p, W, achieved_efficiency)``.  Efficiency is
    assumed to increase with problem size at fixed p (true for all the
    scalable systems in the paper).  Sizes are integers (e.g. grid edge
    length); the bisection returns the best integer found.
    """
    require(0.0 < target_e < 1.0, "target efficiency must be in (0, 1)")
    out: list[tuple[int, float, float]] = []
    for p in ps:
        lo, hi = size_lo, size_hi
        best: tuple[int, float, float] | None = None
        for _ in range(max_iter):
            mid = (lo + hi) // 2
            if mid == 0 or hi - lo <= 1:
                break
            w, ts, tp = runner(mid, p)
            e = ts / (p * tp)
            if best is None or abs(e - target_e) < abs(best[2] - target_e):
                best = (mid, w, e)
            if abs(e - target_e) <= tol:
                break
            if e < target_e:
                lo = mid
            else:
                hi = mid
        if best is None:
            w, ts, tp = runner(size_lo, p)
            best = (size_lo, w, ts / (p * tp))
        out.append((p, best[1], best[2]))
    return out


def fit_growth_exponent(points: Sequence[tuple[int, float]]) -> float:
    """Least-squares slope of log W against log p.

    ``points`` is ``[(p, W), ...]``; the return value is the empirical
    isoefficiency exponent k in ``W ~ p^k``.
    """
    require(len(points) >= 2, "need at least two points to fit an exponent")
    ps = np.array([float(p) for p, _ in points])
    ws = np.array([float(w) for _, w in points])
    require(bool(np.all(ps > 0) and np.all(ws > 0)), "p and W must be positive")
    slope, _ = np.polyfit(np.log(ps), np.log(ws), 1)
    return float(slope)
