"""Closed-form parallel-time and overhead models (paper Section 3).

Equation 1 (2-D neighbourhood graphs, nested-dissection ordering)::

    T_P = c_w * N log N / p  +  c_1 * sqrt(N)  +  c_2 * p

Equation 2 (3-D neighbourhood graphs)::

    T_P = c_w * N^{4/3} / p  +  c_1 * N^{2/3}  +  c_2 * p

and the corresponding overhead functions (Equations 4 and 8)::

    T_o(2-D) = O(p^2) + O(p sqrt(N))      =>  W ~ p^2   (Eq. 5-6)
    T_o(3-D) = O(p^2) + O(p N^{2/3})      =>  W ~ p^2   (Eq. 9)

The dense 1-D block-cyclic triangular solver has ``T_comm ~ b(p-1) + N``,
``T_o = O(p^2) + O(N p)``, ``W = O(N^2)`` hence also ``W ~ p^2`` — the
sense in which the sparse solvers are "asymptotically as scalable as a
dense triangular solver" and therefore optimal (Section 3.3).

:func:`figure5_table` reproduces the paper's Figure 5: communication
overhead and isoefficiency for {dense, sparse-2D, sparse-3D} x
{1-D, 2-D partitioning} x {factorization, triangular solution}.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.spec import MachineSpec


# --------------------------------------------------------------------- T_P
def sparse_trisolve_model_2d(
    spec: MachineSpec,
    n: int,
    p: int,
    *,
    nrhs: int = 1,
    b: int = 8,
    c_work: float = 3.0,
    c_sep: float = 20.0,
    c_p: float = 0.05,
) -> float:
    """Equation 1 with explicit machine constants.

    The three coefficients are the free constants of the paper's O-terms,
    calibrated once against the event simulation on model meshes (see
    ``benchmarks/bench_scaling_laws.py``; log-log correlation > 0.99):
    ``c_work`` scales the W/p term (W ~ 2 nnz(L) ~ c N log N for
    nested-dissection-ordered 5/9-point meshes), ``c_sep`` the O(sqrt N)
    pipeline-drain term, and ``c_p`` the O(p) startup term (small because
    the implementation trims idle ring segments).
    """
    if p < 1 or n < 1:
        raise ValueError("n and p must be >= 1")
    work_flops = c_work * 2.0 * n * math.log2(max(n, 2)) * nrhs
    t_work = work_flops * spec.t_flop * spec.flop_efficiency(nrhs) / p
    t_sep = c_sep * math.sqrt(n) * nrhs * spec.t_w  # t-term: pipeline drain
    t_pipe = c_p * (b * nrhs * spec.t_w + spec.t_s) * p  # q-term over levels
    return t_work + t_sep + t_pipe


def sparse_trisolve_model_3d(
    spec: MachineSpec,
    n: int,
    p: int,
    *,
    nrhs: int = 1,
    b: int = 8,
    c_work: float = 3.0,
    c_sep: float = 20.0,
    c_p: float = 0.05,
) -> float:
    """Equation 2 with explicit machine constants (see the 2-D variant for
    the meaning and calibration of the coefficients)."""
    if p < 1 or n < 1:
        raise ValueError("n and p must be >= 1")
    work_flops = c_work * 2.0 * float(n) ** (4.0 / 3.0) * nrhs
    t_work = work_flops * spec.t_flop * spec.flop_efficiency(nrhs) / p
    t_sep = c_sep * float(n) ** (2.0 / 3.0) * nrhs * spec.t_w
    t_pipe = c_p * (b * nrhs * spec.t_w + spec.t_s) * p
    return t_work + t_sep + t_pipe


def dense_trisolve_model(
    spec: MachineSpec, n: int, p: int, *, nrhs: int = 1, b: int = 8
) -> float:
    """1-D block-cyclic dense triangular solve: T ~ N^2/p + b(p-1) + N."""
    if p < 1 or n < 1:
        raise ValueError("n and p must be >= 1")
    t_work = float(n) * n * nrhs * spec.t_flop * spec.flop_efficiency(nrhs) / p
    t_comm = (spec.t_s + spec.t_w * b * nrhs) * (p - 1) + spec.t_w * n * nrhs
    return t_work + t_comm


# ------------------------------------------------------------------- Fig. 5
@dataclass(frozen=True)
class Figure5Row:
    """One row of the paper's Figure 5 table (symbolic complexity entries)."""

    matrix_type: str  # dense | sparse-2d | sparse-3d
    partitioning: str  # 1-D | 2-D (with subtree-subcube for sparse)
    factor_comm: str
    factor_iso: str
    solve_comm: str
    solve_iso: str
    overall_iso: str


def figure5_table() -> list[Figure5Row]:
    """The paper's Figure 5, transcribed as data.

    The shaded "most efficient" entries are: 2-D partitioning for
    factorization, 1-D for triangular solution; the overall isoefficiency
    is dominated by factorization in every case.
    """
    return [
        Figure5Row(
            "dense", "1-D",
            factor_comm="O(N^2 p)", factor_iso="O(p^3)",
            solve_comm="O(p^2) + O(N p)", solve_iso="O(p^2)",
            overall_iso="O(p^3)",
        ),
        Figure5Row(
            "dense", "2-D",
            factor_comm="O(N^2 p^{1/2})", factor_iso="O(p^{3/2})",
            solve_comm="O(N p^{1/2})", solve_iso="unscalable",
            overall_iso="O(p^{3/2})",
        ),
        Figure5Row(
            "sparse-2d", "1-D + subtree-subcube",
            factor_comm="O(N p)", factor_iso="O(p^3)",
            solve_comm="O(p^2) + O(N^{1/2} p)", solve_iso="O(p^2)",
            overall_iso="O(p^3)",
        ),
        Figure5Row(
            "sparse-2d", "2-D + subtree-subcube",
            factor_comm="O(N p^{1/2})", factor_iso="O(p^{3/2})",
            solve_comm="O(N p^{1/2})", solve_iso="unscalable",
            overall_iso="O(p^{3/2})",
        ),
        Figure5Row(
            "sparse-3d", "1-D + subtree-subcube",
            factor_comm="O(N^{4/3} p)", factor_iso="O(p^3)",
            solve_comm="O(p^2) + O(N^{2/3} p)", solve_iso="O(p^2)",
            overall_iso="O(p^3)",
        ),
        Figure5Row(
            "sparse-3d", "2-D + subtree-subcube",
            factor_comm="O(N^{4/3} p^{1/2})", factor_iso="O(p^{3/2})",
            solve_comm="O(N^{4/3} p^{1/2})", solve_iso="unscalable",
            overall_iso="O(p^{3/2})",
        ),
    ]


# --------------------------------------------------------------- overheads
def trisolve_overhead_2d(spec: MachineSpec, n: int, p: int, **kw) -> float:
    """``T_o = p T_P - T_S`` under the Equation-1 model."""
    tp = sparse_trisolve_model_2d(spec, n, p, **kw)
    ts = sparse_trisolve_model_2d(spec, n, 1, **kw)
    return p * tp - ts


def trisolve_overhead_3d(spec: MachineSpec, n: int, p: int, **kw) -> float:
    """``T_o = p T_P - T_S`` under the Equation-2 model."""
    tp = sparse_trisolve_model_3d(spec, n, p, **kw)
    ts = sparse_trisolve_model_3d(spec, n, 1, **kw)
    return p * tp - ts
