"""Scalability analysis (paper Section 3).

* :mod:`repro.analysis.metrics` — speedup, efficiency, the overhead
  function ``T_o = p T_P - T_S``, and MFLOPS accounting.
* :mod:`repro.analysis.models` — the paper's closed-form parallel-time
  models (Equations 1-2), the dense triangular solver model, and the
  Figure 5 communication-overhead / isoefficiency table.
* :mod:`repro.analysis.isoefficiency` — empirical isoefficiency
  estimation: grow the problem with p at fixed efficiency and fit the
  growth exponent (the paper derives W ~ p^2 for both 2-D and 3-D
  problem classes, Equations 5 and 9).
"""

from repro.analysis.metrics import efficiency, mflops, overhead, speedup
from repro.analysis.models import (
    Figure5Row,
    dense_trisolve_model,
    figure5_table,
    sparse_trisolve_model_2d,
    sparse_trisolve_model_3d,
)
from repro.analysis.isoefficiency import fit_growth_exponent, isoefficiency_curve

__all__ = [
    "efficiency",
    "mflops",
    "overhead",
    "speedup",
    "Figure5Row",
    "dense_trisolve_model",
    "figure5_table",
    "sparse_trisolve_model_2d",
    "sparse_trisolve_model_3d",
    "fit_growth_exponent",
    "isoefficiency_curve",
]
