"""Elementary parallel-performance metrics (paper Section 3.2 definitions)."""

from __future__ import annotations

from repro.util.validation import check_positive


def speedup(serial_seconds: float, parallel_seconds: float) -> float:
    """``S = T_S / T_P``."""
    check_positive(serial_seconds, "serial_seconds")
    check_positive(parallel_seconds, "parallel_seconds")
    return serial_seconds / parallel_seconds


def efficiency(serial_seconds: float, parallel_seconds: float, p: int) -> float:
    """``E = S / p = T_S / (p T_P)``."""
    check_positive(p, "p")
    return speedup(serial_seconds, parallel_seconds) / p


def overhead(serial_seconds: float, parallel_seconds: float, p: int) -> float:
    """The overhead function ``T_o(W, p) = p T_P - T_S`` (paper Sec. 3.2)."""
    check_positive(serial_seconds, "serial_seconds")
    check_positive(parallel_seconds, "parallel_seconds")
    check_positive(p, "p")
    return p * parallel_seconds - serial_seconds


def mflops(flops: float, seconds: float) -> float:
    """Million floating-point operations per second."""
    check_positive(seconds, "seconds")
    return flops / seconds / 1.0e6
