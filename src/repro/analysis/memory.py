"""Memory accounting for the distributed factor and the multifrontal stack.

The paper's introduction motivates a fully parallel solver partly by
memory: "without an overall parallel solver, the size of the sparse
systems that can be solved may be severely restricted by the amount of
memory available on a uniprocessor system."  These helpers quantify that:

* :func:`factor_words_per_processor` — 8-byte words of L each processor
  stores under a subtree-to-subcube + block-cyclic distribution (the
  head-line claim is that the maximum per-processor share shrinks ~1/p);
* :func:`multifrontal_peak_words` — high-water mark of the sequential
  multifrontal update stack (frontal matrix + pending updates), the
  quantity that limits what one node can factor at all.
"""

from __future__ import annotations

import numpy as np

from repro.mapping.subtree_subcube import ProcSet
from repro.symbolic.stree import SupernodalTree
from repro.util.validation import require


def supernode_factor_words(n: int, t: int) -> int:
    """Stored words of one dense trapezoid (triangle + rectangle)."""
    return t * (t + 1) // 2 + (n - t) * t


def factor_words_per_processor(
    stree: SupernodalTree, assign: list[ProcSet]
) -> np.ndarray:
    """Words of L held by each processor (supernodes split evenly over
    their processor sets — block-cyclic layouts balance to within a block)."""
    require(len(assign) == stree.nsuper, "assignment size mismatch")
    p = max(ps.stop for ps in assign) if assign else 1
    words = np.zeros(p)
    for s, sn in enumerate(stree.supernodes):
        procs = assign[s]
        words[procs.start : procs.stop] += supernode_factor_words(sn.n, sn.t) / procs.size
    return words


def memory_balance(stree: SupernodalTree, assign: list[ProcSet]) -> float:
    """max/mean per-processor factor storage (1.0 = perfectly balanced)."""
    words = factor_words_per_processor(stree, assign)
    mean = float(words.mean())
    return float(words.max()) / mean if mean > 0 else 1.0


def multifrontal_peak_words(stree: SupernodalTree) -> int:
    """High-water mark of the sequential multifrontal stack, in words.

    Walks the tree in the same (postorder) schedule the numeric
    factorization uses: at each supernode the live set is its full frontal
    matrix plus the update matrices of already-factored siblings awaiting
    extend-add.  Children are visited in index order, matching
    :meth:`SupernodalTree.topo_order`.
    """
    peak = 0
    live = 0
    update_words: dict[int, int] = {}
    for s in stree.topo_order():
        sn = stree.supernodes[s]
        front = sn.n * sn.n
        # frontal matrix allocated while children updates are still live
        live += front
        peak = max(peak, live)
        # children updates are consumed into the front
        for c in stree.children[s]:
            live -= update_words.pop(c)
        # front is compressed: factored columns go to factor storage, the
        # Schur complement remains on the stack for the parent
        upd = (sn.n - sn.t) ** 2
        live += upd - front
        update_words[s] = upd
    return peak


def peak_to_factor_ratio(stree: SupernodalTree) -> float:
    """Multifrontal peak over final factor size — the classic overhead of
    the method (≈1-3 for nested-dissection-ordered meshes)."""
    factor = stree.factor_nnz()
    return multifrontal_peak_words(stree) / factor if factor else 0.0
