"""Approximate minimum degree (AMD) on the quotient graph.

The clique-insertion minimum degree of :mod:`repro.ordering.minimum_degree`
materialises fill edges explicitly, which is quadratic in the worst case.
This module implements the quotient-graph formulation (Amestoy, Davis &
Duff): eliminated pivots become *elements* whose adjacency lists are never
expanded, elements reachable through a pivot are absorbed, and variable
degrees are maintained with the standard AMD upper bound

    d_i  <-  min( n - k,
                  d_i + |Lp \\ {i}|,
                  |A_i \\ Lp| + |Lp \\ {i}| + sum_e |L_e \\ Lp| )

which keeps the per-pivot cost proportional to the size of the pivot's
structure.  No supervariable detection (mass elimination) is performed —
orderings remain deterministic and high quality, at some speed cost on
matrices with many indistinguishable rows.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.structure import Adjacency
from repro.ordering.permutation import Permutation


def approximate_minimum_degree(g: Adjacency) -> Permutation:
    """AMD permutation (new <- old) of the graph of a symmetric matrix."""
    n = g.n
    # variable adjacency (to other variables) and element adjacency
    a: list[set[int]] = [set(int(u) for u in g.neighbors(v)) for v in range(n)]
    e: list[set[int]] = [set() for _ in range(n)]
    lsets: dict[int, set[int]] = {}  # element -> variable set
    eliminated = np.zeros(n, dtype=bool)
    degree = np.array([len(a[v]) for v in range(n)], dtype=np.int64)

    heap: list[tuple[int, int]] = [(int(degree[v]), v) for v in range(n)]
    heapq.heapify(heap)
    order = np.empty(n, dtype=np.int64)

    for k in range(n):
        # pop a live entry whose key is current
        while True:
            d, p = heapq.heappop(heap)
            if not eliminated[p] and d == degree[p]:
                break
        order[k] = p
        eliminated[p] = True

        # structure of the new element: Lp = A_p U union(L_e) minus dead
        pivot_elems = list(e[p])
        lp: set[int] = set(v for v in a[p] if not eliminated[v])
        for elem in pivot_elems:
            lp.update(v for v in lsets[elem] if not eliminated[v])
        lp.discard(p)

        # absorb the pivot's elements
        for elem in pivot_elems:
            dead = lsets.pop(elem, None)
            if dead is not None:
                for v in dead:
                    e[v].discard(elem)
        lsets[p] = lp

        # update every variable in the new element
        for i in lp:
            a[i].difference_update(lp)
            a[i].discard(p)
            e[i].add(p)
            # approximate external degree
            exact_cap = n - (k + 1)
            bound_prev = int(degree[i]) + len(lp) - 1
            outside = sum(
                len(lsets[elem] - lp) for elem in e[i] if elem != p and elem in lsets
            )
            bound_struct = len(a[i]) + (len(lp) - 1) + outside
            degree[i] = max(min(exact_cap, bound_prev, bound_struct), 0)
            heapq.heappush(heap, (int(degree[i]), i))
        a[p] = set()
        e[p] = set()
    return Permutation(order)
