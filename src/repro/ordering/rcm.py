"""Reverse Cuthill-McKee ordering.

A bandwidth/profile-reducing baseline.  It produces tall, path-like
elimination trees — the *worst* case for subtree-to-subcube parallelism —
so it is used in the benchmarks as the anti-nested-dissection ablation.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.structure import Adjacency
from repro.graph.traversal import pseudo_peripheral
from repro.ordering.permutation import Permutation


def reverse_cuthill_mckee(g: Adjacency) -> Permutation:
    """RCM permutation (new <- old), handling disconnected graphs."""
    n = g.n
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    for seed in range(n):
        if visited[seed]:
            continue
        # pseudo_peripheral never leaves seed's component, so the start
        # vertex is always an unvisited vertex of the current component.
        start = pseudo_peripheral(g, seed)
        queue: deque[int] = deque([start])
        visited[start] = True
        while queue:
            v = queue.popleft()
            order.append(v)
            nb = [int(u) for u in g.neighbors(v) if not visited[u]]
            nb.sort(key=lambda u: (g.degree(u), u))
            for u in nb:
                visited[u] = True
                queue.append(u)
    order.reverse()
    return Permutation(np.asarray(order, dtype=np.int64))
