"""Minimum-degree ordering.

A straightforward exterior-degree implementation over an explicit
elimination graph: repeatedly eliminate a vertex of minimum current degree
and turn its neighbourhood into a clique.  No supervariable detection or
multiple elimination — the quadratic worst case is acceptable because the
nested-dissection driver only calls this on small leaf subgraphs, and the
standalone use is as an ablation baseline on moderate matrices.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.structure import Adjacency
from repro.ordering.permutation import Permutation


def minimum_degree(g: Adjacency, *, tie_break: str = "index") -> Permutation:
    """Return a minimum-degree permutation (new <- old) of the graph.

    ``tie_break`` is "index" (deterministic, lowest vertex number wins) —
    kept as a parameter so experiments can add randomised tie-breaking.
    """
    if tie_break != "index":
        raise ValueError(f"unsupported tie_break {tie_break!r}")
    n = g.n
    adj: list[set[int]] = [set(map(int, g.neighbors(v))) for v in range(n)]
    eliminated = np.zeros(n, dtype=bool)
    heap: list[tuple[int, int]] = [(len(adj[v]), v) for v in range(n)]
    heapq.heapify(heap)
    order = np.empty(n, dtype=np.int64)

    for k in range(n):
        # Pop until we find a live entry whose recorded degree is current.
        while True:
            deg, v = heapq.heappop(heap)
            if not eliminated[v] and deg == len(adj[v]):
                break
        order[k] = v
        eliminated[v] = True
        nb = adj[v]
        # Clique the neighbourhood (this is where fill is modeled).
        for u in nb:
            adj[u].discard(v)
        nb_list = sorted(nb)
        for i, u in enumerate(nb_list):
            for w in nb_list[i + 1 :]:
                if w not in adj[u]:
                    adj[u].add(w)
                    adj[w].add(u)
            heapq.heappush(heap, (len(adj[u]), u))
        adj[v] = set()
    return Permutation(order)
