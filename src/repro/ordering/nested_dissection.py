"""Nested-dissection ordering.

Recursively find a vertex separator, order the two halves first (recursively)
and the separator vertices **last**.  With geometric median-cut separators on
2-D/3-D meshes this yields the classic George ordering: separators become
the dense supernodes at the top of the elimination tree, the tree is almost
balanced, and the subtree-to-subcube mapping of the paper applies directly.

Small subgraphs (``leaf_size`` or fewer vertices) are ordered by minimum
degree, which keeps leaf-level fill low without affecting the asymptotics.
"""

from __future__ import annotations

import numpy as np

from repro.graph.separators import find_separator
from repro.graph.structure import Adjacency
from repro.ordering.minimum_degree import minimum_degree
from repro.ordering.permutation import Permutation
from repro.util.validation import check_positive


def nested_dissection(g: Adjacency, *, leaf_size: int = 8, max_depth: int | None = None) -> Permutation:
    """Nested-dissection permutation (new <- old).

    Parameters
    ----------
    g:
        The adjacency structure of the (full symmetric) matrix pattern.
    leaf_size:
        Subgraphs at or below this size stop recursing and are ordered with
        minimum degree.
    max_depth:
        Optional recursion cap; ``None`` means recurse until leaf_size.
        Useful in tests and in experiments that want a tree of exactly
        ``log2 p`` parallel levels.
    """
    check_positive(leaf_size, "leaf_size")
    out: list[int] = []
    _dissect(g, np.arange(g.n, dtype=np.int64), out, leaf_size, max_depth, 0)
    if len(out) != g.n:
        raise AssertionError("nested dissection lost vertices")  # pragma: no cover
    return Permutation(np.asarray(out, dtype=np.int64))


def _dissect(
    g: Adjacency,
    to_global: np.ndarray,
    out: list[int],
    leaf_size: int,
    max_depth: int | None,
    depth: int,
) -> None:
    if g.n <= leaf_size or (max_depth is not None and depth >= max_depth):
        local = minimum_degree(g)
        out.extend(int(to_global[v]) for v in local.perm)
        return
    sep = find_separator(g)
    if sep.left.size == 0 or sep.right.size == 0:
        # Separator failed to split (e.g. a clique): fall back to MD here.
        local = minimum_degree(g)
        out.extend(int(to_global[v]) for v in local.perm)
        return
    for side in (sep.left, sep.right):
        sub, mapping = g.subgraph(side)
        _dissect(sub, to_global[mapping], out, leaf_size, max_depth, depth + 1)
    # Separator vertices are numbered last => they rise to the top of the
    # elimination tree and become the root supernode of this subproblem.
    if sep.separator.size:
        sub, mapping = g.subgraph(sep.separator)
        local = minimum_degree(sub)
        out.extend(int(to_global[sep.separator[v]]) for v in local.perm)
