"""Explicit permutation objects.

Conventions matter more than code here.  Throughout the library a
permutation is stored in **"new <- old"** form: ``perm[k]`` is the original
index of the variable that becomes index ``k`` after reordering.  With this
convention ``A.permuted(perm)`` computes ``P A P^T`` and
``x_original = scatter(x_permuted)`` is ``x_orig[perm] = x_perm``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require


@dataclass(frozen=True)
class Permutation:
    """A bijection on ``range(n)`` stored as ``perm[new] = old``."""

    perm: np.ndarray

    def __post_init__(self) -> None:
        p = np.asarray(self.perm, dtype=np.int64)
        object.__setattr__(self, "perm", p)
        require(p.ndim == 1, "permutation must be 1-D")
        if p.size and not np.array_equal(np.sort(p), np.arange(p.shape[0])):
            raise ValueError("not a permutation of range(n)")

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        return cls(np.arange(n, dtype=np.int64))

    @property
    def n(self) -> int:
        return int(self.perm.shape[0])

    def inverse(self) -> "Permutation":
        inv = np.empty_like(self.perm)
        inv[self.perm] = np.arange(self.n)
        return Permutation(inv)

    def compose(self, inner: "Permutation") -> "Permutation":
        """Apply *inner* first, then self: result[new] = inner[self.perm[new]].

        If ``inner`` maps old -> mid and ``self`` maps mid -> new, the
        composition maps old -> new.
        """
        require(inner.n == self.n, "size mismatch in composition")
        return Permutation(inner.perm[self.perm])

    def apply_to_vector(self, x: np.ndarray) -> np.ndarray:
        """Return x reordered into the new numbering (``out[new] = x[old]``)."""
        return np.asarray(x)[self.perm]

    def unapply_to_vector(self, x: np.ndarray) -> np.ndarray:
        """Undo :meth:`apply_to_vector` (``out[old] = x[new]``)."""
        out = np.empty_like(np.asarray(x))
        out[self.perm] = x
        return out

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Permutation) and np.array_equal(self.perm, other.perm)
