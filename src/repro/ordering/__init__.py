"""Fill-reducing orderings.

The paper's analysis assumes a nested-dissection-based ordering (Section 3):
it is what produces balanced elimination trees with O(sqrt N) / O(N^{2/3})
separator supernodes, and the subtree-to-subcube mapping relies on that
balance.  We provide:

* :func:`nested_dissection` — the primary ordering (geometric separators for
  mesh matrices, level-set separators otherwise);
* :func:`minimum_degree` — the classic alternative, used for small leaf
  subgraphs and as an ablation baseline;
* :func:`reverse_cuthill_mckee` — profile-reducing baseline;
* :class:`Permutation` — explicit permutation objects with composition and
  inversion.
"""

from repro.ordering.permutation import Permutation
from repro.ordering.nested_dissection import nested_dissection
from repro.ordering.amd import approximate_minimum_degree
from repro.ordering.minimum_degree import minimum_degree
from repro.ordering.rcm import reverse_cuthill_mckee
from repro.ordering.api import order

__all__ = [
    "Permutation",
    "nested_dissection",
    "minimum_degree",
    "approximate_minimum_degree",
    "reverse_cuthill_mckee",
    "order",
]
