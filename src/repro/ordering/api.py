"""Single entry point for ordering a matrix."""

from __future__ import annotations

from repro.graph.structure import adjacency_from_matrix
from repro.ordering.amd import approximate_minimum_degree
from repro.ordering.minimum_degree import minimum_degree
from repro.ordering.nested_dissection import nested_dissection
from repro.ordering.permutation import Permutation
from repro.ordering.rcm import reverse_cuthill_mckee
from repro.sparse.csc import SymCSC

METHODS = ("nested_dissection", "minimum_degree", "amd", "rcm", "natural")


def order(a: SymCSC, method: str = "nested_dissection", **kwargs) -> Permutation:
    """Compute a fill-reducing permutation of *a*.

    ``method`` is one of ``nested_dissection`` (default; what the paper's
    analysis assumes), ``minimum_degree``, ``rcm``, or ``natural``.
    Additional keyword arguments are forwarded to the chosen algorithm.
    """
    if method == "natural":
        return Permutation.identity(a.n)
    g = adjacency_from_matrix(a)
    if method == "nested_dissection":
        return nested_dissection(g, **kwargs)
    if method == "minimum_degree":
        return minimum_degree(g, **kwargs)
    if method == "amd":
        return approximate_minimum_degree(g, **kwargs)
    if method == "rcm":
        return reverse_cuthill_mckee(g, **kwargs)
    raise ValueError(f"unknown ordering method {method!r}; options: {METHODS}")
