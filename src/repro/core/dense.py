"""Dense pipelined triangular solver (Heath & Romine, paper ref [6]).

Section 3.3 compares the sparse solvers' scalability against the dense
1-D block-cyclic pipelined triangular solve: communication ``b(p-1) + N``,
overhead ``O(p^2) + O(N p)``, isoefficiency ``O(p^2)`` — the same as the
sparse solvers, which is the paper's optimality argument (the root
separator of a 3-D problem *is* an N^{2/3} dense triangle, so no sparse
method can scale better than the dense solve of its top supernode).

This module implements that comparator for real: a dense lower-triangular
system distributed row-block-cyclically over p simulated processors,
executed through the same event simulator and verified against
scipy.  It is literally the sparse machinery applied to a single
supernode with n = t.
"""

from __future__ import annotations

import numpy as np

from repro.core.backward import build_backward_graph
from repro.core.forward import build_forward_graph
from repro.machine.events import SimResult, simulate
from repro.machine.spec import MachineSpec
from repro.mapping.subtree_subcube import ProcSet
from repro.symbolic.stree import Supernode, SupernodalTree
from repro.numeric.supernodal import SupernodalFactor
from repro.symbolic.etree import NO_PARENT
from repro.util.validation import check_power_of_two, require


def _as_single_supernode_factor(l: np.ndarray) -> SupernodalFactor:
    """Wrap a dense lower-triangular matrix as a one-supernode factor."""
    require(l.ndim == 2 and l.shape[0] == l.shape[1], "L must be square")
    n = l.shape[0]
    sn = Supernode(index=0, col_lo=0, col_hi=n, rows=np.arange(n, dtype=np.int64))
    stree = SupernodalTree(
        supernodes=[sn], parent=np.array([NO_PARENT], dtype=np.int64)
    )
    return SupernodalFactor(stree=stree, blocks=[np.tril(l)])


def dense_forward(
    l: np.ndarray,
    rhs: np.ndarray,
    spec: MachineSpec,
    p: int,
    *,
    b: int = 8,
    variant: str = "column",
) -> tuple[np.ndarray, SimResult]:
    """Solve dense ``L y = rhs`` with the pipelined 1-D algorithm on p PEs."""
    check_power_of_two(p, "p")
    factor = _as_single_supernode_factor(l)
    assign = [ProcSet(0, p)] if p > 1 else [ProcSet(0, 1)]
    graph, out = build_forward_graph(
        factor, assign, spec, rhs, b=b, variant=variant, nproc=p
    )
    sim = simulate(graph, spec)
    squeeze = np.asarray(rhs).ndim == 1
    return (out[:, 0] if squeeze else out), sim


def dense_backward(
    l: np.ndarray,
    rhs: np.ndarray,
    spec: MachineSpec,
    p: int,
    *,
    b: int = 8,
) -> tuple[np.ndarray, SimResult]:
    """Solve dense ``L^T x = rhs`` with the pipelined 1-D algorithm."""
    check_power_of_two(p, "p")
    factor = _as_single_supernode_factor(l)
    assign = [ProcSet(0, p)]
    graph, out = build_backward_graph(factor, assign, spec, rhs, b=b, nproc=p)
    sim = simulate(graph, spec)
    squeeze = np.asarray(rhs).ndim == 1
    return (out[:, 0] if squeeze else out), sim


def dense_trisolve_time(
    n: int, spec: MachineSpec, p: int, *, b: int = 8, nrhs: int = 1, seed: int = 0
) -> float:
    """Simulated forward-solve makespan for a random dense n x n system."""
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(n, n))
    l = np.tril(m) + n * np.eye(n)
    rhs = rng.normal(size=(n, nrhs))
    _, sim = dense_forward(l, rhs, spec, p, b=b)
    return sim.makespan
