"""Rank-local (SPMD) implementation of parallel backward substitution.

Mirror of :mod:`repro.core.spmd_forward`, in the paper's Section 2.2
structure: root supernode first; each supernode gathers the solved values
of its below rows from the ancestors that produced them, then runs the
column-priority pipelined transposed solve with the *descending
accumulator ring* of Figure 4 (each block column's partial sums travel
from the highest ring rank down to the column's owner, trailing the
previous column's wave by one hop).

Message protocol:

* ancestor solved values -> descendant: tag encodes (producing supernode,
  consuming supernode, consumer block); producers ship each piece as soon
  as the producing supernode is solved;
* accumulator piece for column tau of supernode s: tag = ``TAG_ACC +
  s * MAXB + tau``, hopping ring rank to ring rank.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.blocks import SupernodeBlocks
from repro.machine.spec import MachineSpec
from repro.machine.spmd import Env, Program, SpmdResult, run_spmd
from repro.mapping.subtree_subcube import ProcSet
from repro.numeric.frontal import trsm_lower_t
from repro.numeric.supernodal import SupernodalFactor
from repro.util.flops import gemm_flops, trsm_flops
from repro.util.validation import require

MAXB = 1 << 20
TAG_X = 2 << 40
TAG_ACC = 3 << 40


def _solver_rank_of_column(stree, assign, blocks) -> np.ndarray:
    """rank that computes (and can send) the solved value of each column."""
    n = stree.n
    owner = np.empty(n, dtype=np.int64)
    for s in stree.topo_order():
        sn = stree.supernodes[s]
        sb = blocks[s]
        if sb is None:
            owner[sn.col_lo : sn.col_hi] = assign[s].start
        else:
            for tau in range(sb.n_tri_blocks):
                lo, hi = sb.bounds(tau)
                owner[sn.col_lo + lo : sn.col_lo + hi] = sb.owner(tau)
    return owner


def make_backward_program(
    factor: SupernodalFactor,
    assign: list[ProcSet],
    rhs: np.ndarray,
    *,
    b: int = 8,
    nproc: int | None = None,
) -> tuple[Program, int, np.ndarray]:
    """Build the backward-substitution rank program without running it.

    Returns ``(program, size, out)``; *out* receives the solution when
    the program is executed (by :func:`repro.machine.spmd.run_spmd` or by
    the static communication linter's timing-free walk — the program is
    idempotent, so linting then simulating is safe).
    """
    stree = factor.stree
    n = stree.n
    rhs = np.ascontiguousarray(rhs, dtype=np.float64)
    if rhs.ndim == 1:
        rhs = rhs[:, None]
    require(rhs.shape[0] == n, "rhs row count mismatch")
    m = rhs.shape[1]
    size = nproc or max(ps.stop for ps in assign)

    blocks: list[SupernodeBlocks | None] = [
        SupernodeBlocks(n=sn.n, t=sn.t, b=b, procs=assign[s])
        if assign[s].size > 1
        else None
        for s, sn in enumerate(stree.supernodes)
    ]
    col_rank = _solver_rank_of_column(stree, assign, blocks)
    # map every column to the supernode that solves it
    col_to_sn = np.empty(n, dtype=np.int64)
    for si, sn_ in enumerate(stree.supernodes):
        col_to_sn[sn_.col_lo : sn_.col_hi] = si
    out = np.zeros((n, m))

    def _tag(s_prod: int, s_cons: int, k: int) -> int:
        return TAG_X + ((s_prod * stree.nsuper + s_cons) * MAXB) + k

    # Shared routing plan.  Consumers gather per (block, producing rank,
    # producing supernode); producers send each outgoing piece *as soon as
    # the producing supernode finishes* (keyed by producer supernode), so
    # no consumer waits on unrelated work in the producer's program order.
    gathers: dict[int, list[tuple[int, int, int, int, np.ndarray, np.ndarray]]] = {}
    outgoing: dict[int, dict[int, list[tuple[int, int, int, np.ndarray]]]] = {
        r: {} for r in range(size)
    }
    for s in reversed(stree.topo_order()):
        sn = stree.supernodes[s]
        sb = blocks[s]
        plan: list[tuple[int, int, int, int, np.ndarray, np.ndarray]] = []
        if sn.n > sn.t:
            if sb is None:
                pieces = [(0, assign[s].start, np.arange(sn.t, sn.n, dtype=np.int64))]
            else:
                pieces = [
                    (k, sb.owner(k), np.arange(*sb.bounds(k), dtype=np.int64))
                    for k in range(sb.n_tri_blocks, sb.nblocks)
                ]
            for k, dst_rank, local_rows in pieces:
                rows = sn.rows[local_rows]
                producers = col_rank[rows]
                prod_sn = col_to_sn[rows]
                for src in np.unique(producers):
                    for sp in np.unique(prod_sn[producers == src]):
                        sel = (producers == src) & (prod_sn == sp)
                        plan.append(
                            (k, dst_rank, int(src), int(sp), rows[sel], local_rows[sel])
                        )
                        if int(src) != dst_rank:
                            outgoing[int(src)].setdefault(int(sp), []).append(
                                (s, k, dst_rank, rows[sel])
                            )
        gathers[s] = plan

    def program(rank: int, env: Env) -> Generator:
        for s in reversed(stree.topo_order()):
            sn = stree.supernodes[s]
            procs = assign[s]
            in_procs = rank in procs
            blk = factor.blocks[s]
            t, ns = sn.t, sn.n
            col_lo, col_hi = sn.col_lo, sn.col_hi
            sb = blocks[s]

            if not in_procs:
                continue

            zs = np.zeros((ns, m))
            # ---- gather below values this rank consumes ---------------
            gather_rows = 0
            for (k, dst_rank, src, sp, rows, local_rows) in gathers[s]:
                if dst_rank != rank:
                    continue
                if src == rank:
                    zs[local_rows] = out[rows]
                else:
                    vals = yield env.recv(src, tag=_tag(sp, s, k))
                    zs[local_rows] = vals
                gather_rows += local_rows.shape[0]
            if gather_rows:
                yield env.compute(flops=gather_rows * m, nrhs=m)

            if sb is None:
                top = rhs[col_lo:col_hi].copy()
                if ns > t:
                    top -= blk[t:, :].T @ zs[t:]
                x = trsm_lower_t(blk[:t, :t], top)
                out[col_lo:col_hi] = x
                yield env.compute(
                    flops=trsm_flops(t, m) + gemm_flops(ns - t, t, m), nrhs=m
                )
                for (cons_s, k, dst_rank, rows) in outgoing[rank].get(s, []):
                    yield env.send(
                        dst_rank,
                        data=out[rows].copy(),
                        words=rows.shape[0] * m,
                        tag=_tag(s, cons_s, k),
                    )
                continue

            # ---- pipelined shared supernode: descending acc rings -----
            q = sb.q
            ntb = sb.n_tri_blocks
            nb = sb.nblocks
            my_blocks = sb.blocks_of(rank)
            for tau in range(ntb - 1, -1, -1):
                tlo, thi = sb.bounds(tau)
                bt = thi - tlo
                owner_t = sb.owner(tau)
                tag = TAG_ACC + s * MAXB + tau
                max_offset = min(nb - 1 - tau, q - 1)
                # descending ring positions: offset max_offset .. 1, then owner
                my_offset = (rank - owner_t) % q
                participates = my_offset <= max_offset
                if not participates and rank != owner_t:
                    continue
                # Local contributions are independent of the incoming
                # accumulator, so compute them *before* blocking on the
                # ring message — overlapping computation with the wave's
                # latency exactly as the pipelined schedule intends.
                local = np.zeros((bt, m))
                flops = 0
                for i in my_blocks:
                    if i <= tau:
                        continue
                    ilo, ihi = sb.bounds(i)
                    local += blk[ilo:ihi, tlo:thi].T @ zs[ilo:ihi]
                    flops += gemm_flops(bt, ihi - ilo, m)
                if flops:
                    yield env.compute(flops=flops, nrhs=m)
                # receive the accumulator from the next-higher offset
                if my_offset < max_offset or (rank == owner_t and max_offset > 0):
                    src = sb.ring_rank(owner_t, my_offset + 1)
                    acc = yield env.recv(src, tag=tag)
                    acc = acc + local
                else:
                    acc = local
                if rank == owner_t:
                    x = trsm_lower_t(
                        blk[tlo:thi, tlo:thi], rhs[col_lo + tlo : col_lo + thi] - acc
                    )
                    zs[tlo:thi] = x
                    out[col_lo + tlo : col_lo + thi] = x
                    yield env.compute(flops=trsm_flops(bt, m), nrhs=m)
                else:
                    yield env.send(
                        sb.ring_rank(owner_t, my_offset - 1)
                        if my_offset > 1
                        else owner_t,
                        data=acc,
                        words=bt * m,
                        tag=tag,
                    )
            # all of this rank's columns of s are now solved: ship them
            for (cons_s, k, dst_rank, rows) in outgoing[rank].get(s, []):
                yield env.send(
                    dst_rank,
                    data=out[rows].copy(),
                    words=rows.shape[0] * m,
                    tag=_tag(s, cons_s, k),
                )

    return program, size, out


def spmd_backward(
    factor: SupernodalFactor,
    assign: list[ProcSet],
    spec: MachineSpec,
    rhs: np.ndarray,
    *,
    b: int = 8,
    nproc: int | None = None,
    verify: bool = False,
) -> tuple[np.ndarray, SpmdResult]:
    """Solve ``L^T x = rhs`` with the SPMD formulation.

    With ``verify=True`` the rank program is first walked through the
    static communication linter; any guaranteed protocol defect raises
    :class:`repro.verify.VerificationError` before a simulated second is
    spent.
    """
    squeeze = np.asarray(rhs).ndim == 1
    program, size, out = make_backward_program(factor, assign, rhs, b=b, nproc=nproc)
    if verify:
        from repro.verify.comm import lint_spmd

        lint_spmd(program, size, spec).raise_if_errors(
            "spmd_backward communication lint failed"
        )
    result = run_spmd(program, size, spec)
    return (out[:, 0] if squeeze else out), result
