"""Forward elimination on a 2-D block-cyclic factor (the *unscalable* row).

Figure 5 contrasts two ways to run the triangular solvers:

* redistribute each supernode to a 1-D layout first (Section 4) and use
  the pipelined algorithm — communication ``O(p^2 + N^{1/2} p)``,
  isoefficiency ``O(p^2)``;
* solve **directly on the 2-D factorization layout** — communication
  ``O(N p^{1/2})`` *total over all levels*, which grows with the problem
  size times sqrt(p): the solver is then *unscalable* (no isoefficiency
  function exists — efficiency cannot be held by growing N).

This module implements the second variant so the table's "Unscalable"
entry is measurable: each supernode keeps the factorization's
``qr x qc`` grid; solving block column J needs the sub-vector broadcast
down J's processor column, partial products reduced across each processor
row — ``O(t/b)`` collective pairs per supernode, each costing
``O(log q)`` latency plus ``O(b * n / qr)`` volume.

The numeric result is identical (verified); only the simulated timing
differs.  ``bench_fig5_partitioning.py`` shows the crossover: for fixed N
the 2-D variant's efficiency collapses while the 1-D variant follows the
paper's p^2 isoefficiency.
"""

from __future__ import annotations


import numpy as np

from repro.core.blocks import SupernodeBlocks
from repro.machine.events import SimResult, TaskGraph, simulate
from repro.machine.spec import MachineSpec
from repro.mapping.layouts import BlockCyclic2D
from repro.mapping.subtree_subcube import ProcSet
from repro.numeric.frontal import trsm_lower
from repro.numeric.supernodal import SupernodalFactor
from repro.util.flops import gemm_flops, supernode_solve_flops, trsm_flops
from repro.util.validation import require


def build_forward_graph_2d(
    factor: SupernodalFactor,
    assign: list[ProcSet],
    spec: MachineSpec,
    rhs: np.ndarray,
    *,
    b: int = 8,
    nproc: int | None = None,
) -> tuple[TaskGraph, np.ndarray]:
    """Forward solve with every shared supernode left in its 2-D layout."""
    stree = factor.stree
    n = stree.n
    rhs = np.ascontiguousarray(rhs, dtype=np.float64)
    if rhs.ndim == 1:
        rhs = rhs[:, None]
    require(rhs.shape[0] == n, "rhs row count mismatch")
    m = rhs.shape[1]
    p = nproc or max(ps.stop for ps in assign)
    g = TaskGraph(nproc=p)
    out = np.zeros((n, m))
    z: dict[int, np.ndarray] = {}
    # producers: supernode -> list of (task, global rows, local rows)
    producers: dict[int, list[tuple[int, np.ndarray, np.ndarray]]] = {}

    for s in stree.topo_order():
        sn = stree.supernodes[s]
        blk = factor.blocks[s]
        procs = assign[s]
        t, ns = sn.t, sn.n
        zs = np.zeros((ns, m))
        z[s] = zs
        pos_of_global = {int(gr): i for i, gr in enumerate(sn.rows)}
        feeds = []
        for c in stree.children[s]:
            for tid_c, rows_c, loc_c in producers.pop(c, []):
                tgt = np.fromiter(
                    (pos_of_global[int(gr)] for gr in rows_c),
                    dtype=np.int64,
                    count=rows_c.shape[0],
                )
                feeds.append((tid_c, z[c], tgt, loc_c))

        if procs.size == 1:
            producers[s] = _sequential(g, s, sn, blk, procs.start, spec, rhs, out, zs, feeds, m)
        else:
            producers[s] = _two_d_supernode(
                g, s, sn, blk, procs, spec, rhs, out, zs, feeds, m, b
            )
    return g, out


def _assemble(zs: np.ndarray, feeds, t: int) -> None:
    for _, zc, tgt, src in feeds:
        tri = tgt < t
        if tri.any():
            zs[tgt[tri]] -= zc[src[tri]]
        low = ~tri
        if low.any():
            zs[tgt[low]] += zc[src[low]]


def _sequential(g, s, sn, blk, proc, spec, rhs, out, zs, feeds, m):
    t, ns = sn.t, sn.n
    col_lo, col_hi = sn.col_lo, sn.col_hi

    def run() -> None:
        zs[:t] = rhs[col_lo:col_hi]
        _assemble(zs, feeds, t)
        x = trsm_lower(blk[:t, :t], zs[:t])
        zs[:t] = x
        out[col_lo:col_hi] = x
        if ns > t:
            zs[t:] += blk[t:, :] @ x

    assemble_rows = sum(tgt.shape[0] for _, _, tgt, _ in feeds)
    cost = spec.compute_time(
        supernode_solve_flops(ns, t, m) + m * assemble_rows, nrhs=m, calls=3
    )
    tid = g.add_task(proc, cost, priority=(s, 0, 0, 0), label=f"s2{s}:seq", run=run)
    for tid_c, _, tgt, _ in feeds:
        g.add_edge(tid_c, tid, words=tgt.shape[0] * m)
    if ns == t:
        return []
    return [(tid, sn.rows[t:], np.arange(t, ns, dtype=np.int64))]


def _two_d_supernode(g, s, sn, blk, procs, spec, rhs, out, zs, feeds, m, b):
    """One shared supernode, kept on its qr x qc factorization grid.

    Per block column J: solve the diagonal block at its owner; broadcast
    the solved piece down J's processor *column* (log qr steps, modeled as
    direct edges); each grid processor updates its local row blocks; the
    row-block results must then be *reduced across the processor row*
    (qc - 1 messages of b*m words each, modeled as a message chain into
    the row's "home" processor — the O(n/qr * qc)-volume term that makes
    this variant unscalable).
    """
    t, ns = sn.t, sn.n
    col_lo = sn.col_lo
    blocks = SupernodeBlocks(n=ns, t=t, b=b, procs=procs)
    layout = BlockCyclic2D(n=ns, t=t, b=b, procs=procs)
    qr, qc = layout.grid
    ntb = blocks.n_tri_blocks
    nb = blocks.nblocks

    def owner2d(i: int, j: int) -> int:
        return procs.start + (i % qr) * qc + (j % qc)

    # entry assembly at each row block's home (grid column of its diagonal)
    assemble_tid: list[int] = []
    for k in range(nb):
        lo, hi = blocks.bounds(k)
        is_tri = blocks.is_triangle(k)
        k_feeds = [f for f in feeds if np.any((f[2] >= lo) & (f[2] < hi))]

        def run(lo=lo, hi=hi, is_tri=is_tri, k_feeds=tuple(k_feeds)) -> None:
            if is_tri:
                zs[lo:hi] = rhs[col_lo + lo : col_lo + hi]
            sel_feeds = []
            for tid_c, zc, tgt, src in k_feeds:
                mask = (tgt >= lo) & (tgt < hi)
                sel_feeds.append((tid_c, zc, tgt[mask], src[mask]))
            _assemble(zs, sel_feeds, t)

        home = owner2d(k, min(k, layout.ncol_blocks - 1))
        tid = g.add_task(
            home,
            spec.compute_time(m * (hi - lo), nrhs=m, calls=1),
            priority=(s, 0, k, 0),
            label=f"s2{s}:A{k}",
            run=run,
        )
        for tid_c, _, tgt, _ in k_feeds:
            words = int(np.sum((tgt >= lo) & (tgt < hi))) * m
            g.add_edge(tid_c, tid, words=words)
        assemble_tid.append(tid)

    reduce_tids: list[list[int]] = [[] for _ in range(nb)]
    last_for_block: list[int] = list(assemble_tid)

    for j in range(ntb):
        jlo, jhi = blocks.bounds(j)
        bj = jhi - jlo
        diag_owner = owner2d(j, j)

        def run_diag(jlo=jlo, jhi=jhi) -> None:
            x = trsm_lower(blk[jlo:jhi, jlo:jhi], zs[jlo:jhi])
            zs[jlo:jhi] = x
            out[col_lo + jlo : col_lo + jhi] = x

        d_tid = g.add_task(
            diag_owner,
            spec.compute_time(trsm_flops(bj, m), nrhs=m, calls=1),
            priority=(s, 1, j, 0),
            label=f"s2{s}:D{j}",
            run=run_diag,
        )
        g.add_edge(last_for_block[j], d_tid)
        for rtid in reduce_tids[j]:
            g.add_edge(rtid, d_tid)

        # Broadcast x_j down grid column (j % qc) as a binomial tree:
        # log2(qr) latency levels, each hop a real (t_s + t_w b m) message.
        # This is the per-column-step collective whose latency, repeated
        # serially for every block column, makes the 2-D layout unscalable.
        col_ranks = [procs.start + gr * qc + (j % qc) for gr in range(qr)]
        diag_pos = col_ranks.index(diag_owner)
        ordered = col_ranks[diag_pos:] + col_ranks[:diag_pos]
        bcast_targets: dict[int, int] = {diag_owner: d_tid}
        have = 1
        while have < len(ordered):
            for src_idx in range(min(have, len(ordered) - have)):
                dst_idx = src_idx + have
                dst_rank = ordered[dst_idx]
                src_tid = bcast_targets[ordered[src_idx]]
                r_tid = g.add_task(
                    dst_rank, 0.0, priority=(s, 1, j, 1 + dst_idx), label=f"s2{s}:B{j}.{dst_idx}"
                )
                g.add_edge(src_tid, r_tid, words=bj * m)
                bcast_targets[dst_rank] = r_tid
            have *= 2

        # local updates + row reductions
        for i in range(j + 1, nb):
            ilo, ihi = blocks.bounds(i)
            bi = ihi - ilo
            upd_owner = owner2d(i, j)
            sign = -1.0 if blocks.is_triangle(i) else 1.0

            def run_update(ilo=ilo, ihi=ihi, jlo=jlo, jhi=jhi, sign=sign) -> None:
                zs[ilo:ihi] += sign * (blk[ilo:ihi, jlo:jhi] @ zs[jlo:jhi])

            u_tid = g.add_task(
                upd_owner,
                spec.compute_time(gemm_flops(bi, bj, m), nrhs=m, calls=1),
                priority=(s, 1, j, 10 + i),
                label=f"s2{s}:U{i}.{j}",
                run=run_update,
            )
            g.add_edge(bcast_targets[upd_owner], u_tid)
            g.add_edge(last_for_block[i], u_tid)
            last_for_block[i] = u_tid
            # the partial result lives on grid column j%qc; ship it to the
            # row's home column (i's diagonal column) — this is the extra
            # O(b m) message per (i, j) pair that 1-D layouts avoid
            home = owner2d(i, min(i, layout.ncol_blocks - 1))
            if home != upd_owner:
                r_tid = g.add_task(
                    home, 0.0, priority=(s, 1, j, 10 + i), label=f"s2{s}:R{i}.{j}"
                )
                g.add_edge(u_tid, r_tid, words=bi * m)
                last_for_block[i] = r_tid
            if i < ntb:
                reduce_tids[i].append(last_for_block[i])

    # exports
    prods = []
    for k in range(blocks.n_tri_blocks, nb):
        lo, hi = blocks.bounds(k)
        s_tid = g.add_task(
            g.tasks[last_for_block[k]].proc, 0.0, priority=(s, 2, k, 0), label=f"s2{s}:S{k}"
        )
        g.add_edge(last_for_block[k], s_tid)
        prods.append((s_tid, sn.rows[lo:hi], np.arange(lo, hi, dtype=np.int64)))
    return prods


def parallel_forward_2d(
    factor: SupernodalFactor,
    assign: list[ProcSet],
    spec: MachineSpec,
    rhs: np.ndarray,
    *,
    b: int = 8,
    nproc: int | None = None,
) -> tuple[np.ndarray, SimResult]:
    """Solve ``L y = rhs`` without redistributing from the 2-D layout."""
    g, out = build_forward_graph_2d(factor, assign, spec, rhs, b=b, nproc=nproc)
    sim = simulate(g, spec)
    squeeze = np.asarray(rhs).ndim == 1
    return (out[:, 0] if squeeze else out), sim
