"""End-to-end parallel sparse SPD solver.

:class:`ParallelSparseSolver` strings the phases together exactly as the
paper's experimental code does:

1. fill-reducing ordering + symbolic factorization (``repro.symbolic``);
2. numeric supernodal Cholesky (``repro.numeric``), with a modeled
   factorization time for the requested processor count;
3. 2-D -> 1-D redistribution of the factor (``repro.mapping``), with its
   simulated cost;
4. simulated-parallel forward elimination and backward substitution
   (``repro.core.forward`` / ``repro.core.backward``).

``solve`` returns the solution in the *original* ordering plus a
:class:`SolveReport` containing every quantity Figure 7 tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.verify.findings import Report

from repro.core.backward import parallel_backward
from repro.core.factor_model import parallel_factor_time, serial_factor_time
from repro.core.forward import parallel_forward
from repro.machine.events import SimResult
from repro.machine.presets import cray_t3d
from repro.machine.spec import MachineSpec
from repro.mapping.redistribution import total_redistribution_time
from repro.mapping.subtree_subcube import ProcSet, subtree_to_subcube
from repro.numeric.supernodal import SupernodalFactor, cholesky_supernodal
from repro.sparse.csc import SymCSC
from repro.symbolic.analyze import SymbolicFactor, analyze
from repro.util.validation import check_power_of_two, require


@dataclass
class TrisolveRun:
    """Timing and verification data for one triangular-solve phase."""

    seconds: float
    flops: int
    sim: SimResult | None = None

    @property
    def mflops(self) -> float:
        return self.flops / self.seconds / 1e6 if self.seconds > 0 else float("inf")


@dataclass
class SolveReport:
    """Everything the paper's Figure 7 reports for one (matrix, p, NRHS).

    ``backend`` records where the triangular-solve seconds came from:
    ``"sim"`` (simulated machine makespans, the default), or the real
    wall-clock backends ``"serial"`` / ``"threads"`` / ``"fused"`` of
    :mod:`repro.exec`.

    ``schedule_certificate`` (``threads`` or ``fused`` backend with
    ``verify=True``) is the determinism certificate of the statically
    certified execution plan: a canonical hash over the schedule's
    reduction orders and task topology.  It is a pure function of the
    symbolic structure — two reports with equal certificates ran
    schedule-equivalent (hence bitwise-identical) solves, for *any*
    worker count and either real backend, without either run having to
    be repeated.
    """

    n: int
    p: int
    nrhs: int
    factor_seconds: float
    factor_flops: float
    redistribute_seconds: float
    forward: TrisolveRun
    backward: TrisolveRun
    residual: float | None = None
    backend: str = "sim"
    workers: int | None = None
    schedule_certificate: str | None = None

    @property
    def fbsolve_seconds(self) -> float:
        """Total forward+backward time (the paper's "FBsolve time")."""
        return self.forward.seconds + self.backward.seconds

    @property
    def fbsolve_mflops(self) -> float:
        total = self.forward.flops + self.backward.flops
        return total / self.fbsolve_seconds / 1e6 if self.fbsolve_seconds > 0 else float("inf")

    @property
    def factor_mflops(self) -> float:
        return self.factor_flops / self.factor_seconds / 1e6 if self.factor_seconds else 0.0

    @property
    def redistribution_ratio(self) -> float:
        """Redistribution time over FBsolve time (paper: <= 0.9, avg ~0.5)."""
        return self.redistribute_seconds / self.fbsolve_seconds if self.fbsolve_seconds else 0.0


@dataclass
class ParallelSparseSolver:
    """Direct solver for sparse SPD systems on the simulated machine.

    Parameters
    ----------
    a :
        The SPD coefficient matrix.
    p :
        Number of (simulated) processors; a power of two.
    spec :
        Machine parameters; defaults to the Cray-T3D-like preset.
    b :
        Block size of the block-cyclic supernode partitioning.
    ordering :
        Fill-reducing ordering method (see :func:`repro.ordering.order`).
    variant :
        "column" or "row" priority for the pipelined forward solver.
    relax :
        Supernode amalgamation slack (see
        :func:`repro.symbolic.find_supernodes`).
    verify :
        When true (the default), :meth:`prepare` runs the cheap static
        invariant checkers of :mod:`repro.verify` over the input matrix,
        the symbolic factorization, and the subtree-to-subcube mapping,
        raising :class:`repro.verify.VerificationError` before any
        simulated run can consume a bad structure.
    """

    a: SymCSC
    p: int = 1
    spec: MachineSpec = field(default_factory=cray_t3d)
    b: int = 8
    ordering: str = "nested_dissection"
    variant: str = "column"
    relax: int = 0
    factor_time_mode: str = "model"  # "model" (closed form) | "simulate"
    verify: bool = True

    # Filled by prepare():
    symbolic: SymbolicFactor | None = None
    factor: SupernodalFactor | None = None
    assign: list[ProcSet] | None = None
    _factor_seconds: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_power_of_two(self.p, "p")

    # ------------------------------------------------------------------
    def prepare(self) -> "ParallelSparseSolver":
        """Run ordering, symbolic analysis, numeric factorization, mapping.

        With ``verify=True`` every structure produced here is passed
        through the static invariant checkers before the solver accepts
        it (CSC well-formedness, etree postorder, supernode chains,
        subcube containment, block-cyclic layout conformance).
        """
        self.symbolic = analyze(self.a, method=self.ordering, relax=self.relax)
        self.factor = cholesky_supernodal(self.symbolic)
        self.assign = subtree_to_subcube(self.symbolic.stree, self.p)
        if self.verify:
            self.verify_prepared().raise_if_errors(
                "solver structural verification failed"
            )
        return self

    def verify_prepared(self) -> "Report":
        """Run the static invariant checkers over the prepared structures.

        Returns the :class:`repro.verify.Report`; callers that want
        fail-fast semantics use ``.raise_if_errors()`` (which
        :meth:`prepare` does when ``verify=True``).
        """
        from repro.verify.invariants import (
            check_assignment,
            check_block_cyclic_conformance,
            check_csc,
            check_symbolic,
        )

        sym, _, assign = self._require_prepared()
        report = check_csc(self.a, name="A")
        report.extend(check_symbolic(sym, name="symbolic"))
        report.extend(check_assignment(sym.stree, assign, self.p, name="assign"))
        report.extend(
            check_block_cyclic_conformance(sym.stree, assign, self.b, name="layout")
        )
        return report

    def _require_prepared(self) -> tuple[SymbolicFactor, SupernodalFactor, list[ProcSet]]:
        require(
            self.symbolic is not None and self.factor is not None and self.assign is not None,
            "call prepare() before solve()",
        )
        return self.symbolic, self.factor, self.assign  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def factorization_seconds(self) -> float:
        """Factorization time on p processors (serial sum at p=1).

        ``factor_time_mode="model"`` uses the closed-form critical-path
        model; ``"simulate"`` runs the full 2-D block-cyclic task graph
        through the event simulator (slower, higher fidelity).  The result
        is cached per solver instance.
        """
        if self._factor_seconds is not None:
            return self._factor_seconds
        sym, _, assign = self._require_prepared()
        if self.p == 1:
            out = serial_factor_time(self.spec, sym.stree)
        elif self.factor_time_mode == "simulate":
            from repro.core.parallel_factor import simulated_factor_time

            out, _ = simulated_factor_time(
                self.spec, sym.stree, assign, b=self.b, nproc=self.p
            )
        elif self.factor_time_mode == "model":
            out = parallel_factor_time(self.spec, sym.stree, assign, b=self.b)
        else:
            raise ValueError(
                f"factor_time_mode must be 'model' or 'simulate', got "
                f"{self.factor_time_mode!r}"
            )
        self._factor_seconds = out
        return out

    def redistribution_seconds(self) -> float:
        """Simulated 2-D -> 1-D factor redistribution time."""
        sym, _, assign = self._require_prepared()
        return total_redistribution_time(self.spec, sym.stree, assign)

    # ------------------------------------------------------------------
    def solve(
        self,
        bvec: np.ndarray,
        *,
        check: bool = True,
        refine: int = 0,
        backend: str = "sim",
        workers: int | None = None,
    ) -> tuple[np.ndarray, SolveReport]:
        """Solve ``A x = b`` and report per-phase times.

        *bvec* may be a vector or an ``(n, nrhs)`` block.  The returned
        solution is in the original (pre-permutation) ordering.
        ``refine`` adds that many steps of iterative refinement
        (``x += A^{-1}(b - A x)``); each step re-runs both triangular
        solves, and their time is accumulated in the report.

        ``backend`` selects how the triangular solves run and what their
        reported seconds mean:

        * ``"sim"`` (default) — the paper's SPMD solvers walked through
          the machine simulator; seconds are simulated makespans.
        * ``"serial"`` — the serial supernodal solvers of
          :mod:`repro.numeric.trisolve`; seconds are measured wall-clock.
        * ``"threads"`` — the shared-memory engine of :mod:`repro.exec`
          with ``workers`` threads (default: one per core, capped);
          seconds are measured wall-clock.  Results are bitwise
          reproducible across worker counts.  With ``verify=True`` (the
          solver default) the execution plan is first put through the
          static schedule certifier — race-freedom, exactly-once
          coverage, canonical reduction order — and the resulting
          determinism certificate is recorded on the report
          (``schedule_certificate``); certification is memoized per
          structure, so only the first solve pays for the proof.
        * ``"fused"`` — the vectorized level program of
          :mod:`repro.exec.fused`: whole elimination-tree levels batched
          into a handful of array ops, no per-node Python dispatch, no
          per-node allocations.  Bitwise identical to ``serial`` and
          ``threads``.  With ``verify=True`` the compiled program is
          certified against its plan
          (:func:`repro.verify.schedule.certify_level_program`) and the
          report carries the *same* determinism certificate the
          ``threads`` backend earns — one structure, one certificate.

        Factorization and redistribution seconds always come from the
        machine model — only the repo's real hot path (the solves) is
        measured for now.
        """
        sym, factor, assign = self._require_prepared()
        require(backend in ("sim", "serial", "threads", "fused"),
                f"backend must be 'sim', 'serial', 'threads' or 'fused', "
                f"got {backend!r}")
        require(workers is None or backend == "threads",
                "workers is only meaningful with backend='threads'")
        bvec = np.asarray(bvec, dtype=np.float64)
        squeeze = bvec.ndim == 1
        bmat = bvec[:, None] if squeeze else bvec
        require(bmat.shape[0] == self.a.n, "rhs size mismatch")
        require(bmat.shape[1] > 0, "rhs must have at least one column")
        require(refine >= 0, "refine must be >= 0")
        nrhs = bmat.shape[1]

        x, fwd_seconds, bwd_seconds, fwd_sim, bwd_sim = self._one_solve(
            bmat, backend, workers
        )
        for _ in range(refine):
            from repro.sparse.ops import matvec

            residual = bmat - matvec(self.a, x)
            dx, fs, bs, _, _ = self._one_solve(residual, backend, workers)
            x = x + dx
            fwd_seconds += fs
            bwd_seconds += bs

        solve_flops = sym.stree.solve_flops(nrhs) * (1 + refine)
        report = SolveReport(
            n=self.a.n,
            p=self.p,
            nrhs=nrhs,
            factor_seconds=self.factorization_seconds(),
            factor_flops=sym.stree.factor_flops(),
            redistribute_seconds=self.redistribution_seconds(),
            forward=TrisolveRun(seconds=fwd_seconds, flops=solve_flops, sim=fwd_sim),
            backward=TrisolveRun(seconds=bwd_seconds, flops=solve_flops, sim=bwd_sim),
            backend=backend,
            workers=workers,
        )
        if self.verify and backend in ("threads", "fused"):
            from repro.exec import certificate_for, fused_certificate_for

            cert = (fused_certificate_for if backend == "fused"
                    else certificate_for)(sym.stree)
            report.schedule_certificate = cert.digest
        if check:
            from repro.sparse.ops import relative_residual

            report.residual = relative_residual(self.a, x, bmat)
        return (x[:, 0] if squeeze else x), report

    # ------------------------------------------------------------------
    def serving(
        self,
        *,
        backend: str = "fused",
        max_batch: int = 16,
        max_wait: float = 2e-3,
        idle_wait: float | None = -1.0,
        max_queue: int | None = None,
        clock=None,
        workers: int | None = None,
        key: str = "default",
    ):
        """A request-coalescing solve service over this prepared solver.

        Context manager: yields a started
        :class:`~repro.serve.service.SolveService` with this solver
        registered under *key* (default ``"default"``), and drains and
        closes it on exit.  ``submit()`` single- or few-column requests
        from any thread; the service packs concurrent requests into one
        multi-RHS solve on the cached factor, and every response is
        bitwise identical to the corresponding standalone
        ``solve(..., backend=backend)`` solution::

            with solver.serving(max_batch=16) as svc:
                fut = svc.submit(b)          # b: (n,) or (n, w)
                x = fut.result()

        Pass a :class:`~repro.serve.clock.FakeClock` as *clock* to run
        the service in deterministic manual-pump mode (tests).
        """
        from contextlib import contextmanager

        from repro.serve import SolveService

        @contextmanager
        def _serving():
            service = SolveService(
                backend=backend,
                max_batch=max_batch,
                max_wait=max_wait,
                idle_wait=idle_wait,
                max_queue=max_queue,
                clock=clock,
                workers=workers,
            )
            service.register(key, self)
            try:
                yield service
            finally:
                service.close()

        return _serving()

    def _one_solve(
        self, bmat: np.ndarray, backend: str = "sim", workers: int | None = None
    ) -> tuple[np.ndarray, float, float, SimResult | None, SimResult | None]:
        """One forward+backward pass; returns x (original order) and times."""
        sym, factor, assign = self._require_prepared()
        b_perm = sym.perm.apply_to_vector(bmat)
        if backend == "sim":
            y, fwd_sim = parallel_forward(
                factor, assign, self.spec, b_perm, b=self.b, variant=self.variant,
                nproc=self.p,
            )
            x_perm, bwd_sim = parallel_backward(
                factor, assign, self.spec, y, b=self.b, nproc=self.p
            )
            x = sym.perm.unapply_to_vector(x_perm)
            return x, fwd_sim.makespan, bwd_sim.makespan, fwd_sim, bwd_sim

        from time import perf_counter

        if backend == "serial":
            from repro.numeric.trisolve import backward_supernodal, forward_supernodal

            t0 = perf_counter()
            y = forward_supernodal(factor, b_perm)
            t1 = perf_counter()
            x_perm = backward_supernodal(factor, y)
            t2 = perf_counter()
        elif backend == "fused":
            from repro.exec import backward_fused, forward_fused
            from repro.exec.cache import program_for

            # Cached per structure; with verify=True the compiled level
            # program is certified against its plan before first use.
            program = program_for(sym.stree, certify=self.verify)
            t0 = perf_counter()
            y = forward_fused(factor, b_perm, program=program)
            t1 = perf_counter()
            x_perm = backward_fused(factor, y, program=program)
            t2 = perf_counter()
        else:  # threads
            from repro.exec import backward_exec, forward_exec, plan_for

            # Cached across repeated solves; with verify=True the plan is
            # also statically certified (once per structure) before any
            # task is dispatched.
            plan = plan_for(sym.stree, certify=self.verify)
            t0 = perf_counter()
            y = forward_exec(factor, b_perm, workers=workers, plan=plan)
            t1 = perf_counter()
            x_perm = backward_exec(factor, y, workers=workers, plan=plan)
            t2 = perf_counter()
        x = sym.perm.unapply_to_vector(x_perm)
        return x, t1 - t0, t2 - t1, None, None
