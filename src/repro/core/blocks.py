"""Row-block partitioning of a supernode's trapezoid.

The pipelined solvers block the ``n`` storage rows of an ``n x t``
supernode with block size ``b``, *aligned to the triangle boundary*: the
first ``ceil(t/b)`` blocks tile the t triangle rows (so each diagonal
solve block is a whole row block) and the remaining blocks tile the
``n - t`` below rows starting fresh at ``t``.  Block ``k`` is owned by
processor ``procs.start + k % q`` — block-cyclic, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapping.subtree_subcube import ProcSet
from repro.util.blocks import block_count
from repro.util.validation import check_positive, require


@dataclass(frozen=True)
class SupernodeBlocks:
    """Triangle-aligned row blocks of one supernode over a processor set."""

    n: int
    t: int
    b: int
    procs: ProcSet

    def __post_init__(self) -> None:
        check_positive(self.b, "block size b")
        require(0 < self.t <= self.n, "supernode needs 0 < t <= n")

    @property
    def q(self) -> int:
        return self.procs.size

    @property
    def n_tri_blocks(self) -> int:
        """Blocks covering the triangle rows [0, t)."""
        return block_count(self.t, self.b)

    @property
    def n_below_blocks(self) -> int:
        """Blocks covering the below rows [t, n)."""
        return block_count(self.n - self.t, self.b) if self.n > self.t else 0

    @property
    def nblocks(self) -> int:
        return self.n_tri_blocks + self.n_below_blocks

    def bounds(self, k: int) -> tuple[int, int]:
        """Half-open local storage-row range of block *k*."""
        require(0 <= k < self.nblocks, f"block {k} out of range")
        ntb = self.n_tri_blocks
        if k < ntb:
            lo = k * self.b
            return lo, min(lo + self.b, self.t)
        lo = self.t + (k - ntb) * self.b
        return lo, min(lo + self.b, self.n)

    def size(self, k: int) -> int:
        lo, hi = self.bounds(k)
        return hi - lo

    def owner(self, k: int) -> int:
        require(0 <= k < self.nblocks, f"block {k} out of range")
        return self.procs.start + k % self.q

    def is_triangle(self, k: int) -> bool:
        return k < self.n_tri_blocks

    def ring_rank(self, src_owner: int, d: int) -> int:
        """Rank at ring distance *d* from *src_owner* within the proc set."""
        local = (src_owner - self.procs.start + d) % self.q
        return self.procs.start + local

    def ring_distance(self, src_owner: int, dst_owner: int) -> int:
        return (dst_owner - src_owner) % self.q

    def blocks_of(self, rank: int) -> list[int]:
        require(rank in self.procs, f"rank {rank} not in {self.procs}")
        local = rank - self.procs.start
        return list(range(local, self.nblocks, self.q))
