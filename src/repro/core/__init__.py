"""The paper's primary contribution: parallel sparse triangular solvers.

* :mod:`repro.core.schedules` — the idealized step schedules of the
  paper's Figures 3 and 4 (EREW-PRAM, row-priority and column-priority
  pipelined variants).
* :mod:`repro.core.forward` / :mod:`repro.core.backward` — the real
  algorithms: task-graph builders that execute the numeric solve while the
  event simulator charges machine time (subtree-to-subcube mapping,
  1-D block-cyclic supernode pipelines, multiple right-hand sides).
* :mod:`repro.core.factor_model` — serial/parallel factorization time
  model (the Figure 7 yardstick).
* :mod:`repro.core.solver` — the end-to-end :class:`ParallelSparseSolver`.
"""

from repro.core.schedules import (
    pram_forward_schedule,
    pipelined_forward_schedule,
    pipelined_backward_schedule,
)
from repro.core.forward import parallel_forward
from repro.core.backward import parallel_backward
from repro.core.solver import ParallelSparseSolver, SolveReport, TrisolveRun
from repro.core.factor_model import serial_factor_time, parallel_factor_time
from repro.core.parallel_factor import simulated_factor_time
from repro.core.dense import dense_backward, dense_forward, dense_trisolve_time
from repro.core.tuning import TuningResult, tune_block_size
from repro.core.forward_2d import parallel_forward_2d
from repro.core.spmd_forward import make_forward_program, spmd_forward
from repro.core.spmd_backward import make_backward_program, spmd_backward

__all__ = [
    "pram_forward_schedule",
    "pipelined_forward_schedule",
    "pipelined_backward_schedule",
    "parallel_forward",
    "parallel_backward",
    "ParallelSparseSolver",
    "SolveReport",
    "TrisolveRun",
    "serial_factor_time",
    "parallel_factor_time",
    "simulated_factor_time",
    "dense_forward",
    "dense_backward",
    "dense_trisolve_time",
    "TuningResult",
    "tune_block_size",
    "parallel_forward_2d",
    "make_forward_program",
    "spmd_forward",
    "make_backward_program",
    "spmd_backward",
]
