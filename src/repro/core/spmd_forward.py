"""Rank-local (SPMD) implementation of parallel forward elimination.

The paper's actual T3D code was written in the SPMD message-passing style:
every processor runs the same program over its share of the elimination
tree, exchanging vector pieces with sends and receives.  This module
implements the forward solver that way on the
:mod:`repro.machine.spmd` layer — a *second, independently structured*
implementation of Section 2.1 that the test suite cross-validates against
the task-graph version (identical numeric results; timings within a small
factor, the difference being the SPMD version's full-ring circulation of
solved pieces versus the task graph's trimmed relays).

Message protocol (all tags are globally unique):

* child -> parent contribution: tag = supernode id of the *child* times
  ``MAXB`` plus the child block index; payload = (global rows, values);
* pipelined solved piece x_J inside supernode s: circulates the whole
  ring; tag = ``TAG_PIPE + s * MAXB + J``.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.blocks import SupernodeBlocks
from repro.machine.spec import MachineSpec
from repro.machine.spmd import Env, Program, SpmdResult, run_spmd
from repro.mapping.subtree_subcube import ProcSet
from repro.numeric.frontal import trsm_lower
from repro.numeric.supernodal import SupernodalFactor
from repro.util.flops import gemm_flops, trsm_flops
from repro.util.validation import require

MAXB = 1 << 20
TAG_FEED = 0
TAG_PIPE = 1 << 40


def _plan(factor: SupernodalFactor, assign: list[ProcSet], b: int):
    """Shared structural plan: every rank derives identical routing tables.

    Returns per-supernode: its blocks object (or None for sequential), and
    the child-feed routing: list of (child_s, child_block, src_rank,
    dst_rank, child_local_rows, parent_local_rows).
    """
    stree = factor.stree
    blocks: list[SupernodeBlocks | None] = []
    for s in stree.topo_order():
        sn = stree.supernodes[s]
        procs = assign[s]
        blocks.append(
            SupernodeBlocks(n=sn.n, t=sn.t, b=b, procs=procs) if procs.size > 1 else None
        )

    feeds: dict[int, list[tuple]] = {s: [] for s in range(stree.nsuper)}
    for s in stree.topo_order():
        sn = stree.supernodes[s]
        pos_of_global = {int(g): i for i, g in enumerate(sn.rows)}
        parent_blocks = blocks[s]
        for c in stree.children[s]:
            csn = stree.supernodes[c]
            if csn.n == csn.t:
                continue
            child_blocks = blocks[c]
            # pieces are the child's below blocks (or the whole below part
            # for sequential children)
            if child_blocks is None:
                pieces = [(-1, np.arange(csn.t, csn.n, dtype=np.int64), assign[c].start)]
            else:
                pieces = []
                for k in range(child_blocks.n_tri_blocks, child_blocks.nblocks):
                    lo, hi = child_blocks.bounds(k)
                    pieces.append((k, np.arange(lo, hi, dtype=np.int64), child_blocks.owner(k)))
            for k, child_rows, src_rank in pieces:
                globals_ = csn.rows[child_rows]
                parent_local = np.fromiter(
                    (pos_of_global[int(g)] for g in globals_),
                    dtype=np.int64,
                    count=globals_.shape[0],
                )
                if parent_blocks is None:
                    dst_rank = assign[s].start
                    feeds[s].append((c, k, src_rank, dst_rank, child_rows, parent_local, None))
                else:
                    # split by destination parent block
                    pk = np.empty(parent_local.shape[0], dtype=np.int64)
                    for i, pl in enumerate(parent_local):
                        for kk in range(parent_blocks.nblocks):
                            lo, hi = parent_blocks.bounds(kk)
                            if lo <= pl < hi:
                                pk[i] = kk
                                break
                    for kk in np.unique(pk):
                        sel = pk == kk
                        feeds[s].append(
                            (
                                c,
                                k,
                                src_rank,
                                parent_blocks.owner(int(kk)),
                                child_rows[sel],
                                parent_local[sel],
                                int(kk),
                            )
                        )
    return blocks, feeds


def make_forward_program(
    factor: SupernodalFactor,
    assign: list[ProcSet],
    rhs: np.ndarray,
    *,
    b: int = 8,
    nproc: int | None = None,
) -> tuple[Program, int, np.ndarray]:
    """Build the forward-substitution rank program without running it.

    Returns ``(program, size, out)`` where *out* is the ``(n, m)`` array
    the program writes the solution into.  Factoring the program out of
    :func:`spmd_forward` lets the static communication linter
    (:func:`repro.verify.lint_spmd`) walk the *real* solver protocol —
    the walk is idempotent, so the same program can then be executed on
    the simulator.
    """
    stree = factor.stree
    n = stree.n
    rhs = np.ascontiguousarray(rhs, dtype=np.float64)
    if rhs.ndim == 1:
        rhs = rhs[:, None]
    require(rhs.shape[0] == n, "rhs row count mismatch")
    m = rhs.shape[1]
    size = nproc or max(ps.stop for ps in assign)
    blocks, feeds = _plan(factor, assign, b)
    out = np.zeros((n, m))

    def program(rank: int, env: Env) -> Generator:
        # local storage: z arrays for supernodes this rank touches
        zmine: dict[int, np.ndarray] = {}
        for s in stree.topo_order():
            sn = stree.supernodes[s]
            procs = assign[s]
            if rank not in procs:
                # still may have to SEND child pieces owned by this rank
                for (c, k, src, dst, crows, plocal, pk) in feeds[s]:
                    if src == rank and dst != rank:
                        zc = zmine[c]
                        yield env.send(
                            dst,
                            data=(c, k, zc[crows].copy()),
                            words=crows.shape[0] * m,
                            tag=TAG_FEED + c * MAXB + max(k, 0),
                        )
                continue
            blk = factor.blocks[s]
            t, ns = sn.t, sn.n
            col_lo, col_hi = sn.col_lo, sn.col_hi
            sblocks = blocks[s]
            zs = np.zeros((ns, m))
            zmine[s] = zs

            # ---- gather child contributions destined to this rank ----
            for (c, k, src, dst, crows, plocal, pk) in feeds[s]:
                if dst != rank:
                    if src == rank:
                        zc = zmine[c]
                        yield env.send(
                            dst,
                            data=(c, k, zc[crows].copy()),
                            words=crows.shape[0] * m,
                            tag=TAG_FEED + c * MAXB + max(k, 0),
                        )
                    continue
                if src == rank:
                    vals = zmine[c][crows]
                else:
                    _, _, vals = yield env.recv(src, tag=TAG_FEED + c * MAXB + max(k, 0))
                tri = plocal < t
                if tri.any():
                    zs[plocal[tri]] -= vals[tri]
                low = ~tri
                if low.any():
                    zs[plocal[low]] += vals[low]
                yield env.compute(flops=plocal.shape[0] * m, nrhs=m)

            if sblocks is None:
                # sequential supernode on this rank
                zs[:t] += rhs[col_lo:col_hi]
                x = trsm_lower(blk[:t, :t], zs[:t])
                zs[:t] = x
                out[col_lo:col_hi] = x
                if ns > t:
                    zs[t:] += blk[t:, :] @ x
                yield env.compute(
                    flops=trsm_flops(t, m) + gemm_flops(ns - t, t, m), nrhs=m
                )
                continue

            # ---- pipelined shared supernode --------------------------
            q = sblocks.q
            ntb = sblocks.n_tri_blocks
            my_blocks = sblocks.blocks_of(rank)
            # initialise rhs for local triangle blocks
            for k in my_blocks:
                lo, hi = sblocks.bounds(k)
                if sblocks.is_triangle(k):
                    zs[lo:hi] += rhs[col_lo + lo : col_lo + hi]
            for j in range(ntb):
                jlo, jhi = sblocks.bounds(j)
                bj = jhi - jlo
                owner_j = sblocks.owner(j)
                tag = TAG_PIPE + s * MAXB + j
                if owner_j == rank:
                    xj = trsm_lower(blk[jlo:jhi, jlo:jhi], zs[jlo:jhi])
                    zs[jlo:jhi] = xj
                    out[col_lo + jlo : col_lo + jhi] = xj
                    yield env.compute(flops=trsm_flops(bj, m), nrhs=m)
                    if q > 1:
                        yield env.send(
                            sblocks.ring_rank(rank, 1), data=xj, words=bj * m, tag=tag
                        )
                else:
                    prev = sblocks.ring_rank(rank, q - 1)
                    xj = yield env.recv(prev, tag=tag)
                    zs[jlo:jhi] = xj  # keep a local copy of solved values
                    nxt = sblocks.ring_rank(rank, 1)
                    if nxt != owner_j:
                        yield env.send(nxt, data=xj, words=bj * m, tag=tag)
                # local updates with x_j
                flops = 0
                for i in my_blocks:
                    if i <= j:
                        continue
                    ilo, ihi = sblocks.bounds(i)
                    sign = -1.0 if sblocks.is_triangle(i) else 1.0
                    zs[ilo:ihi] += sign * (blk[ilo:ihi, jlo:jhi] @ xj)
                    flops += gemm_flops(ihi - ilo, bj, m)
                if flops:
                    yield env.compute(flops=flops, nrhs=m)

    return program, size, out


def spmd_forward(
    factor: SupernodalFactor,
    assign: list[ProcSet],
    spec: MachineSpec,
    rhs: np.ndarray,
    *,
    b: int = 8,
    nproc: int | None = None,
    verify: bool = False,
) -> tuple[np.ndarray, SpmdResult]:
    """Solve ``L y = rhs`` with the SPMD formulation.

    With ``verify=True`` the rank program is first walked through the
    static communication linter; any guaranteed protocol defect raises
    :class:`repro.verify.VerificationError` before a simulated second is
    spent.
    """
    squeeze = np.asarray(rhs).ndim == 1
    program, size, out = make_forward_program(factor, assign, rhs, b=b, nproc=nproc)
    if verify:
        from repro.verify.comm import lint_spmd

        lint_spmd(program, size, spec).raise_if_errors(
            "spmd_forward communication lint failed"
        )
    result = run_spmd(program, size, spec)
    return (out[:, 0] if squeeze else out), result
