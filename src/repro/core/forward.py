"""Parallel forward elimination (``L Y = B``), paper Section 2.1.

The algorithm is expressed as a task graph over the simulated machine:

* Each supernode on a **single** processor (levels >= log2 p of the
  elimination tree) is one sequential task doing exactly what the serial
  supernodal solver does.
* Each **shared** supernode (the top log2 p levels) is processed by the
  pipelined block-cyclic algorithm of Figure 3: its ``n`` storage rows are
  partitioned into triangle-aligned blocks owned cyclically by the ``q``
  processors of its subcube; diagonal blocks are solved by their owners,
  solved pieces ripple down the processor ring (one message per hop), and
  every update block is a local GEMM at its owner.
* Contributions cross supernodes exactly as the paper describes: the
  accumulated below-vector of a child is sent to the parent's processors
  that own the matching rows, and is folded in by the parent's assembly
  tasks.

Column-priority and row-priority variants (Figures 3(b)/(c)) differ only
in the scheduling priority of the update tasks.

All numeric work really happens (inside task thunks); the simulator
provides the parallel timing.  The result equals the serial supernodal
solve bit-for-bit up to floating-point associativity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import SupernodeBlocks
from repro.machine.events import SimResult, TaskGraph, simulate
from repro.machine.spec import MachineSpec
from repro.mapping.subtree_subcube import ProcSet
from repro.numeric.frontal import trsm_lower
from repro.numeric.supernodal import SupernodalFactor
from repro.util.flops import gemm_flops, supernode_solve_flops, trsm_flops
from repro.util.validation import require

VARIANTS = ("column", "row")


@dataclass
class _Producer:
    """A task whose completion makes some global rows of a child's
    accumulated contribution vector available."""

    tid: int
    global_rows: np.ndarray  # global row ids covered
    local_rows: np.ndarray  # positions within the child's z vector


def build_forward_graph(
    factor: SupernodalFactor,
    assign: list[ProcSet],
    spec: MachineSpec,
    rhs: np.ndarray,
    *,
    b: int = 8,
    variant: str = "column",
    nproc: int | None = None,
) -> tuple[TaskGraph, np.ndarray]:
    """Build the forward-elimination task graph.

    Returns ``(graph, out)`` where *out* is the (n x m) array the tasks
    will fill with the solution of ``L y = rhs`` when the graph is
    simulated.  *rhs* must already be in the factor's (permuted) ordering.
    """
    require(variant in VARIANTS, f"variant must be one of {VARIANTS}")
    stree = factor.stree
    n = stree.n
    rhs = np.ascontiguousarray(rhs, dtype=np.float64)
    if rhs.ndim == 1:
        rhs = rhs[:, None]
    require(rhs.shape[0] == n, "rhs row count mismatch")
    m = rhs.shape[1]
    p = nproc or max(ps.stop for ps in assign)
    g = TaskGraph(nproc=p)
    out = np.zeros((n, m))
    z: dict[int, np.ndarray] = {}
    producers: dict[int, list[_Producer]] = {}

    for s in stree.topo_order():
        sn = stree.supernodes[s]
        blk = factor.blocks[s]
        procs = assign[s]
        t, ns = sn.t, sn.n
        zs = np.zeros((ns, m))
        z[s] = zs

        # Where does each global row of this supernode live locally?
        pos_of_global = {int(gr): i for i, gr in enumerate(sn.rows)}

        # Group every child producer's rows by this supernode's local rows.
        # child_feeds[local_row_block or None] handled below per layout.
        child_feeds: list[tuple[_Producer, np.ndarray, np.ndarray, int]] = []
        for c in stree.children[s]:
            for prod in producers.pop(c, []):
                local_here = np.fromiter(
                    (pos_of_global[int(gr)] for gr in prod.global_rows),
                    dtype=np.int64,
                    count=prod.global_rows.shape[0],
                )
                child_feeds.append((prod, local_here, prod.local_rows, c))

        seq_tid: int | None = None
        update_tids: list[list[int]] | None = None
        if procs.size == 1:
            seq_tid = _add_sequential_supernode(
                g, s, sn, blk, procs.start, spec, rhs, out, zs, z, child_feeds, m
            )
        else:
            update_tids = _add_pipelined_supernode(
                g, s, sn, blk, procs, spec, rhs, out, zs, z, child_feeds, m, b, variant
            )

        # Register producers of this supernode's below contribution.
        producers[s] = _register_producers(g, s, sn, procs, b, seq_tid, update_tids)

    return g, out


def _assemble_slice(
    zs: np.ndarray,
    zc: np.ndarray,
    tgt: np.ndarray,
    src: np.ndarray,
    t: int,
) -> None:
    """Fold one child's contribution rows into this supernode's z.

    Triangle rows (< t) hold "rhs minus contributions" and below rows hold
    "amount to subtract from ancestors", so child values subtract in the
    triangle and add below.
    """
    tri = tgt < t
    if tri.any():
        zs[tgt[tri]] -= zc[src[tri]]
    low = ~tri
    if low.any():
        zs[tgt[low]] += zc[src[low]]


def _add_sequential_supernode(
    g: TaskGraph,
    s: int,
    sn,
    blk: np.ndarray,
    proc: int,
    spec: MachineSpec,
    rhs: np.ndarray,
    out: np.ndarray,
    zs: np.ndarray,
    z: dict[int, np.ndarray],
    child_feeds,
    m: int,
) -> int:
    t, ns = sn.t, sn.n
    col_lo, col_hi = sn.col_lo, sn.col_hi
    feeds = [(z[c], tgt, src) for (_, tgt, src, c) in child_feeds]

    def run() -> None:
        zs[:t] = rhs[col_lo:col_hi]
        for zc, tgt, src in feeds:
            _assemble_slice(zs, zc, tgt, src, t)
        x = trsm_lower(blk[:t, :t], zs[:t])
        zs[:t] = x
        out[col_lo:col_hi] = x
        if ns > t:
            zs[t:] += blk[t:, :] @ x

    assemble_rows = sum(tgt.shape[0] for _, tgt, _, _ in child_feeds)
    cost = spec.compute_time(
        supernode_solve_flops(ns, t, m) + m * assemble_rows, nrhs=m, calls=3
    )
    tid = g.add_task(proc, cost, priority=(s, 0, 0, 0), label=f"sn{s}:seq", run=run)
    for prod, tgt, _, _ in child_feeds:
        g.add_edge(prod.tid, tid, words=tgt.shape[0] * m)
    return tid


def _add_pipelined_supernode(
    g: TaskGraph,
    s: int,
    sn,
    blk: np.ndarray,
    procs: ProcSet,
    spec: MachineSpec,
    rhs: np.ndarray,
    out: np.ndarray,
    zs: np.ndarray,
    z: dict[int, np.ndarray],
    child_feeds,
    m: int,
    b: int,
    variant: str,
) -> list[list[int]]:
    t, ns = sn.t, sn.n
    col_lo = sn.col_lo
    blocks = SupernodeBlocks(n=ns, t=t, b=b, procs=procs)
    ntb = blocks.n_tri_blocks
    nb = blocks.nblocks

    # ---- assembly tasks: one per row block ---------------------------
    # Split child feeds by destination block.
    feeds_by_block: dict[int, list[tuple[_Producer, np.ndarray, np.ndarray, int]]] = {}
    local_to_block = np.empty(ns, dtype=np.int64)
    for k in range(nb):
        lo, hi = blocks.bounds(k)
        local_to_block[lo:hi] = k
    for prod, tgt, src, c in child_feeds:
        for k in np.unique(local_to_block[tgt]):
            sel = local_to_block[tgt] == k
            feeds_by_block.setdefault(int(k), []).append((prod, tgt[sel], src[sel], c))

    assemble_tid: list[int] = []
    for k in range(nb):
        lo, hi = blocks.bounds(k)
        k_feeds = feeds_by_block.get(k, [])
        feeds = [(z[c], tgt, src) for (_, tgt, src, c) in k_feeds]
        is_tri = blocks.is_triangle(k)

        def run(lo=lo, hi=hi, feeds=feeds, is_tri=is_tri) -> None:
            if is_tri:
                zs[lo:hi] = rhs[col_lo + lo : col_lo + hi]
            for zc, tgt, src in feeds:
                _assemble_slice(zs, zc, tgt, src, t)

        nfeed = sum(tgt.shape[0] for _, tgt, _, _ in k_feeds)
        cost = spec.compute_time(m * ((hi - lo) + nfeed), nrhs=m, calls=1)
        tid = g.add_task(
            blocks.owner(k), cost, priority=(s, 0, k, 0), label=f"sn{s}:A{k}", run=run
        )
        for prod, tgt, _, _ in k_feeds:
            g.add_edge(prod.tid, tid, words=tgt.shape[0] * m)
        assemble_tid.append(tid)

    # ---- pipelined triangle + updates --------------------------------
    # update_tids[i] collects the update tasks targeting row block i.
    update_tids: list[list[int]] = [[] for _ in range(nb)]
    for j in range(ntb):
        jlo, jhi = blocks.bounds(j)
        bj = jhi - jlo
        owner_j = blocks.owner(j)

        def run_diag(jlo=jlo, jhi=jhi) -> None:
            x = trsm_lower(blk[jlo:jhi, jlo:jhi], zs[jlo:jhi])
            zs[jlo:jhi] = x
            out[col_lo + jlo : col_lo + jhi] = x

        d_cost = spec.compute_time(trsm_flops(bj, m), nrhs=m, calls=1)
        d_prio = (s, 1, j, j)
        d_tid = g.add_task(owner_j, d_cost, priority=d_prio, label=f"sn{s}:D{j}", run=run_diag)
        g.add_edge(assemble_tid[j], d_tid)
        for utid in update_tids[j]:
            g.add_edge(utid, d_tid)

        # Relay chain: the solved piece ripples around the ring as far as
        # the farthest processor that owns a block below j.
        dists = {blocks.ring_distance(owner_j, blocks.owner(i)) for i in range(j + 1, nb)}
        dists.discard(0)
        dmax = max(dists, default=0)
        x_source: dict[int, int] = {owner_j: d_tid}
        prev = d_tid
        for d in range(1, dmax + 1):
            rank = blocks.ring_rank(owner_j, d)
            r_tid = g.add_task(rank, 0.0, priority=(s, 1, j, j), label=f"sn{s}:R{j}.{d}")
            g.add_edge(prev, r_tid, words=bj * m)
            x_source[rank] = r_tid
            prev = r_tid

        for i in range(j + 1, nb):
            ilo, ihi = blocks.bounds(i)
            owner_i = blocks.owner(i)
            sign = -1.0 if blocks.is_triangle(i) else 1.0

            def run_update(ilo=ilo, ihi=ihi, jlo=jlo, jhi=jhi, sign=sign) -> None:
                zs[ilo:ihi] += sign * (blk[ilo:ihi, jlo:jhi] @ zs[jlo:jhi])

            u_cost = spec.compute_time(gemm_flops(ihi - ilo, bj, m), nrhs=m, calls=1)
            u_prio = (s, 1, j, i) if variant == "column" else (s, 1, i, j)
            u_tid = g.add_task(
                owner_i, u_cost, priority=u_prio, label=f"sn{s}:U{i}.{j}", run=run_update
            )
            g.add_edge(assemble_tid[i], u_tid)
            # The solved piece arrives via the relay chain (message cost is
            # on the chain edges); this edge is always processor-local.
            g.add_edge(x_source[owner_i], u_tid)
            update_tids[i].append(u_tid)
    return update_tids


def _register_producers(
    g: TaskGraph,
    s: int,
    sn,
    procs: ProcSet,
    b: int,
    seq_tid: int | None,
    update_tids: list[list[int]] | None,
) -> list[_Producer]:
    """Export tasks whose completion finalises this supernode's below rows."""
    t, ns = sn.t, sn.n
    if ns == t:
        return []
    if procs.size == 1:
        assert seq_tid is not None, "sequential supernode must have a solve task"
        return [
            _Producer(
                tid=seq_tid,
                global_rows=sn.rows[t:],
                local_rows=np.arange(t, ns, dtype=np.int64),
            )
        ]
    assert update_tids is not None, "shared supernode must have update tasks"
    blocks = SupernodeBlocks(n=ns, t=t, b=b, procs=procs)
    prods: list[_Producer] = []
    for k in range(blocks.n_tri_blocks, blocks.nblocks):
        lo, hi = blocks.bounds(k)
        # A zero-cost send task gated on every update targeting block k
        # marks the moment the block's contribution is final.
        s_tid = g.add_task(
            blocks.owner(k), 0.0, priority=(s, 2, k, 0), label=f"sn{s}:S{k}"
        )
        for utid in update_tids[k]:
            g.add_edge(utid, s_tid)
        prods.append(
            _Producer(
                tid=s_tid,
                global_rows=sn.rows[lo:hi],
                local_rows=np.arange(lo, hi, dtype=np.int64),
            )
        )
    return prods


def parallel_forward(
    factor: SupernodalFactor,
    assign: list[ProcSet],
    spec: MachineSpec,
    rhs: np.ndarray,
    *,
    b: int = 8,
    variant: str = "column",
    nproc: int | None = None,
) -> tuple[np.ndarray, SimResult]:
    """Solve ``L y = rhs`` on the simulated machine.

    Returns ``(y, sim_result)``; *y* is in the factor's permuted ordering
    and matches the serial supernodal solve.
    """
    g, out = build_forward_graph(
        factor, assign, spec, rhs, b=b, variant=variant, nproc=nproc
    )
    sim = simulate(g, spec)
    squeeze = np.asarray(rhs).ndim == 1
    return (out[:, 0] if squeeze else out), sim
