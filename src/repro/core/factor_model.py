"""Factorization time model (the Figure 7 yardstick).

The paper compares its triangular solvers against the parallel supernodal
Cholesky of Gupta-Karypis-Kumar (ref [4]), which distributes each shared
supernode over a 2-D ``sqrt(q) x sqrt(q)`` grid.  Reproducing that solver
task-by-task is out of scope (and unnecessary: the paper only uses its
*time* as a denominator), so we model it per supernode:

* dense kernel work ``flops_s / q`` at the BLAS-3 rate;
* pipelined panel communication: ``t/b`` steps, each broadcasting a
  ``b x n/sqrt(q)`` panel along a grid dimension —
  ``(t/b) (t_s + t_w b n / sqrt(q)) log(sqrt q)`` — which gives the
  ``O(N sqrt p)`` total overhead of the paper's Figure 5 table for 2-D
  partitioned sparse factorization.

The tree is combined along critical paths: a supernode starts when its
heaviest child subtree finishes; sequential subtrees (q = 1) run at the
serial rate.  The serial baseline charges each supernode's kernels at an
NRHS-like efficiency equal to its width (wide supernodes factor at BLAS-3
speed), matching how real supernodal codes behave and how the paper's
single-processor factorization MFLOPS (~35) exceed the solver's (~7).
"""

from __future__ import annotations

import math

import numpy as np

from repro.machine.spec import MachineSpec
from repro.mapping.subtree_subcube import ProcSet
from repro.symbolic.stree import SupernodalTree
from repro.util.validation import require


def _supernode_factor_flops(n: int, t: int) -> float:
    """Dense flops to factor one n x t trapezoid and form its update."""
    return t**3 / 3.0 + (n - t) * t * t + float(n - t) ** 2 * t


def serial_factor_time(spec: MachineSpec, stree: SupernodalTree) -> float:
    """Modeled single-processor supernodal factorization time."""
    total = 0.0
    for sn in stree.supernodes:
        flops = _supernode_factor_flops(sn.n, sn.t)
        # Kernel column-count ~ supernode width: wide supernodes run at
        # BLAS-3 speed, width-1 supernodes at BLAS-1 speed.
        total += spec.compute_time(flops, nrhs=max(sn.t, 1), calls=3)
    return total


def supernode_parallel_factor_time(
    spec: MachineSpec, n: int, t: int, q: int, *, b: int = 8
) -> float:
    """Modeled time to factor one shared supernode on a q-proc 2-D grid."""
    require(q >= 1, "q must be >= 1")
    flops = _supernode_factor_flops(n, t)
    compute = spec.compute_time(flops / q, nrhs=max(t, 1), calls=3 * max(t // b, 1))
    if q == 1:
        return spec.compute_time(flops, nrhs=max(t, 1), calls=3)
    sq = max(int(math.sqrt(q)), 1)
    steps = max(t // b, 1)
    panel_words = b * max(n, 1) / sq
    comm = steps * (spec.t_s + spec.t_w * panel_words) * max(math.log2(sq + 1), 1.0)
    return compute + comm


def parallel_factor_time(
    spec: MachineSpec,
    stree: SupernodalTree,
    assign: list[ProcSet],
    *,
    b: int = 8,
) -> float:
    """Modeled parallel factorization makespan under a given assignment.

    Critical-path combination with processor serialisation:
    ``start(s) = max(finish(children), availability of s's processors)``;
    all of a supernode's processors are then busy until ``finish(s)``.
    With p = 1 this degenerates to the serial sum, as it must.
    """
    p = max(ps.stop for ps in assign) if assign else 1
    avail = np.zeros(p)
    finish = np.zeros(stree.nsuper)
    for s in stree.topo_order():
        sn = stree.supernodes[s]
        procs = assign[s]
        own = supernode_parallel_factor_time(spec, sn.n, sn.t, procs.size, b=b)
        start = max(
            max((finish[c] for c in stree.children[s]), default=0.0),
            float(avail[procs.start : procs.stop].max()),
        )
        finish[s] = start + own
        avail[procs.start : procs.stop] = finish[s]
    return float(finish.max()) if stree.nsuper else 0.0
