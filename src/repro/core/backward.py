"""Parallel backward substitution (``L^T X = Y``), paper Section 2.2.

Mirror image of the forward solver: the computation starts at the root
supernode and moves down the tree.  At each supernode, the solved values of
ancestor variables (the supernode's below rows) are gathered from the
processors that solved them; the rectangle's transpose times that vector is
subtracted from the right-hand side of the supernode's own columns; then
the transposed triangle is solved.

On a shared supernode the paper's column-priority pipelined algorithm
(Figure 4) is realised with an **accumulator ring**: for each block column
``tau`` (processed last-to-first) a partial-sum accumulator travels the
processor ring, each processor folding in the contributions of the row
blocks it owns — including the already-solved triangle pieces — and the
block's owner finishes with the transposed triangular solve.  Per supernode
the critical path is ``(q - 1) + t/b`` pipeline steps of one ``b``-word
message plus one block operation each, the paper's ``b(q-1) + t`` cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import SupernodeBlocks
from repro.machine.events import SimResult, TaskGraph, simulate
from repro.machine.spec import MachineSpec
from repro.mapping.subtree_subcube import ProcSet
from repro.numeric.frontal import trsm_lower_t
from repro.numeric.supernodal import SupernodalFactor
from repro.util.flops import gemm_flops, supernode_solve_flops, trsm_flops
from repro.util.validation import require


def build_backward_graph(
    factor: SupernodalFactor,
    assign: list[ProcSet],
    spec: MachineSpec,
    rhs: np.ndarray,
    *,
    b: int = 8,
    nproc: int | None = None,
) -> tuple[TaskGraph, np.ndarray]:
    """Build the backward-substitution task graph.

    Returns ``(graph, out)``; simulating the graph fills *out* with the
    solution of ``L^T x = rhs`` (both in the permuted ordering).
    """
    stree = factor.stree
    n = stree.n
    rhs = np.ascontiguousarray(rhs, dtype=np.float64)
    if rhs.ndim == 1:
        rhs = rhs[:, None]
    require(rhs.shape[0] == n, "rhs row count mismatch")
    m = rhs.shape[1]
    p = nproc or max(ps.stop for ps in assign)
    g = TaskGraph(nproc=p)
    out = np.zeros((n, m))
    nsuper = stree.nsuper

    # solved_by[c] = task id that writes out[c] (filled root -> leaves).
    solved_by = np.full(n, -1, dtype=np.int64)

    for s in reversed(stree.topo_order()):
        sn = stree.supernodes[s]
        blk = factor.blocks[s]
        procs = assign[s]
        t, ns = sn.t, sn.n
        order = nsuper - 1 - s  # ascending priority root -> leaves

        if procs.size == 1:
            _add_sequential(g, s, order, sn, blk, procs.start, spec, rhs, out, solved_by, m)
        else:
            _add_pipelined(g, s, order, sn, blk, procs, spec, rhs, out, solved_by, m, b)

    return g, out


def _ancestor_deps(
    g: TaskGraph, solved_by: np.ndarray, rows: np.ndarray, dst: int, m: int
) -> None:
    """Wire edges from the tasks that solved *rows* to task *dst*."""
    tids, counts = np.unique(solved_by[rows], return_counts=True)
    for tid, cnt in zip(tids, counts):
        require(tid >= 0, "backward substitution scheduled before ancestors")
        g.add_edge(int(tid), dst, words=int(cnt) * m)


def _add_sequential(
    g: TaskGraph,
    s: int,
    order: int,
    sn,
    blk: np.ndarray,
    proc: int,
    spec: MachineSpec,
    rhs: np.ndarray,
    out: np.ndarray,
    solved_by: np.ndarray,
    m: int,
) -> None:
    t, ns = sn.t, sn.n
    col_lo, col_hi = sn.col_lo, sn.col_hi
    below = sn.below

    def run() -> None:
        top = rhs[col_lo:col_hi].copy()
        if ns > t:
            top -= blk[t:, :].T @ out[below]
        out[col_lo:col_hi] = trsm_lower_t(blk[:t, :t], top)

    cost = spec.compute_time(supernode_solve_flops(ns, t, m), nrhs=m, calls=2)
    tid = g.add_task(proc, cost, priority=(order, 0, 0, 0), label=f"sn{s}:seqT", run=run)
    if ns > t:
        _ancestor_deps(g, solved_by, below, tid, m)
    solved_by[col_lo:col_hi] = tid


def _add_pipelined(
    g: TaskGraph,
    s: int,
    order: int,
    sn,
    blk: np.ndarray,
    procs: ProcSet,
    spec: MachineSpec,
    rhs: np.ndarray,
    out: np.ndarray,
    solved_by: np.ndarray,
    m: int,
    b: int,
) -> None:
    t, ns = sn.t, sn.n
    col_lo = sn.col_lo
    blocks = SupernodeBlocks(n=ns, t=t, b=b, procs=procs)
    ntb = blocks.n_tri_blocks
    nb = blocks.nblocks
    q = blocks.q

    # z holds, per storage row, the solved value of that row's variable:
    # triangle rows are filled by this supernode's diagonal solves, below
    # rows by gather tasks reading ancestor solutions.
    z = np.zeros((ns, m))

    # ---- gather tasks for below blocks -------------------------------
    ready_block = np.full(nb, -1, dtype=np.int64)  # task making z rows of block valid
    for k in range(ntb, nb):
        lo, hi = blocks.bounds(k)
        rows = sn.rows[lo:hi]

        def run_gather(lo=lo, hi=hi, rows=rows) -> None:
            z[lo:hi] = out[rows]

        cost = spec.compute_time(m * (hi - lo), nrhs=m, calls=1)
        tid = g.add_task(
            blocks.owner(k), cost, priority=(order, 0, k, 0), label=f"sn{s}:G{k}", run=run_gather
        )
        _ancestor_deps(g, solved_by, rows, tid, m)
        ready_block[k] = tid

    # ---- accumulator rings, block columns last to first --------------
    for tau in range(ntb - 1, -1, -1):
        tlo, thi = blocks.bounds(tau)
        bt = thi - tlo
        owner_t = blocks.owner(tau)
        acc = np.zeros((bt, m))
        prev: int | None = None
        # The accumulator travels the ring in *descending* rank order and
        # ends at the block's owner.  This direction matters: the
        # contribution of x_{tau+1} lives one rank above owner(tau), so a
        # descending wave lets acc_tau trail acc_{tau+1} by exactly one
        # pipeline step (Figure 4's wavefront).  An ascending wave would
        # serialise the rings and cost ntb * q steps instead of ntb + q.
        # The chain starts at the farthest processor that owns any block
        # below tau — when the supernode has fewer blocks than processors
        # the idle prefix of the ring is skipped entirely.
        max_offset = min(nb - 1 - tau, q - 1)
        d_start = q - max_offset
        for d in range(d_start, q + 1):
            rank = blocks.ring_rank(owner_t, q - d)
            local_blocks = [i for i in blocks.blocks_of(rank) if i > tau]
            flops = sum(
                gemm_flops(bt, blocks.size(i), m) for i in local_blocks
            )

            def run_acc(local_blocks=tuple(local_blocks), tlo=tlo, thi=thi, acc=acc) -> None:
                for i in local_blocks:
                    ilo, ihi = blocks.bounds(i)
                    acc += blk[ilo:ihi, tlo:thi].T @ z[ilo:ihi]

            cost = (
                spec.compute_time(flops, nrhs=m, calls=len(local_blocks))
                if local_blocks
                else 0.0
            )
            tid = g.add_task(
                rank,
                cost,
                priority=(order, 1, ntb - 1 - tau, d),
                label=f"sn{s}:C{tau}.{d}",
                run=run_acc if local_blocks else None,
            )
            if prev is not None:
                g.add_edge(prev, tid, words=bt * m)
            for i in local_blocks:
                g.add_edge(int(ready_block[i]), tid)
            prev = tid

        def run_diag(tlo=tlo, thi=thi, acc=acc) -> None:
            top = rhs[col_lo + tlo : col_lo + thi] - acc
            x = trsm_lower_t(blk[tlo:thi, tlo:thi], top)
            z[tlo:thi] = x
            out[col_lo + tlo : col_lo + thi] = x

        d_cost = spec.compute_time(trsm_flops(bt, m), nrhs=m, calls=1)
        d_tid = g.add_task(
            owner_t,
            d_cost,
            priority=(order, 1, ntb - 1 - tau, q + 1),
            label=f"sn{s}:DT{tau}",
            run=run_diag,
        )
        assert prev is not None, "descending accumulator ring produced no predecessor"
        g.add_edge(prev, d_tid)  # ring ends at the owner; final hop is local
        ready_block[tau] = d_tid
        solved_by[col_lo + tlo : col_lo + thi] = d_tid


def parallel_backward(
    factor: SupernodalFactor,
    assign: list[ProcSet],
    spec: MachineSpec,
    rhs: np.ndarray,
    *,
    b: int = 8,
    nproc: int | None = None,
) -> tuple[np.ndarray, SimResult]:
    """Solve ``L^T x = rhs`` on the simulated machine."""
    g, out = build_backward_graph(factor, assign, spec, rhs, b=b, nproc=nproc)
    sim = simulate(g, spec)
    squeeze = np.asarray(rhs).ndim == 1
    return (out[:, 0] if squeeze else out), sim
