"""Idealized step schedules for pipelined trapezoid processing.

These reproduce the time-step diagrams of the paper's Figure 3 (forward
elimination) and Figure 4 (backward substitution) on a hypothetical
``n x t`` supernode: each entry of the returned matrix is the time step at
which the corresponding block of L is *used*.  Communication delays are
ignored and every block operation costs one step — exactly the figure's
assumptions — so these serve both as documentation and as an oracle the
event-simulated algorithms are tested against.

Block (i, j) of the lower trapezoid (i >= j, i < n_b, j < t_b) is:

* a diagonal (triangular-solve) block when ``i == j``;
* an update (multiply-subtract) block when ``i > j``.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require


def _trapezoid_mask(nb: int, tb: int) -> np.ndarray:
    """Boolean mask of blocks present in the lower trapezoid."""
    require(nb >= tb, "trapezoid needs n >= t")
    mask = np.zeros((nb, tb), dtype=bool)
    for i in range(nb):
        for j in range(min(i + 1, tb)):
            mask[i, j] = True
    return mask


def pram_forward_schedule(nb: int, tb: int) -> np.ndarray:
    """Figure 3(a): EREW-PRAM with unlimited processors.

    Block (i, j) can run as soon as the diagonal solve of column j is done
    and (for diagonal blocks) all updates to row i from previous columns
    have been applied.  The resulting wavefront moves along the
    anti-diagonals: step(i, j) = i + j + 1 (1-based), which shows the
    paper's observation that at most max(t, n/2) processors are ever busy.
    """
    mask = _trapezoid_mask(nb, tb)
    step = np.zeros((nb, tb), dtype=np.int64)
    step[mask] = (np.add.outer(np.arange(nb), np.arange(tb)) + 1)[mask]
    return step


def pipelined_forward_schedule(nb: int, tb: int, q: int, *, priority: str = "column") -> np.ndarray:
    """Figures 3(b)/(c): pipelined forward elimination, cyclic row mapping.

    Rows are distributed cyclically over ``q`` processors (row block i is
    owned by processor ``i mod q``).  Each processor executes one block per
    step; the solved piece of column j becomes visible to processor ``k``
    one hop (one step) after processor ``k-1`` used it.  ``priority``
    selects what a processor works on when it has a choice: "column"
    finishes the current column first, "row" finishes the current row.
    """
    require(q >= 1, "q must be >= 1")
    if priority not in ("column", "row"):
        raise ValueError(f"priority must be 'column' or 'row', got {priority!r}")
    mask = _trapezoid_mask(nb, tb)
    step = np.zeros((nb, tb), dtype=np.int64)
    proc_free = np.zeros(q, dtype=np.int64)  # next free step per proc
    # x_avail[j][p]: first step at which x_j is available on processor p.
    INF = np.iinfo(np.int64).max // 4
    x_avail = np.full((tb, q), INF, dtype=np.int64)

    # Ready set processed greedily in global time order with the chosen
    # priority as tie-break; this mirrors the event simulator's policy.
    done = np.zeros((nb, tb), dtype=bool)

    def deps_ready_step(i: int, j: int) -> int:
        """Earliest step block (i, j) may run, given completed deps."""
        p = i % q
        earliest = 1
        if i == j:
            # Diagonal solve: all updates (i, j') j' < j must be done
            # (they are local to processor p).
            for jp in range(j):
                if not done[i, jp]:
                    return INF
                earliest = max(earliest, int(step[i, jp]) + 1)
        else:
            if not done[j, j]:
                return INF
            earliest = max(earliest, int(x_avail[j, p]))
        return earliest

    remaining = int(mask.sum())
    while remaining:
        # Find, per processor, the best runnable block.
        best: dict[int, tuple[tuple, int, int, int]] = {}
        for i in range(nb):
            p = i % q
            for j in range(min(i + 1, tb)):
                if done[i, j]:
                    continue
                est = deps_ready_step(i, j)
                if est >= INF:
                    continue
                run_at = max(est, int(proc_free[p]) + 1)
                key = (run_at, (j, i) if priority == "column" else (i, j))
                if p not in best or key < best[p][0]:
                    best[p] = (key, i, j, run_at)
        if not best:
            raise RuntimeError("schedule deadlock")  # pragma: no cover
        # Commit the globally earliest block (deterministic tie-break).
        (key, i, j, run_at) = min(best.values())
        p = i % q
        step[i, j] = run_at
        done[i, j] = True
        proc_free[p] = run_at
        remaining -= 1
        if i == j:
            # Solved piece x_j: available locally right away, and ripples
            # to the following processors one step per hop.
            for d in range(q):
                dst = (p + d) % q
                x_avail[j, dst] = run_at + 1 + d
    return step


def pipelined_backward_schedule(nb: int, tb: int, q: int) -> np.ndarray:
    """Figure 4: column-priority pipelined backward substitution.

    The supernode is the transposed trapezoid (t rows, n columns in the
    paper's orientation); here we keep the same (i, j) block indexing as
    the forward schedules — entry (i, j) is the step at which block (i, j)
    of L (equivalently block (j, i) of L^T) is used.  Processing runs from
    the last block column to the first, with the accumulator for column j
    visiting processors in ring order and the diagonal solve last.
    """
    mask = _trapezoid_mask(nb, tb)
    step = np.zeros((nb, tb), dtype=np.int64)
    proc_free = np.zeros(q, dtype=np.int64)
    done = np.zeros((nb, tb), dtype=bool)
    INF = np.iinfo(np.int64).max // 4
    # x_avail[i][p]: step after which x of row-block i (solved or gathered
    # from the parent) is available at processor p.  Below-blocks (i >= tb)
    # are available from the start on their owner.
    x_avail = np.full((nb, q), INF, dtype=np.int64)
    for i in range(tb, nb):
        x_avail[i, i % q] = 1

    remaining = int(mask.sum())

    def deps_ready_step(i: int, j: int) -> int:
        p = i % q
        if i == j:
            # Diagonal (transposed) solve: needs every update of column j.
            earliest = 1
            for ip in range(j + 1, nb):
                if not done[ip, j]:
                    return INF
                # Cross-processor contributions ride the accumulator ring;
                # one hop per step from the contributor to the owner.
                src = ip % q
                hops = (p - src) % q
                earliest = max(earliest, int(step[ip, j]) + 1 + hops)
            return earliest
        # Update block (i, j): needs x of row-block i.
        return int(x_avail[i, p]) if x_avail[i, p] < INF else INF

    while remaining:
        best: dict[int, tuple[tuple, int, int, int]] = {}
        for j in range(tb - 1, -1, -1):
            for i in range(j, nb):
                if not mask[i, j] or done[i, j]:
                    continue
                est = deps_ready_step(i, j)
                if est >= INF:
                    continue
                p = i % q
                run_at = max(est, int(proc_free[p]) + 1)
                key = (run_at, (tb - 1 - j, i))  # column priority, j descending
                if p not in best or key < best[p][0]:
                    best[p] = (key, i, j, run_at)
        if not best:
            raise RuntimeError("schedule deadlock")  # pragma: no cover
        (key, i, j, run_at) = min(best.values())
        p = i % q
        step[i, j] = run_at
        done[i, j] = True
        proc_free[p] = run_at
        remaining -= 1
        if i == j:
            for d in range(q):
                x_avail[j, (p + d) % q] = run_at + 1 + d
    return step
