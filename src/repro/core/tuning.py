"""Automatic block-size selection.

The paper treats the block-cyclic block size ``b`` as a small constant
chosen per machine: too small pays a message startup per block, too large
destroys pipeline overlap (see ``benchmarks/bench_ablations.py``).  Since
our machine is simulated, the trade-off can be searched directly: simulate
one forward solve per candidate ``b`` and keep the fastest.  This is the
simulation-era equivalent of the hand-tuning the paper's authors did on
the T3D.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.forward import parallel_forward
from repro.machine.spec import MachineSpec
from repro.mapping.subtree_subcube import ProcSet
from repro.numeric.supernodal import SupernodalFactor
from repro.util.validation import require

DEFAULT_CANDIDATES = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a block-size search."""

    best_b: int
    timings: dict[int, float]  # candidate b -> simulated forward seconds

    def improvement_over(self, b: int) -> float:
        """Speedup of best_b relative to candidate *b*."""
        require(b in self.timings, f"b={b} was not a candidate")
        return self.timings[b] / self.timings[self.best_b]


def tune_block_size(
    factor: SupernodalFactor,
    assign: list[ProcSet],
    spec: MachineSpec,
    *,
    nrhs: int = 1,
    candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
    nproc: int | None = None,
    seed: int = 0,
) -> TuningResult:
    """Pick the block size minimising the simulated forward-solve time.

    The numeric result is identical for every ``b`` (verified by the test
    suite), so only the makespan matters.
    """
    require(len(candidates) > 0, "need at least one candidate block size")
    rng = np.random.default_rng(seed)
    rhs = rng.normal(size=(factor.n, nrhs))
    timings: dict[int, float] = {}
    for b in candidates:
        require(b >= 1, f"block size must be >= 1, got {b}")
        _, sim = parallel_forward(factor, assign, spec, rhs, b=b, nproc=nproc)
        timings[int(b)] = sim.makespan
    best = min(timings, key=lambda k: (timings[k], k))
    return TuningResult(best_b=best, timings=timings)
