"""Simulated parallel supernodal Cholesky factorization (paper ref [4]).

The paper's triangular solvers consume the factor produced by the
Gupta-Karypis-Kumar parallel multifrontal Cholesky, which distributes each
shared supernode over a 2-D ``qr x qc`` processor grid and factors its
dense front with blocked right-looking kernels.  This module builds that
algorithm as a task graph for the event simulator:

* sequential subtrees (q = 1): one task per supernode at the serial
  supernodal kernel cost;
* shared supernodes (q > 1): the dense front (n x n, first t columns
  eliminated) is tiled with ``b x b`` blocks mapped 2-D block-cyclically;
  per panel k: POTRF(k,k) -> column broadcast -> TRSM(i,k) -> row/column
  broadcasts -> SYRK/GEMM updates on every trailing block;
* extend-add between supernodes is modelled as a child-grid sync followed
  by scattered messages into the parent's first-panel tasks (the paper's
  analysis also treats this term as lower-order).

The graph is *timing-only* (no numeric thunks — numerics come from the
serial multifrontal code, which is what the solvers consume); its
makespan gives the Figure 7 factorization column, replacing the coarse
closed-form of :mod:`repro.core.factor_model` when
``ParallelSparseSolver(factor_time_mode="simulate")`` is selected.
"""

from __future__ import annotations

from repro.core.blocks import SupernodeBlocks
from repro.machine.events import SimResult, TaskGraph, simulate
from repro.machine.spec import MachineSpec
from repro.mapping.layouts import BlockCyclic2D
from repro.mapping.subtree_subcube import ProcSet
from repro.symbolic.stree import SupernodalTree
from repro.util.flops import cholesky_flops, gemm_flops
from repro.util.validation import require


def _serial_supernode_cost(spec: MachineSpec, n: int, t: int) -> float:
    flops = t**3 / 3.0 + (n - t) * t * t + float(n - t) ** 2 * t
    return spec.compute_time(flops, nrhs=max(t, 1), calls=3)


def build_factor_graph(
    stree: SupernodalTree,
    assign: list[ProcSet],
    spec: MachineSpec,
    *,
    b: int = 8,
    nproc: int | None = None,
) -> TaskGraph:
    """Task graph of the parallel multifrontal factorization."""
    p = nproc or max(ps.stop for ps in assign)
    g = TaskGraph(nproc=p)
    # exit[s] = (sync task id, update words) available to the parent
    exit_task: dict[int, tuple[int, float]] = {}

    for s in stree.topo_order():
        sn = stree.supernodes[s]
        procs = assign[s]
        child_exits = [exit_task.pop(c) for c in stree.children[s] if c in exit_task]

        if procs.size == 1:
            cost = _serial_supernode_cost(spec, sn.n, sn.t)
            tid = g.add_task(procs.start, cost, priority=(s, 0, 0, 0), label=f"f{s}:seq")
            for ctid, words in child_exits:
                g.add_edge(ctid, tid, words=words)
            update_words = float(sn.n - sn.t) ** 2 / 2.0
            if sn.n > sn.t:
                exit_task[s] = (tid, update_words)
            continue

        exit_task[s] = _add_parallel_supernode(
            g, s, sn, procs, spec, b, child_exits
        )
    return g


def _add_parallel_supernode(
    g: TaskGraph,
    s: int,
    sn,
    procs: ProcSet,
    spec: MachineSpec,
    b: int,
    child_exits: list[tuple[int, float]],
) -> tuple[int, float] | None:
    """Blocked right-looking dense partial factorization of one front."""
    n, t = sn.n, sn.t
    rows = SupernodeBlocks(n=n, t=t, b=b, procs=procs)
    layout = BlockCyclic2D(n=n, t=max(t, 1), b=b, procs=procs)
    qr, qc = layout.grid
    nb = rows.nblocks
    ntb = rows.n_tri_blocks

    def owner(i: int, j: int) -> int:
        # 2-D block-cyclic over the front's block grid.
        return procs.start + (i % qr) * qc + (j % qc)

    # Assembly: one task per processor of the grid, receiving its share of
    # each child's update matrix.
    assemble: dict[int, int] = {}
    q = procs.size
    for rank in procs.ranks():
        tid = g.add_task(rank, spec.t_call, priority=(s, 0, rank, 0), label=f"f{s}:A")
        for ctid, words in child_exits:
            g.add_edge(ctid, tid, words=words / q)
        assemble[rank] = tid

    # Block tasks.  last_writer[(i, j)] tracks the newest task touching a
    # block, so panel k+1 consumes panel k's updates.
    last_writer: dict[tuple[int, int], int] = {}

    def block_dep(tid: int, i: int, j: int) -> None:
        prev = last_writer.get((i, j))
        if prev is not None:
            g.add_edge(prev, tid)
        else:
            g.add_edge(assemble[g.tasks[tid].proc], tid)
        last_writer[(i, j)] = tid

    for k in range(ntb):
        bk = rows.size(k)
        # POTRF of the diagonal block
        potrf = g.add_task(
            owner(k, k),
            spec.compute_time(cholesky_flops(bk), nrhs=max(bk, 1), calls=1),
            priority=(s, 1 + k, 0, 0),
            label=f"f{s}:P{k}",
        )
        block_dep(potrf, k, k)

        # TRSMs down the panel
        trsm_ids: dict[int, int] = {}
        for i in range(k + 1, nb):
            bi = rows.size(i)
            tid = g.add_task(
                owner(i, k),
                spec.compute_time(bi * bk * bk, nrhs=max(bk, 1), calls=1),
                priority=(s, 1 + k, 1, i),
                label=f"f{s}:T{i}.{k}",
            )
            g.add_edge(potrf, tid, words=bk * bk / 2.0)
            block_dep(tid, i, k)
            trsm_ids[i] = tid

        # Trailing updates: block (i, j), i >= j > k
        for j in range(k + 1, nb):
            bj = rows.size(j)
            for i in range(j, nb):
                bi = rows.size(i)
                tid = g.add_task(
                    owner(i, j),
                    spec.compute_time(gemm_flops(bi, bk, bj), nrhs=max(bj, 1), calls=1),
                    priority=(s, 1 + k, 2, i * nb + j),
                    label=f"f{s}:U{i}.{j}.{k}",
                )
                g.add_edge(trsm_ids[i], tid, words=bi * bk)
                if j != i:
                    g.add_edge(trsm_ids[j], tid, words=bj * bk)
                block_dep(tid, i, j)

    if n == t:
        # Root supernode: nothing flows upward, but emit a sync so callers
        # can await completion uniformly.
        done = g.add_task(procs.start, 0.0, priority=(s, 1 + ntb, 3, 0), label=f"f{s}:done")
        for (i, j), tid in last_writer.items():
            if i == j:
                g.add_edge(tid, done)
        return done, 0.0

    # Exit sync: the Schur complement is complete once every trailing
    # block received its last panel update.
    done = g.add_task(procs.start, 0.0, priority=(s, 1 + ntb, 3, 0), label=f"f{s}:done")
    for i in range(ntb, nb):
        for j in range(ntb, i + 1):
            tid = last_writer.get((i, j))
            if tid is not None:
                g.add_edge(tid, done)
    update_words = float(n - t) ** 2 / 2.0
    return done, update_words


def simulated_factor_time(
    spec: MachineSpec,
    stree: SupernodalTree,
    assign: list[ProcSet],
    *,
    b: int = 8,
    nproc: int | None = None,
) -> tuple[float, SimResult]:
    """Makespan of the simulated parallel factorization."""
    require(len(assign) == stree.nsuper, "assignment size mismatch")
    g = build_factor_graph(stree, assign, spec, b=b, nproc=nproc)
    sim = simulate(g, spec)
    return sim.makespan, sim
