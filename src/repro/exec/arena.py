"""Reusable solve workspaces: the zero-allocation arena.

The engine's original hot path paid one ``np.zeros((n_s, m))`` per
supernode per solve plus a fresh contribution array per node — small
allocations whose cost dwarfs the arithmetic on fine-grained trees.  The
arena removes them: every buffer a solve needs is sized once per
``(program-or-plan, nrhs)`` and reused across solves.

:class:`WorkspaceArena` is a thread-safe lease/return pool attached to a
:class:`~repro.exec.cache.PreparedFactor`.  A solve *leases* a workspace
(built on first use), runs both sweeps inside the lease, and returns it
to the free list — so steady-state repeated solves allocate nothing,
while concurrent solves against the same factor each get their own
buffers and never race.

Two workspace shapes live here:

* :class:`EngineWorkspace` — flat per-node accumulator and contribution
  arenas for the threaded engine, carved by :func:`build_engine_workspace`
  from an :class:`~repro.exec.plan.ExecPlan` (per-node slices are disjoint,
  so concurrent tasks write without synchronisation);
* :class:`FusedWorkspace` — the level-sized scratch of the fused backend,
  carved by :func:`build_fused_workspace` from a
  :class:`~repro.exec.plan.LevelProgram` (one accumulator the size of the
  widest level, one contribution arena for the whole tree, plus gather /
  product / dot scratch at their program-wide maxima).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Hashable, Iterator

import numpy as np

from repro.exec.plan import ExecPlan, LevelProgram


class WorkspaceArena:
    """Thread-safe lease/return pool of solve workspaces.

    Workspaces are keyed by an arbitrary hashable (the backends use
    ``(kind, id(plan-or-program), nrhs)``); :meth:`lease` pops a free one
    or builds it via the caller's factory, and always returns it to the
    free list afterwards — even when the solve raises, since every buffer
    is fully rewritten by the next lease.  ``built``/``leases`` counters
    make reuse observable for tests and cache stats.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: dict[Hashable, list[object]] = {}
        self.built = 0
        self.leases = 0

    @contextmanager
    def lease(self, key: Hashable, build: Callable[[], object]) -> Iterator[object]:
        with self._lock:
            stack = self._free.get(key)
            ws = stack.pop() if stack else None
            self.leases += 1
        if ws is None:
            ws = build()
            with self._lock:
                self.built += 1
        try:
            yield ws
        finally:
            with self._lock:
                self._free.setdefault(key, []).append(ws)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "built": self.built,
                "leases": self.leases,
                "free": sum(len(v) for v in self._free.values()),
            }


# ------------------------------------------------------------------ engine
@dataclass(frozen=True)
class EngineWorkspace:
    """Flat accumulator/contribution arenas for the threaded engine.

    ``acc[acc_off[s]:acc_off[s+1]]`` is supernode *s*'s ``(n_s, m)``
    accumulator; ``contrib[contrib_off[s]:contrib_off[s+1]]`` its
    ``(n_s - t_s, m)`` contribution block.  Slices of distinct nodes are
    disjoint, so concurrent tasks touch disjoint memory.
    """

    acc_off: np.ndarray
    contrib_off: np.ndarray
    acc: np.ndarray
    contrib: np.ndarray


def build_engine_workspace(plan: ExecPlan, m: int) -> EngineWorkspace:
    """Size an :class:`EngineWorkspace` for *plan* at *m* right-hand sides."""
    ns = len(plan.steps)
    acc_off = np.zeros(ns + 1, dtype=np.int64)
    contrib_off = np.zeros(ns + 1, dtype=np.int64)
    for s, st in enumerate(plan.steps):
        acc_off[s + 1] = acc_off[s] + st.n
        contrib_off[s + 1] = contrib_off[s] + (st.n - st.t)
    return EngineWorkspace(
        acc_off=acc_off,
        contrib_off=contrib_off,
        acc=np.empty((int(acc_off[-1]), m)),
        contrib=np.empty((int(contrib_off[-1]), m)),
    )


# ------------------------------------------------------------------ fused
@dataclass(frozen=True)
class FusedWorkspace:
    """Scratch buffers for one fused solve at a fixed NRHS.

    All are ``(rows, m)`` float64 blocks sized at the program-wide maxima;
    each level uses leading slices.  ``contrib`` is the only tree-sized
    buffer — it persists across levels because parents consume children's
    contribution blocks from it.
    """

    acc: np.ndarray      # widest level's packed accumulator
    contrib: np.ndarray  # whole-tree contribution arena
    gather: np.ndarray   # scatter sources (forward) / x[below] rows (backward)
    rep: np.ndarray      # width-1 replicated-solution / product buffer
    wk: np.ndarray       # per-node rectangle-product output, max(nb, t) rows
    wk2: np.ndarray      # rank-1 term scratch of rect_apply/rect_apply_t
    top: np.ndarray      # backward top blocks, max(k1, t) rows
    dot: np.ndarray      # width-1 backward reduceat output


def build_fused_workspace(program: LevelProgram, m: int) -> FusedWorkspace:
    """Size a :class:`FusedWorkspace` for *program* at *m* right-hand sides."""
    return FusedWorkspace(
        acc=np.empty((program.max_acc, m)),
        contrib=np.empty((program.contrib_total, m)),
        gather=np.empty((program.max_gather, m)),
        rep=np.empty((program.max_rep, m)),
        wk=np.empty((program.max_wk, m)),
        wk2=np.empty((program.max_wk, m)),
        top=np.empty((program.max_top, m)),
        dot=np.empty((program.max_dot, m)),
    )
