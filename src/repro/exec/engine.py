"""Real shared-memory execution of the triangular solves.

This is the repo's first *measured* hot path: forward elimination and
backward substitution over a :class:`~repro.numeric.supernodal.SupernodalFactor`,
executed for real on threads rather than walked through the machine
simulator.  The design follows the level/etree scheduling that modern
shared-memory sparse triangular solvers use:

* the cached :class:`~repro.exec.plan.ExecPlan` aggregates cheap subtrees
  into sequential tasks and leaves the expensive top of the tree as
  singleton tasks (Section 2's subtree/subcube split, reinterpreted for a
  thread pool);
* tasks are dispatched to a :class:`~concurrent.futures.ThreadPoolExecutor`
  by dependency counting on the task tree — a forward task becomes ready
  when its child tasks finish, a backward task when its parent does.  The
  dense kernels (BLAS ``dtrsm`` and ``@``) release the GIL, so tasks
  overlap on real cores;
* all arithmetic is batched over the full ``(n, nrhs)`` right-hand-side
  block, and child contributions are reduced in ascending child order
  inside the consuming node — so results are **bitwise identical** for
  every worker count and every thread interleaving.

Forward elimination passes contributions up the assembly tree exactly
like the multifrontal factorization passes update matrices: node ``s``
computes ``contrib[s] = acc[t:] - R_s @ solved`` over its below-rows and
the parent scatters it through plan-precomputed indices.  Backward
substitution needs no reduction at all: node ``s`` gathers already-solved
ancestor entries ``x[below]`` and solves its transposed triangle.

Accumulator and contribution blocks live in a flat
:class:`~repro.exec.arena.EngineWorkspace` leased from the prepared
factor's arena — per-node slices are disjoint, so tasks stay
synchronisation-free while repeated solves stop paying a
``np.zeros((n_s, m))`` per node.  All dense math goes through the
canonical kernels in :mod:`repro.numeric.kernels`, which is what keeps
the engine bitwise identical to the serial walker and the fused backend.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, Sequence

import numpy as np

from repro.exec.arena import build_engine_workspace
from repro.exec.cache import PreparedFactor, plan_for, prepare_factor
from repro.exec.plan import DEFAULT_GRAIN, ExecPlan
from repro.numeric.kernels import (
    rect_apply,
    rect_apply_t,
    solve_lower,
    solve_lower_t,
    unit_dot,
)
from repro.numeric.supernodal import SupernodalFactor
from repro.numeric.trisolve import as_rhs_matrix
from repro.util.validation import require

#: Upper bound on the default worker count when ``workers=None``.
MAX_DEFAULT_WORKERS = 8


def default_workers() -> int:
    """The worker count used when callers pass ``workers=None``.

    One thread per core, capped at :data:`MAX_DEFAULT_WORKERS`, never
    below 1.  This is the single source of truth for "how many workers
    does this machine get by default" — the engine, the CLI and the
    benchmark harness all call it, so the policy cannot drift between
    them.
    """
    return max(1, min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS))


def resolve_workers(workers: int | None) -> int:
    """Validate and default the worker count.

    ``None`` means "use the machine" (:func:`default_workers`).  Anything
    below 1 (or non-integral) is rejected with :class:`ValueError` — a
    pool of zero workers would accept tasks and never run them.
    """
    if workers is None:
        return default_workers()
    if isinstance(workers, bool) or not isinstance(workers, (int, np.integer)):
        raise ValueError(f"workers must be a positive integer, got {workers!r}")
    require(int(workers) >= 1, f"workers must be >= 1, got {workers}")
    return int(workers)


def _run_task_graph(
    ntasks: int,
    ndeps: Sequence[int],
    dependents: Sequence[Sequence[int]],
    body: Callable[[int], None],
    workers: int,
    pool: ThreadPoolExecutor | None = None,
) -> None:
    """Run ``body(i)`` for every task, honouring the dependency counts.

    ``workers == 1`` runs inline (no pool) in deterministic topological
    order.  Otherwise tasks are submitted to *pool* — owned by the caller
    so one executor serves both sweeps of a solve; when ``pool is None`` a
    temporary one is created.  A failing task stops further submission,
    the already-running tasks drain, and the failure with the smallest
    task index is re-raised — the pool can never deadlock on an exception
    because nothing waits on a task that was never submitted.
    """
    if ntasks == 0:
        return
    counts = [int(c) for c in ndeps]
    ready = [i for i in range(ntasks) if counts[i] == 0]
    require(bool(ready), "task graph has no ready tasks — dependency cycle")

    executed = 0
    if workers == 1:
        queue = deque(ready)
        while queue:
            i = queue.popleft()
            body(i)
            executed += 1
            for d in dependents[i]:
                counts[d] -= 1
                if counts[d] == 0:
                    queue.append(d)
        require(executed == ntasks,
                "task graph stalled before completing — dependency cycle")
        return

    if pool is None:
        with ThreadPoolExecutor(max_workers=workers) as owned:
            _run_task_graph(ntasks, ndeps, dependents, body, workers, pool=owned)
        return

    failures: list[tuple[int, BaseException]] = []
    pending = {pool.submit(body, i): i for i in ready}
    while pending:
        done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
        for fut in done:
            i = pending.pop(fut)
            exc = fut.exception()
            if exc is not None:
                failures.append((i, exc))
                continue
            executed += 1
            if failures:
                continue  # drain only; schedule nothing downstream
            for d in dependents[i]:
                counts[d] -= 1
                if counts[d] == 0:
                    pending[pool.submit(body, d)] = d
    if failures:
        failures.sort(key=lambda pair: pair[0])
        raise failures[0][1]
    require(executed == ntasks,
            "task graph stalled before completing — dependency cycle")


# ------------------------------------------------------------------ sweeps
def _forward_mat(
    plan: ExecPlan,
    prep: PreparedFactor,
    y: np.ndarray,
    workers: int,
    pool: ThreadPoolExecutor | None = None,
) -> np.ndarray:
    """In-place forward elimination ``L y = b`` over the (n, m) block."""
    m = y.shape[1]
    steps = plan.steps
    diag, rect = prep.diag, prep.rect

    with prep.arena.lease(
        ("engine", id(plan), m), lambda: build_engine_workspace(plan, m)
    ) as ws:
        acc_off, con_off = ws.acc_off, ws.contrib_off

        def run_task(ti: int) -> None:
            for s in plan.tasks[ti].nodes:
                st = steps[s]
                t = st.t
                acc = ws.acc[acc_off[s]:acc_off[s + 1]]
                acc[t:] = 0.0
                if t:
                    acc[:t] = y[st.col_lo:st.col_hi]
                for c, idx in zip(st.children, st.child_scatter):
                    c0, c1 = con_off[c], con_off[c + 1]
                    if c1 > c0:
                        acc[idx] += ws.contrib[c0:c1]
                if t:
                    solved = solve_lower(diag[s], acc[:t])
                    y[st.col_lo:st.col_hi] = solved
                    if st.n > t:
                        np.subtract(acc[t:], rect_apply(rect[s], solved),
                                    out=ws.contrib[con_off[s]:con_off[s + 1]])
                elif st.n:
                    ws.contrib[con_off[s]:con_off[s + 1]] = acc

        ndeps, dependents = plan.forward_deps()
        _run_task_graph(plan.ntasks, ndeps, dependents, run_task, workers, pool)
    return y


def _backward_mat(
    plan: ExecPlan,
    prep: PreparedFactor,
    x: np.ndarray,
    workers: int,
    pool: ThreadPoolExecutor | None = None,
) -> np.ndarray:
    """In-place backward substitution ``L^T x = y`` over the (n, m) block."""
    steps = plan.steps
    diag, rect = prep.diag, prep.rect

    def run_task(ti: int) -> None:
        for s in reversed(plan.tasks[ti].nodes):
            st = steps[s]
            t = st.t
            if not t:
                continue
            top = x[st.col_lo:st.col_hi]
            if st.n > t:
                xg = x[st.below]
                top = top - (unit_dot(rect[s], xg) if t == 1
                             else rect_apply_t(rect[s], xg))
            x[st.col_lo:st.col_hi] = solve_lower_t(diag[s], top)

    ndeps, dependents = plan.backward_deps()
    _run_task_graph(plan.ntasks, ndeps, dependents, run_task, workers, pool)
    return x


# ------------------------------------------------------------------ public
def forward_exec(
    factor: SupernodalFactor,
    b: np.ndarray,
    *,
    workers: int | None = None,
    grain: int = DEFAULT_GRAIN,
    plan: ExecPlan | None = None,
) -> np.ndarray:
    """Solve ``L y = b`` on the shared-memory engine.

    *b* may be a vector or an ``(n, nrhs)`` block; the result matches the
    input's shape.  Identical numerics for every ``workers`` value.
    """
    workers_n = resolve_workers(workers)
    plan = plan if plan is not None else plan_for(factor.stree, grain=grain)
    prep = prepare_factor(factor)
    y, squeeze = as_rhs_matrix(b, factor.n)
    _forward_mat(plan, prep, y, workers_n)
    return y[:, 0] if squeeze else y


def backward_exec(
    factor: SupernodalFactor,
    b: np.ndarray,
    *,
    workers: int | None = None,
    grain: int = DEFAULT_GRAIN,
    plan: ExecPlan | None = None,
) -> np.ndarray:
    """Solve ``L^T x = b`` on the shared-memory engine."""
    workers_n = resolve_workers(workers)
    plan = plan if plan is not None else plan_for(factor.stree, grain=grain)
    prep = prepare_factor(factor)
    x, squeeze = as_rhs_matrix(b, factor.n)
    _backward_mat(plan, prep, x, workers_n)
    return x[:, 0] if squeeze else x


def solve_exec(
    factor: SupernodalFactor,
    b: np.ndarray,
    *,
    workers: int | None = None,
    grain: int = DEFAULT_GRAIN,
    plan: ExecPlan | None = None,
) -> np.ndarray:
    """Full ``A x = b`` solve (forward then backward) on the engine.

    One :class:`~concurrent.futures.ThreadPoolExecutor` serves both
    sweeps — the pool is created once per call, not once per sweep.
    """
    workers_n = resolve_workers(workers)
    plan = plan if plan is not None else plan_for(factor.stree, grain=grain)
    prep = prepare_factor(factor)
    x, squeeze = as_rhs_matrix(b, factor.n)
    if workers_n == 1:
        _forward_mat(plan, prep, x, workers_n)
        _backward_mat(plan, prep, x, workers_n)
    else:
        with ThreadPoolExecutor(max_workers=workers_n) as pool:
            _forward_mat(plan, prep, x, workers_n, pool)
            _backward_mat(plan, prep, x, workers_n, pool)
    return x[:, 0] if squeeze else x
