"""Real shared-memory execution backends for the triangular solves.

The :mod:`repro.machine` layer *simulates* the paper's message-passing
solvers to reproduce its timing figures; this package *executes* the
solves on the host for real, with a level-scheduled thread pool over the
supernodal tree.  The two layers are deliberately separate: simulated
seconds validate the paper's model, measured seconds feed the repo's
perf trajectory (``BENCH_exec.json``).

Public surface:

* :func:`forward_exec` / :func:`backward_exec` / :func:`solve_exec` —
  the engine entry points (vector or ``(n, nrhs)`` blocks).
* :func:`build_plan` / :func:`plan_for` — explicit or cached
  :class:`ExecPlan` construction; ``plan_for(..., certify=True)`` runs
  the static schedule certifier (:mod:`repro.verify.schedule`) first.
* :func:`certificate_for` — the memoized determinism certificate for a
  structure's plan (race-freedom + exactly-once coverage proofs).
* :func:`prepare_factor`, :func:`clear_exec_caches`,
  :func:`exec_cache_stats` — value preparation and cache control.
"""

from repro.exec.cache import (
    PreparedFactor,
    certificate_for,
    clear_exec_caches,
    exec_cache_stats,
    plan_for,
    prepare_factor,
)
from repro.exec.engine import (
    MAX_DEFAULT_WORKERS,
    backward_exec,
    default_workers,
    forward_exec,
    resolve_workers,
    solve_exec,
)
from repro.exec.plan import DEFAULT_GRAIN, ExecPlan, ExecTask, NodeStep, build_plan, check_plan

__all__ = [
    "DEFAULT_GRAIN",
    "MAX_DEFAULT_WORKERS",
    "ExecPlan",
    "ExecTask",
    "NodeStep",
    "PreparedFactor",
    "backward_exec",
    "build_plan",
    "certificate_for",
    "check_plan",
    "clear_exec_caches",
    "default_workers",
    "exec_cache_stats",
    "forward_exec",
    "plan_for",
    "prepare_factor",
    "resolve_workers",
    "solve_exec",
]
