"""Real shared-memory execution backends for the triangular solves.

The :mod:`repro.machine` layer *simulates* the paper's message-passing
solvers to reproduce its timing figures; this package *executes* the
solves on the host for real.  Two real backends share one schedule: the
level-scheduled thread pool over the supernodal tree (``threads``) and
the flat, vectorized level program (``fused``), which batches each
elimination-tree level into a handful of whole-level array ops.  The
layers are deliberately separate from the simulator: simulated seconds
validate the paper's model, measured seconds feed the repo's perf
trajectory (``BENCH_exec.json``).

Public surface:

* :func:`forward_exec` / :func:`backward_exec` / :func:`solve_exec` —
  the threaded engine entry points (vector or ``(n, nrhs)`` blocks).
* :func:`forward_fused` / :func:`backward_fused` / :func:`solve_fused` —
  the fused level-program entry points; bitwise identical results.
* :func:`build_plan` / :func:`plan_for` — explicit or cached
  :class:`ExecPlan` construction; ``plan_for(..., certify=True)`` runs
  the static schedule certifier (:mod:`repro.verify.schedule`) first.
* :func:`compile_level_program` / :func:`program_for` — explicit or
  cached compilation of a plan into a :class:`LevelProgram`.
* :func:`certificate_for` / :func:`fused_certificate_for` — the memoized
  determinism certificates (race-freedom + exactly-once coverage proofs)
  for a structure's plan and for its fused level program.
* :func:`prepare_factor`, :func:`fused_panels_for`,
  :func:`clear_exec_caches`, :func:`exec_cache_stats` — value
  preparation and cache control.
* :class:`WorkspaceArena` — the lease/return pool of reusable solve
  workspaces owned by each :class:`PreparedFactor`.
"""

from repro.exec.arena import WorkspaceArena
from repro.exec.cache import (
    PreparedFactor,
    certificate_for,
    clear_exec_caches,
    exec_cache_stats,
    fused_certificate_for,
    fused_panels_for,
    plan_for,
    prepare_factor,
    program_for,
)
from repro.exec.engine import (
    MAX_DEFAULT_WORKERS,
    backward_exec,
    default_workers,
    forward_exec,
    resolve_workers,
    solve_exec,
)
from repro.exec.fused import (
    FusedPanels,
    backward_fused,
    build_fused_panels,
    forward_fused,
    solve_fused,
)
from repro.exec.plan import (
    DEFAULT_GRAIN,
    ExecPlan,
    ExecTask,
    Level,
    LevelGroup,
    LevelOnes,
    LevelProgram,
    NodeStep,
    build_plan,
    check_plan,
    compile_level_program,
)

__all__ = [
    "DEFAULT_GRAIN",
    "MAX_DEFAULT_WORKERS",
    "ExecPlan",
    "ExecTask",
    "FusedPanels",
    "Level",
    "LevelGroup",
    "LevelOnes",
    "LevelProgram",
    "NodeStep",
    "PreparedFactor",
    "WorkspaceArena",
    "backward_exec",
    "backward_fused",
    "build_fused_panels",
    "build_plan",
    "certificate_for",
    "check_plan",
    "clear_exec_caches",
    "compile_level_program",
    "default_workers",
    "exec_cache_stats",
    "forward_exec",
    "forward_fused",
    "fused_certificate_for",
    "fused_panels_for",
    "plan_for",
    "prepare_factor",
    "program_for",
    "resolve_workers",
    "solve_exec",
    "solve_fused",
]
