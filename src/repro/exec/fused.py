"""The fused, level-batched execution backend (``backend="fused"``).

The threaded engine already beats the serial walker, but its hot path is
per-node Python dispatch: one loop iteration, one ``np.zeros``, one
scatter loop per supernode.  On fine-grained elimination trees (2-D/3-D
grid problems are ~85% width-1 supernodes) that overhead dwarfs the BLAS
work.  This module executes the :class:`~repro.exec.plan.LevelProgram`
compiled from the plan instead — per level:

* one ``np.take`` gathers every panel top of the level into the packed
  accumulator;
* one ``np.take`` + ``np.add.at`` replays all child-contribution
  scatters of the level through flat int64 index vectors, in the plan's
  (parent ascending, child ascending) order — ``np.add.at`` applies
  updates in index order, so the reduction is exactly the engine's
  deterministic ascending-child sum;
* the width-1 lane solves all its panels with one broadcast divide, one
  replicated multiply and one subtract (forward) or one level-wide
  product + ``np.add.reduceat`` (backward);
* wider panels run bucketed by width — per node one ``dtrsm`` and one
  column-invariant rectangle product
  (:func:`repro.numeric.kernels.rect_apply`), because a *batched*
  triangular solve would have to reassociate the arithmetic and break
  bitwise agreement, and a plain GEMM would round differently at
  different NRHS widths (which would break the serving layer's
  coalescing-transparency guarantee).

Every buffer comes from a :class:`~repro.exec.arena.FusedWorkspace`
leased from the prepared factor's arena, so a steady-state solve
performs no per-node allocations at all.  All dense math matches the
canonical kernels in :mod:`repro.numeric.kernels` op for op; solutions
are bitwise identical to the ``serial`` and ``threads`` backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg.blas import dtrsm

from repro.exec.arena import FusedWorkspace, build_fused_workspace
from repro.exec.cache import (
    PreparedFactor,
    fused_panels_for,
    prepare_factor,
    program_for,
)
from repro.exec.plan import LevelProgram
from repro.numeric.kernels import rect_apply, rect_apply_t
from repro.numeric.supernodal import SupernodalFactor
from repro.numeric.trisolve import as_rhs_matrix


@dataclass(frozen=True)
class FusedPanels:
    """Packed width-1 panel values, one pair of arrays per level.

    ``d1[li]`` holds the diagonal scalars of the level's width-1 nodes as
    a ``(k, 1)`` column (ones order), ``r1[li]`` the stacked rectangle
    columns of its first ``k_below`` nodes as ``(b, 1)`` — the value-side
    complement of the structure-only :class:`LevelProgram`.  Wider panels
    need no packing: the fused loop reuses the prepared factor's
    per-node ``diag``/``rect`` views directly.
    """

    d1: tuple[np.ndarray, ...]
    r1: tuple[np.ndarray, ...]


def build_fused_panels(program: LevelProgram, prep: PreparedFactor) -> FusedPanels:
    """Pack the width-1 values of *prep* in *program*'s level layout."""
    d1_list: list[np.ndarray] = []
    r1_list: list[np.ndarray] = []
    for lvl in program.levels:
        ones = lvl.ones
        if ones is None:
            d1_list.append(np.empty((0, 1)))
            r1_list.append(np.empty((0, 1)))
            continue
        d1 = np.array(
            [prep.diag[int(s)][0, 0] for s in ones.nodes], dtype=np.float64
        )[:, None]
        parts = [prep.rect[int(s)][:, 0] for s in ones.nodes[: ones.k_below]]
        r1 = (np.concatenate(parts) if parts else np.empty(0))[:, None]
        d1_list.append(d1)
        r1_list.append(r1)
    return FusedPanels(d1=tuple(d1_list), r1=tuple(r1_list))


# ------------------------------------------------------------------ sweeps
def _forward_levels(
    program: LevelProgram,
    prep: PreparedFactor,
    panels: FusedPanels,
    y: np.ndarray,
    ws: FusedWorkspace,
) -> None:
    """In-place forward elimination over the (n, m) block, level by level."""
    contrib = ws.contrib
    for lvl in program.levels:
        tt = lvl.top_total
        acc = ws.acc[: lvl.size]
        if lvl.size > tt:
            acc[tt:] = 0.0
        if tt:
            np.take(y, lvl.top_src, axis=0, out=acc[:tt])
        nsc = lvl.scatter_src.size
        if nsc:
            np.take(contrib, lvl.scatter_src, axis=0, out=ws.gather[:nsc])
            np.add.at(acc, lvl.scatter_dst, ws.gather[:nsc])
        ones = lvl.ones
        if ones is not None:
            tops = acc[: ones.k]
            np.divide(tops, panels.d1[lvl.index], out=tops)
            y[ones.cols] = tops
            if ones.b:
                rep = ws.rep[: ones.b]
                np.take(tops, ones.rep_idx, axis=0, out=rep)
                np.multiply(rep, panels.r1[lvl.index], out=rep)
                lo = ones.contrib_lo
                np.subtract(acc[tt:tt + ones.b], rep, out=contrib[lo:lo + ones.b])
        for g in lvl.groups:
            t = g.t
            if not t:
                for i in range(g.nodes.size):
                    nb = int(g.nb[i])
                    if nb:
                        bo = int(g.below_off[i])
                        co = int(g.contrib_off[i])
                        contrib[co:co + nb] = acc[bo:bo + nb]
                continue
            for i in range(g.nodes.size):
                s = int(g.nodes[i])
                to = int(g.top_off[i])
                cl = int(g.col_lo[i])
                solved = dtrsm(1.0, prep.diag[s], acc[to:to + t],
                               lower=1, overwrite_b=1)
                y[cl:cl + t] = solved
                nb = int(g.nb[i])
                if nb:
                    bo = int(g.below_off[i])
                    co = int(g.contrib_off[i])
                    rect_apply(prep.rect[s], solved,
                               out=ws.wk[:nb], tmp=ws.wk2[:nb])
                    np.subtract(acc[bo:bo + nb], ws.wk[:nb],
                                out=contrib[co:co + nb])


def _backward_levels(
    program: LevelProgram,
    prep: PreparedFactor,
    panels: FusedPanels,
    x: np.ndarray,
    ws: FusedWorkspace,
) -> None:
    """In-place backward substitution over the (n, m) block, root level first."""
    for lvl in reversed(program.levels):
        ngr = lvl.gather_rows.size
        if ngr:
            np.take(x, lvl.gather_rows, axis=0, out=ws.gather[:ngr])
        ones = lvl.ones
        if ones is not None:
            kb = ones.k_below
            top = ws.top[: ones.k]
            np.take(x, ones.cols, axis=0, out=top)
            if ones.b:
                rep = ws.rep[: ones.b]
                np.multiply(ws.gather[: ones.b], panels.r1[lvl.index], out=rep)
                np.add.reduceat(rep, ones.seg_starts, axis=0, out=ws.dot[:kb])
                np.subtract(top[:kb], ws.dot[:kb], out=top[:kb])
            np.divide(top, panels.d1[lvl.index], out=top)
            x[ones.cols] = top
        for g in lvl.groups:
            t = g.t
            if not t:
                continue
            for i in range(g.nodes.size):
                s = int(g.nodes[i])
                cl = int(g.col_lo[i])
                nb = int(g.nb[i])
                top = ws.top[:t]
                if nb:
                    go = int(g.gather_off[i])
                    rect_apply_t(prep.rect[s], ws.gather[go:go + nb],
                                 out=ws.wk[:t], tmp=ws.wk2[:nb])
                    np.subtract(x[cl:cl + t], ws.wk[:t], out=top)
                else:
                    np.copyto(top, x[cl:cl + t])
                x[cl:cl + t] = dtrsm(1.0, prep.diag[s], top,
                                     lower=1, trans_a=1, overwrite_b=1)


# ------------------------------------------------------------------ public
def _resolve_program(
    factor: SupernodalFactor,
    prep: PreparedFactor,
    program: LevelProgram | None,
) -> tuple[LevelProgram, FusedPanels]:
    """Pair a program with its packed panels, preferring the caches.

    ``program=None`` and passing the structure's cached program both hit
    the memoized panels; only a hand-built program pays to pack inline.
    """
    cached = program_for(factor.stree)
    if program is None or program is cached:
        return cached, fused_panels_for(factor)
    return program, build_fused_panels(program, prep)


def forward_fused(
    factor: SupernodalFactor,
    b: np.ndarray,
    *,
    program: LevelProgram | None = None,
) -> np.ndarray:
    """Solve ``L y = b`` with the fused level program.

    *b* may be a vector or an ``(n, nrhs)`` block; the result matches the
    input's shape and is bitwise identical to every other real backend.
    """
    prep = prepare_factor(factor)
    program, panels = _resolve_program(factor, prep, program)
    y, squeeze = as_rhs_matrix(b, factor.n)
    m = y.shape[1]
    with prep.arena.lease(
        ("fused", id(program), m), lambda: build_fused_workspace(program, m)
    ) as ws:
        _forward_levels(program, prep, panels, y, ws)
    return y[:, 0] if squeeze else y


def backward_fused(
    factor: SupernodalFactor,
    b: np.ndarray,
    *,
    program: LevelProgram | None = None,
) -> np.ndarray:
    """Solve ``L^T x = b`` with the fused level program."""
    prep = prepare_factor(factor)
    program, panels = _resolve_program(factor, prep, program)
    x, squeeze = as_rhs_matrix(b, factor.n)
    m = x.shape[1]
    with prep.arena.lease(
        ("fused", id(program), m), lambda: build_fused_workspace(program, m)
    ) as ws:
        _backward_levels(program, prep, panels, x, ws)
    return x[:, 0] if squeeze else x


def solve_fused(
    factor: SupernodalFactor,
    b: np.ndarray,
    *,
    program: LevelProgram | None = None,
) -> np.ndarray:
    """Full ``A x = b`` solve (forward then backward) on the fused backend.

    Both sweeps run inside one workspace lease, so a steady-state solve
    against a prepared factor performs no per-node allocations.
    """
    prep = prepare_factor(factor)
    program, panels = _resolve_program(factor, prep, program)
    x, squeeze = as_rhs_matrix(b, factor.n)
    m = x.shape[1]
    with prep.arena.lease(
        ("fused", id(program), m), lambda: build_fused_workspace(program, m)
    ) as ws:
        _forward_levels(program, prep, panels, x, ws)
        _backward_levels(program, prep, panels, x, ws)
    return x[:, 0] if squeeze else x
