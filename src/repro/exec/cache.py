"""Per-structure plan cache and per-factor value preparation.

Repeated solves against the same factorization are the common case (multi
right-hand-side workloads, iterative refinement, time stepping), so the
engine never rebuilds what it can reuse:

* :func:`plan_for` caches one :class:`~repro.exec.plan.ExecPlan` per
  ``(symbolic structure, grain)``.  The key is the identity of the
  :class:`~repro.symbolic.stree.SupernodalTree` — the object every
  :class:`~repro.symbolic.analyze.SymbolicFactor` and
  :class:`~repro.numeric.supernodal.SupernodalFactor` share — and entries
  are evicted automatically when the structure is garbage collected.
  ``plan_for(..., certify=True)`` additionally runs the static schedule
  certifier (:func:`repro.verify.schedule.certify_plan`) over the plan
  and raises :class:`repro.verify.VerificationError` on any finding;
  the resulting :class:`~repro.verify.schedule.ScheduleCertificate` is
  memoized alongside the plan (same key, same eviction), so repeated
  certified solves pay for the proof exactly once per structure.
* :func:`prepare_factor` caches a :class:`PreparedFactor` per numeric
  factor: contiguous diagonal/rectangle views of each trapezoid plus a
  one-time singularity screen, so a zero or non-finite diagonal raises a
  clean :class:`ValueError` *before* any task is dispatched (never a
  wrong answer or a hung pool).

Both caches are thread-safe and observable (:func:`exec_cache_stats`),
and :func:`clear_exec_caches` resets them (tests, benchmarks).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exec.plan import DEFAULT_GRAIN, ExecPlan, build_plan
from repro.numeric.supernodal import SupernodalFactor
from repro.symbolic.stree import SupernodalTree

if TYPE_CHECKING:
    from repro.verify.schedule import ScheduleCertificate


class _IdentityCache:
    """A dict keyed by object identity with weakref-driven eviction."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._entries: dict[tuple, tuple[weakref.ref, object]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, anchor: object, key: tuple):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0]() is anchor:
                self.hits += 1
                return entry[1]
            self.misses += 1
            return None

    def store(self, anchor: object, key: tuple, value: object) -> None:
        with self._lock:
            self._entries[key] = (weakref.ref(anchor), value)
        weakref.finalize(anchor, self._evict, key)

    def _evict(self, key: tuple) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_PLANS = _IdentityCache("plans")
_PREPARED = _IdentityCache("prepared")
_CERTS = _IdentityCache("certs")


def plan_for(
    stree: SupernodalTree, *, grain: int = DEFAULT_GRAIN, certify: bool = False
) -> ExecPlan:
    """The cached execution plan for *stree* (built on first use).

    With ``certify=True`` the plan is additionally put through the
    static schedule certifier before it is handed out:
    :class:`repro.verify.VerificationError` is raised if the certifier
    finds a race, a coverage violation, or a nondeterministic reduction
    order.  The certificate is cached alongside the plan, so only the
    first certified call per ``(structure, grain)`` pays for the proof.
    """
    key = (id(stree), int(grain))
    plan = _PLANS.lookup(stree, key)
    if plan is None:
        plan = build_plan(stree, grain=grain)
        _PLANS.store(stree, key, plan)
    if certify:
        certificate_for(stree, grain=grain).report.raise_if_errors(
            "execution plan failed schedule certification"
        )
    return plan  # type: ignore[return-value]


def certificate_for(
    stree: SupernodalTree, *, grain: int = DEFAULT_GRAIN
) -> "ScheduleCertificate":
    """The cached schedule certificate for *stree*'s plan at *grain*.

    Runs :func:`repro.verify.schedule.certify_plan` on first use and
    memoizes the result with the same identity key and weakref eviction
    as the plan itself.  Returns the certificate whether or not it is
    clean — callers decide between inspecting ``.report`` and failing
    fast (:func:`plan_for` with ``certify=True`` does the latter).
    """
    key = (id(stree), int(grain))
    cert = _CERTS.lookup(stree, key)
    if cert is None:
        from repro.verify.schedule import certify_plan

        cert = certify_plan(plan_for(stree, grain=grain), stree)
        _CERTS.store(stree, key, cert)
    return cert  # type: ignore[return-value]


@dataclass(frozen=True)
class PreparedFactor:
    """Kernel-ready views of one numeric factor.

    ``diag[s]`` is the ``t x t`` lower-triangular diagonal block and
    ``rect[s]`` the ``(n - t) x t`` below-diagonal rectangle of supernode
    ``s`` — both C-contiguous views into the factor's trapezoids (no data
    is copied).  Construction validates every diagonal entry, so holding a
    ``PreparedFactor`` certifies the factor is cleanly solvable.
    """

    diag: list[np.ndarray]
    rect: list[np.ndarray]


def _prepare(factor: SupernodalFactor) -> PreparedFactor:
    diag: list[np.ndarray] = []
    rect: list[np.ndarray] = []
    for s, (sn, block) in enumerate(zip(factor.stree.supernodes, factor.blocks)):
        t = sn.t
        d = block[:t, :t]
        dvals = np.diagonal(d)
        if t and (np.any(dvals == 0.0) or not np.all(np.isfinite(dvals))):
            bad = int(np.flatnonzero((dvals == 0.0) | ~np.isfinite(dvals))[0])
            raise ValueError(
                f"singular or non-finite diagonal in supernode {s} "
                f"(global column {sn.col_lo + bad}): triangular solve is "
                "undefined for this factor"
            )
        diag.append(d)
        rect.append(block[t:, :t])
    return PreparedFactor(diag=diag, rect=rect)


def prepare_factor(factor: SupernodalFactor) -> PreparedFactor:
    """Cached kernel-ready form of *factor* (validated on first use)."""
    key = ("factor", id(factor))
    prep = _PREPARED.lookup(factor, key)
    if prep is None:
        prep = _prepare(factor)
        _PREPARED.store(factor, key, prep)
    return prep  # type: ignore[return-value]


def clear_exec_caches() -> None:
    """Drop all cached plans, prepared factors and certificates."""
    _PLANS.clear()
    _PREPARED.clear()
    _CERTS.clear()


def exec_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters for all three caches."""
    return {
        "plan_hits": _PLANS.hits,
        "plan_misses": _PLANS.misses,
        "plan_entries": len(_PLANS),
        "factor_hits": _PREPARED.hits,
        "factor_misses": _PREPARED.misses,
        "factor_entries": len(_PREPARED),
        "cert_hits": _CERTS.hits,
        "cert_misses": _CERTS.misses,
        "cert_entries": len(_CERTS),
    }
