"""Per-structure plan cache and per-factor value preparation.

Repeated solves against the same factorization are the common case (multi
right-hand-side workloads, iterative refinement, time stepping), so the
engine never rebuilds what it can reuse:

* :func:`plan_for` caches one :class:`~repro.exec.plan.ExecPlan` per
  ``(symbolic structure, grain)``.  The key is the identity of the
  :class:`~repro.symbolic.stree.SupernodalTree` — the object every
  :class:`~repro.symbolic.analyze.SymbolicFactor` and
  :class:`~repro.numeric.supernodal.SupernodalFactor` share — and entries
  are evicted automatically when the structure is garbage collected.
  ``plan_for(..., certify=True)`` additionally runs the static schedule
  certifier (:func:`repro.verify.schedule.certify_plan`) over the plan
  and raises :class:`repro.verify.VerificationError` on any finding;
  the resulting :class:`~repro.verify.schedule.ScheduleCertificate` is
  memoized alongside the plan (same key, same eviction), so repeated
  certified solves pay for the proof exactly once per structure.
* :func:`prepare_factor` caches a :class:`PreparedFactor` per numeric
  factor: contiguous diagonal/rectangle views of each trapezoid plus a
  one-time singularity screen, so a zero or non-finite diagonal raises a
  clean :class:`ValueError` *before* any task is dispatched (never a
  wrong answer or a hung pool).  Each prepared factor owns a
  :class:`~repro.exec.arena.WorkspaceArena`, so the solve workspaces of
  both real backends share the factor's lifetime and eviction.
* :func:`program_for` caches the compiled
  :class:`~repro.exec.plan.LevelProgram` per structure (programs are
  grain-invariant, so one entry serves every grain), and
  :func:`fused_certificate_for` its schedule certificate;
  :func:`fused_panels_for` caches the packed width-1 panel values per
  numeric factor.

All caches are thread-safe and observable (:func:`exec_cache_stats`),
and :func:`clear_exec_caches` resets them (tests, benchmarks).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.exec.arena import WorkspaceArena
from repro.exec.plan import (
    DEFAULT_GRAIN,
    ExecPlan,
    LevelProgram,
    build_plan,
    compile_level_program,
)
from repro.numeric.supernodal import SupernodalFactor
from repro.symbolic.stree import SupernodalTree

if TYPE_CHECKING:
    from repro.exec.fused import FusedPanels
    from repro.verify.schedule import ScheduleCertificate


class _IdentityCache:
    """A dict keyed by object identity with weakref-driven eviction."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._entries: dict[tuple, tuple[weakref.ref, object]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, anchor: object, key: tuple):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0]() is anchor:
                self.hits += 1
                return entry[1]
            self.misses += 1
            return None

    def store(self, anchor: object, key: tuple, value: object) -> None:
        with self._lock:
            self._entries[key] = (weakref.ref(anchor), value)
        weakref.finalize(anchor, self._evict, key)

    def _evict(self, key: tuple) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_PLANS = _IdentityCache("plans")
_PREPARED = _IdentityCache("prepared")
_CERTS = _IdentityCache("certs")
_PROGRAMS = _IdentityCache("programs")
_FUSED_CERTS = _IdentityCache("fused-certs")
_PANELS = _IdentityCache("panels")


def plan_for(
    stree: SupernodalTree, *, grain: int = DEFAULT_GRAIN, certify: bool = False
) -> ExecPlan:
    """The cached execution plan for *stree* (built on first use).

    With ``certify=True`` the plan is additionally put through the
    static schedule certifier before it is handed out:
    :class:`repro.verify.VerificationError` is raised if the certifier
    finds a race, a coverage violation, or a nondeterministic reduction
    order.  The certificate is cached alongside the plan, so only the
    first certified call per ``(structure, grain)`` pays for the proof.
    """
    key = (id(stree), int(grain))
    plan = _PLANS.lookup(stree, key)
    if plan is None:
        plan = build_plan(stree, grain=grain)
        _PLANS.store(stree, key, plan)
    if certify:
        certificate_for(stree, grain=grain).report.raise_if_errors(
            "execution plan failed schedule certification"
        )
    return plan  # type: ignore[return-value]


def certificate_for(
    stree: SupernodalTree, *, grain: int = DEFAULT_GRAIN
) -> "ScheduleCertificate":
    """The cached schedule certificate for *stree*'s plan at *grain*.

    Runs :func:`repro.verify.schedule.certify_plan` on first use and
    memoizes the result with the same identity key and weakref eviction
    as the plan itself.  Returns the certificate whether or not it is
    clean — callers decide between inspecting ``.report`` and failing
    fast (:func:`plan_for` with ``certify=True`` does the latter).
    """
    key = (id(stree), int(grain))
    cert = _CERTS.lookup(stree, key)
    if cert is None:
        from repro.verify.schedule import certify_plan

        cert = certify_plan(plan_for(stree, grain=grain), stree)
        _CERTS.store(stree, key, cert)
    return cert  # type: ignore[return-value]


@dataclass(frozen=True)
class PreparedFactor:
    """Kernel-ready views of one numeric factor.

    ``diag[s]`` is the ``t x t`` lower-triangular diagonal block and
    ``rect[s]`` the ``(n - t) x t`` below-diagonal rectangle of supernode
    ``s`` — both C-contiguous views into the factor's trapezoids (no data
    is copied).  Construction validates every diagonal entry, so holding a
    ``PreparedFactor`` certifies the factor is cleanly solvable.

    ``arena`` pools the solve workspaces of every backend that runs
    against this factor; it lives and dies with the prepared factor, so
    repeated solves reuse buffers and eviction frees them together.
    """

    diag: list[np.ndarray]
    rect: list[np.ndarray]
    arena: WorkspaceArena = field(default_factory=WorkspaceArena, repr=False)


def _prepare(factor: SupernodalFactor) -> PreparedFactor:
    diag: list[np.ndarray] = []
    rect: list[np.ndarray] = []
    for s, (sn, block) in enumerate(zip(factor.stree.supernodes, factor.blocks)):
        t = sn.t
        d = block[:t, :t]
        dvals = np.diagonal(d)
        if t and (np.any(dvals == 0.0) or not np.all(np.isfinite(dvals))):
            bad = int(np.flatnonzero((dvals == 0.0) | ~np.isfinite(dvals))[0])
            raise ValueError(
                f"singular or non-finite diagonal in supernode {s} "
                f"(global column {sn.col_lo + bad}): triangular solve is "
                "undefined for this factor"
            )
        diag.append(d)
        rect.append(block[t:, :t])
    return PreparedFactor(diag=diag, rect=rect)


def prepare_factor(factor: SupernodalFactor) -> PreparedFactor:
    """Cached kernel-ready form of *factor* (validated on first use)."""
    key = ("factor", id(factor))
    prep = _PREPARED.lookup(factor, key)
    if prep is None:
        prep = _prepare(factor)
        _PREPARED.store(factor, key, prep)
    return prep  # type: ignore[return-value]


def program_for(stree: SupernodalTree, *, certify: bool = False) -> LevelProgram:
    """The cached fused :class:`LevelProgram` for *stree*.

    Level programs depend only on the symbolic structure (they are
    grain-invariant), so one cached entry serves every grain.  With
    ``certify=True`` the program must additionally pass the fused
    schedule certifier (:func:`fused_certificate_for`) before it is
    handed out.
    """
    key = ("program", id(stree))
    prog = _PROGRAMS.lookup(stree, key)
    if prog is None:
        prog = compile_level_program(plan_for(stree))
        _PROGRAMS.store(stree, key, prog)
    if certify:
        fused_certificate_for(stree).report.raise_if_errors(
            "fused level program failed schedule certification"
        )
    return prog  # type: ignore[return-value]


def fused_certificate_for(stree: SupernodalTree) -> "ScheduleCertificate":
    """The cached schedule certificate for *stree*'s fused level program.

    The certificate carries the *plan's* canonical digest — certifying
    the program means proving it is a faithful, race-free re-layout of
    the same schedule, so fused solves earn the identical certificate
    the threaded backend does.
    """
    key = ("fused-cert", id(stree))
    cert = _FUSED_CERTS.lookup(stree, key)
    if cert is None:
        from repro.verify.schedule import certify_level_program

        cert = certify_level_program(program_for(stree), plan_for(stree), stree)
        _FUSED_CERTS.store(stree, key, cert)
    return cert  # type: ignore[return-value]


def fused_panels_for(factor: SupernodalFactor) -> "FusedPanels":
    """The cached packed width-1 panel values of *factor* (built once)."""
    key = ("panels", id(factor))
    panels = _PANELS.lookup(factor, key)
    if panels is None:
        from repro.exec.fused import build_fused_panels

        panels = build_fused_panels(
            program_for(factor.stree), prepare_factor(factor)
        )
        _PANELS.store(factor, key, panels)
    return panels  # type: ignore[return-value]


def clear_exec_caches() -> None:
    """Drop all cached plans, programs, prepared factors and certificates."""
    _PLANS.clear()
    _PREPARED.clear()
    _CERTS.clear()
    _PROGRAMS.clear()
    _FUSED_CERTS.clear()
    _PANELS.clear()


def exec_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters for all six caches."""
    return {
        "plan_hits": _PLANS.hits,
        "plan_misses": _PLANS.misses,
        "plan_entries": len(_PLANS),
        "factor_hits": _PREPARED.hits,
        "factor_misses": _PREPARED.misses,
        "factor_entries": len(_PREPARED),
        "cert_hits": _CERTS.hits,
        "cert_misses": _CERTS.misses,
        "cert_entries": len(_CERTS),
        "program_hits": _PROGRAMS.hits,
        "program_misses": _PROGRAMS.misses,
        "program_entries": len(_PROGRAMS),
        "fused_cert_hits": _FUSED_CERTS.hits,
        "fused_cert_misses": _FUSED_CERTS.misses,
        "fused_cert_entries": len(_FUSED_CERTS),
        "panels_hits": _PANELS.hits,
        "panels_misses": _PANELS.misses,
        "panels_entries": len(_PANELS),
    }
