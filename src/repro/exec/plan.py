"""Execution plans: level-scheduled task graphs over the supernodal tree.

The simulated solvers in :mod:`repro.core` model the paper's
message-passing algorithms; this module is the *real* counterpart.  It
turns a :class:`~repro.symbolic.stree.SupernodalTree` into an
:class:`ExecPlan` — everything the shared-memory engine
(:mod:`repro.exec.engine`) needs to run forward elimination and backward
substitution without recomputing any structure:

* **Per-supernode steps** (:class:`NodeStep`): column range, trapezoid
  shape, the ascending child list (which fixes the engine's deterministic
  reduction order), and precomputed scatter indices mapping each child's
  below-rows into this node's rows (the solve-phase analogue of the
  multifrontal extend-add).
* **Subtree task aggregation**: every subtree whose whole solve costs at
  most ``grain`` flops per right-hand side collapses into a single task
  executed sequentially inside one worker, exactly the paper's
  subtree-to-subcube intuition — independent subtrees are the cheap,
  embarrassingly parallel part, and scheduling them node by node would
  drown in dispatch overhead.  Supernodes above the threshold become
  singleton tasks (the pipelined top of the tree).
* **The task tree** with dependency counts for both directions: a forward
  task is ready when all of its child tasks finished; a backward task is
  ready when its parent task finished.

Plans depend only on the symbolic structure (never on numeric values), so
they are cached per structure by :mod:`repro.exec.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symbolic.etree import NO_PARENT
from repro.symbolic.stree import SupernodalTree
from repro.util.flops import supernode_solve_flops
from repro.util.validation import require

#: Default aggregation grain: subtrees cheaper than this many flops per
#: right-hand side run as one sequential task.  Chosen so that a task's
#: arithmetic comfortably outweighs one ThreadPoolExecutor dispatch.
DEFAULT_GRAIN = 4096


@dataclass(frozen=True, slots=True)
class NodeStep:
    """Structure-only data for one supernode, consumed by the hot loop.

    ``children`` ascend, and the engine always reduces child contributions
    in this order — that (not the thread schedule) is what makes the
    backend bitwise reproducible across worker counts.
    """

    s: int
    col_lo: int
    col_hi: int
    t: int
    n: int
    below: np.ndarray
    children: tuple[int, ...]
    child_scatter: tuple[np.ndarray, ...]


@dataclass(frozen=True, slots=True)
class ExecTask:
    """One schedulable unit: a supernode, or a whole aggregated subtree.

    ``nodes`` ascend, which over a postordered tree is a valid bottom-up
    order inside the task (children precede parents); the backward sweep
    simply walks it reversed.
    """

    index: int
    root: int
    nodes: tuple[int, ...]
    flops1: int


@dataclass(frozen=True)
class ExecPlan:
    """A reusable schedule for one symbolic structure.

    Attributes
    ----------
    steps : per-supernode :class:`NodeStep`, indexed by supernode id.
    tasks : task list, topologically sorted (child tasks first).
    task_parent : parent task index per task (-1 at roots).
    task_children : child task indices per task (ascending).
    task_level : bottom-up level per task (leaf tasks at 0).
    node_level : bottom-up level per *supernode* (from
        :meth:`repro.symbolic.stree.SupernodalTree.bottom_up_levels`).
    grain : the aggregation threshold the plan was built with.
    """

    steps: list[NodeStep]
    tasks: list[ExecTask]
    task_parent: np.ndarray
    task_children: list[list[int]]
    task_level: np.ndarray
    node_level: np.ndarray
    grain: int

    @property
    def ntasks(self) -> int:
        return len(self.tasks)

    @property
    def nlevels(self) -> int:
        return int(self.task_level.max()) + 1 if self.ntasks else 0

    def forward_deps(self) -> tuple[list[int], list[list[int]]]:
        """(dependency counts, dependents) for the leaves-to-roots sweep."""
        ndeps = [len(self.task_children[i]) for i in range(self.ntasks)]
        dependents: list[list[int]] = [
            [] if self.task_parent[i] == -1 else [int(self.task_parent[i])]
            for i in range(self.ntasks)
        ]
        return ndeps, dependents

    def backward_deps(self) -> tuple[list[int], list[list[int]]]:
        """(dependency counts, dependents) for the roots-to-leaves sweep."""
        ndeps = [0 if self.task_parent[i] == -1 else 1 for i in range(self.ntasks)]
        dependents = [list(self.task_children[i]) for i in range(self.ntasks)]
        return ndeps, dependents

    def stats(self) -> dict[str, int]:
        """Summary counters (used by the CLI and the benchmark harness)."""
        singleton = sum(1 for t in self.tasks if len(t.nodes) == 1)
        return {
            "nsuper": len(self.steps),
            "ntasks": self.ntasks,
            "nlevels": self.nlevels,
            "subtree_tasks": self.ntasks - singleton,
            "singleton_tasks": singleton,
            "max_task_nodes": max((len(t.nodes) for t in self.tasks), default=0),
            "grain": self.grain,
        }


def _node_steps(stree: SupernodalTree) -> list[NodeStep]:
    """Precompute scatter indices for every (child -> parent) edge."""
    steps: list[NodeStep] = []
    for s, sn in enumerate(stree.supernodes):
        children = tuple(stree.children[s])
        scatter: list[np.ndarray] = []
        for c in children:
            child_below = stree.supernodes[c].below
            idx = np.searchsorted(sn.rows, child_below)
            contained = idx.size == 0 or (
                int(idx.max()) < sn.rows.shape[0]
                and np.array_equal(sn.rows[idx], child_below)
            )
            require(
                contained,
                f"supernode {c}'s below-rows are not contained in parent {s}'s rows "
                "— broken assembly tree",
            )
            scatter.append(idx)
        steps.append(
            NodeStep(
                s=s,
                col_lo=sn.col_lo,
                col_hi=sn.col_hi,
                t=sn.t,
                n=sn.n,
                below=sn.below,
                children=children,
                child_scatter=tuple(scatter),
            )
        )
    return steps


def build_plan(stree: SupernodalTree, *, grain: int = DEFAULT_GRAIN) -> ExecPlan:
    """Build the level-scheduled task graph for one supernodal tree."""
    require(grain >= 0, f"grain must be >= 0, got {grain!r}")
    ns = stree.nsuper
    steps = _node_steps(stree)
    node_level = stree.bottom_up_levels()

    # Solve flops per RHS of each node and of each whole subtree.
    flops1 = np.array(
        [supernode_solve_flops(sn.n, sn.t, 1) for sn in stree.supernodes], dtype=np.int64
    )
    subtree = flops1.copy()
    for s in range(ns):
        p = int(stree.parent[s])
        if p != NO_PARENT:
            subtree[p] += subtree[s]

    # Task roots: a node joins its parent's task iff the parent's whole
    # subtree is below the grain (then so is its own).  Parents have higher
    # indices, so a descending sweep sees root[p] before root[s].
    root = np.arange(ns, dtype=np.int64)
    for s in range(ns - 1, -1, -1):
        p = int(stree.parent[s])
        if p != NO_PARENT and subtree[p] <= grain:
            root[s] = root[p]

    members: dict[int, list[int]] = {}
    for s in range(ns):
        members.setdefault(int(root[s]), []).append(s)

    tasks: list[ExecTask] = []
    task_of = np.full(ns, -1, dtype=np.int64)
    for ti, r in enumerate(sorted(members)):
        nodes = members[r]  # ascending by construction
        task_of[nodes] = ti
        tasks.append(
            ExecTask(
                index=ti,
                root=r,
                nodes=tuple(nodes),
                flops1=int(flops1[nodes].sum()),
            )
        )

    ntasks = len(tasks)
    task_parent = np.full(ntasks, -1, dtype=np.int64)
    task_children: list[list[int]] = [[] for _ in range(ntasks)]
    for ti, task in enumerate(tasks):
        p = int(stree.parent[task.root])
        if p != NO_PARENT:
            tp = int(task_of[p])
            task_parent[ti] = tp
            task_children[tp].append(ti)

    # Child tasks have smaller roots than their parents, hence smaller
    # indices: an ascending sweep yields bottom-up levels directly.
    task_level = np.zeros(ntasks, dtype=np.int64)
    for ti in range(ntasks):
        if task_children[ti]:
            task_level[ti] = 1 + max(int(task_level[c]) for c in task_children[ti])

    return ExecPlan(
        steps=steps,
        tasks=tasks,
        task_parent=task_parent,
        task_children=task_children,
        task_level=task_level,
        node_level=node_level,
        grain=int(grain),
    )


def check_plan(plan: ExecPlan, stree: SupernodalTree) -> None:
    """Structural self-check: partition, topology, level consistency.

    Used by tests and by callers that construct plans manually; raises
    :class:`ValueError` on the first violated invariant.
    """
    seen: list[int] = []
    for task in plan.tasks:
        require(list(task.nodes) == sorted(task.nodes), "task nodes must ascend")
        seen.extend(task.nodes)
    require(sorted(seen) == list(range(stree.nsuper)),
            "tasks must partition the supernodes")
    for ti, task in enumerate(plan.tasks):
        tp = int(plan.task_parent[ti])
        if tp != -1:
            require(tp > ti, "parent tasks must follow their children")
            require(int(plan.task_level[ti]) < int(plan.task_level[tp]),
                    "task levels must strictly increase towards the roots")
