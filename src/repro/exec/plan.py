"""Execution plans: level-scheduled task graphs over the supernodal tree.

The simulated solvers in :mod:`repro.core` model the paper's
message-passing algorithms; this module is the *real* counterpart.  It
turns a :class:`~repro.symbolic.stree.SupernodalTree` into an
:class:`ExecPlan` — everything the shared-memory engine
(:mod:`repro.exec.engine`) needs to run forward elimination and backward
substitution without recomputing any structure:

* **Per-supernode steps** (:class:`NodeStep`): column range, trapezoid
  shape, the ascending child list (which fixes the engine's deterministic
  reduction order), and precomputed scatter indices mapping each child's
  below-rows into this node's rows (the solve-phase analogue of the
  multifrontal extend-add).
* **Subtree task aggregation**: every subtree whose whole solve costs at
  most ``grain`` flops per right-hand side collapses into a single task
  executed sequentially inside one worker, exactly the paper's
  subtree-to-subcube intuition — independent subtrees are the cheap,
  embarrassingly parallel part, and scheduling them node by node would
  drown in dispatch overhead.  Supernodes above the threshold become
  singleton tasks (the pipelined top of the tree).
* **The task tree** with dependency counts for both directions: a forward
  task is ready when all of its child tasks finished; a backward task is
  ready when its parent task finished.

Plans depend only on the symbolic structure (never on numeric values), so
they are cached per structure by :mod:`repro.exec.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symbolic.etree import NO_PARENT
from repro.symbolic.stree import SupernodalTree
from repro.util.flops import supernode_solve_flops
from repro.util.validation import require

#: Default aggregation grain: subtrees cheaper than this many flops per
#: right-hand side run as one sequential task.  Chosen so that a task's
#: arithmetic comfortably outweighs one ThreadPoolExecutor dispatch.
DEFAULT_GRAIN = 4096


@dataclass(frozen=True, slots=True)
class NodeStep:
    """Structure-only data for one supernode, consumed by the hot loop.

    ``children`` ascend, and the engine always reduces child contributions
    in this order — that (not the thread schedule) is what makes the
    backend bitwise reproducible across worker counts.
    """

    s: int
    col_lo: int
    col_hi: int
    t: int
    n: int
    below: np.ndarray
    children: tuple[int, ...]
    child_scatter: tuple[np.ndarray, ...]


@dataclass(frozen=True, slots=True)
class ExecTask:
    """One schedulable unit: a supernode, or a whole aggregated subtree.

    ``nodes`` ascend, which over a postordered tree is a valid bottom-up
    order inside the task (children precede parents); the backward sweep
    simply walks it reversed.
    """

    index: int
    root: int
    nodes: tuple[int, ...]
    flops1: int


@dataclass(frozen=True)
class ExecPlan:
    """A reusable schedule for one symbolic structure.

    Attributes
    ----------
    steps : per-supernode :class:`NodeStep`, indexed by supernode id.
    tasks : task list, topologically sorted (child tasks first).
    task_parent : parent task index per task (-1 at roots).
    task_children : child task indices per task (ascending).
    task_level : bottom-up level per task (leaf tasks at 0).
    node_level : bottom-up level per *supernode* (from
        :meth:`repro.symbolic.stree.SupernodalTree.bottom_up_levels`).
    grain : the aggregation threshold the plan was built with.
    """

    steps: list[NodeStep]
    tasks: list[ExecTask]
    task_parent: np.ndarray
    task_children: list[list[int]]
    task_level: np.ndarray
    node_level: np.ndarray
    grain: int

    @property
    def ntasks(self) -> int:
        return len(self.tasks)

    @property
    def nlevels(self) -> int:
        return int(self.task_level.max()) + 1 if self.ntasks else 0

    def forward_deps(self) -> tuple[list[int], list[list[int]]]:
        """(dependency counts, dependents) for the leaves-to-roots sweep."""
        ndeps = [len(self.task_children[i]) for i in range(self.ntasks)]
        dependents: list[list[int]] = [
            [] if self.task_parent[i] == -1 else [int(self.task_parent[i])]
            for i in range(self.ntasks)
        ]
        return ndeps, dependents

    def backward_deps(self) -> tuple[list[int], list[list[int]]]:
        """(dependency counts, dependents) for the roots-to-leaves sweep."""
        ndeps = [0 if self.task_parent[i] == -1 else 1 for i in range(self.ntasks)]
        dependents = [list(self.task_children[i]) for i in range(self.ntasks)]
        return ndeps, dependents

    def stats(self) -> dict[str, int]:
        """Summary counters (used by the CLI and the benchmark harness)."""
        singleton = sum(1 for t in self.tasks if len(t.nodes) == 1)
        return {
            "nsuper": len(self.steps),
            "ntasks": self.ntasks,
            "nlevels": self.nlevels,
            "subtree_tasks": self.ntasks - singleton,
            "singleton_tasks": singleton,
            "max_task_nodes": max((len(t.nodes) for t in self.tasks), default=0),
            "grain": self.grain,
        }


def _node_steps(stree: SupernodalTree) -> list[NodeStep]:
    """Precompute scatter indices for every (child -> parent) edge."""
    steps: list[NodeStep] = []
    for s, sn in enumerate(stree.supernodes):
        children = tuple(stree.children[s])
        scatter: list[np.ndarray] = []
        for c in children:
            child_below = stree.supernodes[c].below
            idx = np.searchsorted(sn.rows, child_below)
            contained = idx.size == 0 or (
                int(idx.max()) < sn.rows.shape[0]
                and np.array_equal(sn.rows[idx], child_below)
            )
            require(
                contained,
                f"supernode {c}'s below-rows are not contained in parent {s}'s rows "
                "— broken assembly tree",
            )
            scatter.append(idx)
        steps.append(
            NodeStep(
                s=s,
                col_lo=sn.col_lo,
                col_hi=sn.col_hi,
                t=sn.t,
                n=sn.n,
                below=sn.below,
                children=children,
                child_scatter=tuple(scatter),
            )
        )
    return steps


def build_plan(stree: SupernodalTree, *, grain: int = DEFAULT_GRAIN) -> ExecPlan:
    """Build the level-scheduled task graph for one supernodal tree."""
    require(grain >= 0, f"grain must be >= 0, got {grain!r}")
    ns = stree.nsuper
    steps = _node_steps(stree)
    node_level = stree.bottom_up_levels()

    # Solve flops per RHS of each node and of each whole subtree.
    flops1 = np.array(
        [supernode_solve_flops(sn.n, sn.t, 1) for sn in stree.supernodes], dtype=np.int64
    )
    subtree = flops1.copy()
    for s in range(ns):
        p = int(stree.parent[s])
        if p != NO_PARENT:
            subtree[p] += subtree[s]

    # Task roots: a node joins its parent's task iff the parent's whole
    # subtree is below the grain (then so is its own).  Parents have higher
    # indices, so a descending sweep sees root[p] before root[s].
    root = np.arange(ns, dtype=np.int64)
    for s in range(ns - 1, -1, -1):
        p = int(stree.parent[s])
        if p != NO_PARENT and subtree[p] <= grain:
            root[s] = root[p]

    members: dict[int, list[int]] = {}
    for s in range(ns):
        members.setdefault(int(root[s]), []).append(s)

    tasks: list[ExecTask] = []
    task_of = np.full(ns, -1, dtype=np.int64)
    for ti, r in enumerate(sorted(members)):
        nodes = members[r]  # ascending by construction
        task_of[nodes] = ti
        tasks.append(
            ExecTask(
                index=ti,
                root=r,
                nodes=tuple(nodes),
                flops1=int(flops1[nodes].sum()),
            )
        )

    ntasks = len(tasks)
    task_parent = np.full(ntasks, -1, dtype=np.int64)
    task_children: list[list[int]] = [[] for _ in range(ntasks)]
    for ti, task in enumerate(tasks):
        p = int(stree.parent[task.root])
        if p != NO_PARENT:
            tp = int(task_of[p])
            task_parent[ti] = tp
            task_children[tp].append(ti)

    # Child tasks have smaller roots than their parents, hence smaller
    # indices: an ascending sweep yields bottom-up levels directly.
    task_level = np.zeros(ntasks, dtype=np.int64)
    for ti in range(ntasks):
        if task_children[ti]:
            task_level[ti] = 1 + max(int(task_level[c]) for c in task_children[ti])

    return ExecPlan(
        steps=steps,
        tasks=tasks,
        task_parent=task_parent,
        task_children=task_children,
        task_level=task_level,
        node_level=node_level,
        grain=int(grain),
    )


# --------------------------------------------------------------- level program
@dataclass(frozen=True, slots=True)
class LevelOnes:
    """The vectorized width-1 lane of one level.

    ``nodes`` lists the level's ``t == 1`` supernodes — those with
    below-rows first, then the trivial ones, each part ascending — so the
    level's width-1 tops occupy accumulator rows ``[0, k)`` in this order
    and the first ``k_below`` of them own contiguous below segments.
    """

    nodes: np.ndarray       # (k,) supernode ids
    cols: np.ndarray        # (k,) the single global column of each node
    k_below: int            # how many leading nodes have below-rows
    seg_starts: np.ndarray  # (k_below,) segment starts into the stacked belows
    rep_idx: np.ndarray     # (b,) owner position in [0, k) per below row
    below_rows: np.ndarray  # (b,) global row of each stacked below entry
    contrib_lo: int         # start of the lane's contribution slice (-1 if b == 0)

    @property
    def k(self) -> int:
        return int(self.nodes.size)

    @property
    def b(self) -> int:
        return int(self.below_rows.size)


@dataclass(frozen=True, slots=True)
class LevelGroup:
    """One width bucket (``t > 1``, or the ``t == 0`` placeholders) of a level.

    Arrays are aligned with ``nodes`` (ascending supernode ids): per node
    the column base, its top/below offsets in the level accumulator, its
    below-row count, its contribution-arena offset and its offset into the
    level's backward gather buffer (-1 where a node has no below-rows).
    """

    t: int
    nodes: np.ndarray
    col_lo: np.ndarray
    top_off: np.ndarray
    nb: np.ndarray
    below_off: np.ndarray
    contrib_off: np.ndarray
    gather_off: np.ndarray


@dataclass(frozen=True, slots=True)
class Level:
    """One fully-packed elimination-tree level of a :class:`LevelProgram`.

    The level accumulator is laid out ``[tops | belows]``: width-1 tops at
    rows ``[0, k1)``, group tops following, then all below blocks.
    ``top_src`` gathers the right-hand-side rows of every top in one
    ``np.take``; ``scatter_dst``/``scatter_src`` replay every child
    contribution of the level in (parent ascending, child ascending,
    row ascending) order through one ``np.add.at`` — the plan's
    deterministic reduction order, flattened.  ``gather_rows`` drives the
    backward sweep's single gather of already-solved ancestor entries.
    """

    index: int
    size: int
    top_total: int
    top_src: np.ndarray
    scatter_dst: np.ndarray
    scatter_src: np.ndarray
    gather_rows: np.ndarray
    ones: LevelOnes | None
    groups: tuple[LevelGroup, ...]


@dataclass(frozen=True, slots=True)
class LevelProgram:
    """A flat, vectorized compilation of an :class:`ExecPlan`.

    Per elimination-tree level every supernode panel's position is fixed
    at compile time, so the fused backend executes a level as a handful of
    whole-level array ops instead of per-node Python dispatch.  The
    program depends only on ``plan.steps`` and ``plan.node_level`` — both
    grain-invariant — so one program serves every grain of the structure.

    ``node_top_off``/``node_below_off`` give each supernode's rows inside
    its level's accumulator (-1 where absent); ``contrib_off`` its slice
    of the tree-wide contribution arena.  The ``max_*`` fields size the
    reusable :class:`~repro.exec.arena.FusedWorkspace` buffers.
    """

    levels: tuple[Level, ...]
    node_level: np.ndarray
    node_top_off: np.ndarray
    node_below_off: np.ndarray
    contrib_off: np.ndarray
    contrib_total: int
    n: int
    nsuper: int
    max_acc: int
    max_gather: int
    max_rep: int
    max_top: int
    max_dot: int
    max_wk: int

    @property
    def nlevels(self) -> int:
        return len(self.levels)


def compile_level_program(plan: ExecPlan) -> LevelProgram:
    """Compile *plan* into the flat level program the fused backend runs.

    Layout per level: width-1 nodes form a vectorized lane (tops at rows
    ``[0, k1)``), wider nodes are bucketed by panel width, and every
    child-contribution edge of the plan is flattened into one pair of
    int64 gather/scatter vectors preserving the plan's ascending-child
    reduction order — so the fused execution is bitwise identical to the
    per-node engine.
    """
    steps = plan.steps
    ns = len(steps)
    node_level = plan.node_level
    nlev = int(node_level.max()) + 1 if ns else 0
    n = max((st.col_hi for st in steps), default=0)

    node_top_off = np.full(ns, -1, dtype=np.int64)
    node_below_off = np.full(ns, -1, dtype=np.int64)
    contrib_off = np.full(ns, -1, dtype=np.int64)

    by_level: list[list[int]] = [[] for _ in range(nlev)]
    for s in range(ns):
        by_level[int(node_level[s])].append(s)  # ascending per level

    levels: list[Level] = []
    ccur = 0
    max_acc = max_gather = max_rep = max_top = max_dot = max_wk = 0

    for li in range(nlev):
        nodes = by_level[li]
        ones_wb = [s for s in nodes if steps[s].t == 1 and steps[s].n > 1]
        ones_nb0 = [s for s in nodes if steps[s].t == 1 and steps[s].n == 1]
        ones_order = ones_wb + ones_nb0
        widths = sorted({steps[s].t for s in nodes if steps[s].t > 1})
        buckets = [(t, [s for s in nodes if steps[s].t == t]) for t in widths]
        zero_nodes = [s for s in nodes if steps[s].t == 0]

        # --- accumulator layout: tops first (width-1 lane, then buckets) ---
        pos = 0
        for s in ones_order:
            node_top_off[s] = pos
            pos += 1
        k1 = pos
        for t, bnodes in buckets:
            for s in bnodes:
                node_top_off[s] = pos
                pos += t
        top_total = pos

        # --- then belows, in the same node order (t==0 placeholders last) ---
        seg_counts = []
        for s in ones_wb:
            node_below_off[s] = pos
            pos += steps[s].n - 1
            seg_counts.append(steps[s].n - 1)
        b1 = pos - top_total
        for t, bnodes in buckets:
            for s in bnodes:
                nb = steps[s].n - t
                if nb:
                    node_below_off[s] = pos
                    pos += nb
        for s in zero_nodes:
            if steps[s].n:
                node_below_off[s] = pos
                pos += steps[s].n
        size = pos

        # --- contribution arena slices, same order as the below layout ---
        ones_contrib_lo = ccur if b1 else -1
        for s in ones_wb:
            contrib_off[s] = ccur
            ccur += steps[s].n - 1
        group_tuples: list[LevelGroup] = []
        gpos = b1  # backward gather: width-1 belows first, then buckets
        for t, bnodes in buckets:
            g_top, g_nb, g_bel, g_con, g_gat = [], [], [], [], []
            for s in bnodes:
                nb = steps[s].n - t
                g_top.append(node_top_off[s])
                g_nb.append(nb)
                g_bel.append(node_below_off[s] if nb else -1)
                if nb:
                    contrib_off[s] = ccur
                    g_con.append(ccur)
                    ccur += nb
                    g_gat.append(gpos)
                    gpos += nb
                else:
                    g_con.append(-1)
                    g_gat.append(-1)
                max_wk = max(max_wk, nb, t)
            group_tuples.append(LevelGroup(
                t=t,
                nodes=np.array(bnodes, dtype=np.int64),
                col_lo=np.array([steps[s].col_lo for s in bnodes], dtype=np.int64),
                top_off=np.array(g_top, dtype=np.int64),
                nb=np.array(g_nb, dtype=np.int64),
                below_off=np.array(g_bel, dtype=np.int64),
                contrib_off=np.array(g_con, dtype=np.int64),
                gather_off=np.array(g_gat, dtype=np.int64),
            ))
        if zero_nodes:
            z_nb, z_bel, z_con = [], [], []
            for s in zero_nodes:
                nb = steps[s].n
                z_nb.append(nb)
                z_bel.append(node_below_off[s] if nb else -1)
                if nb:
                    contrib_off[s] = ccur
                    z_con.append(ccur)
                    ccur += nb
                else:
                    z_con.append(-1)
            group_tuples.append(LevelGroup(
                t=0,
                nodes=np.array(zero_nodes, dtype=np.int64),
                col_lo=np.array([steps[s].col_lo for s in zero_nodes], dtype=np.int64),
                top_off=np.full(len(zero_nodes), -1, dtype=np.int64),
                nb=np.array(z_nb, dtype=np.int64),
                below_off=np.array(z_bel, dtype=np.int64),
                contrib_off=np.array(z_con, dtype=np.int64),
                gather_off=np.full(len(zero_nodes), -1, dtype=np.int64),
            ))

        # --- one gather feeding every top of the level ---
        src_cols = [np.array([steps[s].col_lo for s in ones_order], dtype=np.int64)]
        for t, bnodes in buckets:
            src_cols.extend(
                np.arange(steps[s].col_lo, steps[s].col_hi, dtype=np.int64)
                for s in bnodes
            )
        top_src = (np.concatenate(src_cols) if top_total
                   else np.empty(0, dtype=np.int64))

        # --- flatten the level's child-contribution edges ---
        dst_parts, src_parts = [], []
        for s in nodes:  # parents ascending; children ascend within each
            st = steps[s]
            for c, idx in zip(st.children, st.child_scatter):
                nbc = steps[c].n - steps[c].t
                if not nbc:
                    continue
                idx64 = idx.astype(np.int64)
                dst_parts.append(np.where(
                    idx64 < st.t,
                    node_top_off[s] + idx64,
                    node_below_off[s] + idx64 - st.t,
                ))
                src_parts.append(contrib_off[c] + np.arange(nbc, dtype=np.int64))
        scatter_dst = (np.concatenate(dst_parts) if dst_parts
                       else np.empty(0, dtype=np.int64))
        scatter_src = (np.concatenate(src_parts) if src_parts
                       else np.empty(0, dtype=np.int64))

        # --- backward gather rows: width-1 belows, then bucket belows ---
        gat_parts = [steps[s].below.astype(np.int64) for s in ones_wb]
        for t, bnodes in buckets:
            gat_parts.extend(
                steps[s].below.astype(np.int64) for s in bnodes if steps[s].n > t
            )
        gather_rows = (np.concatenate(gat_parts) if gat_parts
                       else np.empty(0, dtype=np.int64))

        ones = None
        if ones_order:
            counts = np.array(seg_counts, dtype=np.int64)
            ones = LevelOnes(
                nodes=np.array(ones_order, dtype=np.int64),
                cols=np.array([steps[s].col_lo for s in ones_order], dtype=np.int64),
                k_below=len(ones_wb),
                seg_starts=(np.concatenate(([0], np.cumsum(counts)[:-1]))
                            if len(ones_wb) else np.empty(0, dtype=np.int64)
                            ).astype(np.intp),
                rep_idx=np.repeat(np.arange(len(ones_wb), dtype=np.int64), counts),
                below_rows=(np.concatenate(
                    [steps[s].below.astype(np.int64) for s in ones_wb])
                    if ones_wb else np.empty(0, dtype=np.int64)),
                contrib_lo=ones_contrib_lo,
            )
            max_rep = max(max_rep, b1)
            max_dot = max(max_dot, len(ones_wb))

        levels.append(Level(
            index=li,
            size=size,
            top_total=top_total,
            top_src=top_src,
            scatter_dst=scatter_dst,
            scatter_src=scatter_src,
            gather_rows=gather_rows,
            ones=ones,
            groups=tuple(group_tuples),
        ))
        max_acc = max(max_acc, size)
        max_gather = max(max_gather, int(scatter_src.size), int(gather_rows.size))
        max_top = max(max_top, k1, *(t for t, _ in buckets), 0)

    return LevelProgram(
        levels=tuple(levels),
        node_level=node_level,
        node_top_off=node_top_off,
        node_below_off=node_below_off,
        contrib_off=contrib_off,
        contrib_total=ccur,
        n=n,
        nsuper=ns,
        max_acc=max_acc,
        max_gather=max_gather,
        max_rep=max_rep,
        max_top=max_top,
        max_dot=max_dot,
        max_wk=max_wk,
    )


def check_plan(plan: ExecPlan, stree: SupernodalTree) -> None:
    """Structural self-check: partition, topology, level consistency.

    Used by tests and by callers that construct plans manually; raises
    :class:`ValueError` on the first violated invariant.
    """
    seen: list[int] = []
    for task in plan.tasks:
        require(list(task.nodes) == sorted(task.nodes), "task nodes must ascend")
        seen.extend(task.nodes)
    require(sorted(seen) == list(range(stree.nsuper)),
            "tasks must partition the supernodes")
    for ti, task in enumerate(plan.tasks):
        tp = int(plan.task_parent[ti])
        if tp != -1:
            require(tp > ti, "parent tasks must follow their children")
            require(int(plan.task_level[ti]) < int(plan.task_level[tp]),
                    "task levels must strictly increase towards the roots")
