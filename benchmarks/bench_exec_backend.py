"""Measured-performance harness for the real execution backends.

Times forward+backward triangular solves over generated 2-D/3-D grid
problems for NRHS in {1, 4, 16} on four backends:

* ``serial``  — the reference supernodal solvers in ``repro.numeric.trisolve``;
* ``threads`` — the level-scheduled shared-memory engine in ``repro.exec``,
  at each requested worker count (plan cache warmed first, as in steady
  state); worker counts that oversubscribe the machine are skipped and
  recorded in ``meta.skipped_workers``;
* ``fused``   — the vectorized level program of ``repro.exec.fused``
  (whole elimination-tree levels batched into flat array ops);
* ``scipy``   — ``scipy.sparse.linalg.spsolve_triangular`` on the scattered
  CSR factor, as an external baseline.

Every backend's solution is cross-checked against the serial one before
its timing is accepted — and the repo's own backends (``threads``,
``fused``) must match *bitwise*, not just to tolerance — so a
fast-but-wrong backend can never produce a flattering number.  Each
record carries per-phase seconds (plan build, factor preparation /
program compile, forward sweep, backward sweep) next to the end-to-end
solve time.  Results are written machine-readable to
``BENCH_exec.json`` at the repo root — the repo's perf trajectory; CI
runs ``--quick --guard`` and uploads the file as an artifact.

Run::

    PYTHONPATH=src python benchmarks/bench_exec_backend.py \
        [--quick] [--guard] [--out PATH]

(The script falls back to inserting ``src/`` on ``sys.path`` itself, and
pins BLAS to one thread so backend comparisons measure scheduling, not
BLAS-internal parallelism.)
"""

# BLAS must be pinned before numpy loads: the comparison is between task
# schedules, not between BLAS thread pools.
import os

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
if "repro" not in sys.modules:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))

import numpy as np

SCHEMA = "repro-bench-exec/2"
REQUIRED_KEYS = {"backend", "n", "nrhs", "workers", "seconds", "mflops", "phases"}
PHASE_KEYS = {"plan", "prepare", "forward", "backward"}
BACKENDS = ("serial", "threads", "fused", "scipy")
#: Backends whose results must be *bitwise* equal to the serial reference.
BITWISE_BACKENDS = {"threads", "fused"}
DEFAULT_OUT = ROOT / "BENCH_exec.json"

#: --guard fails when fused exceeds this multiple of serial on grid3d
#: at NRHS=1 — a coarse regression tripwire, not a performance target.
GUARD_RATIO = 1.5

FULL_PROBLEMS = [("grid2d", 32), ("grid2d", 48), ("grid3d", 8), ("grid3d", 10)]
QUICK_PROBLEMS = [("grid2d", 16), ("grid3d", 5)]
NRHS_LIST = (1, 4, 16)


def _best_of(fn, repeats: int) -> float:
    """Min wall-clock over *repeats* calls, after one untimed warm-up."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _build_problem(kind: str, size: int):
    from repro.numeric.supernodal import cholesky_supernodal
    from repro.sparse.generators import grid2d_laplacian, grid3d_laplacian
    from repro.symbolic.analyze import analyze

    a = grid2d_laplacian(size) if kind == "grid2d" else grid3d_laplacian(size)
    sym = analyze(a)
    factor = cholesky_supernodal(sym)
    return a, sym, factor


def bench_problem(kind: str, size: int, *, workers_list, repeats: int, tol: float = 1e-9):
    """All backend timings for one problem; yields result records."""
    from repro.exec import (
        backward_exec,
        backward_fused,
        clear_exec_caches,
        forward_exec,
        forward_fused,
        fused_panels_for,
        plan_for,
        prepare_factor,
        program_for,
        solve_exec,
        solve_fused,
    )
    from repro.numeric.trisolve import backward_supernodal, forward_supernodal
    from scipy.sparse.linalg import spsolve_triangular

    a, sym, factor = _build_problem(kind, size)
    clear_exec_caches()
    # One-time per-structure costs, measured cold (the caches amortize
    # them across every subsequent solve — that is the point of the
    # per-phase breakdown).
    t0 = time.perf_counter()
    plan = plan_for(sym.stree)
    t_plan = time.perf_counter() - t0
    t0 = time.perf_counter()
    prepare_factor(factor)
    t_prepare = time.perf_counter() - t0
    t0 = time.perf_counter()
    program = program_for(sym.stree)
    fused_panels_for(factor)
    t_compile = time.perf_counter() - t0
    lower = factor.to_lower_csc(sym.l_indptr, sym.l_indices).to_scipy().tocsr()
    upper = lower.T.tocsr()
    label = f"{kind}({size})"
    stats = plan.stats()

    for nrhs in NRHS_LIST:
        rng = np.random.default_rng(2026)
        b = rng.normal(size=(a.n, nrhs))
        x_ref = backward_supernodal(factor, forward_supernodal(factor, b))
        flops = 2 * sym.stree.solve_flops(nrhs)

        def record(backend: str, workers: int, seconds: float, x: np.ndarray,
                   phases: dict) -> dict:
            err = float(np.max(np.abs(x - x_ref)))
            if backend in BITWISE_BACKENDS:
                if not np.array_equal(x, x_ref):
                    raise AssertionError(
                        f"{label} nrhs={nrhs}: backend {backend} is not bitwise "
                        f"identical to the serial reference (max dev {err:.2e}) "
                        "— refusing to record its timing"
                    )
            elif err > tol:
                raise AssertionError(
                    f"{label} nrhs={nrhs}: backend {backend} deviates from the "
                    f"serial reference by {err:.2e} — refusing to record its timing"
                )
            return {
                "matrix": label,
                "backend": backend,
                "n": int(a.n),
                "nrhs": int(nrhs),
                "workers": int(workers),
                "seconds": float(seconds),
                "mflops": float(flops / seconds / 1e6) if seconds > 0 else 0.0,
                "ntasks": int(stats["ntasks"]),
                "nlevels": int(stats["nlevels"]),
                "phases": {k: float(v) for k, v in phases.items()},
            }

        y_ref = forward_supernodal(factor, b)
        yield record(
            "serial",
            1,
            _best_of(lambda: backward_supernodal(factor, forward_supernodal(factor, b)),
                     repeats),
            x_ref,
            {
                "plan": 0.0,
                "prepare": 0.0,
                "forward": _best_of(lambda: forward_supernodal(factor, b), repeats),
                "backward": _best_of(lambda: backward_supernodal(factor, y_ref),
                                     repeats),
            },
        )
        for w in workers_list:
            yield record(
                "threads",
                w,
                _best_of(lambda: solve_exec(factor, b, workers=w, plan=plan), repeats),
                solve_exec(factor, b, workers=w, plan=plan),
                {
                    "plan": t_plan,
                    "prepare": t_prepare,
                    "forward": _best_of(
                        lambda: forward_exec(factor, b, workers=w, plan=plan), repeats
                    ),
                    "backward": _best_of(
                        lambda: backward_exec(factor, y_ref, workers=w, plan=plan),
                        repeats,
                    ),
                },
            )
        yield record(
            "fused",
            1,
            _best_of(lambda: solve_fused(factor, b, program=program), repeats),
            solve_fused(factor, b, program=program),
            {
                "plan": t_plan,
                "prepare": t_compile,
                "forward": _best_of(
                    lambda: forward_fused(factor, b, program=program), repeats
                ),
                "backward": _best_of(
                    lambda: backward_fused(factor, y_ref, program=program), repeats
                ),
            },
        )
        yield record(
            "scipy",
            1,
            _best_of(
                lambda: spsolve_triangular(
                    upper, spsolve_triangular(lower, b, lower=True), lower=False
                ),
                repeats,
            ),
            spsolve_triangular(upper, spsolve_triangular(lower, b, lower=True), lower=False),
            {
                "plan": 0.0,
                "prepare": 0.0,
                "forward": _best_of(
                    lambda: spsolve_triangular(lower, b, lower=True), repeats
                ),
                "backward": _best_of(
                    lambda: spsolve_triangular(upper, y_ref, lower=False), repeats
                ),
            },
        )


def validate_payload(payload: dict) -> list[str]:
    """Schema check for BENCH_exec.json; returns a list of problems."""
    errors: list[str] = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {payload.get('schema')!r}")
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        return errors + ["results must be a non-empty list"]
    for i, rec in enumerate(results):
        missing = REQUIRED_KEYS - set(rec)
        if missing:
            errors.append(f"results[{i}] missing keys {sorted(missing)}")
            continue
        if rec["backend"] not in BACKENDS:
            errors.append(f"results[{i}] unknown backend {rec['backend']!r}")
        for key in ("n", "nrhs", "workers"):
            if not isinstance(rec[key], int) or rec[key] < 1:
                errors.append(f"results[{i}].{key} must be a positive int")
        for key in ("seconds", "mflops"):
            if not isinstance(rec[key], (int, float)) or rec[key] <= 0:
                errors.append(f"results[{i}].{key} must be a positive number")
        phases = rec["phases"]
        if not isinstance(phases, dict) or set(phases) != PHASE_KEYS:
            errors.append(
                f"results[{i}].phases must map exactly {sorted(PHASE_KEYS)}"
            )
            continue
        for key, val in phases.items():
            if not isinstance(val, (int, float)) or val < 0:
                errors.append(
                    f"results[{i}].phases.{key} must be a non-negative number"
                )
    return errors


def render_table(results: list[dict]) -> str:
    lines = [
        f"{'matrix':<12} {'nrhs':>4} {'backend':<8} {'workers':>7} "
        f"{'ms':>10} {'MFLOPS':>9} {'fwd ms':>9} {'bwd ms':>9}"
    ]
    for rec in results:
        ph = rec["phases"]
        lines.append(
            f"{rec['matrix']:<12} {rec['nrhs']:>4} {rec['backend']:<8} "
            f"{rec['workers']:>7} {rec['seconds'] * 1e3:>10.3f} {rec['mflops']:>9.1f} "
            f"{ph['forward'] * 1e3:>9.3f} {ph['backward'] * 1e3:>9.3f}"
        )
    return "\n".join(lines)


def summarize_speedups(results: list[dict]) -> str:
    """Per (matrix, nrhs): best threads vs serial, and fused vs serial."""
    serial = {(r["matrix"], r["nrhs"]): r["seconds"]
              for r in results if r["backend"] == "serial"}
    lines = []
    best: dict[tuple, dict] = {}
    for r in results:
        if r["backend"] != "threads":
            continue
        key = (r["matrix"], r["nrhs"])
        if key not in best or r["seconds"] < best[key]["seconds"]:
            best[key] = r
    for (matrix, nrhs), r in sorted(best.items()):
        speedup = serial[(matrix, nrhs)] / r["seconds"]
        lines.append(
            f"{matrix:<12} nrhs={nrhs:<3} threads(w={r['workers']}) vs serial: "
            f"{speedup:5.2f}x"
        )
    for r in sorted(
        (r for r in results if r["backend"] == "fused"),
        key=lambda r: (r["matrix"], r["nrhs"]),
    ):
        speedup = serial[(r["matrix"], r["nrhs"])] / r["seconds"]
        lines.append(
            f"{r['matrix']:<12} nrhs={r['nrhs']:<3} fused vs serial:        "
            f"{speedup:5.2f}x"
        )
    return "\n".join(lines)


def check_guard(results: list[dict]) -> list[str]:
    """The CI regression tripwire: fused must not lag serial on grid3d.

    Returns violation messages for every grid3d problem at NRHS=1 where
    the fused solve exceeds ``GUARD_RATIO`` x the serial solve.
    """
    serial = {(r["matrix"], r["nrhs"]): r["seconds"]
              for r in results if r["backend"] == "serial"}
    violations: list[str] = []
    for r in results:
        if r["backend"] != "fused" or r["nrhs"] != 1:
            continue
        if not r["matrix"].startswith("grid3d"):
            continue
        limit = GUARD_RATIO * serial[(r["matrix"], r["nrhs"])]
        if r["seconds"] > limit:
            violations.append(
                f"{r['matrix']} nrhs=1: fused took {r['seconds'] * 1e3:.3f} ms, "
                f"over the guard of {GUARD_RATIO}x serial "
                f"({limit * 1e3:.3f} ms) — the fused backend regressed"
            )
    return violations


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small problems, fewer repeats (CI smoke)")
    parser.add_argument("--guard", action="store_true",
                        help=f"fail if fused exceeds {GUARD_RATIO}x serial on "
                             "grid3d at NRHS=1 (CI regression tripwire)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--workers", type=int, nargs="+", default=None,
                        help="thread counts to benchmark (default: 1, 2 and "
                             "the machine default from "
                             "repro.exec.default_workers(); quick: 2)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per configuration (best-of)")
    args = parser.parse_args(argv)

    # The engine's own default-worker policy is the benchmark's ceiling,
    # so the three call sites (engine, CLI, harness) cannot drift.
    from repro.exec import default_workers

    cap = default_workers()
    ncpu = os.cpu_count() or 1
    problems = QUICK_PROBLEMS if args.quick else FULL_PROBLEMS
    requested = args.workers or (
        [min(2, cap)] if args.quick else sorted({1, min(2, cap), min(4, cap), cap})
    )
    # Oversubscribed worker counts measure scheduler thrash, not the
    # engine; skip them rather than publish misleading numbers.
    skipped = sorted({w for w in requested if w > ncpu})
    workers_list = [w for w in requested if w <= ncpu]
    for w in skipped:
        print(f"skipping workers={w}: oversubscribes the {ncpu}-core machine",
              file=sys.stderr)
    if not workers_list:
        workers_list = [1]
    repeats = args.repeats or (2 if args.quick else 5)

    results: list[dict] = []
    for kind, size in problems:
        t0 = time.perf_counter()
        for rec in bench_problem(kind, size, workers_list=workers_list, repeats=repeats):
            results.append(rec)
        print(f"{kind}({size}) done in {time.perf_counter() - t0:.1f}s", file=sys.stderr)

    payload = {
        "schema": SCHEMA,
        "meta": {
            "quick": bool(args.quick),
            "repeats": repeats,
            "cpu_count": ncpu,
            "default_workers": cap,
            "skipped_workers": skipped,
            "blas_threads": os.environ.get("OPENBLAS_NUM_THREADS"),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "results": results,
    }
    errors = validate_payload(payload)
    if errors:
        for e in errors:
            print(f"schema error: {e}", file=sys.stderr)
        return 1

    args.out.write_text(json.dumps(payload, indent=1) + "\n")
    print(render_table(results))
    print()
    print(summarize_speedups(results))
    print(f"\nwrote {args.out}")
    if args.guard:
        violations = check_guard(results)
        for v in violations:
            print(f"guard violation: {v}", file=sys.stderr)
        if violations:
            return 1
        print(f"guard: fused within {GUARD_RATIO}x of serial on grid3d")
    return 0


if __name__ == "__main__":
    sys.exit(run())
