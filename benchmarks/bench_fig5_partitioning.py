"""Figure 5, measured: 1-D vs 2-D partitioning for the triangular solve.

The table marks the 2-D-partitioned solve "Unscalable" and is the reason
Section 4 redistributes the factor.  Both variants run here on the same
factor, same machine, same right-hand side; only the layout (and hence
the communication pattern) differs.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.core.forward import parallel_forward
from repro.core.forward_2d import parallel_forward_2d
from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse.generators import fe_mesh_2d

PS = (1, 4, 16, 64, 256)


def test_one_d_vs_two_d_solve(benchmark, out_dir):
    def run():
        a = fe_mesh_2d(40, seed=55)
        base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        rng = np.random.default_rng(0)
        bp = base.symbolic.perm.apply_to_vector(rng.normal(size=(a.n, 1)))
        rows = []
        for p in PS:
            assign = subtree_to_subcube(base.symbolic.stree, p)
            _, s1 = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=p)
            _, s2 = parallel_forward_2d(base.factor, assign, cray_t3d(), bp, nproc=p)
            rows.append((p, s1.makespan, s2.makespan, s1.comm_volume_words, s2.comm_volume_words))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "forward solve, N=1600 2-D FE mesh  [paper Fig.5: 1-D scalable, 2-D unscalable]",
        f"{'p':>5} {'1-D (ms)':>10} {'2-D (ms)':>10} {'2-D/1-D':>8} {'words 1-D':>10} {'words 2-D':>10}",
    ]
    for p, t1, t2, w1, w2 in rows:
        lines.append(
            f"{p:>5} {t1 * 1e3:>10.3f} {t2 * 1e3:>10.3f} {t2 / t1:>8.2f} {w1:>10.0f} {w2:>10.0f}"
        )
    write_artifact(out_dir, "fig5_partitioning", "\n".join(lines))

    by_p = {r[0]: r for r in rows}
    # identical work at p=1
    assert by_p[1][1] == pytest.approx(by_p[1][2], rel=0.05)
    # at scale, 1-D wins and the gap widens with p.  Note: under this
    # asynchronous dataflow simulator the 2-D penalty is percent-scale,
    # far milder than on 1995 lockstep-collective implementations; the
    # paper's qualitative ordering still holds (see EXPERIMENTS.md).
    assert by_p[64][1] < by_p[64][2]
    assert by_p[256][2] / by_p[256][1] > by_p[4][2] / by_p[4][1]
    # the 2-D variant moves more data at scale
    assert by_p[64][4] > by_p[64][3]
