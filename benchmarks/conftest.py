"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures on the
simulated Cray-T3D and writes the rendered artefact to
``benchmarks/out/<name>.txt`` (in addition to pytest-benchmark's timing
stats, which measure the harness itself).  Run with::

    pytest benchmarks/ --benchmark-only

See EXPERIMENTS.md for the paper-vs-measured comparison of each artefact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(out_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to the terminal."""
    path = out_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
