"""Calibration anchors: single-PE rates against the paper's T3D numbers.

The simulated machine is only as meaningful as its calibration.  This
bench pins the anchors stated in EXPERIMENTS.md:

* FBsolve at NRHS=1 lands in the 5-9 MFLOPS band (paper: 6.6);
* FBsolve at NRHS=30 lands in the 25-50 band (paper: ~30);
* serial factorization lands in the 25-45 band (paper: 34.5);
* the parallel factorization simulation agrees with the closed-form
  model within 3x across p.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.core.factor_model import parallel_factor_time
from repro.core.parallel_factor import simulated_factor_time
from repro.experiments.matrices import prepared
from repro.machine.presets import cray_t3d
from repro.mapping.subtree_subcube import subtree_to_subcube


def test_single_pe_anchors(benchmark, out_dir):
    def run():
        rows = []
        for name in ("bcsstk15", "cube35"):
            solver = prepared(name, 1)
            rng = np.random.default_rng(0)
            b = rng.normal(size=(solver.a.n, 30))
            _, r1 = solver.solve(b[:, :1], check=False)
            _, r30 = solver.solve(b, check=False)
            rows.append((name, r1.fbsolve_mflops, r30.fbsolve_mflops, r1.factor_mflops))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["matrix      solve MF(1)  solve MF(30)  factor MF   [paper: 6.6 / ~30 / 34.5]"]
    for name, m1, m30, mf in rows:
        lines.append(f"{name:<12} {m1:10.1f} {m30:12.1f} {mf:10.1f}")
    write_artifact(out_dir, "calibration_anchors", "\n".join(lines))
    for name, m1, m30, mf in rows:
        assert 4.0 < m1 < 10.0, f"{name} NRHS=1 anchor drifted: {m1}"
        assert 25.0 < m30 < 55.0, f"{name} NRHS=30 anchor drifted: {m30}"
        assert 20.0 < mf < 45.0, f"{name} factorization anchor drifted: {mf}"


def test_factor_simulation_vs_model(benchmark, out_dir):
    def run():
        solver = prepared("bcsstk15", 1)
        stree = solver.symbolic.stree
        spec = cray_t3d()
        rows = []
        for p in (4, 16, 64):
            assign = subtree_to_subcube(stree, p)
            tsim, _ = simulated_factor_time(spec, stree, assign, nproc=p)
            tmod = parallel_factor_time(spec, stree, assign)
            rows.append((p, tsim, tmod))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["p     simulated(ms)  model(ms)   ratio"]
    for p, tsim, tmod in rows:
        lines.append(f"{p:<5d} {tsim * 1e3:12.2f} {tmod * 1e3:10.2f} {tsim / tmod:7.2f}")
    write_artifact(out_dir, "calibration_factor_model", "\n".join(lines))
    for p, tsim, tmod in rows:
        assert 1 / 3 < tsim / tmod < 3.0
