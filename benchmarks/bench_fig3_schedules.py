"""Figure 3 + Figure 4: the pipelined supernode schedules.

Regenerates the time-step diagrams for the hypothetical n = 2t supernode:
(a) EREW-PRAM with unlimited processors, (b) row-priority and
(c) column-priority pipelined variants on 4 processors, plus the Figure 4
backward schedule.  The rendered matrices correspond one-to-one with the
numbers printed in the paper's figures (unit block costs, no comm delay).
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.core.schedules import (
    pipelined_backward_schedule,
    pipelined_forward_schedule,
    pram_forward_schedule,
)

NB, TB, Q = 8, 4, 4


def _render(step: np.ndarray, title: str) -> str:
    lines = [title]
    for i in range(step.shape[0]):
        cells = []
        for j in range(step.shape[1]):
            cells.append(f"{int(step[i, j]):3d}" if step[i, j] else "  .")
        owner = f"  <- P{i % Q}"
        lines.append(" ".join(cells) + owner)
    return "\n".join(lines)


def test_fig3a_pram_schedule(benchmark, out_dir):
    step = benchmark(pram_forward_schedule, NB, TB)
    write_artifact(out_dir, "fig3a_pram", _render(step, "Figure 3(a): EREW-PRAM forward elimination"))
    # the wavefront property the paper highlights
    assert int(step.max()) == NB + TB - 1


def test_fig3b_row_priority(benchmark, out_dir):
    step = benchmark(pipelined_forward_schedule, NB, TB, Q, priority="row")
    write_artifact(
        out_dir, "fig3b_row_priority", _render(step, "Figure 3(b): row-priority pipelined, q=4")
    )
    assert step[step > 0].min() == 1


def test_fig3c_column_priority(benchmark, out_dir):
    step = benchmark(pipelined_forward_schedule, NB, TB, Q, priority="column")
    write_artifact(
        out_dir,
        "fig3c_column_priority",
        _render(step, "Figure 3(c): column-priority pipelined, q=4"),
    )
    # column-priority: diagonal solves strictly ordered
    diag = [int(step[j, j]) for j in range(TB)]
    assert diag == sorted(diag)


def test_fig4_backward(benchmark, out_dir):
    step = benchmark(pipelined_backward_schedule, NB, TB, Q)
    write_artifact(
        out_dir,
        "fig4_backward",
        _render(step, "Figure 4: column-priority pipelined backward substitution, q=4"),
    )
    diag = [int(step[j, j]) for j in range(TB)]
    assert diag == sorted(diag, reverse=True)
