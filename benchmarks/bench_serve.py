"""Measured-throughput harness for the request-coalescing solve service.

Serves ``--requests`` independent single-RHS solve requests through a
:class:`repro.serve.SolveService` at a range of offered loads (how many
requests are outstanding at once), coalescer widths (``max_batch``) and
execution backends, and records amortised columns/second for each
configuration next to the *uncoalesced* baseline — the same requests
submitted serially, one at a time, each solved at width 1.  The ratio
between the two is the serving layer's whole reason to exist: the
paper's Figures 7–8 argue that widening NRHS turns vector ops into
matrix ops, and this harness measures how much of that win online
coalescing recovers for a stream of width-1 requests.

Methodology: every run drives the service in deterministic manual-pump
mode (fake clock, ``max_wait=0`` so a pump flushes ``min(pending,
max_batch)`` columns) — batch composition is a pure function of the
configuration, so the numbers measure coalescing economics, not thread
scheduling jitter.  The submit-and-pump loop keeps ``load`` requests
outstanding, exactly like ``load`` concurrent clients that re-issue on
completion.

Before any timing is accepted, every response of a warm-up pass is
checked **bitwise** against the standalone width-1 solve of the same
right-hand side (``np.array_equal``) — coalescing must be observably
transparent, so a fast-but-wrong batcher can never produce a flattering
number.

Results go to ``BENCH_serve.json`` (schema ``repro-bench-serve/1``) at
the repo root; CI runs ``--quick --check`` and uploads the file.
``--check`` enforces the acceptance bar: coalesced throughput at least
``CHECK_RATIO`` x the uncoalesced baseline on grid3d at offered load
>= 16.

Run::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--check] \
        [--out PATH]
"""

# BLAS must be pinned before numpy loads, as in bench_exec_backend: the
# comparison is between batching policies, not BLAS thread pools.
import os

for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
if "repro" not in sys.modules:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))

import numpy as np

SCHEMA = "repro-bench-serve/1"
REQUIRED_KEYS = {
    "matrix", "backend", "max_batch", "load", "requests", "columns",
    "seconds", "cols_per_sec", "mean_batch_width", "n_batches", "coalesced",
}
BACKENDS = ("serial", "threads", "fused")
DEFAULT_OUT = ROOT / "BENCH_serve.json"

#: --check fails unless coalesced throughput reaches this multiple of the
#: uncoalesced serial-submission baseline on grid3d at load >= 16.
CHECK_RATIO = 2.0
CHECK_LOAD = 16

FULL_PROBLEMS = [("grid2d", 32), ("grid3d", 8)]
QUICK_PROBLEMS = [("grid3d", 5)]
FULL_BATCHES = (4, 16, 32)
QUICK_BATCHES = (8,)
FULL_LOADS = (1, 4, 16, 64)
QUICK_LOADS = (1, 16)


def _build_problem(kind: str, size: int):
    from repro.numeric.supernodal import cholesky_supernodal
    from repro.sparse.generators import grid2d_laplacian, grid3d_laplacian
    from repro.symbolic.analyze import analyze

    a = grid2d_laplacian(size) if kind == "grid2d" else grid3d_laplacian(size)
    sym = analyze(a)
    return a, sym, cholesky_supernodal(sym)


def _make_service(factor, backend: str, max_batch: int, nreq: int):
    from repro.serve import FakeClock, SolveService

    service = SolveService(
        backend=backend,
        max_batch=max_batch,
        max_wait=0.0,       # every pending request is always due: a pump
        idle_wait=None,     # flushes min(pending, max_batch) columns
        max_queue=max(nreq, max_batch),
        clock=FakeClock(),
    )
    service.register("m", factor)
    return service


def _serve_all(service, rhs_list, load: int) -> list[np.ndarray]:
    """Serve every RHS keeping *load* requests outstanding; returns results."""
    futures = [None] * len(rhs_list)
    nxt = 0
    outstanding = []
    while nxt < len(rhs_list) or outstanding:
        while nxt < len(rhs_list) and len(outstanding) < load:
            futures[nxt] = service.submit(rhs_list[nxt], key="m")
            outstanding.append(futures[nxt])
            nxt += 1
        service.pump()
        outstanding = [f for f in outstanding if not f.done()]
    return [f.result() for f in futures]


def bench_problem(kind: str, size: int, *, backends, batches, loads,
                  nreq: int, repeats: int):
    """All serve timings for one problem; yields result records."""
    from repro.exec import clear_exec_caches, solve_fused

    a, sym, factor = _build_problem(kind, size)
    clear_exec_caches()
    label = f"{kind}({size})"
    rng = np.random.default_rng(2026)
    rhs_list = [rng.normal(size=a.n) for _ in range(nreq)]
    # The transparency references: standalone width-1 solves.
    refs = [solve_fused(factor, b) for b in rhs_list]

    def run(backend: str, max_batch: int, load: int) -> dict:
        # Warm-up pass doubles as the bitwise-transparency enforcement.
        service = _make_service(factor, backend, max_batch, nreq)
        try:
            results = _serve_all(service, rhs_list, load)
            for i, (got, ref) in enumerate(zip(results, refs)):
                if not np.array_equal(got, ref):
                    raise AssertionError(
                        f"{label} backend={backend} max_batch={max_batch} "
                        f"load={load}: request {i} is not bitwise identical "
                        "to its standalone width-1 solve — refusing to "
                        "record a timing for a non-transparent coalescer"
                    )
        finally:
            service.close()

        best = float("inf")
        report = None
        for _ in range(repeats):
            service = _make_service(factor, backend, max_batch, nreq)
            try:
                t0 = time.perf_counter()
                _serve_all(service, rhs_list, load)
                best = min(best, time.perf_counter() - t0)
                report = service.report()
            finally:
                service.close()
        return {
            "matrix": label,
            "backend": backend,
            "max_batch": int(max_batch),
            "load": int(load),
            "requests": int(nreq),
            "columns": int(report.total_columns),
            "seconds": float(best),
            "cols_per_sec": float(nreq / best),
            "mean_batch_width": float(report.mean_batch_width),
            "n_batches": int(report.nbatches),
            "coalesced": bool(max_batch > 1),
        }

    for backend in backends:
        # The uncoalesced serial-submission baseline: one request at a
        # time, each solved at width 1 through the identical service path.
        yield run(backend, 1, 1)
        for max_batch in batches:
            for load in loads:
                yield run(backend, max_batch, load)


def validate_payload(payload: dict) -> list[str]:
    """Schema check for BENCH_serve.json; returns a list of problems."""
    errors: list[str] = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {payload.get('schema')!r}")
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        return errors + ["results must be a non-empty list"]
    for i, rec in enumerate(results):
        missing = REQUIRED_KEYS - set(rec)
        if missing:
            errors.append(f"results[{i}] missing keys {sorted(missing)}")
            continue
        if rec["backend"] not in BACKENDS:
            errors.append(f"results[{i}] unknown backend {rec['backend']!r}")
        for key in ("max_batch", "load", "requests", "columns", "n_batches"):
            if not isinstance(rec[key], int) or rec[key] < 1:
                errors.append(f"results[{i}].{key} must be a positive int")
        for key in ("seconds", "cols_per_sec", "mean_batch_width"):
            if not isinstance(rec[key], (int, float)) or rec[key] <= 0:
                errors.append(f"results[{i}].{key} must be a positive number")
        if not isinstance(rec["coalesced"], bool):
            errors.append(f"results[{i}].coalesced must be a bool")
    return errors


def baseline_of(results: list[dict], matrix: str, backend: str) -> dict | None:
    for rec in results:
        if (rec["matrix"], rec["backend"]) == (matrix, backend) and not rec["coalesced"]:
            return rec
    return None


def render_table(results: list[dict]) -> str:
    lines = [
        f"{'matrix':<12} {'backend':<8} {'batch':>5} {'load':>5} "
        f"{'cols/s':>10} {'width':>6} {'vs serial-submit':>17}"
    ]
    for rec in results:
        base = baseline_of(results, rec["matrix"], rec["backend"])
        ratio = (
            f"{rec['cols_per_sec'] / base['cols_per_sec']:>16.2f}x"
            if base is not None and rec["coalesced"] else f"{'baseline':>17}"
        )
        lines.append(
            f"{rec['matrix']:<12} {rec['backend']:<8} {rec['max_batch']:>5} "
            f"{rec['load']:>5} {rec['cols_per_sec']:>10.0f} "
            f"{rec['mean_batch_width']:>6.2f} {ratio}"
        )
    return "\n".join(lines)


def check_acceptance(results: list[dict]) -> list[str]:
    """The CI bar: coalescing must pay on grid3d at offered load >= CHECK_LOAD.

    For every grid3d record with ``load >= CHECK_LOAD`` on the fused
    backend, coalesced throughput must be at least ``CHECK_RATIO`` x the
    uncoalesced serial-submission baseline of the same matrix/backend.
    """
    violations: list[str] = []
    checked = 0
    for rec in results:
        if (not rec["matrix"].startswith("grid3d") or rec["backend"] != "fused"
                or not rec["coalesced"] or rec["load"] < CHECK_LOAD):
            continue
        base = baseline_of(results, rec["matrix"], rec["backend"])
        if base is None:
            violations.append(f"{rec['matrix']}: no uncoalesced baseline recorded")
            continue
        checked += 1
        ratio = rec["cols_per_sec"] / base["cols_per_sec"]
        if ratio < CHECK_RATIO:
            violations.append(
                f"{rec['matrix']} max_batch={rec['max_batch']} "
                f"load={rec['load']}: coalesced throughput is only "
                f"{ratio:.2f}x the serial-submission baseline "
                f"(bar: {CHECK_RATIO}x)"
            )
    if checked == 0:
        violations.append(
            f"no grid3d fused record at load >= {CHECK_LOAD} — nothing to check"
        )
    return violations


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small problem, fewer configurations (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help=f"fail unless coalescing reaches {CHECK_RATIO}x the "
                             f"serial-submission baseline on grid3d at load >= "
                             f"{CHECK_LOAD}")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per configuration (default 256; quick 64)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per configuration (best-of)")
    parser.add_argument("--backends", nargs="+", default=None,
                        choices=list(BACKENDS),
                        help="service backends to benchmark")
    args = parser.parse_args(argv)

    problems = QUICK_PROBLEMS if args.quick else FULL_PROBLEMS
    batches = QUICK_BATCHES if args.quick else FULL_BATCHES
    loads = QUICK_LOADS if args.quick else FULL_LOADS
    nreq = args.requests or (64 if args.quick else 256)
    repeats = args.repeats or (2 if args.quick else 3)
    backends = tuple(args.backends) if args.backends else (
        ("fused",) if args.quick else ("serial", "fused")
    )

    results: list[dict] = []
    for kind, size in problems:
        t0 = time.perf_counter()
        for rec in bench_problem(kind, size, backends=backends, batches=batches,
                                 loads=loads, nreq=nreq, repeats=repeats):
            results.append(rec)
        print(f"{kind}({size}) done in {time.perf_counter() - t0:.1f}s",
              file=sys.stderr)

    payload = {
        "schema": SCHEMA,
        "meta": {
            "quick": bool(args.quick),
            "requests": nreq,
            "repeats": repeats,
            "cpu_count": os.cpu_count() or 1,
            "blas_threads": os.environ.get("OPENBLAS_NUM_THREADS"),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "results": results,
    }
    errors = validate_payload(payload)
    if errors:
        for e in errors:
            print(f"schema error: {e}", file=sys.stderr)
        return 1

    args.out.write_text(json.dumps(payload, indent=1) + "\n")
    print(render_table(results))
    print(f"\nwrote {args.out}")
    if args.check:
        violations = check_acceptance(results)
        for v in violations:
            print(f"check violation: {v}", file=sys.stderr)
        if violations:
            return 1
        print(f"check: coalescing >= {CHECK_RATIO}x serial submission on "
              f"grid3d at load >= {CHECK_LOAD}")
    return 0


if __name__ == "__main__":
    sys.exit(run())
