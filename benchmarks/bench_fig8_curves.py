"""Figure 8: FBsolve MFLOPS vs processor count, one curve per NRHS.

Four panels in the paper (BCSSTK15, BCSSTK31, CUBE35, COPTER2).  Shape
targets: performance rises with p for every NRHS; the curves for larger
NRHS lie strictly above smaller ones and keep scaling further out.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.experiments.fig8 import fig8_series, format_fig8

MATRICES = ["bcsstk15", "bcsstk31", "cube35", "copter2"]
PS = (1, 4, 16, 64, 256)
NRHS = (1, 5, 10, 20, 30)


@pytest.mark.parametrize("matrix", MATRICES)
def test_fig8_panel(benchmark, out_dir, matrix):
    series = benchmark.pedantic(
        fig8_series,
        args=(matrix,),
        kwargs=dict(ps=PS, nrhs_list=NRHS),
        rounds=1,
        iterations=1,
    )
    write_artifact(out_dir, f"fig8_{matrix}", format_fig8(series))

    by_nrhs = {s.nrhs: s for s in series}
    # larger NRHS curves dominate pointwise
    for lo, hi in zip(NRHS, NRHS[1:]):
        assert all(
            h >= l for h, l in zip(by_nrhs[hi].mflops, by_nrhs[lo].mflops)
        ), f"NRHS={hi} curve dips below NRHS={lo}"
    # performance at p=64 beats p=1 for every NRHS
    for s in series:
        assert s.mflops[PS.index(64)] > s.mflops[0]
    # multiple right-hand sides keep pace in relative speedup (the paper
    # reports slightly better; our model gives near-equal) while the
    # absolute MFLOPS gap widens enormously at scale
    sp1 = by_nrhs[1].mflops[-1] / by_nrhs[1].mflops[0]
    sp30 = by_nrhs[30].mflops[-1] / by_nrhs[30].mflops[0]
    assert sp30 > 0.7 * sp1
    assert by_nrhs[30].mflops[-1] - by_nrhs[1].mflops[-1] > 5 * (
        by_nrhs[30].mflops[0] - by_nrhs[1].mflops[0]
    )
