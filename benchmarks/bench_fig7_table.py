"""Figure 7: the paper's main experimental table.

For each of the five test-matrix analogues: factorization time/MFLOPS,
redistribution time, and FBsolve time/MFLOPS for NRHS in {1, 5, 10, 20,
30} at several processor counts, on the simulated Cray T3D.

Shape targets (paper, T3D):
* FBsolve speeds up with p but far less than linearly;
* FBsolve MFLOPS grows several-fold from NRHS=1 to NRHS=30;
* factorization time exceeds FBsolve time at every p;
* redistribution <= 0.9x FBsolve time at NRHS=1.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.experiments.fig7 import fig7_rows, format_fig7

MATRICES = ["bcsstk15", "bcsstk31", "hsct21954", "cube35", "copter2"]
PS = (1, 16, 64)
NRHS = (1, 5, 10, 20, 30)


@pytest.mark.parametrize("matrix", MATRICES)
def test_fig7_matrix(benchmark, out_dir, matrix):
    rows = benchmark.pedantic(
        fig7_rows,
        args=(matrix,),
        kwargs=dict(ps=PS, nrhs_list=NRHS, check=True),
        rounds=1,
        iterations=1,
    )
    write_artifact(out_dir, f"fig7_{matrix}", format_fig7(rows))

    by = {(r.p, r.nrhs): r for r in rows}
    # every solve verified against the true solution
    assert all(r.residual < 1e-9 for r in rows)
    # parallel beats serial for the solve
    assert by[(64, 1)].fbsolve_seconds < by[(1, 1)].fbsolve_seconds
    # NRHS=30 runs at several times the NRHS=1 rate (BLAS-3 effect)
    assert by[(1, 30)].fbsolve_mflops > 3 * by[(1, 1)].fbsolve_mflops
    # factorization dominates the solve at every p (paper's headline)
    for p in PS:
        assert by[(p, 1)].factor_seconds > by[(p, 1)].fbsolve_seconds
    # redistribution below the paper's 0.9x bound
    for p in PS:
        assert by[(p, 1)].redistribution_ratio <= 0.9
