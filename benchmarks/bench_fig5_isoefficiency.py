"""Figure 5 + Equations 5-9: isoefficiency of solvers vs factorization.

Regenerates (a) the symbolic Figure 5 table, (b) empirical isoefficiency
exponents: the triangular solver's W ~ p^2 (Equations 5 and 9, for both
the 2-D and 3-D matrix classes) against factorization's W ~ p^{3/2} —
the paper's core scalability claim, including "asymptotically as scalable
as a dense triangular solver".
"""

from benchmarks.conftest import write_artifact
from repro.analysis.models import figure5_table
from repro.experiments.fig5 import isoefficiency_experiment

BIG_PS = (64, 128, 256, 512, 1024)


def _render_fig5() -> str:
    lines = [
        f"{'matrix':<10} {'partitioning':<26} {'factor T_o':<18} {'factor iso':<12} "
        f"{'solve T_o':<22} {'solve iso':<12} {'overall':<10}"
    ]
    for r in figure5_table():
        lines.append(
            f"{r.matrix_type:<10} {r.partitioning:<26} {r.factor_comm:<18} "
            f"{r.factor_iso:<12} {r.solve_comm:<22} {r.solve_iso:<12} {r.overall_iso:<10}"
        )
    return "\n".join(lines)


def test_fig5_symbolic_table(benchmark, out_dir):
    table = benchmark(_render_fig5)
    write_artifact(out_dir, "fig5_table", table)
    assert "unscalable" in table


def test_isoefficiency_exponents(benchmark, out_dir):
    def run():
        rows = []
        for kind in ("2d", "3d"):
            solve = isoefficiency_experiment(
                kind=kind, system="trisolve-model", ps=BIG_PS, target_e=0.5
            )
            factor = isoefficiency_experiment(
                kind=kind, system="factor-model", ps=BIG_PS, target_e=0.5
            )
            rows.append((kind, solve.exponent, factor.exponent))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ["system            paper    measured"]
    for kind, ks, kf in rows:
        text.append(f"trisolve {kind}       2.00     {ks:.2f}")
        text.append(f"factor   {kind}       1.50     {kf:.2f}")
    write_artifact(out_dir, "fig5_exponents", "\n".join(text))

    for kind, ks, kf in rows:
        assert abs(ks - 2.0) < 0.35, f"trisolve {kind} exponent {ks}"
        assert abs(kf - 1.5) < 0.35, f"factor {kind} exponent {kf}"
        assert kf < ks


def test_simulated_isoefficiency_superlinear(benchmark, out_dir):
    """End-to-end (simulated, small-scale) sanity: growing the problem
    with p at fixed efficiency requires superlinear W growth."""
    res = benchmark.pedantic(
        isoefficiency_experiment,
        kwargs=dict(
            kind="2d", system="trisolve", ps=(2, 4, 8), target_e=0.55, size_lo=4, size_hi=64
        ),
        rounds=1,
        iterations=1,
    )
    lines = [f"simulated trisolve isoefficiency exponent: {res.exponent:.2f}"]
    for p, w, e in res.points:
        lines.append(f"  p={p:3d}  W={w:12.0f}  E={e:.2f}")
    write_artifact(out_dir, "fig5_simulated", "\n".join(lines))
    assert res.exponent > 1.3
