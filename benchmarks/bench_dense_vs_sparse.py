"""Section 3.3: sparse triangular solvers are as scalable as dense ones.

The paper's optimality argument: the top supernode of a 3-D problem is an
N^{2/3} x N^{2/3} dense triangle, so no sparse triangular solver can be
more scalable than the 1-D pipelined *dense* solver, whose isoefficiency
is O(p^2) — the same as the sparse solvers'.  Here both are run through
the event simulator and their efficiency decay with p is compared at
matched work.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.core.dense import dense_trisolve_time
from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse.generators import grid3d_laplacian

PS = (1, 2, 4, 8, 16, 32)


def _sparse_times(ps):
    a = grid3d_laplacian(10)  # N = 1000
    base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
    rng = np.random.default_rng(33)
    b = rng.normal(size=(a.n, 1))
    times = {}
    for p in ps:
        solver = ParallelSparseSolver(a, p=p, spec=cray_t3d())
        solver.symbolic, solver.factor = base.symbolic, base.factor
        solver.assign = subtree_to_subcube(base.symbolic.stree, p)
        _, rep = solver.solve(b, check=False)
        times[p] = rep.forward.seconds
    return times, base.symbolic.stree.solve_flops()


def _dense_times(n, ps):
    spec = cray_t3d()
    return {p: dense_trisolve_time(n, spec, p, b=8) for p in ps}


def test_dense_vs_sparse_scalability(benchmark, out_dir):
    def run():
        sparse_t, sparse_flops = _sparse_times(PS)
        # dense triangle with comparable work: flops_dense = n^2
        n_dense = int(np.sqrt(sparse_flops))
        dense_t = _dense_times(n_dense, PS)
        return sparse_t, dense_t, n_dense

    sparse_t, dense_t, n_dense = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"sparse: 10^3 grid forward solve; dense: {n_dense}x{n_dense} triangle "
        f"(matched flops)",
        f"{'p':>4} {'sparse E':>9} {'dense E':>9}",
    ]
    rows = []
    for p in PS:
        es = sparse_t[1] / (p * sparse_t[p])
        ed = dense_t[1] / (p * dense_t[p])
        rows.append((p, es, ed))
        lines.append(f"{p:>4} {es:>9.3f} {ed:>9.3f}")
    write_artifact(out_dir, "dense_vs_sparse", "\n".join(lines))

    # Both decay with p (the shared O(p^2) isoefficiency class): at the
    # largest p both are below 0.9 efficiency, and the sparse solver's
    # efficiency is within a modest factor of the dense one's.
    _, es_last, ed_last = rows[-1]
    assert es_last < 0.9 and ed_last < 0.9
    assert es_last > ed_last / 6.0
    # Efficiency decreases monotonically (up to small scheduling noise).
    sparse_es = [r[1] for r in rows]
    assert all(b <= a * 1.1 for a, b in zip(sparse_es, sparse_es[1:]))


def test_top_supernode_dominates_3d(benchmark, out_dir):
    """The other half of the optimality argument: the root separator's
    dense solve is a constant fraction of the whole sparse solve."""

    def run():
        a = grid3d_laplacian(10)
        sym = ParallelSparseSolver(a, p=1).prepare().symbolic
        stree = sym.stree
        root = max(stree.roots(), key=lambda s: stree.supernodes[s].t)
        sn = stree.supernodes[root]
        from repro.util.flops import supernode_solve_flops

        top = supernode_solve_flops(sn.n, sn.t)
        total = stree.solve_flops()
        return sn.t, top, total

    t, top, total = benchmark.pedantic(run, rounds=1, iterations=1)
    frac = top / total
    write_artifact(
        out_dir,
        "top_supernode_share",
        f"3-D 10^3 grid: root separator width {t} "
        f"(~N^(2/3) = {round(1000 ** (2 / 3))}), "
        f"top-supernode solve flops = {frac:.1%} of the total",
    )
    assert frac > 0.10  # asymptotically a constant fraction
