"""Equations 1-2: measured simulated T_P against the closed-form models.

The paper derives
  2-D: T_P = O(N log N / p) + O(sqrt N) + O(p)
  3-D: T_P = O(N^{4/3} / p) + O(N^{2/3}) + O(p)
We sweep (N, p) on model meshes and check that the measured times track
the model's *shape*: the correlation of log-times is high, and the
work-dominated and overhead-dominated regimes appear where predicted.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.experiments.scaling import scaling_law_experiment


@pytest.mark.parametrize(
    "kind,sizes,ps",
    [
        ("2d", (16, 24, 32, 48), (1, 4, 16, 64)),
        ("3d", (6, 8, 10, 12), (1, 4, 16, 64)),
    ],
)
def test_scaling_law(benchmark, out_dir, kind, sizes, ps):
    pts = benchmark.pedantic(
        scaling_law_experiment,
        kwargs=dict(kind=kind, sizes=sizes, ps=ps),
        rounds=1,
        iterations=1,
    )
    lines = [f"{'N':>8} {'p':>5} {'measured (ms)':>14} {'model (ms)':>12}"]
    for r in pts:
        lines.append(
            f"{r.n:>8} {r.p:>5} {r.measured_seconds * 1e3:>14.3f} {r.model_seconds * 1e3:>12.3f}"
        )
    meas = np.log([r.measured_seconds for r in pts])
    mod = np.log([r.model_seconds for r in pts])
    corr = float(np.corrcoef(meas, mod)[0, 1])
    lines.append(f"log-log correlation measured vs Eq.{1 if kind == '2d' else 2} model: {corr:.3f}")
    write_artifact(out_dir, f"scaling_eq_{kind}", "\n".join(lines))

    assert corr > 0.85
    # work-term regime: at p=1 doubling the problem scales the time up
    p1 = sorted((r for r in pts if r.p == 1), key=lambda r: r.n)
    assert p1[-1].measured_seconds > p1[0].measured_seconds
    # parallelism pays off on the largest problem
    big = max(r.n for r in pts)
    series = sorted((r for r in pts if r.n == big), key=lambda r: r.p)
    assert series[2].measured_seconds < series[0].measured_seconds
