"""Cross-validation: task-graph vs SPMD implementations of the solvers.

Two independently structured implementations of the paper's algorithms —
the dataflow task graph and the rank-local message-passing programs — are
run on the same factor, machine, and right-hand side.  Their numeric
results must agree to machine precision and their simulated times must
agree on the machine-time scale; systematic divergence would indicate a
modeling bug in one of them.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.core.backward import parallel_backward
from repro.core.forward import parallel_forward
from repro.core.solver import ParallelSparseSolver
from repro.core.spmd_backward import spmd_backward
from repro.core.spmd_forward import spmd_forward
from repro.machine.presets import cray_t3d
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse.generators import fe_mesh_2d

PS = (1, 4, 16, 64)


def test_spmd_crossvalidation(benchmark, out_dir):
    def run():
        a = fe_mesh_2d(32, seed=77)
        base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        rng = np.random.default_rng(0)
        bp = base.symbolic.perm.apply_to_vector(rng.normal(size=(a.n, 1)))
        rows = []
        for p in PS:
            assign = subtree_to_subcube(base.symbolic.stree, p)
            y_tg, f_tg = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=p)
            y_sp, f_sp = spmd_forward(base.factor, assign, cray_t3d(), bp, nproc=p)
            x_tg, b_tg = parallel_backward(base.factor, assign, cray_t3d(), y_tg, nproc=p)
            x_sp, b_sp = spmd_backward(base.factor, assign, cray_t3d(), y_sp, nproc=p)
            num_diff = max(
                float(np.abs(y_tg - y_sp).max()), float(np.abs(x_tg - x_sp).max())
            )
            rows.append(
                (p, f_tg.makespan, f_sp.makespan, b_tg.makespan, b_sp.makespan, num_diff)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "task-graph (tg) vs SPMD: forward/backward makespans, N=1024 FE mesh",
        f"{'p':>4} {'fwd tg(ms)':>11} {'fwd spmd':>10} {'bwd tg(ms)':>11} {'bwd spmd':>10} {'max|diff|':>10}",
    ]
    for p, ftg, fsp, btg, bsp, diff in rows:
        lines.append(
            f"{p:>4} {ftg * 1e3:>11.3f} {fsp * 1e3:>10.3f} {btg * 1e3:>11.3f} "
            f"{bsp * 1e3:>10.3f} {diff:>10.2e}"
        )
    write_artifact(out_dir, "spmd_crossvalidation", "\n".join(lines))

    for p, ftg, fsp, btg, bsp, diff in rows:
        assert diff < 1e-11
        assert 0.3 < fsp / ftg < 3.0, f"forward divergence at p={p}"
        assert 0.3 < bsp / btg < 3.0, f"backward divergence at p={p}"
