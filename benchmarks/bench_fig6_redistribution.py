"""Figure 6 + Section 4: 2-D -> 1-D supernode redistribution.

Regenerates (a) the Figure 6 ownership diagram for a supernode on 16
processors, and (b) the paper's quantitative claim: redistribution costs
at most ~0.9x (average ~0.5x) of the FBsolve time with one right-hand
side, and is amortised with more right-hand sides.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.experiments.fig7 import fig7_rows
from repro.machine.presets import cray_t3d
from repro.mapping.layouts import BlockCyclic1D, BlockCyclic2D
from repro.mapping.redistribution import redistribute_supernode
from repro.mapping.subtree_subcube import ProcSet

MATRICES = ["bcsstk15", "bcsstk31", "hsct21954", "cube35", "copter2"]


def _ownership_diagram(n: int, t: int, q: int) -> str:
    """Render before/after owner grids like the paper's Figure 6."""
    l2 = BlockCyclic2D(n=n, t=t, b=1, procs=ProcSet(0, q))
    l1 = BlockCyclic1D(n=n, b=1, procs=ProcSet(0, q))
    lines = [f"2-D block layout on a {l2.grid[0]}x{l2.grid[1]} grid (left) -> 1-D rows (right)"]
    for i in range(n):
        left = " ".join(f"P{l2.owner_of_item(i, j):<2d}" for j in range(t))
        right = f"P{l1.owner_of_item(i):<2d} owns row {i}"
        lines.append(f"{left}    | {right}")
    return "\n".join(lines)


def test_fig6_diagram(benchmark, out_dir):
    text = benchmark(_ownership_diagram, 16, 4, 16)
    write_artifact(out_dir, "fig6_diagram", text)
    assert "P15" in text


def test_fig6_data_movement_exactness(benchmark, out_dir):
    """The emulated exchange moves every element to its 1-D owner."""
    rng = np.random.default_rng(6)
    n, t, q = 64, 16, 16
    block = rng.normal(size=(n, t))
    l2 = BlockCyclic2D(n=n, t=t, b=4, procs=ProcSet(0, q))
    l1 = BlockCyclic1D(n=n, b=4, procs=ProcSet(0, q))
    pieces, traffic = benchmark(redistribute_supernode, block, l2, l1)
    for rank in range(q):
        np.testing.assert_allclose(pieces[rank], block[l1.items_of(rank), :])
    moved = sum(v for (s, d), v in traffic.items() if s != d)
    stayed = sum(v for (s, d), v in traffic.items() if s == d)
    write_artifact(
        out_dir,
        "fig6_traffic",
        f"supernode {n}x{t} on {q} procs: {moved} words moved, {stayed} in place "
        f"({moved / (moved + stayed):.0%} of the factor crosses the network)",
    )
    assert moved + stayed == n * t


def test_redistribution_below_solve_time(benchmark, out_dir):
    """Section 4 claim across all five matrices at p in {16, 64}."""

    def run():
        out = []
        for m in MATRICES:
            for row in fig7_rows(m, ps=(16, 64), nrhs_list=(1,), check=False):
                out.append((m, row.p, row.redistribution_ratio))
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["matrix       p    redistribute/FBsolve (paper: <= 0.9, avg ~0.5)"]
    for m, p, r in ratios:
        lines.append(f"{m:<12} {p:<4d} {r:.3f}")
    avg = sum(r for _, _, r in ratios) / len(ratios)
    lines.append(f"average: {avg:.3f}")
    write_artifact(out_dir, "fig6_redistribution_ratio", "\n".join(lines))
    assert all(r <= 0.9 for _, _, r in ratios)
    assert avg <= 0.6


def test_redistribution_amortised_over_nrhs(benchmark, out_dir):
    """With 30 right-hand sides the one-time redistribution is negligible."""
    rows = benchmark.pedantic(
        fig7_rows,
        args=("bcsstk15",),
        kwargs=dict(ps=(64,), nrhs_list=(1, 30), check=False),
        rounds=1,
        iterations=1,
    )
    r1 = next(r for r in rows if r.nrhs == 1)
    r30 = next(r for r in rows if r.nrhs == 30)
    text = (
        f"redistribute = {r1.redistribute_seconds:.4f}s; "
        f"FBsolve(1 rhs) = {r1.fbsolve_seconds:.4f}s (ratio {r1.redistribution_ratio:.2f}); "
        f"FBsolve(30 rhs) = {r30.fbsolve_seconds:.4f}s (ratio {r30.redistribution_ratio:.2f})"
    )
    write_artifact(out_dir, "fig6_amortisation", text)
    assert r30.redistribution_ratio < r1.redistribution_ratio
