"""Introduction claim: parallelism lifts the uniprocessor memory limit.

"Without an overall parallel solver, the size of the sparse systems that
can be solved may be severely restricted by the amount of memory
available on a uniprocessor system."  Measured: the maximum per-processor
share of the factor shrinks ~1/p under subtree-to-subcube + block-cyclic
distribution, and the multifrontal working peak is a small multiple of
the factor size.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.memory import (
    factor_words_per_processor,
    memory_balance,
    multifrontal_peak_words,
    peak_to_factor_ratio,
)
from repro.experiments.matrices import prepared
from repro.mapping.subtree_subcube import subtree_to_subcube

PS = (1, 4, 16, 64, 256)


def test_factor_memory_scales_down(benchmark, out_dir):
    def run():
        solver = prepared("bcsstk15", 1)
        stree = solver.symbolic.stree
        rows = []
        for p in PS:
            assign = subtree_to_subcube(stree, p)
            words = factor_words_per_processor(stree, assign)
            rows.append((p, float(words.max()), memory_balance(stree, assign)))
        peak = multifrontal_peak_words(stree)
        return rows, peak, stree.factor_nnz()

    rows, peak, fnnz = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"factor nnz = {fnnz} words; multifrontal stack peak = {peak} "
        f"({peak / fnnz:.2f}x the factor)",
        f"{'p':>5} {'max words/proc':>15} {'KB/proc':>9} {'balance':>8}",
    ]
    for p, mx, bal in rows:
        lines.append(f"{p:>5} {mx:>15.0f} {mx * 8 / 1024:>9.1f} {bal:>8.2f}")
    write_artifact(out_dir, "memory_scaling", "\n".join(lines))

    by_p = {r[0]: r for r in rows}
    # per-processor share shrinks, and by a large factor at p=256
    assert by_p[256][1] < by_p[1][1] / 32
    # balance stays bounded
    assert all(bal < 3.0 for _, _, bal in rows)
    # the multifrontal working peak is a small multiple of the factor
    assert peak < 8 * fnnz
