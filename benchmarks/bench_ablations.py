"""Ablations over the design choices DESIGN.md calls out.

* block size b of the block-cyclic mapping (the paper assumes a small
  constant b; too small inflates startups, too large kills the pipeline);
* row- vs column-priority pipelining (Figures 3(b)/(c));
* interconnect topology (hypercube vs 3-D torus vs ideal crossbar);
* fill-reducing ordering (nested dissection vs minimum degree vs RCM) —
  the subtree-to-subcube analysis assumes nested dissection's balanced
  trees; RCM's path-shaped trees should parallelise far worse.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.core.solver import ParallelSparseSolver
from repro.experiments.matrices import prepared
from repro.machine.presets import cray_t3d
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse.generators import fe_mesh_2d

P = 64


def _solve_time(solver, nrhs=1, seed=0):
    rng = np.random.default_rng(seed)
    b = rng.normal(size=(solver.a.n, nrhs))
    _, rep = solver.solve(b, check=False)
    return rep


def test_block_size_sweep(benchmark, out_dir):
    def run():
        rows = []
        for b in (1, 2, 4, 8, 16, 32, 64):
            solver = prepared("bcsstk15", P, b=b)
            solver.b = b
            rep = _solve_time(solver)
            rows.append((b, rep.fbsolve_seconds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["b      FBsolve (ms)   (p=64, NRHS=1, bcsstk15 analogue)"]
    for b, t in rows:
        lines.append(f"{b:<6d} {t * 1e3:10.3f}")
    write_artifact(out_dir, "ablation_block_size", "\n".join(lines))
    times = dict(rows)
    # a moderate block size beats both extremes
    best = min(times.values())
    assert best <= times[1] and best <= times[64]


def test_priority_variants(benchmark, out_dir):
    def run():
        out = {}
        for variant in ("column", "row"):
            solver = prepared("bcsstk15", P, variant=variant)
            out[variant] = _solve_time(solver).forward.seconds
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(f"{k}-priority forward: {v * 1e3:.3f} ms" for k, v in res.items())
    write_artifact(out_dir, "ablation_priority", text)
    # both work; neither is catastrophically worse (paper uses both)
    hi, lo = max(res.values()), min(res.values())
    assert hi < 3 * lo


def test_topology_sweep(benchmark, out_dir):
    def run():
        rows = []
        for topo in ("hypercube", "mesh3d", "full"):
            spec = cray_t3d().with_(topology=topo, t_h=2.0e-7)
            solver = prepared("bcsstk15", P, spec=spec)
            rep = _solve_time(solver)
            rows.append((topo, rep.fbsolve_seconds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{t:<10} {s * 1e3:10.3f} ms" for t, s in rows]
    write_artifact(out_dir, "ablation_topology", "\n".join(lines))
    times = dict(rows)
    # an ideal crossbar is never slower than a real topology
    assert times["full"] <= min(times["hypercube"], times["mesh3d"]) * 1.05


def test_ordering_ablation(benchmark, out_dir):
    """Nested dissection's balanced trees are what make the subtree-to-
    subcube mapping work; RCM's chain trees should parallelise worse."""

    def run():
        a = fe_mesh_2d(32, seed=12)
        out = {}
        for method in ("nested_dissection", "rcm"):
            base = ParallelSparseSolver(a, p=1, spec=cray_t3d(), ordering=method).prepare()
            rep1 = _solve_time(base)
            par = ParallelSparseSolver(a, p=16, spec=cray_t3d(), ordering=method)
            par.symbolic, par.factor = base.symbolic, base.factor
            par.assign = subtree_to_subcube(base.symbolic.stree, 16)
            rep16 = _solve_time(par)
            out[method] = rep1.fbsolve_seconds / rep16.fbsolve_seconds
        return out

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(f"{k}: speedup(p=16) = {v:.2f}" for k, v in speedups.items())
    write_artifact(out_dir, "ablation_ordering", text)
    assert speedups["nested_dissection"] > speedups["rcm"]


def test_nrhs_amortisation(benchmark, out_dir):
    """Per-RHS solve cost drops steeply with NRHS (BLAS-3 + index reuse)."""

    def run():
        rows = []
        for nrhs in (1, 2, 5, 10, 20, 30):
            rep = _solve_time(prepared("bcsstk15", P), nrhs=nrhs)
            rows.append((nrhs, rep.fbsolve_seconds / nrhs))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["NRHS   per-RHS FBsolve (ms)"]
    for nrhs, t in rows:
        lines.append(f"{nrhs:<6d} {t * 1e3:10.4f}")
    write_artifact(out_dir, "ablation_nrhs", "\n".join(lines))
    per = dict(rows)
    assert per[30] < per[1] / 2
