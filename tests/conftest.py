"""Shared fixtures: small matrices and prepared solvers, computed once."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d
from repro.sparse.generators import (
    fe_mesh_2d,
    grid2d_laplacian,
    grid3d_laplacian,
    random_spd,
)
from repro.symbolic.analyze import analyze


@pytest.fixture(scope="session")
def grid8():
    return grid2d_laplacian(8)


@pytest.fixture(scope="session")
def grid3d5():
    return grid3d_laplacian(5)


@pytest.fixture(scope="session")
def fe9():
    return fe_mesh_2d(9, seed=3)


@pytest.fixture(scope="session")
def rand60():
    return random_spd(60, density=0.05, seed=7)


@pytest.fixture(scope="session")
def sym_grid8(grid8):
    return analyze(grid8)


@pytest.fixture(scope="session")
def sym_grid3d5(grid3d5):
    return analyze(grid3d5)


@pytest.fixture(scope="session")
def prepared_grid12():
    """A factored 12x12 grid solver base shared by the parallel-solve tests."""
    a = grid2d_laplacian(12)
    return ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def clone_for_p(base: ParallelSparseSolver, p: int, **kwargs) -> ParallelSparseSolver:
    """Reuse a prepared solver's factorization at a different p."""
    from repro.mapping.subtree_subcube import subtree_to_subcube

    solver = ParallelSparseSolver(base.a, p=p, spec=kwargs.pop("spec", base.spec), **kwargs)
    solver.symbolic = base.symbolic
    solver.factor = base.factor
    solver.assign = subtree_to_subcube(base.symbolic.stree, p)
    return solver
