"""Block-size auto-tuning and condition estimation."""

import numpy as np
import pytest

from repro.core.tuning import TuningResult, tune_block_size
from repro.machine.presets import cray_t3d
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.numeric.condest import condest, inverse_norm_estimate, one_norm
from repro.sparse.build import from_dense
from repro.sparse.generators import grid2d_laplacian
from repro.symbolic.analyze import analyze
from repro.numeric.supernodal import cholesky_supernodal


class TestTuning:
    @pytest.fixture(scope="class")
    def setup(self):
        a = grid2d_laplacian(16)
        sym = analyze(a)
        factor = cholesky_supernodal(sym)
        assign = subtree_to_subcube(sym.stree, 16)
        return factor, assign

    def test_returns_fastest_candidate(self, setup):
        factor, assign = setup
        res = tune_block_size(factor, assign, cray_t3d(), candidates=(1, 8, 64), nproc=16)
        assert res.best_b in (1, 8, 64)
        assert res.timings[res.best_b] == min(res.timings.values())

    def test_moderate_block_beats_extremes(self, setup):
        factor, assign = setup
        res = tune_block_size(
            factor, assign, cray_t3d(), candidates=(1, 2, 4, 8, 16, 64), nproc=16
        )
        assert res.best_b not in (1, 64)

    def test_improvement_metric(self, setup):
        factor, assign = setup
        res = tune_block_size(factor, assign, cray_t3d(), candidates=(1, 8), nproc=16)
        assert res.improvement_over(1) >= 1.0
        with pytest.raises(ValueError):
            res.improvement_over(99)

    def test_empty_candidates_rejected(self, setup):
        factor, assign = setup
        with pytest.raises(ValueError):
            tune_block_size(factor, assign, cray_t3d(), candidates=(), nproc=16)

    def test_latency_free_machine_prefers_small_blocks(self, setup):
        """With t_s = 0 the startup penalty of b=1 disappears, so small
        blocks (= max pipeline overlap) win or tie."""
        factor, assign = setup
        spec = cray_t3d().with_(t_s=0.0, t_call=0.0)
        res = tune_block_size(factor, assign, spec, candidates=(1, 32), nproc=16)
        assert res.best_b == 1


class TestConditionEstimate:
    def test_one_norm_exact(self):
        a = from_dense(np.array([[2.0, -1.0], [-1.0, 3.0]]))
        assert one_norm(a) == 4.0

    def test_identity_condition_is_one(self):
        a = from_dense(np.eye(6) * 2.0)
        sym = analyze(a, method="natural")
        f = cholesky_supernodal(sym)
        assert condest(sym, f, a) == pytest.approx(1.0)

    def test_estimate_close_to_true_condition(self, grid8):
        sym = analyze(grid8)
        f = cholesky_supernodal(sym)
        est = condest(sym, f, grid8)
        dense = grid8.to_dense()
        true = np.linalg.norm(dense, 1) * np.linalg.norm(np.linalg.inv(dense), 1)
        # Hager's estimator is a lower bound, rarely off by more than ~3x
        assert true / 3 <= est <= true * 1.001

    def test_ill_conditioned_detected(self):
        d = np.diag([1.0, 1.0, 1e-8])
        a = from_dense(d)
        sym = analyze(a, method="natural")
        f = cholesky_supernodal(sym)
        assert condest(sym, f, a) > 1e7

    def test_inverse_norm_lower_bound(self, grid8):
        sym = analyze(grid8)
        f = cholesky_supernodal(sym)
        est = inverse_norm_estimate(sym, f)
        true = np.linalg.norm(np.linalg.inv(grid8.to_dense()), 1)
        assert est <= true * 1.001
        assert est >= true / 3
