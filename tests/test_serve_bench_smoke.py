"""The serve benchmark harness must run, check, and emit schema-valid JSON.

CI runs ``bench_serve.py --quick --check`` and uploads
``BENCH_serve.json`` as an artifact; this smoke test runs the same
command end to end in a temp directory, validates the payload against
the documented schema, and holds the *committed* trajectory file to the
PR's acceptance bar: coalesced throughput at least ``CHECK_RATIO`` x
the uncoalesced serial-submission baseline on grid3d at offered load
>= ``CHECK_LOAD``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.serve

ROOT = Path(__file__).resolve().parents[1]
BENCH = ROOT / "benchmarks" / "bench_serve.py"


def _load_bench_module():
    sys.path.insert(0, str(ROOT))
    try:
        from benchmarks import bench_serve
    finally:
        sys.path.pop(0)
    return bench_serve


@pytest.fixture(scope="module")
def quick_payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_serve.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--quick", "--check", "--out", str(out)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, f"bench failed:\n{proc.stdout}\n{proc.stderr}"
    return json.loads(out.read_text()), proc.stdout


class TestServeBenchSmoke:
    def test_schema_is_valid(self, quick_payload):
        payload, _ = quick_payload
        bench = _load_bench_module()
        assert bench.validate_payload(payload) == []

    def test_quick_mode_has_baseline_and_coalesced_records(self, quick_payload):
        payload, _ = quick_payload
        results = payload["results"]
        assert any(not rec["coalesced"] for rec in results), "no baseline"
        assert any(rec["coalesced"] for rec in results), "no coalesced record"
        for rec in results:
            # The uncoalesced baseline is exactly the max_batch=1 service.
            assert rec["coalesced"] == (rec["max_batch"] > 1)
            assert rec["columns"] == rec["requests"]

    def test_mean_width_matches_offered_load(self, quick_payload):
        """At load >= max_batch every batch fills; at load 1 none coalesce."""
        payload, _ = quick_payload
        for rec in payload["results"]:
            if rec["load"] >= rec["max_batch"]:
                assert rec["mean_batch_width"] == pytest.approx(rec["max_batch"])
            if rec["load"] == 1:
                assert rec["mean_batch_width"] == pytest.approx(1.0)

    def test_check_passes_in_quick_mode(self, quick_payload):
        _, stdout = quick_payload
        assert "check: coalescing >=" in stdout

    def test_table_printed(self, quick_payload):
        _, stdout = quick_payload
        assert "vs serial-submit" in stdout
        assert "baseline" in stdout

    def test_validator_rejects_broken_payloads(self):
        bench = _load_bench_module()
        assert bench.validate_payload({"schema": "nope", "results": []})
        good_rec = {
            "matrix": "grid3d(5)", "backend": "fused", "max_batch": 8,
            "load": 16, "requests": 64, "columns": 64, "seconds": 0.1,
            "cols_per_sec": 640.0, "mean_batch_width": 8.0, "n_batches": 8,
            "coalesced": True,
        }
        good = {"schema": bench.SCHEMA, "results": [good_rec]}
        assert bench.validate_payload(good) == []
        missing = {"schema": bench.SCHEMA, "results": [{"matrix": "x"}]}
        errors = bench.validate_payload(missing)
        assert errors and "missing keys" in errors[0]
        bad_backend = {"schema": bench.SCHEMA,
                       "results": [{**good_rec, "backend": "quantum"}]}
        assert bench.validate_payload(bad_backend)

    def test_check_flags_slow_coalescing(self):
        bench = _load_bench_module()
        base = {
            "matrix": "grid3d(8)", "backend": "fused", "max_batch": 1,
            "load": 1, "requests": 64, "columns": 64, "seconds": 0.1,
            "cols_per_sec": 640.0, "mean_batch_width": 1.0, "n_batches": 64,
            "coalesced": False,
        }
        fast = {**base, "max_batch": 16, "load": 16,
                "cols_per_sec": 640.0 * 4, "coalesced": True}
        assert bench.check_acceptance([base, fast]) == []
        slow = {**fast, "cols_per_sec": 640.0 * 1.5}
        assert bench.check_acceptance([base, slow])
        # No grid3d record at the check load at all -> that is itself a failure.
        assert bench.check_acceptance([base])

    def test_committed_trajectory_file_meets_acceptance_bar(self):
        committed = ROOT / "BENCH_serve.json"
        if not committed.exists():
            pytest.skip("no committed BENCH_serve.json")
        bench = _load_bench_module()
        payload = json.loads(committed.read_text())
        assert bench.validate_payload(payload) == []
        assert bench.check_acceptance(payload["results"]) == []
