"""Property test: the certifier flags every plan mutant, never the pristine.

Hypothesis draws a mutation kind and its target (which dependency edge
to drop, which reduction list to permute, which scatter index to shift,
by how much) against a fixed small plan; every drawn mutant must produce
at least one ERROR finding, while the untouched plan certifies clean on
every example.  Mutations that also change the schedule's semantics
(topology or reduction order) must change the determinism digest.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exec.plan import build_plan
from repro.sparse.generators import grid2d_laplacian
from repro.symbolic.analyze import analyze
from repro.verify.schedule import certify_plan, plan_digest

SYM = analyze(grid2d_laplacian(6))
PLAN = build_plan(SYM.stree, grain=64)
PRISTINE_DIGEST = plan_digest(PLAN)

_PARENTS = [i for i in range(PLAN.ntasks) if PLAN.task_children[i]]
_MULTI_CHILD = [i for i, s in enumerate(PLAN.steps) if len(s.children) >= 2]
_SCATTERED = [
    (si, ci)
    for si, s in enumerate(PLAN.steps)
    for ci, idx in enumerate(s.child_scatter)
    if idx.size
]


def _drop_dependency(draw):
    tp = draw(st.sampled_from(_PARENTS))
    children = [list(c) for c in PLAN.task_children]
    victim = draw(st.sampled_from(children[tp]))
    children[tp].remove(victim)
    return dataclasses.replace(PLAN, task_children=children)


def _permute_reduction(draw):
    si = draw(st.sampled_from(_MULTI_CHILD))
    step = PLAN.steps[si]
    k = len(step.children)
    perm = draw(st.permutations(range(k)).filter(lambda p: list(p) != list(range(k))))
    steps = list(PLAN.steps)
    steps[si] = dataclasses.replace(
        step,
        children=tuple(step.children[j] for j in perm),
        child_scatter=tuple(step.child_scatter[j] for j in perm),
    )
    return dataclasses.replace(PLAN, steps=steps)


def _shift_scatter(draw):
    si, ci = draw(st.sampled_from(_SCATTERED))
    step = PLAN.steps[si]
    idx = step.child_scatter[ci].copy()
    k = draw(st.integers(0, idx.size - 1))
    idx[k] += draw(st.sampled_from([-3, -1, 1, 2, 5]))
    scatters = list(step.child_scatter)
    scatters[ci] = idx
    steps = list(PLAN.steps)
    steps[si] = dataclasses.replace(step, child_scatter=tuple(scatters))
    return dataclasses.replace(PLAN, steps=steps)


_MUTATORS = {
    "drop-dependency": _drop_dependency,
    "permute-reduction": _permute_reduction,
    "shift-scatter": _shift_scatter,
}


@st.composite
def mutants(draw):
    kind = draw(st.sampled_from(sorted(_MUTATORS)))
    return kind, _MUTATORS[kind](draw)


@pytest.mark.filterwarnings("ignore::UserWarning")
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(mutant=mutants())
def test_certifier_flags_every_mutant(mutant):
    kind, plan = mutant
    pristine = certify_plan(PLAN, SYM.stree)
    assert pristine.ok, pristine.report.render()
    assert pristine.digest == PRISTINE_DIGEST

    cert = certify_plan(plan, SYM.stree)
    assert not cert.ok, f"{kind} mutant certified clean"
    if kind in ("permute-reduction", "shift-scatter", "drop-dependency"):
        # Anything that changes the hashed schedule must change the hash;
        # a dropped *dependency list* leaves the hashed topology intact.
        expect_changed = kind != "drop-dependency"
        assert (cert.digest != PRISTINE_DIGEST) == expect_changed


def test_fixture_has_all_mutation_targets():
    # The strategies above assume the base plan is rich enough to mutate.
    assert _PARENTS and _MULTI_CHILD and _SCATTERED
    assert any(PLAN.steps[si].child_scatter[ci].size >= 2 for si, ci in _SCATTERED)


def test_scatter_shift_cannot_be_a_noop():
    # Every ±shift of a valid scatter index lands on a different parent
    # row (rows are strictly increasing), so the mapping check must fire.
    for si, ci in _SCATTERED:
        step = PLAN.steps[si]
        rows = np.concatenate(
            [np.arange(step.col_lo, step.col_hi, dtype=np.int64), step.below]
        )
        assert np.all(np.diff(rows) > 0)
