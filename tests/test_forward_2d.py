"""The 2-D-layout forward solve: correct but unscalable (Figure 5)."""

import numpy as np
import pytest

from repro.core.forward import parallel_forward
from repro.core.forward_2d import parallel_forward_2d
from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.numeric.trisolve import forward_supernodal
from repro.sparse.generators import fe_mesh_2d, grid2d_laplacian


@pytest.fixture(scope="module")
def setup():
    a = grid2d_laplacian(12)
    base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
    rng = np.random.default_rng(17)
    b = rng.normal(size=(a.n, 2))
    bp = base.symbolic.perm.apply_to_vector(b)
    y_ref = forward_supernodal(base.factor, bp)
    return base, bp, y_ref


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_matches_serial(self, setup, p):
        base, bp, y_ref = setup
        assign = subtree_to_subcube(base.symbolic.stree, p)
        y, _ = parallel_forward_2d(base.factor, assign, cray_t3d(), bp, b=4, nproc=p)
        np.testing.assert_allclose(y, y_ref, atol=1e-11)

    @pytest.mark.parametrize("b", [1, 3, 8])
    def test_block_size_invariant(self, setup, b):
        base, bp, y_ref = setup
        assign = subtree_to_subcube(base.symbolic.stree, 4)
        y, _ = parallel_forward_2d(base.factor, assign, cray_t3d(), bp, b=b, nproc=4)
        np.testing.assert_allclose(y, y_ref, atol=1e-11)

    def test_vector_rhs(self, setup):
        base, bp, y_ref = setup
        assign = subtree_to_subcube(base.symbolic.stree, 4)
        y, _ = parallel_forward_2d(base.factor, assign, cray_t3d(), bp[:, 0], nproc=4)
        np.testing.assert_allclose(y, y_ref[:, 0], atol=1e-11)


class TestUnscalability:
    def test_one_d_beats_two_d_at_scale(self):
        """The paper's reason for Section 4: at larger p the redistributed
        1-D pipelined solver outruns solving on the 2-D layout."""
        a = fe_mesh_2d(32, seed=21)
        base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        rng = np.random.default_rng(3)
        bp = base.symbolic.perm.apply_to_vector(rng.normal(size=(a.n, 1)))
        p = 64
        assign = subtree_to_subcube(base.symbolic.stree, p)
        _, sim1d = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=p)
        _, sim2d = parallel_forward_2d(base.factor, assign, cray_t3d(), bp, nproc=p)
        assert sim1d.makespan < sim2d.makespan

    def test_two_d_comm_volume_larger(self):
        a = fe_mesh_2d(24, seed=9)
        base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        rng = np.random.default_rng(4)
        bp = base.symbolic.perm.apply_to_vector(rng.normal(size=(a.n, 1)))
        p = 16
        assign = subtree_to_subcube(base.symbolic.stree, p)
        _, sim1d = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=p)
        _, sim2d = parallel_forward_2d(base.factor, assign, cray_t3d(), bp, nproc=p)
        assert sim2d.comm_volume_words > sim1d.comm_volume_words

    def test_efficiency_collapses_faster_in_2d(self):
        """Efficiency ratio 2-D/1-D worsens as p grows — the 'unscalable'
        table entry in measurable form."""
        a = fe_mesh_2d(32, seed=21)
        base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        rng = np.random.default_rng(5)
        bp = base.symbolic.perm.apply_to_vector(rng.normal(size=(a.n, 1)))
        ratios = []
        for p in (4, 64):
            assign = subtree_to_subcube(base.symbolic.stree, p)
            _, s1 = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=p)
            _, s2 = parallel_forward_2d(base.factor, assign, cray_t3d(), bp, nproc=p)
            ratios.append(s2.makespan / s1.makespan)
        assert ratios[1] > ratios[0]
