"""Property-based round-trip tests for persistence formats."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.numeric.serialize import load_factor, save_factor
from repro.numeric.supernodal import cholesky_supernodal
from repro.sparse.hb import read_harwell_boeing, write_harwell_boeing
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.symbolic.analyze import analyze
from tests.test_properties import sparse_spd

SLOW = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@SLOW
@given(a=sparse_spd(max_n=20))
def test_matrix_market_roundtrip_property(a, tmp_path_factory):
    path = tmp_path_factory.mktemp("mm") / "m.mtx"
    write_matrix_market(a, path)
    back = read_matrix_market(path)
    np.testing.assert_allclose(back.to_dense(), a.to_dense(), atol=1e-12)


@SLOW
@given(a=sparse_spd(max_n=20))
def test_harwell_boeing_roundtrip_property(a, tmp_path_factory):
    path = tmp_path_factory.mktemp("hb") / "m.rsa"
    write_harwell_boeing(a, path)
    back = read_harwell_boeing(path)
    np.testing.assert_allclose(back.to_dense(), a.to_dense(), rtol=1e-6, atol=1e-9)


@SLOW
@given(a=sparse_spd(max_n=18))
def test_factor_serialization_roundtrip_property(a, tmp_path_factory):
    sym = analyze(a)
    f = cholesky_supernodal(sym)
    path = tmp_path_factory.mktemp("f") / "factor.npz"
    save_factor(f, path)
    back = load_factor(path)
    np.testing.assert_allclose(back.to_dense(), f.to_dense(), atol=0)
