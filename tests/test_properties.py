"""Property-based tests (hypothesis) over the core invariants.

Random SPD matrices are generated from random sparse graphs; every
pipeline stage must uphold its contract for all of them.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.solver import ParallelSparseSolver
from repro.graph.separators import find_separator, is_valid_separation
from repro.graph.structure import adjacency_from_matrix
from repro.machine.events import TaskGraph, critical_path, simulate
from repro.machine.spec import MachineSpec
from repro.numeric.supernodal import cholesky_supernodal
from repro.ordering.api import order
from repro.sparse.build import from_triplets
from repro.symbolic.analyze import analyze
from repro.symbolic.etree import NO_PARENT

SLOW = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def sparse_spd(draw, max_n=24):
    """Random connected SPD matrix with a spanning path + random edges."""
    n = draw(st.integers(3, max_n))
    extra = draw(st.integers(0, 2 * n))
    rng_seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    rows = list(range(1, n))
    cols = list(range(0, n - 1))
    for _ in range(extra):
        i, j = rng.integers(0, n, 2)
        if i != j:
            rows.append(max(i, j))
            cols.append(min(i, j))
    vals = -rng.uniform(0.1, 1.0, len(rows))
    deg = np.zeros(n)
    np.add.at(deg, rows, np.abs(vals))
    np.add.at(deg, cols, np.abs(vals))
    rows += list(range(n))
    cols += list(range(n))
    vals = np.concatenate([vals, deg + 0.5])
    return from_triplets(n, np.array(rows), np.array(cols), vals)


@SLOW
@given(a=sparse_spd())
def test_analyze_invariants(a):
    sym = analyze(a)
    n = a.n
    # permutation is a bijection (validated by Permutation) of the right size
    assert sym.perm.n == n
    # postordered etree: parent strictly above child
    for j, p in enumerate(sym.etree_parent):
        assert p == NO_PARENT or j < p < n
    # pattern: diagonal-first, sorted, within range
    for j in range(n):
        col = sym.l_indices[sym.l_indptr[j] : sym.l_indptr[j + 1]]
        assert col[0] == j and np.all(np.diff(col) > 0) and col[-1] < n
    # supernodes partition the columns
    assert sym.partition.n == n
    # supernode trapezoid sanity
    for sn in sym.stree.supernodes:
        assert 1 <= sn.t <= sn.n


@SLOW
@given(a=sparse_spd())
def test_factor_and_solve_property(a):
    sym = analyze(a)
    f = cholesky_supernodal(sym)
    l = f.to_dense()
    np.testing.assert_allclose(l @ l.T, sym.a_perm.to_dense(), atol=1e-8)


@SLOW
@given(a=sparse_spd(), p_log=st.integers(0, 3), nrhs=st.integers(1, 3))
def test_parallel_solve_matches_direct(a, p_log, nrhs):
    p = 1 << p_log
    solver = ParallelSparseSolver(a, p=p, b=2).prepare()
    rng = np.random.default_rng(0)
    b = rng.normal(size=(a.n, nrhs))
    x, rep = solver.solve(b)
    assert rep.residual < 1e-8


@SLOW
@given(a=sparse_spd(max_n=30))
def test_separator_property(a):
    g = adjacency_from_matrix(a)
    sep = find_separator(g)
    assert is_valid_separation(g, sep)
    assert sep.left.size + sep.separator.size + sep.right.size == g.n


@SLOW
@given(a=sparse_spd(max_n=30), method=st.sampled_from(["nested_dissection", "minimum_degree", "rcm"]))
def test_ordering_is_permutation(a, method):
    p = order(a, method)
    assert np.array_equal(np.sort(p.perm), np.arange(a.n))


@st.composite
def random_dag(draw):
    nproc = draw(st.integers(1, 6))
    ntasks = draw(st.integers(1, 30))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    g = TaskGraph(nproc=nproc)
    for k in range(ntasks):
        g.add_task(int(rng.integers(nproc)), float(rng.uniform(0, 1)), priority=(k,))
    for dst in range(1, ntasks):
        for _ in range(int(rng.integers(0, 3))):
            src = int(rng.integers(0, dst))
            g.add_edge(src, dst, words=float(rng.integers(0, 100)))
    return g


@SLOW
@given(g=random_dag())
def test_simulator_invariants(g):
    spec = MachineSpec(t_flop=1e-6, t_s=1e-5, t_w=1e-6, t_call=0.0, topology="full")
    r = simulate(g, spec)
    # makespan bounds
    assert r.makespan >= critical_path(g, spec) - 1e-9
    assert r.makespan >= g.total_work() / g.nproc - 1e-9
    assert r.makespan <= g.total_work() + sum(
        spec.message_time(e.words) for e in g.edges
    ) + 1e-9
    # per-task causality
    for e in g.edges:
        assert r.start[e.dst] >= r.finish[e.src] - 1e-12 or g.tasks[e.src].proc == g.tasks[e.dst].proc
    # busy-time conservation
    for p in range(g.nproc):
        assert 0 <= r.busy[p] <= r.makespan + 1e-9


@SLOW
@given(
    n=st.integers(1, 40),
    t_frac=st.floats(0.1, 1.0),
    b=st.integers(1, 8),
    q_log=st.integers(0, 3),
)
def test_supernode_blocks_partition_property(n, t_frac, b, q_log):
    from repro.core.blocks import SupernodeBlocks
    from repro.mapping.subtree_subcube import ProcSet

    t = max(1, int(n * t_frac))
    blocks = SupernodeBlocks(n=n, t=t, b=b, procs=ProcSet(0, 1 << q_log))
    covered = []
    for k in range(blocks.nblocks):
        lo, hi = blocks.bounds(k)
        assert lo < hi
        # no block straddles the triangle boundary
        assert hi <= t or lo >= t
        covered.extend(range(lo, hi))
    assert covered == list(range(n))
