"""Property-based serving tests: random arrival schedules, exact answers.

Hypothesis drives randomly generated request schedules — arbitrary
interleavings of submissions, fake-clock advances, and pump calls —
through a manual-pump :class:`SolveService` and asserts the service's
one contract: **every request is answered exactly once, and the answer
is bitwise identical to the standalone ``backend="fused"`` solve of the
same right-hand side.**  Batch composition varies wildly across
schedules (that is the point); the answers may not.

Everything runs on the fake clock — no threads, no sleeps, no flakes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import solve_fused
from repro.numeric.supernodal import cholesky_supernodal
from repro.serve import FakeClock, QueueFullError, SolveService
from repro.sparse.generators import grid2d_laplacian
from repro.symbolic.analyze import analyze

pytestmark = pytest.mark.serve

_A = grid2d_laplacian(7)
_FACTOR = cholesky_supernodal(analyze(_A))
_N = _A.n

# One schedule step: submit a request of some width, advance the clock,
# or pump whatever is due.  Weights keep schedules submission-heavy so
# batches actually form.
_STEP = st.one_of(
    st.tuples(st.just("submit"), st.integers(min_value=1, max_value=3)),
    st.tuples(st.just("advance"), st.floats(min_value=0.0, max_value=2.0,
                                            allow_nan=False)),
    st.tuples(st.just("pump"), st.just(0)),
)


@settings(max_examples=40, deadline=None)
@given(
    steps=st.lists(_STEP, min_size=1, max_size=40),
    max_batch=st.integers(min_value=1, max_value=8),
    max_wait=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    idle_frac=st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0,
                                             allow_nan=False)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_random_schedules_answer_every_request_exactly_once_bitwise(
    steps, max_batch, max_wait, idle_frac, seed
):
    rng = np.random.default_rng(seed)
    clk = FakeClock()
    service = SolveService(
        backend="fused",
        max_batch=max_batch,
        max_wait=max_wait,
        idle_wait=None if idle_frac is None else idle_frac * max_wait,
        max_queue=16 * max_batch,
        clock=clk,
    )
    service.register("m", _FACTOR)
    accepted = []  # (rhs, future) pairs the service took responsibility for
    rejected = 0
    try:
        for op, arg in steps:
            if op == "submit":
                width = min(arg, max_batch)
                b = rng.normal(size=(_N, width))
                rhs = b[:, 0] if width == 1 else b
                try:
                    accepted.append((rhs, service.submit(rhs, key="m")))
                except QueueFullError:
                    rejected += 1
            elif op == "advance":
                clk.advance(arg)
                service.pump_until_idle()
            else:
                service.pump()
    finally:
        service.close()  # drains: every accepted request must resolve

    report = service.report()
    # Exactly once: every accepted future is done, none cancelled/failed.
    assert all(fut.done() for _, fut in accepted)
    assert report.submitted == len(accepted)
    assert report.completed == len(accepted)
    assert report.failed == 0 and report.cancelled == 0
    assert report.rejected == rejected
    assert report.total_columns == sum(
        1 if rhs.ndim == 1 else rhs.shape[1] for rhs, _ in accepted
    )
    assert service.pending_columns == 0

    # Bitwise transparency against the standalone fused solve.
    for rhs, fut in accepted:
        got = fut.result(timeout=0)
        assert got.shape == rhs.shape
        assert np.array_equal(got, solve_fused(_FACTOR, rhs))

    # No batch ever exceeded the width bound.
    assert all(b.columns <= max_batch for b in report.batches)
