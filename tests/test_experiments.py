"""Smoke + shape tests for the experiment drivers (using small workloads;
the full paper-scale runs live in benchmarks/)."""

import numpy as np
import pytest

from repro.analysis.models import figure5_table
from repro.experiments.fig5 import isoefficiency_experiment
from repro.experiments.fig7 import fig7_rows, format_fig7
from repro.experiments.fig8 import fig8_series, format_fig8
from repro.experiments.matrices import WORKLOADS, get_workload, prepared
from repro.experiments.scaling import scaling_law_experiment


class TestRegistry:
    def test_five_paper_matrices_registered(self):
        paper = {w.paper_name for w in WORKLOADS.values()}
        assert {"BCSSTK15", "BCSSTK31", "HSCT21954", "CUBE35", "COPTER2"} <= paper

    def test_get_workload_unknown(self):
        with pytest.raises(ValueError):
            get_workload("bcsstk99")

    def test_kinds_match_paper_classes(self):
        assert get_workload("bcsstk15").kind == "2d"
        assert get_workload("cube35").kind == "3d"

    def test_prepared_caches_factorization(self):
        s1 = prepared("grid2d-small", 1)
        s2 = prepared("grid2d-small", 4)
        assert s1.factor is s2.factor  # shared, not recomputed
        assert s2.p == 4

    def test_prepared_solver_works(self, rng):
        solver = prepared("grid2d-small", 4)
        b = rng.normal(size=solver.a.n)
        _, rep = solver.solve(b)
        assert rep.residual < 1e-10


class TestFig7Driver:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig7_rows("grid2d-small", ps=(1, 4), nrhs_list=(1, 10))

    def test_row_grid_complete(self, rows):
        assert len(rows) == 4
        assert {(r.p, r.nrhs) for r in rows} == {(1, 1), (1, 10), (4, 1), (4, 10)}

    def test_all_residuals_tiny(self, rows):
        assert all(r.residual < 1e-10 for r in rows)

    def test_parallel_faster_than_serial(self, rows):
        t1 = next(r for r in rows if (r.p, r.nrhs) == (1, 1)).fbsolve_seconds
        t4 = next(r for r in rows if (r.p, r.nrhs) == (4, 1)).fbsolve_seconds
        assert t4 < t1

    def test_nrhs_raises_mflops(self, rows):
        m1 = next(r for r in rows if (r.p, r.nrhs) == (1, 1)).fbsolve_mflops
        m10 = next(r for r in rows if (r.p, r.nrhs) == (1, 10)).fbsolve_mflops
        assert m10 > 2 * m1

    def test_redistribution_ratio_bounded(self, rows):
        """Paper Section 4: redistribution <= 0.9x FBsolve time (NRHS=1)."""
        for r in rows:
            if r.nrhs == 1:
                assert r.redistribution_ratio <= 0.9

    def test_format_contains_paper_fields(self, rows):
        text = format_fig7(rows)
        assert "Factorization MFLOPS" in text
        assert "FBsolve time" in text
        assert "NRHS" in text


class TestFig8Driver:
    @pytest.fixture(scope="class")
    def series(self):
        return fig8_series("grid2d-small", ps=(1, 4, 16), nrhs_list=(1, 30))

    def test_series_shapes(self, series):
        assert len(series) == 2
        assert all(len(s.mflops) == 3 for s in series)

    def test_higher_nrhs_curve_dominates(self, series):
        lo = next(s for s in series if s.nrhs == 1)
        hi = next(s for s in series if s.nrhs == 30)
        assert all(h > l for h, l in zip(hi.mflops, lo.mflops))

    def test_performance_grows_with_p_initially(self, series):
        for s in series:
            assert s.mflops[1] > s.mflops[0]

    def test_format(self, series):
        text = format_fig8(series)
        assert "NRHS=1" in text and "NRHS=30" in text


class TestIsoefficiencyExperiment:
    def test_simulated_trisolve_exponent_superlinear(self):
        """At small simulated scales the exponent is noisy, but it must
        already be clearly superlinear (the paper's W ~ p^2 trend)."""
        res = isoefficiency_experiment(
            kind="2d", system="trisolve", ps=(2, 4, 8), target_e=0.55, size_lo=4, size_hi=64
        )
        assert res.exponent > 1.3

    @pytest.mark.parametrize("kind,expect", [("2d", 2.0), ("3d", 2.0)])
    def test_model_trisolve_exponent_is_two(self, kind, expect):
        """Equations 5/9: W ~ p^2 for the parallel triangular solver."""
        res = isoefficiency_experiment(
            kind=kind, system="trisolve-model", ps=(64, 128, 256, 512, 1024), target_e=0.5
        )
        assert res.exponent == pytest.approx(expect, abs=0.35)

    def test_factor_scales_better_than_solve(self):
        """Figure 5: factorization isoefficiency p^1.5 beats the solver's
        p^2 (asymptotically, via the closed-form models)."""
        solve = isoefficiency_experiment(
            kind="2d", system="trisolve-model", ps=(64, 128, 256, 512, 1024), target_e=0.5
        )
        factor = isoefficiency_experiment(
            kind="2d", system="factor-model", ps=(64, 128, 256, 512, 1024), target_e=0.5
        )
        assert factor.exponent == pytest.approx(1.5, abs=0.3)
        assert factor.exponent < solve.exponent - 0.2

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            isoefficiency_experiment(system="sorting")


class TestScalingLaws:
    def test_measured_tracks_model_shape(self):
        pts = scaling_law_experiment(kind="2d", sizes=(12, 20), ps=(1, 4, 16))
        # at fixed N, both measured and modeled improve from p=1 to p=4
        for n in {p.n for p in pts}:
            series = sorted((p for p in pts if p.n == n), key=lambda r: r.p)
            assert series[1].measured_seconds < series[0].measured_seconds
            assert series[1].model_seconds < series[0].model_seconds

    def test_larger_problems_take_longer(self):
        pts = scaling_law_experiment(kind="2d", sizes=(12, 20), ps=(1,))
        by_n = sorted(pts, key=lambda r: r.n)
        assert by_n[1].measured_seconds > by_n[0].measured_seconds


class TestFigure5:
    def test_table_regenerates(self):
        assert len(figure5_table()) == 6
