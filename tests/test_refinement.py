"""Iterative refinement on top of the parallel solver."""

import numpy as np
import pytest

from repro.core.solver import ParallelSparseSolver
from repro.sparse.generators import grid2d_laplacian
from tests.conftest import clone_for_p


class TestRefinement:
    def test_refinement_does_not_hurt(self, prepared_grid12, rng):
        b = rng.normal(size=prepared_grid12.a.n)
        _, rep0 = prepared_grid12.solve(b, refine=0)
        _, rep2 = prepared_grid12.solve(b, refine=2)
        assert rep2.residual <= rep0.residual * 10  # already ~machine eps

    def test_refinement_reduces_large_residual(self, rng):
        """Perturb the factor to create a sloppy solve; refinement with the
        perturbed factor still contracts the error because the residual is
        computed with the exact A."""
        a = grid2d_laplacian(10)
        solver = ParallelSparseSolver(a, p=4).prepare()
        # inject a small perturbation into one supernode block
        blk = solver.factor.blocks[len(solver.factor.blocks) // 2]
        blk += 1e-4 * np.sign(blk)
        b = rng.normal(size=a.n)
        _, rep0 = solver.solve(b, refine=0)
        _, rep3 = solver.solve(b, refine=3)
        assert rep3.residual < rep0.residual / 10

    def test_refinement_time_accumulates(self, prepared_grid12, rng):
        b = rng.normal(size=prepared_grid12.a.n)
        _, rep0 = prepared_grid12.solve(b, refine=0, check=False)
        _, rep2 = prepared_grid12.solve(b, refine=2, check=False)
        assert rep2.fbsolve_seconds == pytest.approx(3 * rep0.fbsolve_seconds, rel=0.05)

    def test_refined_flops_scale(self, prepared_grid12, rng):
        b = rng.normal(size=prepared_grid12.a.n)
        _, rep0 = prepared_grid12.solve(b, refine=0, check=False)
        _, rep1 = prepared_grid12.solve(b, refine=1, check=False)
        assert rep1.forward.flops == 2 * rep0.forward.flops

    def test_negative_refine_rejected(self, prepared_grid12):
        with pytest.raises(ValueError):
            prepared_grid12.solve(np.ones(prepared_grid12.a.n), refine=-1)

    def test_refinement_parallel_matches_serial(self, prepared_grid12, rng):
        b = rng.normal(size=(prepared_grid12.a.n, 2))
        x1, _ = prepared_grid12.solve(b, refine=1)
        s8 = clone_for_p(prepared_grid12, 8)
        x8, _ = s8.solve(b, refine=1)
        np.testing.assert_allclose(x1, x8, atol=1e-11)
