"""Column-slice invariance of the canonical dense kernels.

The serving layer's transparency promise — a request's answer is bitwise
identical whatever batch it lands in — reduces to one property of the
kernels in :mod:`repro.numeric.kernels`: column ``j`` of every
``m``-column result equals the 1-column result on column ``j`` alone,
bit for bit, for every ``m``.  These tests pin that property directly,
including the empirical fact that motivated :func:`rect_apply` /
:func:`rect_apply_t` existing at all: BLAS ``dtrsm`` IS width-invariant
on this machine, while a plain GEMM is not guaranteed to be.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.numeric.kernels import (
    rect_apply,
    rect_apply_t,
    solve_lower,
    solve_lower_t,
    unit_dot,
)

WIDTHS = (2, 3, 4, 7, 16, 33)


def _rng():
    return np.random.default_rng(42)


def _lower(rng, t):
    diag = np.tril(rng.normal(size=(t, t)))
    diag[np.diag_indices(t)] = np.abs(diag[np.diag_indices(t)]) + 1.0
    return diag


@pytest.mark.parametrize("t", [1, 2, 5, 17, 64])
@pytest.mark.parametrize("m", WIDTHS)
def test_solve_lower_column_slice_invariant(t, m):
    rng = _rng()
    diag = _lower(rng, t)
    top = rng.normal(size=(t, m))
    wide = solve_lower(diag, top)
    for j in range(m):
        narrow = solve_lower(diag, top[:, j : j + 1])
        assert np.array_equal(wide[:, j : j + 1], narrow)


@pytest.mark.parametrize("t", [1, 2, 5, 17, 64])
@pytest.mark.parametrize("m", WIDTHS)
def test_solve_lower_t_column_slice_invariant(t, m):
    rng = _rng()
    diag = _lower(rng, t)
    top = rng.normal(size=(t, m))
    wide = solve_lower_t(diag, top)
    for j in range(m):
        narrow = solve_lower_t(diag, top[:, j : j + 1])
        assert np.array_equal(wide[:, j : j + 1], narrow)


@pytest.mark.parametrize("nb,t", [(1, 1), (3, 1), (7, 2), (20, 5), (64, 17), (150, 33)])
@pytest.mark.parametrize("m", WIDTHS)
def test_rect_apply_column_slice_invariant(nb, t, m):
    rng = _rng()
    rect = rng.normal(size=(nb, t))
    solved = rng.normal(size=(t, m))
    wide = rect_apply(rect, solved)
    for j in range(m):
        narrow = rect_apply(rect, solved[:, j : j + 1])
        assert np.array_equal(wide[:, j : j + 1], narrow)


@pytest.mark.parametrize("nb,t", [(1, 1), (3, 1), (7, 2), (20, 5), (64, 17), (150, 33)])
@pytest.mark.parametrize("m", WIDTHS)
def test_rect_apply_t_column_slice_invariant(nb, t, m):
    rng = _rng()
    rect = rng.normal(size=(nb, t))
    xg = rng.normal(size=(nb, m))
    wide = rect_apply_t(rect, xg)
    for j in range(m):
        narrow = rect_apply_t(rect, xg[:, j : j + 1])
        assert np.array_equal(wide[:, j : j + 1], narrow)


def test_rect_apply_workspace_matches_allocating_path():
    rng = _rng()
    rect = rng.normal(size=(40, 9))
    solved = rng.normal(size=(9, 6))
    out = np.full((40, 6), np.nan)
    tmp = np.full((40, 6), np.nan)
    got = rect_apply(rect, solved, out=out, tmp=tmp)
    assert got is out
    assert np.array_equal(out, rect_apply(rect, solved))


def test_rect_apply_t_workspace_matches_allocating_path():
    rng = _rng()
    rect = rng.normal(size=(40, 9))
    xg = rng.normal(size=(40, 6))
    out = np.full((9, 6), np.nan)
    tmp = np.full((40, 6), np.nan)
    got = rect_apply_t(rect, xg, out=out, tmp=tmp)
    assert got is out
    assert np.array_equal(out, rect_apply_t(rect, xg))


def test_rect_apply_t_width1_matches_unit_dot():
    """The t=1 rectangle path and unit_dot are the same reduction."""
    rng = _rng()
    rect = rng.normal(size=(30, 1))
    xg = rng.normal(size=(30, 5))
    assert np.array_equal(rect_apply_t(rect, xg), unit_dot(rect, xg))


def test_rect_apply_matches_gemm_to_rounding():
    """Fixed-order accumulation is still the same product numerically."""
    rng = _rng()
    rect = rng.normal(size=(50, 12))
    solved = rng.normal(size=(12, 8))
    np.testing.assert_allclose(rect_apply(rect, solved), rect @ solved, rtol=1e-13)
    xg = rng.normal(size=(50, 8))
    np.testing.assert_allclose(rect_apply_t(rect, xg), rect.T @ xg, rtol=1e-13)


def test_dtrsm_width_invariance_assumption_holds():
    """Pin the empirical BLAS fact the design note in kernels.py relies on.

    solve_lower/solve_lower_t call dtrsm directly for t > 1, so the
    kernel contract silently assumes this BLAS's dtrsm picks the same
    per-column rounding at every RHS width.  If a BLAS upgrade ever
    breaks that, this test localises the failure to the assumption
    rather than leaving a mysterious transparency regression.
    """
    from scipy.linalg.blas import dtrsm

    rng = _rng()
    for t in (8, 37, 96):
        diag = _lower(rng, t)
        top = rng.normal(size=(t, 24))
        for trans in (0, 1):
            wide = dtrsm(1.0, diag, top, lower=1, trans_a=trans)
            for j in (0, 11, 23):
                narrow = dtrsm(1.0, diag, top[:, j : j + 1], lower=1, trans_a=trans)
                assert np.array_equal(wide[:, j : j + 1], narrow)
