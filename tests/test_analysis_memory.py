import numpy as np
import pytest

from repro.analysis.memory import (
    factor_words_per_processor,
    memory_balance,
    multifrontal_peak_words,
    peak_to_factor_ratio,
    supernode_factor_words,
)
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.symbolic.analyze import analyze
from repro.sparse.generators import fe_mesh_2d, grid2d_laplacian, grid3d_laplacian


class TestFactorStorage:
    def test_supernode_words(self):
        # 4-wide, 6-tall trapezoid: triangle 10 + rectangle 8
        assert supernode_factor_words(6, 4) == 10 + 8

    def test_total_matches_factor_nnz(self, sym_grid8):
        assign = subtree_to_subcube(sym_grid8.stree, 4)
        words = factor_words_per_processor(sym_grid8.stree, assign)
        assert words.sum() == pytest.approx(float(sym_grid8.stree.factor_nnz()))

    def test_per_processor_share_shrinks_with_p(self):
        """The paper's memory motivation: max per-processor storage ~1/p."""
        a = fe_mesh_2d(24, seed=8)
        stree = analyze(a).stree
        m1 = factor_words_per_processor(stree, subtree_to_subcube(stree, 1)).max()
        m16 = factor_words_per_processor(stree, subtree_to_subcube(stree, 16)).max()
        assert m16 < m1 / 6  # close to 1/16 up to imbalance

    def test_balance_reasonable(self):
        a = fe_mesh_2d(24, seed=8)
        stree = analyze(a).stree
        assert memory_balance(stree, subtree_to_subcube(stree, 8)) < 2.0

    def test_mismatched_assignment(self, sym_grid8):
        with pytest.raises(ValueError):
            factor_words_per_processor(sym_grid8.stree, [])


class TestMultifrontalPeak:
    def test_peak_at_least_largest_front(self, sym_grid3d5):
        stree = sym_grid3d5.stree
        biggest = max(sn.n * sn.n for sn in stree.supernodes)
        assert multifrontal_peak_words(stree) >= biggest

    def test_peak_at_least_factor_size_order(self, sym_grid8):
        ratio = peak_to_factor_ratio(sym_grid8.stree)
        assert 0.3 < ratio < 10.0

    def test_3d_peak_ratio_larger_than_2d(self):
        """3-D problems have relatively larger fronts (N^{2/3} root
        separator), so the stack overhead ratio is higher."""
        r2 = peak_to_factor_ratio(analyze(grid2d_laplacian(12)).stree)
        r3 = peak_to_factor_ratio(analyze(grid3d_laplacian(6)).stree)
        assert r3 > r2

    def test_peak_conservation(self, sym_grid8):
        """Running the real multifrontal factorization never allocates a
        front bigger than the predicted peak."""
        from repro.numeric.supernodal import cholesky_supernodal

        peak = multifrontal_peak_words(sym_grid8.stree)
        cholesky_supernodal(sym_grid8)  # must succeed within modeled memory
        biggest_front = max(sn.n * sn.n for sn in sym_grid8.stree.supernodes)
        assert peak >= biggest_front
