"""SPMD sparse forward solver vs the task-graph implementation."""

import numpy as np
import pytest

from repro.core.forward import parallel_forward
from repro.core.spmd_forward import spmd_forward
from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.numeric.trisolve import forward_supernodal
from repro.sparse.generators import fe_mesh_2d, grid2d_laplacian, grid3d_laplacian


@pytest.fixture(scope="module")
def setup():
    a = grid2d_laplacian(11)
    base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
    rng = np.random.default_rng(9)
    b = rng.normal(size=(a.n, 2))
    bp = base.symbolic.perm.apply_to_vector(b)
    return base, bp, forward_supernodal(base.factor, bp)


class TestSpmdForwardCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_matches_serial(self, setup, p):
        base, bp, y_ref = setup
        assign = subtree_to_subcube(base.symbolic.stree, p)
        y, _ = spmd_forward(base.factor, assign, cray_t3d(), bp, b=4, nproc=p)
        np.testing.assert_allclose(y, y_ref, atol=1e-12)

    @pytest.mark.parametrize("b", [1, 3, 8, 32])
    def test_block_size_invariant(self, setup, b):
        base, bp, y_ref = setup
        assign = subtree_to_subcube(base.symbolic.stree, 8)
        y, _ = spmd_forward(base.factor, assign, cray_t3d(), bp, b=b, nproc=8)
        np.testing.assert_allclose(y, y_ref, atol=1e-12)

    def test_vector_rhs_shape(self, setup):
        base, bp, y_ref = setup
        assign = subtree_to_subcube(base.symbolic.stree, 4)
        y, _ = spmd_forward(base.factor, assign, cray_t3d(), bp[:, 0], nproc=4)
        assert y.ndim == 1
        np.testing.assert_allclose(y, y_ref[:, 0], atol=1e-12)

    def test_3d_matrix(self, rng):
        a = grid3d_laplacian(5)
        base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        bp = base.symbolic.perm.apply_to_vector(rng.normal(size=a.n))
        y_ref = forward_supernodal(base.factor, bp)
        assign = subtree_to_subcube(base.symbolic.stree, 8)
        y, _ = spmd_forward(base.factor, assign, cray_t3d(), bp, nproc=8)
        np.testing.assert_allclose(y, y_ref, atol=1e-12)


class TestSpmdVsTaskGraph:
    def test_timings_same_ballpark(self, setup):
        """Two independently structured implementations of the same
        algorithm must agree on the machine-time scale."""
        base, bp, _ = setup
        for p in (2, 8):
            assign = subtree_to_subcube(base.symbolic.stree, p)
            _, spmd_res = spmd_forward(base.factor, assign, cray_t3d(), bp, nproc=p)
            _, tg_res = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=p)
            ratio = spmd_res.makespan / tg_res.makespan
            assert 0.4 < ratio < 2.5, f"p={p}: spmd/taskgraph ratio {ratio}"

    def test_spmd_speedup(self):
        a = fe_mesh_2d(24, seed=30)
        base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        rng = np.random.default_rng(1)
        bp = base.symbolic.perm.apply_to_vector(rng.normal(size=(a.n, 1)))
        times = {}
        for p in (1, 8):
            assign = subtree_to_subcube(base.symbolic.stree, p)
            _, res = spmd_forward(base.factor, assign, cray_t3d(), bp, nproc=p)
            times[p] = res.makespan
        assert times[8] < times[1] / 2

    def test_message_counts_comparable(self, setup):
        """Full-ring circulation sends somewhat more messages than the
        trimmed task-graph relays — but within a small factor."""
        base, bp, _ = setup
        assign = subtree_to_subcube(base.symbolic.stree, 8)
        _, spmd_res = spmd_forward(base.factor, assign, cray_t3d(), bp, nproc=8)
        _, tg_res = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=8)
        assert tg_res.message_count <= spmd_res.message_count <= 3 * tg_res.message_count
