import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.flops import cholesky_flops, gemm_flops, supernode_solve_flops, trsm_flops


class TestTrsmFlops:
    def test_single_rhs(self):
        assert trsm_flops(4) == 16

    def test_scales_linearly_with_rhs(self):
        assert trsm_flops(4, 10) == 10 * trsm_flops(4)

    def test_empty(self):
        assert trsm_flops(0) == 0


class TestGemmFlops:
    def test_known_value(self):
        assert gemm_flops(3, 5, 2) == 2 * 3 * 5 * 2

    def test_degenerate(self):
        assert gemm_flops(0, 5) == 0


class TestCholeskyFlops:
    def test_cubic_growth(self):
        assert cholesky_flops(20) > 8 * cholesky_flops(10) * 0.8

    def test_positive(self):
        assert cholesky_flops(1) > 0


class TestSupernodeSolveFlops:
    def test_triangle_only(self):
        # n == t: no rectangle, pure triangular solve
        assert supernode_solve_flops(4, 4) == trsm_flops(4)

    def test_decomposes(self):
        n, t, m = 10, 4, 3
        assert supernode_solve_flops(n, t, m) == trsm_flops(t, m) + gemm_flops(n - t, t, m)

    def test_rejects_t_above_n(self):
        with pytest.raises(ValueError):
            supernode_solve_flops(3, 4)

    def test_rejects_negative_t(self):
        with pytest.raises(ValueError):
            supernode_solve_flops(3, -1)


@given(
    n=st.integers(1, 200),
    t=st.integers(1, 200),
    m=st.integers(1, 40),
)
def test_solve_flops_match_dense_operation_count(n, t, m):
    """Property: flop formula equals the count of the actual dense ops."""
    if t > n:
        t, n = n, t
    # triangular solve on t x t with m rhs = t^2 m; gemm (n-t) x t x m = 2(n-t)tm
    expected = t * t * m + 2 * (n - t) * t * m
    assert supernode_solve_flops(n, t, m) == expected


def test_flops_agree_with_numpy_shapes():
    """The formulas describe ops that numpy actually performs; sanity check
    with einsum path counting on a tiny instance."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=(6, 4))
    x = rng.normal(size=(4, 2))
    assert gemm_flops(6, 4, 2) == 2 * a.shape[0] * a.shape[1] * x.shape[1]
