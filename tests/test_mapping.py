import numpy as np
import pytest

from repro.machine.presets import cray_t3d
from repro.mapping.layouts import BlockCyclic1D, BlockCyclic2D
from repro.mapping.redistribution import (
    redistribute_supernode,
    redistribution_time,
    total_redistribution_time,
)
from repro.mapping.subtree_subcube import ProcSet, subtree_to_subcube
from repro.symbolic.analyze import analyze


class TestProcSet:
    def test_basic(self):
        ps = ProcSet(4, 4)
        assert ps.stop == 8
        assert list(ps.ranks()) == [4, 5, 6, 7]
        assert 5 in ps and 8 not in ps

    def test_halves(self):
        lo, hi = ProcSet(0, 8).halves()
        assert (lo.start, lo.size) == (0, 4)
        assert (hi.start, hi.size) == (4, 4)

    def test_halve_singleton_rejected(self):
        with pytest.raises(ValueError):
            ProcSet(0, 1).halves()

    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            ProcSet(0, 3)


class TestSubtreeToSubcube:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_every_supernode_assigned(self, sym_grid8, p):
        assign = subtree_to_subcube(sym_grid8.stree, p)
        assert len(assign) == sym_grid8.stree.nsuper
        for ps in assign:
            assert 0 <= ps.start and ps.stop <= p

    def test_root_gets_all_processors(self, sym_grid8):
        assign = subtree_to_subcube(sym_grid8.stree, 8)
        for root in sym_grid8.stree.roots():
            assert assign[root] == ProcSet(0, 8)

    def test_child_subcube_within_parent(self, sym_grid8):
        assign = subtree_to_subcube(sym_grid8.stree, 8)
        stree = sym_grid8.stree
        for s in range(stree.nsuper):
            for c in stree.children[s]:
                child, parent = assign[c], assign[s]
                assert parent.start <= child.start and child.stop <= parent.stop

    def test_sibling_subcubes_disjoint_when_split(self, sym_grid3d5):
        assign = subtree_to_subcube(sym_grid3d5.stree, 16)
        stree = sym_grid3d5.stree
        for s in range(stree.nsuper):
            kids = stree.children[s]
            if assign[s].size >= 2 and len(kids) >= 2:
                # two heaviest children land on disjoint halves
                ranges = [(assign[c].start, assign[c].stop) for c in kids]
                # at least two children must not share the same subcube
                assert len(set(ranges)) >= 2

    def test_sequential_subtree_stays_on_one_proc(self, sym_grid8):
        assign = subtree_to_subcube(sym_grid8.stree, 4)
        stree = sym_grid8.stree
        for s in range(stree.nsuper):
            if assign[s].size == 1:
                for c in stree.children[s]:
                    assert assign[c] == assign[s]

    def test_p1_all_on_proc_zero(self, sym_grid8):
        assign = subtree_to_subcube(sym_grid8.stree, 1)
        assert all(ps == ProcSet(0, 1) for ps in assign)

    def test_level_q_matches_paper(self, sym_grid8):
        """A supernode at tree level l gets about p / 2^l processors
        (exactly, for a balanced binary tree)."""
        p = 8
        assign = subtree_to_subcube(sym_grid8.stree, p)
        stree = sym_grid8.stree
        for s in range(stree.nsuper):
            q = assign[s].size
            lvl = int(stree.level[s])
            assert q <= max(p >> lvl, 1) * 2  # allow slack for imbalance

    def test_rejects_non_power_of_two(self, sym_grid8):
        with pytest.raises(ValueError):
            subtree_to_subcube(sym_grid8.stree, 6)


class TestBlockCyclic1D:
    def test_owner_round_robin(self):
        lay = BlockCyclic1D(n=20, b=4, procs=ProcSet(0, 2))
        assert [lay.owner_of_block(k) for k in range(5)] == [0, 1, 0, 1, 0]

    def test_offset_proc_set(self):
        lay = BlockCyclic1D(n=8, b=4, procs=ProcSet(4, 2))
        assert lay.owner_of_block(0) == 4
        assert lay.owner_of_block(1) == 5

    def test_items_partition(self):
        lay = BlockCyclic1D(n=13, b=3, procs=ProcSet(0, 4))
        all_items = sorted(i for r in range(4) for i in lay.items_of(r))
        assert all_items == list(range(13))

    def test_owner_of_item_consistent(self):
        lay = BlockCyclic1D(n=13, b=3, procs=ProcSet(0, 4))
        for i in range(13):
            assert i in lay.items_of(lay.owner_of_item(i))


class TestBlockCyclic2D:
    def test_grid_square_for_even_log(self):
        assert BlockCyclic2D(n=8, t=8, b=2, procs=ProcSet(0, 16)).grid == (4, 4)

    def test_grid_tall_for_odd_log(self):
        assert BlockCyclic2D(n=8, t=8, b=2, procs=ProcSet(0, 8)).grid == (4, 2)

    def test_owner_in_range(self):
        lay = BlockCyclic2D(n=16, t=8, b=2, procs=ProcSet(0, 8))
        owners = {
            lay.owner_of_block(i, j)
            for i in range(lay.nrow_blocks)
            for j in range(lay.ncol_blocks)
        }
        assert owners <= set(range(8))
        assert len(owners) == 8  # all procs used for a big enough block grid

    def test_words_per_proc(self):
        lay = BlockCyclic2D(n=16, t=8, b=2, procs=ProcSet(0, 8))
        assert lay.words_per_proc() == 16 * 8 / 8


class TestRedistribution:
    def test_data_movement_correct(self, rng):
        n, t, q = 16, 8, 4
        block = rng.normal(size=(n, t))
        l2 = BlockCyclic2D(n=n, t=t, b=2, procs=ProcSet(0, q))
        l1 = BlockCyclic1D(n=n, b=2, procs=ProcSet(0, q))
        pieces, traffic = redistribute_supernode(block, l2, l1)
        for rank in range(q):
            np.testing.assert_allclose(pieces[rank], block[l1.items_of(rank), :])
        assert sum(traffic.values()) == n * t  # every element moved or kept

    def test_traffic_has_offdiagonal(self, rng):
        block = rng.normal(size=(8, 8))
        l2 = BlockCyclic2D(n=8, t=8, b=2, procs=ProcSet(0, 4))
        l1 = BlockCyclic1D(n=8, b=2, procs=ProcSet(0, 4))
        _, traffic = redistribute_supernode(block, l2, l1)
        assert any(src != dst for src, dst in traffic)

    def test_time_zero_for_single_proc(self):
        assert redistribution_time(cray_t3d(), 64, 16, ProcSet(0, 1)) == 0.0

    def test_time_scales_with_data(self):
        spec = cray_t3d()
        t1 = redistribution_time(spec, 64, 16, ProcSet(0, 16))
        t2 = redistribution_time(spec, 128, 32, ProcSet(0, 16))
        assert t2 > 2 * t1

    def test_time_decreases_with_more_procs(self):
        """More processors -> less data per processor -> cheaper exchange
        (for fixed supernode size, in the bandwidth-dominated regime)."""
        spec = cray_t3d().with_(t_s=0.0)
        t4 = redistribution_time(spec, 256, 64, ProcSet(0, 4))
        t64 = redistribution_time(spec, 256, 64, ProcSet(0, 64))
        assert t64 < t4

    def test_total_redistribution_reasonable(self, sym_grid8):
        spec = cray_t3d()
        assign = subtree_to_subcube(sym_grid8.stree, 8)
        total = total_redistribution_time(spec, sym_grid8.stree, assign)
        assert total > 0.0

    def test_paper_claim_redistribution_below_solve(self):
        """Section 4 / Figure 7: redistribution costs at most ~0.9x the
        FBsolve time for one right-hand side (average ~0.5x on the T3D)."""
        import numpy as np

        from repro.core.solver import ParallelSparseSolver
        from repro.sparse.generators import grid2d_laplacian

        a = grid2d_laplacian(20)
        solver = ParallelSparseSolver(a, p=16).prepare()
        x, rep = solver.solve(np.ones(a.n), check=False)
        assert rep.redistribution_ratio <= 0.9
