"""The static schedule certifier: effects, happens-before, certificates."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.exec import certificate_for, clear_exec_caches, exec_cache_stats, plan_for
from repro.exec.plan import build_plan
from repro.sparse.generators import grid2d_laplacian, grid3d_laplacian
from repro.symbolic.analyze import analyze
from repro.verify import VerificationError
from repro.verify.effects import (
    READ,
    WRITE,
    X_SPACE,
    backward_effects,
    contrib_space,
    effect_conflicts,
    format_index_set,
    forward_effects,
)
from repro.verify.gate import run_schedule_certification
from repro.verify.schedule import certify_plan, plan_digest


@pytest.fixture(scope="module")
def sym():
    return analyze(grid2d_laplacian(6))


@pytest.fixture(scope="module")
def plan(sym):
    return build_plan(sym.stree, grain=64)


class TestEffects:
    def test_forward_covers_all_columns_once(self, sym, plan):
        writes = [
            e for e in forward_effects(plan) if e.space == X_SPACE and e.mode == WRITE
        ]
        rows = np.concatenate([e.rows for e in writes])
        assert sorted(rows.tolist()) == list(range(sym.stree.n))

    def test_every_contribution_written_and_read_once(self, plan):
        effects = forward_effects(plan)
        for st in plan.steps:
            if not st.below.size:
                continue
            touching = [e for e in effects if e.space == contrib_space(st.s)]
            assert sorted(e.mode for e in touching) == [READ, WRITE]
            w = next(e for e in touching if e.mode == WRITE)
            assert w.node == st.s
            np.testing.assert_array_equal(w.rows, st.below)

    def test_backward_reads_ancestor_rows(self, plan):
        effects = backward_effects(plan)
        by_node = {}
        for e in effects:
            if e.mode == READ and e.rows.size and e.space == X_SPACE:
                by_node.setdefault(e.node, []).append(e)
        for st in plan.steps:
            if st.below.size:
                reads = by_node[st.s]
                assert any(np.array_equal(e.rows, st.below) for e in reads)

    def test_conflicts_exclude_same_node_and_read_read(self, plan):
        for a, b, overlap in effect_conflicts(forward_effects(plan)):
            assert a.node != b.node
            assert WRITE in (a.mode, b.mode)
            assert overlap.size

    def test_format_index_set(self):
        assert format_index_set(np.array([], dtype=np.int64)) == "[]"
        assert format_index_set(np.array([3, 4, 5, 9])) == "[3..5, 9]"
        assert format_index_set(np.array([7])) == "[7]"


class TestCertifyClean:
    @pytest.mark.parametrize("grain", [0, 256, 4096])
    def test_grid_plans_certify_clean(self, sym, grain):
        plan = build_plan(sym.stree, grain=grain)
        cert = certify_plan(plan, sym.stree)
        assert cert.ok, cert.report.render()
        assert cert.nsuper == sym.stree.nsuper
        assert cert.ntasks == plan.ntasks

    def test_nrhs_does_not_change_verdict_or_digest(self, sym, plan):
        c1 = certify_plan(plan, sym.stree, nrhs=1)
        c4 = certify_plan(plan, sym.stree, nrhs=4)
        assert c1.ok and c4.ok
        assert c1.digest == c4.digest

    def test_digest_stable_across_rebuilds(self, sym):
        p1 = build_plan(sym.stree, grain=64)
        p2 = build_plan(sym.stree, grain=64)
        assert plan_digest(p1) == plan_digest(p2)

    def test_digest_distinguishes_schedules(self, sym):
        assert plan_digest(build_plan(sym.stree, grain=0)) != plan_digest(
            build_plan(sym.stree, grain=4096)
        )

    def test_bad_nrhs_rejected(self, sym, plan):
        with pytest.raises(ValueError):
            certify_plan(plan, sym.stree, nrhs=0)

    def test_gate_battery_certifies_clean(self):
        report = run_schedule_certification()
        assert report.ok, report.render()


class TestCertifyMutants:
    """Direct mutations beyond the seeded corpus (which has its own test)."""

    def test_dropped_task_parent_stalls_forward(self, sym, plan):
        task_parent = plan.task_parent.copy()
        ti = next(i for i in range(plan.ntasks) if task_parent[i] != -1)
        task_parent[ti] = -1
        mutant = dataclasses.replace(plan, task_parent=task_parent)
        report = certify_plan(mutant, sym.stree).report
        assert "schedule-dep-count" in report.rules()

    def test_missing_node_is_flagged(self, sym, plan):
        tasks = list(plan.tasks)
        ti = next(i for i, t in enumerate(tasks) if len(t.nodes) >= 2)
        t = tasks[ti]
        tasks[ti] = dataclasses.replace(t, nodes=t.nodes[1:])
        mutant = dataclasses.replace(plan, tasks=tasks)
        report = certify_plan(mutant, sym.stree).report
        assert "schedule-task-partition" in report.rules()

    def test_wrong_scatter_target_is_flagged(self, sym, plan):
        steps = list(plan.steps)
        si = next(
            i for i, st in enumerate(steps)
            if any(idx.size for idx in st.child_scatter)
        )
        st = steps[si]
        scatters = list(st.child_scatter)
        ci = next(i for i, idx in enumerate(scatters) if idx.size)
        idx = scatters[ci].copy()
        idx[0] += 1  # lands the contribution on the wrong parent row
        scatters[ci] = idx
        steps[si] = dataclasses.replace(st, child_scatter=tuple(scatters))
        mutant = dataclasses.replace(plan, steps=steps)
        report = certify_plan(mutant, sym.stree).report
        assert report.rules() & {
            "schedule-scatter-mismatch",
            "schedule-scatter-overlap",
            "schedule-scatter-bounds",
        }, report.render()

    def test_findings_name_the_conflicting_tasks(self, sym, plan):
        task_children = [list(c) for c in plan.task_children]
        tp = next(i for i in range(plan.ntasks) if task_children[i])
        dropped = task_children[tp].pop(0)
        mutant = dataclasses.replace(plan, task_children=task_children)
        report = certify_plan(mutant, sym.stree).report
        races = report.by_rule("schedule-race")
        assert races
        assert any(
            f"tasks {min(dropped, tp)} and {max(dropped, tp)}" in f.message
            for f in races
        ), report.render()


class TestCachedCertification:
    def test_plan_for_certify_true_is_memoized(self, sym):
        clear_exec_caches()
        plan_for(sym.stree, certify=True)
        misses = exec_cache_stats()["cert_misses"]
        plan_for(sym.stree, certify=True)
        stats = exec_cache_stats()
        assert stats["cert_misses"] == misses
        assert stats["cert_hits"] >= 1

    def test_certificate_for_matches_direct_certification(self, sym):
        clear_exec_caches()
        cert = certificate_for(sym.stree)
        direct = certify_plan(plan_for(sym.stree), sym.stree)
        assert cert.digest == direct.digest
        assert cert.ok


class TestSolveReportCertificate:
    def test_certificate_identical_across_worker_counts(self):
        from repro.core.solver import ParallelSparseSolver

        a = grid3d_laplacian(4)
        rng = np.random.default_rng(7)
        b = rng.normal(size=(a.n, 4))
        certs = set()
        xs = []
        for workers in (1, 2, 8):
            solver = ParallelSparseSolver(a, p=1).prepare()
            x, rep = solver.solve(b, backend="threads", workers=workers)
            assert rep.schedule_certificate is not None
            certs.add(rep.schedule_certificate)
            xs.append(x)
        assert len(certs) == 1
        assert np.array_equal(xs[0], xs[1]) and np.array_equal(xs[0], xs[2])

    def test_no_certificate_without_verify_or_off_threads(self):
        from repro.core.solver import ParallelSparseSolver

        a = grid2d_laplacian(5)
        b = np.ones(a.n)
        _, rep = ParallelSparseSolver(a, p=1, verify=False).prepare().solve(
            b, backend="threads"
        )
        assert rep.schedule_certificate is None
        _, rep = ParallelSparseSolver(a, p=1).prepare().solve(b, backend="serial")
        assert rep.schedule_certificate is None

    def test_certified_plan_failure_raises_verification_error(self, sym):
        # Corrupt the cached certificate's report: every later certified
        # call for this structure must fail loudly, not solve anyway.
        clear_exec_caches()
        cert = certificate_for(sym.stree)
        cert.report.add("schedule-race", "seeded for the test", location="test")
        with pytest.raises(VerificationError):
            plan_for(sym.stree, certify=True)
        clear_exec_caches()
        assert certificate_for(sym.stree).ok
