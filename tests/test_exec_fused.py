"""The fused level-program backend: bitwise agreement, zero-allocation
steady state, program/panel caching, and the program certifier.

The central claims under test, mirroring the engine battery in
``test_exec_engine.py``:

* fused solves are *bitwise* identical to the serial supernodal solvers
  and the threaded engine, for every problem class, NRHS width, and
  aggregation grain of the plan the program was compiled from;
* a second solve against a prepared factor runs entirely out of the
  workspace arena — no per-node array allocations;
* the compiled program earns a determinism certificate with the *same*
  digest as the threaded plan's, and the certifier rejects mutated
  programs.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.core.solver import ParallelSparseSolver
from repro.exec import (
    backward_fused,
    clear_exec_caches,
    compile_level_program,
    forward_fused,
    fused_certificate_for,
    fused_panels_for,
    plan_for,
    prepare_factor,
    program_for,
    solve_exec,
    solve_fused,
)
from repro.exec.arena import build_fused_workspace
from repro.exec.fused import _backward_levels, _forward_levels
from repro.exec.plan import build_plan
from repro.numeric.supernodal import cholesky_supernodal
from repro.numeric.trisolve import (
    backward_supernodal,
    forward_supernodal,
    solve_supernodal,
)
from repro.symbolic.analyze import analyze


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_exec_caches()
    yield
    clear_exec_caches()


@pytest.fixture(scope="module", params=["grid8", "grid3d5", "fe9", "rand60"])
def factored(request):
    a = request.getfixturevalue(request.param)
    sym = analyze(a)
    return a, sym, cholesky_supernodal(sym)


class TestBitwiseAgreement:
    """The one claim everything else rests on: one schedule, one answer."""

    @pytest.mark.parametrize("nrhs", [1, 4, 16])
    def test_bitwise_vs_serial_and_threads(self, factored, rng, nrhs):
        a, sym, factor = factored
        b = rng.normal(size=(a.n, nrhs))
        x_serial = solve_supernodal(factor, b)
        x_threads = solve_exec(factor, b, workers=2)
        x_fused = solve_fused(factor, b)
        assert np.array_equal(x_fused, x_serial), (
            "fused backend is not bitwise identical to the serial solver"
        )
        assert np.array_equal(x_fused, x_threads), (
            "fused backend is not bitwise identical to the threaded engine"
        )

    @pytest.mark.parametrize("grain", [0, 256, 4096])
    def test_bitwise_across_plan_grains(self, factored, rng, grain):
        # The level program is grain-invariant by construction; a program
        # compiled from ANY grain of the same structure must reproduce
        # the serial answer bit for bit.
        a, sym, factor = factored
        b = rng.normal(size=(a.n, 4))
        plan = build_plan(sym.stree, grain=grain)
        program = compile_level_program(plan)
        x = solve_fused(factor, b, program=program)
        assert np.array_equal(x, solve_supernodal(factor, b))

    def test_forward_backward_sweeps_match_serial(self, factored, rng):
        a, sym, factor = factored
        b = rng.normal(size=(a.n, 3))
        y = forward_fused(factor, b)
        assert np.array_equal(y, forward_supernodal(factor, b))
        assert np.array_equal(
            backward_fused(factor, y), backward_supernodal(factor, y)
        )

    def test_vector_rhs_round_trip(self, factored, rng):
        a, sym, factor = factored
        v = rng.normal(size=a.n)
        x = solve_fused(factor, v)
        assert x.shape == (a.n,)
        assert np.array_equal(x, solve_supernodal(factor, v))

    def test_repeated_solves_are_identical(self, factored, rng):
        # Workspace reuse must not leak state between solves.
        a, sym, factor = factored
        b = rng.normal(size=(a.n, 5))
        runs = [solve_fused(factor, b) for _ in range(4)]
        for other in runs[1:]:
            assert np.array_equal(runs[0], other)


class TestZeroAllocationSteadyState:
    def test_second_solve_reuses_arena_workspace(self, sym_grid8, rng):
        factor = cholesky_supernodal(sym_grid8)
        b = rng.normal(size=(sym_grid8.n, 4))
        solve_fused(factor, b)
        prep = prepare_factor(factor)
        built_after_first = prep.arena.stats()["built"]
        for _ in range(5):
            solve_fused(factor, b)
        assert prep.arena.stats()["built"] == built_after_first, (
            "steady-state solves built new workspaces instead of leasing"
        )

    def test_sweeps_allocate_no_per_node_arrays(self, sym_grid8, rng):
        # Drive the level loops directly on a leased workspace: with every
        # buffer preallocated, the hot path must allocate nothing beyond
        # small constant-size temporaries (dtrsm's f2py return tuple and
        # loop-iteration objects) — far below one per-node array.
        factor = cholesky_supernodal(sym_grid8)
        prep = prepare_factor(factor)
        program = program_for(sym_grid8.stree)
        panels = fused_panels_for(factor)
        y = rng.normal(size=(sym_grid8.n, 1))
        ws = build_fused_workspace(program, 1)
        _forward_levels(program, prep, panels, y, ws)  # warm every code path
        _backward_levels(program, prep, panels, y, ws)

        tracemalloc.start()
        _forward_levels(program, prep, panels, y, ws)
        _backward_levels(program, prep, panels, y, ws)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 16 * 1024, (
            f"fused sweeps allocated {peak} bytes at peak — the zero-"
            "allocation path regressed (a per-node np.zeros is back?)"
        )

    def test_distinct_nrhs_lease_distinct_workspaces(self, sym_grid8, rng):
        factor = cholesky_supernodal(sym_grid8)
        solve_fused(factor, rng.normal(size=(sym_grid8.n, 1)))
        solve_fused(factor, rng.normal(size=(sym_grid8.n, 8)))
        prep = prepare_factor(factor)
        assert prep.arena.stats()["built"] >= 2


class TestProgramCompilation:
    def test_program_grain_invariant(self, sym_grid8):
        # Same structure, different task aggregation: identical programs
        # (the compiler reads only the steps and the node levels).
        programs = [
            compile_level_program(build_plan(sym_grid8.stree, grain=g))
            for g in (0, 256, 4096)
        ]
        ref = programs[0]
        for prog in programs[1:]:
            assert prog.nsuper == ref.nsuper
            assert np.array_equal(prog.node_level, ref.node_level)
            assert len(prog.levels) == len(ref.levels)
            for la, lb in zip(prog.levels, ref.levels):
                assert np.array_equal(la.top_src, lb.top_src)
                assert np.array_equal(la.scatter_dst, lb.scatter_dst)
                assert np.array_equal(la.scatter_src, lb.scatter_src)
                assert np.array_equal(la.gather_rows, lb.gather_rows)

    def test_program_and_panels_memoized(self, sym_grid8):
        factor = cholesky_supernodal(sym_grid8)
        assert program_for(sym_grid8.stree) is program_for(sym_grid8.stree)
        assert fused_panels_for(factor) is fused_panels_for(factor)

    def test_solver_backend_fused(self, prepared_grid12, rng):
        b = rng.normal(size=(prepared_grid12.a.n, 2))
        x, rep = prepared_grid12.solve(b, backend="fused")
        assert rep.backend == "fused"
        assert rep.forward.sim is None and rep.backward.sim is None
        assert rep.fbsolve_seconds > 0
        assert rep.residual < 1e-12
        x_thr, rep_thr = prepared_grid12.solve(b, backend="threads", workers=2)
        assert np.array_equal(x, x_thr)
        # One structure, one determinism certificate — both backends.
        assert rep.schedule_certificate == rep_thr.schedule_certificate

    def test_workers_rejected_on_fused_backend(self, prepared_grid12, rng):
        with pytest.raises(ValueError, match="workers"):
            prepared_grid12.solve(
                rng.normal(size=prepared_grid12.a.n), backend="fused", workers=2
            )


class TestFusedCertifier:
    def test_certificate_clean_and_digest_matches_plan(self, factored):
        from repro.exec import certificate_for

        a, sym, factor = factored
        cert = fused_certificate_for(sym.stree)
        assert cert.ok, [str(f) for f in cert.report.errors()]
        assert cert.digest == certificate_for(sym.stree).digest
        assert cert.ntasks == len(program_for(sym.stree).levels)

    def test_certifier_rejects_swapped_scatter(self, sym_grid8):
        import dataclasses

        from repro.verify.schedule import certify_level_program

        plan = plan_for(sym_grid8.stree)
        program = compile_level_program(plan)
        li = next(
            i for i, lvl in enumerate(program.levels)
            if lvl.scatter_src.size >= 2
        )
        lvl = program.levels[li]
        src = lvl.scatter_src.copy()
        src[0], src[1] = src[1], src[0]
        levels = list(program.levels)
        levels[li] = dataclasses.replace(lvl, scatter_src=src)
        bad = dataclasses.replace(program, levels=tuple(levels))
        cert = certify_level_program(bad, plan, sym_grid8.stree)
        assert not cert.ok
        assert "schedule-program-scatter" in {f.rule for f in cert.report.errors()}

    def test_certifier_rejects_mislevelled_node(self, sym_grid8):
        import dataclasses

        from repro.verify.schedule import certify_level_program

        plan = plan_for(sym_grid8.stree)
        program = compile_level_program(plan)
        node_level = program.node_level.copy()
        node_level[0] += 1
        bad = dataclasses.replace(program, node_level=node_level)
        cert = certify_level_program(bad, plan, sym_grid8.stree)
        assert not cert.ok

    def test_certifying_program_for_raises_on_broken_program(self, sym_grid8):
        # certify=True on a clean structure must succeed and memoize.
        p1 = program_for(sym_grid8.stree, certify=True)
        p2 = program_for(sym_grid8.stree, certify=True)
        assert p1 is p2


class TestPoolReuse:
    def test_solve_exec_builds_one_pool_for_both_sweeps(self, sym_grid8, rng, monkeypatch):
        from concurrent.futures import ThreadPoolExecutor

        from repro.exec import engine as engine_mod

        factor = cholesky_supernodal(sym_grid8)
        constructed = []

        class CountingPool(ThreadPoolExecutor):
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "ThreadPoolExecutor", CountingPool)
        b = rng.normal(size=(sym_grid8.n, 3))
        x = solve_exec(factor, b, workers=2)
        assert len(constructed) == 1, (
            "solve_exec must reuse one thread pool across the forward and "
            f"backward sweeps, constructed {len(constructed)}"
        )
        assert np.array_equal(x, solve_supernodal(factor, b))

    def test_single_worker_builds_no_pool(self, sym_grid8, rng, monkeypatch):
        from repro.exec import engine as engine_mod

        factor = cholesky_supernodal(sym_grid8)

        def boom(*args, **kwargs):
            raise AssertionError("workers=1 must not construct a thread pool")

        monkeypatch.setattr(engine_mod, "ThreadPoolExecutor", boom)
        x = solve_exec(factor, rng.normal(size=sym_grid8.n), workers=1)
        assert np.all(np.isfinite(x))


def test_fused_tolerates_gc_of_program_midlife(sym_grid8, rng):
    # The solve keeps its own reference; cache eviction of the structure
    # must never invalidate an in-flight program.
    factor = cholesky_supernodal(sym_grid8)
    b = rng.normal(size=(sym_grid8.n, 2))
    program = program_for(sym_grid8.stree)
    gc.collect()
    x = solve_fused(factor, b, program=program)
    assert np.array_equal(x, solve_supernodal(factor, b))
