import math

import numpy as np
import pytest

from repro.analysis.isoefficiency import (
    efficiency_of,
    fit_growth_exponent,
    isoefficiency_curve,
)
from repro.analysis.metrics import efficiency, mflops, overhead, speedup
from repro.analysis.models import (
    dense_trisolve_model,
    figure5_table,
    sparse_trisolve_model_2d,
    sparse_trisolve_model_3d,
    trisolve_overhead_2d,
    trisolve_overhead_3d,
)
from repro.machine.presets import cray_t3d
from repro.machine.spec import MachineSpec


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_efficiency(self):
        assert efficiency(10.0, 2.0, 5) == 1.0

    def test_overhead_zero_for_perfect(self):
        assert overhead(10.0, 2.5, 4) == pytest.approx(0.0)

    def test_overhead_positive_otherwise(self):
        assert overhead(10.0, 3.0, 4) == pytest.approx(2.0)

    def test_mflops(self):
        assert mflops(3e6, 1.5) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)


class TestClosedFormModels:
    def spec(self):
        return cray_t3d()

    def test_2d_model_decreases_then_increases_in_p(self):
        """Equation 1: work term shrinks with p, O(p) term eventually wins."""
        spec = self.spec()
        n = 4096
        times = [sparse_trisolve_model_2d(spec, n, p) for p in (1, 4, 16, 64, 1024, 8192)]
        assert times[1] < times[0]
        assert times[-1] > times[-2]  # past the sweet spot

    def test_3d_model_same_shape(self):
        spec = self.spec()
        n = 30**3
        times = [sparse_trisolve_model_3d(spec, n, p) for p in (1, 16, 8192, 200_000)]
        assert times[1] < times[0]
        assert times[3] > times[2]  # the O(p) term eventually dominates

    def test_dense_model_work_term(self):
        spec = MachineSpec(t_s=0.0, t_w=0.0, t_call=0.0, blas3_factor=1.0)
        t1 = dense_trisolve_model(spec, 1000, 1)
        t4 = dense_trisolve_model(spec, 1000, 4)
        assert t1 / t4 == pytest.approx(4.0)

    def test_nrhs_multiplies_all_terms(self):
        """Paper: with m right-hand sides every term in Eq. 1-2 scales by m."""
        spec = self.spec().with_(t_call=0.0)
        base = sparse_trisolve_model_2d(spec, 4096, 16, nrhs=1)
        big = sparse_trisolve_model_2d(spec, 4096, 16, nrhs=8)
        # BLAS-3 effect makes the work term cheaper per RHS, so growth is
        # between 1x and 8x
        assert base < big < 8 * base

    def test_overheads_positive_and_growing(self):
        spec = self.spec()
        o2 = [trisolve_overhead_2d(spec, 4096, p) for p in (2, 8, 32)]
        o3 = [trisolve_overhead_3d(spec, 27000, p) for p in (2, 8, 32)]
        assert all(x > 0 for x in o2 + o3)
        assert o2[2] > o2[0] and o3[2] > o3[0]

    def test_overhead_dominant_term_is_p_squared(self):
        """For fixed N, T_o ~ p^2 at large p (Equations 4 and 8)."""
        spec = self.spec()
        n = 4096
        o_small = trisolve_overhead_2d(spec, n, 256)
        o_big = trisolve_overhead_2d(spec, n, 1024)
        ratio = o_big / o_small
        assert 8.0 < ratio < 20.0  # ~(1024/256)^2 = 16 once the p-term dominates

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sparse_trisolve_model_2d(self.spec(), 0, 4)
        with pytest.raises(ValueError):
            dense_trisolve_model(self.spec(), 100, 0)


class TestFigure5Table:
    def test_all_combinations_present(self):
        rows = figure5_table()
        assert len(rows) == 6
        combos = {(r.matrix_type, r.partitioning.split(" ")[0]) for r in rows}
        assert ("dense", "1-D") in combos and ("sparse-3d", "2-D") in combos

    def test_one_d_solve_scalable_two_d_not(self):
        for r in figure5_table():
            if r.partitioning.startswith("1-D"):
                assert r.solve_iso != "unscalable"
            else:
                assert r.solve_iso == "unscalable"

    def test_overall_dominated_by_factorization(self):
        for r in figure5_table():
            assert r.overall_iso == r.factor_iso


class TestIsoefficiencyFitting:
    def test_exponent_of_synthetic_quadratic(self):
        pts = [(p, 3.0 * p * p) for p in (2, 4, 8, 16)]
        assert fit_growth_exponent(pts) == pytest.approx(2.0, abs=1e-9)

    def test_exponent_of_synthetic_p32(self):
        pts = [(p, p ** 1.5) for p in (2, 4, 8, 16)]
        assert fit_growth_exponent(pts) == pytest.approx(1.5, abs=1e-9)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_growth_exponent([(2, 4.0)])

    def test_curve_with_analytic_runner(self):
        """Use the closed-form 2-D model as the runner: the fitted exponent
        must come out ~2 (Equation 5)."""
        spec = cray_t3d()

        def runner(size, p):
            n = size * size
            w = 2.0 * n * math.log2(max(n, 2))
            ts = sparse_trisolve_model_2d(spec, n, 1)
            tp = sparse_trisolve_model_2d(spec, n, p)
            return w, ts, tp

        # large p so the O(p^2) overhead term dominates the fit
        pts = isoefficiency_curve(
            runner, ps=(32, 64, 128, 256), target_e=0.5, size_lo=8, size_hi=3000
        )
        k = fit_growth_exponent([(p, w) for p, w, _ in pts])
        assert 1.6 < k < 2.4

    def test_efficiency_of_helper(self):
        def runner(size, p):
            return float(size), 1.0, 1.0 / p  # perfectly scalable

        assert efficiency_of(runner, 10, 8) == pytest.approx(1.0)

    def test_curve_rejects_bad_target(self):
        with pytest.raises(ValueError):
            isoefficiency_curve(lambda s, p: (1.0, 1.0, 1.0), (2,), 1.5, size_lo=1, size_hi=2)
