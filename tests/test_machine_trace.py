import numpy as np
import pytest

from repro.machine.events import TaskGraph, simulate
from repro.machine.spec import MachineSpec
from repro.machine.trace import (
    critical_tasks,
    gantt,
    processor_stats,
    utilisation_summary,
)


@pytest.fixture()
def run():
    spec = MachineSpec(t_flop=1e-6, t_s=1e-5, t_w=1e-6, t_call=0.0, topology="full")
    g = TaskGraph(nproc=3)
    a = g.add_task(0, 1.0, label="alpha")
    b = g.add_task(1, 2.0, label="beta")
    c = g.add_task(2, 0.5, label="gamma")
    g.add_edge(a, b, words=100)
    g.add_edge(b, c, words=50)
    relay = g.add_task(0, 0.0, label="relay")
    g.add_edge(c, relay)
    return g, simulate(g, spec)


class TestProcessorStats:
    def test_busy_idle_partition_makespan(self, run):
        g, sim = run
        for s in processor_stats(g, sim):
            assert s.busy_seconds + s.idle_seconds == pytest.approx(sim.makespan)

    def test_task_counts(self, run):
        g, sim = run
        stats = {s.proc: s for s in processor_stats(g, sim)}
        assert stats[0].tasks_run == 2  # alpha + relay
        assert stats[1].tasks_run == 1

    def test_message_accounting(self, run):
        g, sim = run
        stats = {s.proc: s for s in processor_stats(g, sim)}
        assert stats[0].messages_sent == 1
        assert stats[1].messages_received == 1
        assert stats[0].words_sent == 100

    def test_utilisation_bounded(self, run):
        g, sim = run
        for s in processor_stats(g, sim):
            assert 0.0 <= s.utilisation <= 1.0


class TestRendering:
    def test_summary_mentions_each_proc(self, run):
        g, sim = run
        text = utilisation_summary(g, sim)
        for p in range(3):
            assert f"P{p}" in text

    def test_gantt_dimensions(self, run):
        g, sim = run
        text = gantt(g, sim, width=60)
        lines = text.splitlines()
        assert len(lines) == 1 + 3
        assert all(len(line) == len("P0   ") + 60 for line in lines[1:])

    def test_gantt_marks_tasks(self, run):
        g, sim = run
        text = gantt(g, sim, width=60)
        assert "a" in text and "b" in text and "g" in text

    def test_gantt_hides_zero_cost_relays(self, run):
        g, sim = run
        assert "r" not in gantt(g, sim, width=60).splitlines()[1]

    def test_gantt_rejects_empty(self):
        g = TaskGraph(nproc=1)
        g.add_task(0, 0.0)
        sim = simulate(g, MachineSpec())
        with pytest.raises(ValueError):
            gantt(g, sim)

    def test_critical_tasks_sorted(self, run):
        g, sim = run
        crit = critical_tasks(g, sim, top=3)
        finishes = [f for _, _, f in crit]
        assert finishes == sorted(finishes, reverse=True)
        assert crit[0][1] in ("gamma", "relay")


class TestTraceOnRealSolve:
    def test_forward_solve_trace(self, prepared_grid12):
        from repro.core.forward import build_forward_graph
        from repro.machine.events import simulate as sim_run
        from repro.mapping.subtree_subcube import subtree_to_subcube

        base = prepared_grid12
        assign = subtree_to_subcube(base.symbolic.stree, 4)
        rhs = np.ones((base.a.n, 1))
        g, _ = build_forward_graph(
            base.factor, assign, base.spec, base.symbolic.perm.apply_to_vector(rhs), nproc=4
        )
        sim = sim_run(g, base.spec)
        stats = processor_stats(g, sim)
        assert sum(s.tasks_run for s in stats) == g.ntasks
        text = utilisation_summary(g, sim)
        assert "makespan" in text
