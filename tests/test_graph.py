import numpy as np
import pytest

from repro.graph.separators import (
    Separation,
    find_separator,
    geometric_bisection,
    is_valid_separation,
    levelset_separator,
)
from repro.graph.structure import Adjacency, adjacency_from_matrix
from repro.graph.traversal import bfs_levels, connected_components, pseudo_peripheral
from repro.sparse.generators import grid2d_laplacian, grid3d_laplacian, random_spd


@pytest.fixture(scope="module")
def path_graph():
    # 0 - 1 - 2 - 3 - 4
    indptr = np.array([0, 1, 3, 5, 7, 8])
    indices = np.array([1, 0, 2, 1, 3, 2, 4, 3])
    return Adjacency(5, indptr, indices)


class TestAdjacency:
    def test_from_matrix_degrees(self, grid8):
        g = adjacency_from_matrix(grid8)
        assert g.n == 64
        assert g.nedges == 2 * 8 * 7  # horizontal + vertical edges

    def test_no_self_loops(self, grid8):
        g = adjacency_from_matrix(grid8)
        for v in range(g.n):
            assert v not in g.neighbors(v)

    def test_symmetry(self, fe9):
        g = adjacency_from_matrix(fe9)
        for v in range(g.n):
            for u in g.neighbors(v):
                assert v in g.neighbors(int(u))

    def test_subgraph_induced_edges(self, path_graph):
        sub, mapping = path_graph.subgraph(np.array([0, 1, 3]))
        assert sub.n == 3
        # only edge 0-1 survives (1-3 not adjacent)
        assert sub.degree(0) == 1 and sub.degree(1) == 1 and sub.degree(2) == 0
        np.testing.assert_array_equal(mapping, [0, 1, 3])

    def test_subgraph_carries_coords(self):
        a = grid2d_laplacian(3)
        g = adjacency_from_matrix(a)
        sub, mapping = g.subgraph(np.array([0, 4, 8]))
        np.testing.assert_allclose(sub.coords, g.coords[mapping])


class TestBFS:
    def test_levels_on_path(self, path_graph):
        np.testing.assert_array_equal(bfs_levels(path_graph, 0), [0, 1, 2, 3, 4])

    def test_levels_from_middle(self, path_graph):
        np.testing.assert_array_equal(bfs_levels(path_graph, 2), [2, 1, 0, 1, 2])

    def test_unreachable_marked(self):
        g = Adjacency(3, np.array([0, 1, 2, 2]), np.array([1, 0]))
        levels = bfs_levels(g, 0)
        assert levels[2] == -1


class TestPseudoPeripheral:
    def test_path_endpoint(self, path_graph):
        v = pseudo_peripheral(path_graph, start=2)
        assert v in (0, 4)

    def test_grid_corner_distance(self):
        g = adjacency_from_matrix(grid2d_laplacian(7))
        v = pseudo_peripheral(g)
        lev = bfs_levels(g, v)
        # eccentricity of a pseudo-peripheral vertex in a 7x7 grid is 12
        assert lev.max() == 12


class TestComponents:
    def test_single_component(self, grid8):
        g = adjacency_from_matrix(grid8)
        assert connected_components(g).max() == 0

    def test_two_components(self):
        g = Adjacency(4, np.array([0, 1, 2, 3, 4]), np.array([1, 0, 3, 2]))
        labels = connected_components(g)
        assert labels[0] == labels[1] != labels[2] == labels[3]


class TestSeparators:
    @pytest.mark.parametrize("k", [4, 7, 10])
    def test_geometric_separates_grid(self, k):
        g = adjacency_from_matrix(grid2d_laplacian(k))
        sep = geometric_bisection(g)
        assert is_valid_separation(g, sep)
        assert sep.left.size > 0 and sep.right.size > 0

    def test_geometric_separator_size_sqrt(self):
        k = 16
        g = adjacency_from_matrix(grid2d_laplacian(k))
        sep = geometric_bisection(g)
        assert sep.separator.size <= 2 * k  # O(sqrt N) with a small constant

    def test_geometric_needs_coords(self):
        g = adjacency_from_matrix(random_spd(20, seed=1))
        with pytest.raises(ValueError, match="coordinates"):
            geometric_bisection(g)

    def test_levelset_separates(self):
        g = adjacency_from_matrix(random_spd(60, density=0.04, seed=2))
        sep = levelset_separator(g)
        assert is_valid_separation(g, sep)

    def test_levelset_balance(self):
        g = adjacency_from_matrix(grid2d_laplacian(9))
        sep = levelset_separator(g)
        assert is_valid_separation(g, sep)
        big, small = max(sep.left.size, sep.right.size), min(sep.left.size, sep.right.size)
        assert small >= big // 4  # reasonably balanced

    def test_find_dispatches_on_coords(self):
        g_geo = adjacency_from_matrix(grid3d_laplacian(4))
        g_alg = adjacency_from_matrix(random_spd(30, seed=5))
        assert is_valid_separation(g_geo, find_separator(g_geo))
        assert is_valid_separation(g_alg, find_separator(g_alg))

    def test_separation_rejects_overlap(self):
        with pytest.raises(ValueError, match="disjoint"):
            Separation(np.array([0, 1]), np.array([1]), np.array([2]))

    def test_singleton_graph(self):
        g = Adjacency(1, np.array([0, 0]), np.array([], dtype=np.int64))
        sep = levelset_separator(g)
        assert sep.separator.size == 1
