import numpy as np
import pytest

from repro.numeric.simplicial import cholesky_simplicial
from repro.sparse.build import from_dense
from repro.sparse.ops import (
    lower_triangular_matvec,
    matvec,
    relative_residual,
    residual_norm,
)


@pytest.fixture()
def pair(rng):
    dense = np.array(
        [
            [5.0, -1.0, 0.0, -2.0],
            [-1.0, 4.0, -1.0, 0.0],
            [0.0, -1.0, 4.0, -1.0],
            [-2.0, 0.0, -1.0, 6.0],
        ]
    )
    return from_dense(dense), dense


class TestMatvec:
    def test_vector(self, pair, rng):
        a, dense = pair
        x = rng.normal(size=4)
        np.testing.assert_allclose(matvec(a, x), dense @ x)

    def test_matrix_rhs(self, pair, rng):
        a, dense = pair
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(matvec(a, x), dense @ x)

    def test_preserves_shape(self, pair, rng):
        a, _ = pair
        assert matvec(a, rng.normal(size=4)).shape == (4,)
        assert matvec(a, rng.normal(size=(4, 2))).shape == (4, 2)


class TestLowerTriangularMatvec:
    def test_matches_dense(self, grid8, rng):
        from repro.symbolic.analyze import analyze

        sym = analyze(grid8)
        l = cholesky_simplicial(sym)
        x = rng.normal(size=(grid8.n, 2))
        np.testing.assert_allclose(
            lower_triangular_matvec(l, x), l.to_dense() @ x, atol=1e-12
        )

    def test_vector_shape(self, grid8, rng):
        from repro.symbolic.analyze import analyze

        sym = analyze(grid8)
        l = cholesky_simplicial(sym)
        assert lower_triangular_matvec(l, rng.normal(size=grid8.n)).shape == (grid8.n,)


class TestResiduals:
    def test_exact_solution_zero_residual(self, pair):
        a, dense = pair
        x = np.ones(4)
        b = dense @ x
        assert residual_norm(a, x, b) < 1e-12
        assert relative_residual(a, x, b) < 1e-13

    def test_wrong_solution_positive_residual(self, pair):
        a, dense = pair
        b = dense @ np.ones(4)
        assert residual_norm(a, np.zeros(4), b) == pytest.approx(np.linalg.norm(b))

    def test_relative_residual_zero_rhs_safe(self, pair):
        a, _ = pair
        assert np.isfinite(relative_residual(a, np.zeros(4), np.zeros(4)))
