"""CLI (`python -m repro`) smoke tests."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.matrix == "grid2d" and args.p == 16

    def test_unknown_matrix_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--matrix", "hilbert"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "BCSSTK15" in out and "CUBE35" in out

    def test_solve_small(self, capsys):
        assert main(["solve", "--matrix", "grid2d", "--size", "8", "--p", "4"]) == 0
        out = capsys.readouterr().out
        assert "residual" in out and "FBsolve" in out

    def test_solve_with_refinement(self, capsys):
        assert main(
            ["solve", "--matrix", "fe2d", "--size", "7", "--p", "2", "--refine", "1"]
        ) == 0
        assert "FBsolve" in capsys.readouterr().out

    def test_solve_threads_backend(self, capsys):
        assert main(
            ["solve", "--matrix", "grid2d", "--size", "10", "--p", "4",
             "--nrhs", "4", "--backend", "threads", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend=threads workers=2" in out
        assert "wall-clock" in out and "residual" in out

    def test_solve_serial_backend(self, capsys):
        assert main(
            ["solve", "--matrix", "grid2d", "--size", "10", "--p", "2",
             "--backend", "serial"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend=serial" in out and "wall-clock" in out

    def test_solve_fused_backend(self, capsys):
        assert main(
            ["solve", "--matrix", "grid2d", "--size", "10", "--p", "2",
             "--nrhs", "4", "--backend", "fused"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend=fused" in out and "wall-clock" in out
        # verify=True is the solver default, so the fused solve must
        # carry the determinism certificate of its certified program.
        assert "schedule certificate:" in out

    def test_solve_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--backend", "gpu"])

    def test_solve_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            main(["solve", "--matrix", "grid2d", "--size", "8", "--p", "2",
                  "--backend", "threads", "--workers", "0"])

    def test_schedules(self, capsys):
        assert main(["schedules", "--nb", "5", "--tb", "3", "--q", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(a)" in out and "Figure 4" in out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--matrix", "grid2d-small", "--p", "1", "4", "--nrhs", "1"]) == 0
        assert "Factorization MFLOPS" in capsys.readouterr().out

    def test_fig8_small(self, capsys):
        assert main(["fig8", "--matrix", "grid2d-small", "--p", "1", "4", "--nrhs", "1", "5"]) == 0
        assert "MFLOPS vs p" in capsys.readouterr().out
