import numpy as np
import pytest

from repro.numeric.ldlt import LDLTFactor, SingularPivotError, ldlt_simplicial, ldlt_solve
from repro.sparse.build import from_dense
from repro.symbolic.analyze import analyze


class TestLDLTOnSPD:
    def test_reconstructs_a(self, grid8):
        sym = analyze(grid8)
        f = ldlt_simplicial(sym)
        l = f.l.to_dense()
        np.testing.assert_allclose(l @ np.diag(f.d) @ l.T, sym.a_perm.to_dense(), atol=1e-10)

    def test_unit_diagonal(self, grid8):
        sym = analyze(grid8)
        f = ldlt_simplicial(sym)
        np.testing.assert_allclose(np.diag(f.l.to_dense()), 1.0)

    def test_relates_to_cholesky(self, grid8):
        """L_chol = L_ldlt * sqrt(D) for SPD matrices."""
        from repro.numeric.simplicial import cholesky_simplicial

        sym = analyze(grid8)
        f = ldlt_simplicial(sym)
        lc = cholesky_simplicial(sym).to_dense()
        np.testing.assert_allclose(f.l.to_dense() * np.sqrt(f.d), lc, atol=1e-10)

    def test_spd_inertia_all_positive(self, grid8):
        sym = analyze(grid8)
        pos, neg, zero = ldlt_simplicial(sym).inertia()
        assert (pos, neg, zero) == (grid8.n, 0, 0)

    def test_solve_matches_reference(self, grid8, rng):
        from repro.sparse.ops import relative_residual

        sym = analyze(grid8)
        f = ldlt_simplicial(sym)
        b = rng.normal(size=(grid8.n, 2))
        bp = sym.perm.apply_to_vector(b)
        x = sym.perm.unapply_to_vector(ldlt_solve(f, bp))
        assert relative_residual(grid8, x, b) < 1e-12


class TestLDLTIndefinite:
    @pytest.fixture()
    def quasi_definite(self):
        # A KKT-style symmetric quasi-definite matrix: [[H, B^T], [B, -C]]
        h = np.array([[4.0, 1.0], [1.0, 3.0]])
        b = np.array([[1.0, -1.0]])
        c = np.array([[2.0]])
        top = np.hstack([h, b.T])
        bottom = np.hstack([b, -c])
        return from_dense(np.vstack([top, bottom]))

    def test_factors_indefinite(self, quasi_definite):
        sym = analyze(quasi_definite, method="natural")
        f = ldlt_simplicial(sym)
        l = f.l.to_dense()
        np.testing.assert_allclose(
            l @ np.diag(f.d) @ l.T, sym.a_perm.to_dense(), atol=1e-12
        )

    def test_inertia_counts_negative_block(self, quasi_definite):
        sym = analyze(quasi_definite, method="natural")
        pos, neg, zero = ldlt_simplicial(sym).inertia()
        assert (pos, neg, zero) == (2, 1, 0)

    def test_solve_indefinite(self, quasi_definite, rng):
        from repro.sparse.ops import relative_residual

        sym = analyze(quasi_definite, method="natural")
        f = ldlt_simplicial(sym)
        b = rng.normal(size=3)
        x = sym.perm.unapply_to_vector(ldlt_solve(f, sym.perm.apply_to_vector(b)))
        assert relative_residual(quasi_definite, x, b) < 1e-12

    def test_cholesky_would_fail_here(self, quasi_definite):
        from repro.numeric.frontal import NotPositiveDefiniteError
        from repro.numeric.simplicial import cholesky_simplicial

        sym = analyze(quasi_definite, method="natural")
        with pytest.raises(NotPositiveDefiniteError):
            cholesky_simplicial(sym)


class TestPivotFailure:
    def test_zero_pivot_detected(self):
        a = from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        sym = analyze(a, method="natural")
        with pytest.raises(SingularPivotError):
            ldlt_simplicial(sym)

    def test_pivot_tolerance(self):
        a = from_dense(np.array([[1e-14, 1.0], [1.0, 1.0]]))
        sym = analyze(a, method="natural")
        ldlt_simplicial(sym)  # exact-zero check passes
        with pytest.raises(SingularPivotError):
            ldlt_simplicial(sym, pivot_tol=1e-10)
