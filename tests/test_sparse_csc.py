import numpy as np
import pytest

from repro.sparse.build import from_dense, from_triplets
from repro.sparse.csc import LowerCSC, SymCSC


@pytest.fixture()
def small_sym():
    dense = np.array(
        [
            [4.0, -1.0, 0.0, 0.0],
            [-1.0, 4.0, -1.0, 0.0],
            [0.0, -1.0, 4.0, -1.0],
            [0.0, 0.0, -1.0, 4.0],
        ]
    )
    return from_dense(dense), dense


class TestSymCSC:
    def test_to_dense_roundtrip(self, small_sym):
        a, dense = small_sym
        np.testing.assert_allclose(a.to_dense(), dense)

    def test_nnz_counts(self, small_sym):
        a, _ = small_sym
        assert a.nnz_lower == 7  # 4 diagonal + 3 subdiagonal
        assert a.nnz == 10

    def test_diagonal(self, small_sym):
        a, _ = small_sym
        np.testing.assert_allclose(a.diagonal(), [4, 4, 4, 4])

    def test_column_is_diag_first_sorted(self, small_sym):
        a, _ = small_sym
        rows, vals = a.column(1)
        assert rows[0] == 1
        assert list(rows) == sorted(rows)

    def test_column_out_of_range(self, small_sym):
        a, _ = small_sym
        with pytest.raises(IndexError):
            a.column(4)

    def test_to_scipy_matches_dense(self, small_sym):
        a, dense = small_sym
        np.testing.assert_allclose(a.to_scipy().toarray(), dense)

    def test_pattern_full_symmetric(self, small_sym):
        a, dense = small_sym
        indptr, indices = a.pattern_full()
        counts = np.diff(indptr)
        np.testing.assert_array_equal(counts, (dense != 0).sum(axis=0))

    def test_permuted_is_papt(self, small_sym):
        a, dense = small_sym
        perm = np.array([2, 0, 3, 1])
        ap = a.permuted(perm)
        p = np.zeros((4, 4))
        p[np.arange(4), perm] = 1.0
        np.testing.assert_allclose(ap.to_dense(), p @ dense @ p.T)

    def test_permuted_rejects_bad_length(self, small_sym):
        a, _ = small_sym
        with pytest.raises(ValueError):
            a.permuted(np.array([0, 1]))

    def test_permuted_carries_coords(self):
        from repro.sparse.generators import grid2d_laplacian

        a = grid2d_laplacian(3)
        perm = np.arange(a.n)[::-1].copy()
        ap = a.permuted(perm)
        np.testing.assert_allclose(ap.coords, a.coords[perm])


class TestLowerCSC:
    def test_dense_roundtrip(self):
        l = LowerCSC(
            n=3,
            indptr=np.array([0, 2, 3, 4]),
            indices=np.array([0, 2, 1, 2]),
            data=np.array([2.0, -1.0, 3.0, 1.5]),
        )
        expect = np.array([[2.0, 0, 0], [0, 3.0, 0], [-1.0, 0, 1.5]])
        np.testing.assert_allclose(l.to_dense(), expect)
        np.testing.assert_allclose(l.to_scipy().toarray(), expect)
        np.testing.assert_allclose(l.transpose_dense(), expect.T)

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            LowerCSC(
                n=2,
                indptr=np.array([0, 2, 1]),  # decreasing
                indices=np.array([0, 1]),
                data=np.array([1.0, 1.0]),
            )

    def test_validation_rejects_row_out_of_range(self):
        with pytest.raises(ValueError):
            LowerCSC(
                n=2,
                indptr=np.array([0, 1, 2]),
                indices=np.array([0, 5]),
                data=np.array([1.0, 1.0]),
            )


class TestTripletAssembly:
    def test_duplicates_summed(self):
        a = from_triplets(2, [1, 1], [0, 0], [2.0, 3.0])
        assert a.to_dense()[1, 0] == 5.0

    def test_upper_entries_mirrored_to_lower(self):
        a = from_triplets(3, [0], [2], [7.0])
        d = a.to_dense()
        assert d[2, 0] == 7.0 and d[0, 2] == 7.0

    def test_structural_zero_diagonal_always_present(self):
        a = from_triplets(2, [1], [0], [1.0])
        rows, _ = a.column(0)
        assert rows[0] == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            from_triplets(2, [2], [0], [1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            from_triplets(2, [0, 1], [0], [1.0])


class TestFromDense:
    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            from_dense(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            from_dense(np.zeros((2, 3)))

    def test_tolerance_drops_noise(self):
        m = np.eye(3)
        m[0, 1] = m[1, 0] = 1e-15
        a = from_dense(m, tol=1e-12)
        assert a.nnz_lower == 3
