import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.graph.structure import adjacency_from_matrix
from repro.ordering.amd import approximate_minimum_degree
from repro.ordering.api import order
from repro.sparse.generators import grid2d_laplacian, random_spd
from repro.symbolic.analyze import analyze
from tests.test_properties import sparse_spd


class TestAMD:
    def test_is_permutation(self, grid8):
        g = adjacency_from_matrix(grid8)
        p = approximate_minimum_degree(g)
        assert np.array_equal(np.sort(p.perm), np.arange(grid8.n))

    def test_fill_close_to_exact_md(self, grid8):
        amd_fill = analyze(grid8, method="amd").factor_nnz
        md_fill = analyze(grid8, method="minimum_degree").factor_nnz
        assert amd_fill <= md_fill * 1.25  # approximation within 25%

    def test_fill_beats_natural(self):
        a = grid2d_laplacian(12)
        assert analyze(a, method="amd").factor_nnz < analyze(a, method="natural").factor_nnz

    def test_deterministic(self):
        a = random_spd(80, density=0.05, seed=4)
        g = adjacency_from_matrix(a)
        p1 = approximate_minimum_degree(g)
        p2 = approximate_minimum_degree(g)
        assert p1 == p2

    def test_api_dispatch(self, grid8):
        assert order(grid8, "amd").n == grid8.n

    def test_solve_end_to_end(self, grid8, rng):
        from repro.core.solver import ParallelSparseSolver

        solver = ParallelSparseSolver(grid8, p=4, ordering="amd").prepare()
        _, rep = solver.solve(rng.normal(size=grid8.n))
        assert rep.residual < 1e-10

    def test_element_absorption_path(self):
        """A path graph forces chained element absorptions; the ordering
        must stay valid and fill-free (path fill is zero under MD)."""
        from repro.sparse.build import from_triplets

        n = 20
        rows = np.arange(1, n)
        cols = np.arange(0, n - 1)
        vals = -np.ones(n - 1)
        diag_rows = np.arange(n)
        a = from_triplets(
            n,
            np.concatenate([rows, diag_rows]),
            np.concatenate([cols, diag_rows]),
            np.concatenate([vals, np.full(n, 3.0)]),
        )
        fill = analyze(a, method="amd").factor_nnz
        assert fill == 2 * n - 1  # diag + one subdiagonal entry per column


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(a=sparse_spd(max_n=25))
def test_amd_always_valid_permutation(a):
    g = adjacency_from_matrix(a)
    p = approximate_minimum_degree(g)
    assert np.array_equal(np.sort(p.perm), np.arange(a.n))


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(a=sparse_spd(max_n=20))
def test_amd_degree_is_upper_bound(a):
    """AMD's approximate degrees must never make the ordering produce more
    fill than ~2x exact minimum degree on small graphs."""
    amd_fill = analyze(a, method="amd").factor_nnz
    md_fill = analyze(a, method="minimum_degree").factor_nnz
    assert amd_fill <= 2 * md_fill
