"""API quality gates: docstrings everywhere, clean exports, no cycles."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.util",
    "repro.sparse",
    "repro.graph",
    "repro.ordering",
    "repro.symbolic",
    "repro.numeric",
    "repro.machine",
    "repro.mapping",
    "repro.core",
    "repro.analysis",
    "repro.experiments",
]


def all_modules():
    out = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                out.append(importlib.import_module(f"{pkg_name}.{info.name}"))
    return out


class TestDocumentation:
    def test_every_module_has_docstring(self):
        undocumented = [m.__name__ for m in all_modules() if not (m.__doc__ or "").strip()]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_function_documented(self):
        missing = []
        for mod in all_modules():
            for name, obj in vars(mod).items():
                if name.startswith("_"):
                    continue
                if inspect.isfunction(obj) and obj.__module__ == mod.__name__:
                    if not (obj.__doc__ or "").strip():
                        missing.append(f"{mod.__name__}.{name}")
        assert not missing, f"undocumented public functions: {missing}"

    def test_every_public_class_documented(self):
        missing = []
        for mod in all_modules():
            for name, obj in vars(mod).items():
                if name.startswith("_"):
                    continue
                if inspect.isclass(obj) and obj.__module__ == mod.__name__:
                    if not (obj.__doc__ or "").strip():
                        missing.append(f"{mod.__name__}.{name}")
        assert not missing, f"undocumented public classes: {missing}"


class TestExports:
    def test_package_all_lists_resolve(self):
        for pkg_name in PACKAGES:
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name}"

    def test_top_level_api(self):
        for name in ("ParallelSparseSolver", "MachineSpec", "cray_t3d", "analyze"):
            assert hasattr(repro, name)

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestImportHygiene:
    def test_all_modules_importable_in_isolation(self):
        # importing any module must not raise (no hidden cycles)
        assert len(all_modules()) > 40
