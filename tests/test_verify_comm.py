"""Static SPMD communication linter: rule coverage + runtime agreement."""

from __future__ import annotations

import pytest

from repro.machine.events import TaskGraph
from repro.machine.presets import cray_t3d
from repro.machine.spmd import DeadlockError, Env, run_spmd
from repro.verify.comm import lint_spmd, lint_task_graph, spmd_deadlock_rules
from repro.verify.findings import Severity


# ------------------------------------------------------------ rank programs
def head_to_head(rank: int, env: Env):
    """Both ranks recv before sending: the canonical deadlock cycle."""
    other = 1 - rank
    _ = yield env.recv(other, tag=7)
    yield env.send(other, data=rank, words=1, tag=7)


def ring_deadlock(rank: int, env: Env):
    """Every rank of a 4-ring waits on its left neighbour: one big cycle."""
    left = (rank - 1) % env.size
    right = (rank + 1) % env.size
    _ = yield env.recv(left, tag=0)
    yield env.send(right, data=rank, words=1, tag=0)


def orphan_send(rank: int, env: Env):
    if rank == 0:
        yield env.send(1, data="orphan", words=4, tag=3)
    yield env.compute(seconds=0.0)


def dead_sender(rank: int, env: Env):
    """Rank 1 waits for a message rank 0 never sends."""
    if rank == 0:
        yield env.compute(seconds=0.0)
    else:
        _ = yield env.recv(0, tag=0)


def tag_skew(rank: int, env: Env):
    if rank == 0:
        yield env.send(1, data=42, words=1, tag=1)
    else:
        _ = yield env.recv(0, tag=2)


def racy_channel(rank: int, env: Env):
    if rank == 0:
        yield env.send(1, data="a", words=1, tag=5)
        yield env.send(1, data="b", words=1, tag=5)
        _ = yield env.recv(1, tag=6)
    else:
        first = yield env.recv(0, tag=5)
        _ = yield env.recv(0, tag=5)
        yield env.send(0, data=first, words=1, tag=6)


def barrier_skip(rank: int, env: Env):
    if rank == 0:
        yield env.barrier()
    else:
        yield env.compute(seconds=0.0)


def clean_exchange(rank: int, env: Env):
    """A correct sendrecv pair plus a barrier: zero findings expected."""
    other = 1 - rank
    yield env.send(other, data=rank * 10, words=1, tag=rank)
    got = yield env.recv(other, tag=other)
    assert got == other * 10, "payload must round-trip through the walk"
    yield env.barrier()
    return got


# ------------------------------------------------------------------- linting
def test_clean_program_has_no_findings():
    report = lint_spmd(clean_exchange, 2)
    assert report.ok
    assert len(report) == 0


def test_head_to_head_deadlock_cycle():
    report = lint_spmd(head_to_head, 2)
    assert not report.ok
    assert "spmd-deadlock-cycle" in report.rules()
    (finding,) = report.by_rule("spmd-deadlock-cycle")
    # The location points at this very test file's blocked yield.
    assert "test_verify_comm.py" in finding.location


def test_ring_deadlock_reports_the_whole_cycle():
    report = lint_spmd(ring_deadlock, 4)
    assert "spmd-deadlock-cycle" in report.rules()
    (finding,) = report.by_rule("spmd-deadlock-cycle")
    for rank in range(4):
        assert f"rank {rank} waits" in finding.message


def test_orphan_send_is_unmatched():
    report = lint_spmd(orphan_send, 2)
    assert report.rules() == {"spmd-unmatched-send"}
    (finding,) = report.by_rule("spmd-unmatched-send")
    assert "tag 3" in finding.message


def test_dead_sender_blocks_receiver_forever():
    report = lint_spmd(dead_sender, 2)
    assert "spmd-unmatched-recv" in report.rules()
    (finding,) = report.by_rule("spmd-unmatched-recv")
    assert "terminated" in finding.message


def test_tag_skew_names_both_tags():
    report = lint_spmd(tag_skew, 2)
    assert "spmd-tag-mismatch" in report.rules()
    (finding,) = report.by_rule("spmd-tag-mismatch")
    assert "tag 2" in finding.message and "[1]" in finding.message


def test_receive_race_is_warning_only():
    report = lint_spmd(racy_channel, 2)
    assert report.ok, "a race is a warning, not a gate failure"
    assert "spmd-recv-race" in report.rules()
    (finding,) = report.by_rule("spmd-recv-race")
    assert finding.severity is Severity.WARNING


def test_barrier_skip_mismatch():
    report = lint_spmd(barrier_skip, 2)
    assert "spmd-barrier-mismatch" in report.rules()


def test_step_limit_aborts_runaway_programs():
    def runaway(rank: int, env: Env):
        while True:
            yield env.compute(seconds=0.0)

    report = lint_spmd(runaway, 2, max_steps=100)
    assert "spmd-step-limit" in report.rules()


# ------------------------------------- static linter vs runtime deadlock
@pytest.mark.parametrize(
    "program,size",
    [(head_to_head, 2), (ring_deadlock, 4), (dead_sender, 2), (tag_skew, 2), (barrier_skip, 2)],
    ids=["head-to-head", "ring", "dead-sender", "tag-skew", "barrier-skip"],
)
def test_linter_agrees_with_runtime_deadlock_reporter(program, size):
    """Every program the linter calls deadlocked must raise DeadlockError
    when actually run, and vice versa for the clean program below."""
    report = lint_spmd(program, size)
    assert report.rules() & spmd_deadlock_rules(), report.render()
    with pytest.raises(DeadlockError):
        run_spmd(program, size, cray_t3d())


def test_linter_agrees_with_runtime_on_clean_program():
    report = lint_spmd(clean_exchange, 2)
    assert not (report.rules() & spmd_deadlock_rules())
    result = run_spmd(clean_exchange, 2, cray_t3d())
    assert result.returns == [10, 0]


def test_orphan_send_runs_clean_at_runtime_but_lints_dirty():
    """The runtime silently tolerates stranded messages; the linter does not
    — that asymmetry is the point of having a static pass."""
    run_spmd(orphan_send, 2, cray_t3d())  # no exception
    assert not lint_spmd(orphan_send, 2).ok


# -------------------------------------------------------------- task graphs
def test_task_graph_cycle_detected():
    g = TaskGraph(nproc=2)
    a = g.add_task(0, 1.0, label="a")
    b = g.add_task(1, 1.0, label="b")
    g.add_edge(a, b)
    g.add_edge(b, a)
    report = lint_task_graph(g)
    assert "graph-cycle" in report.rules()


def test_task_graph_order_warning():
    g = TaskGraph(nproc=1)
    a = g.add_task(0, 1.0)
    b = g.add_task(0, 1.0)
    g.add_edge(b, a)  # legal for simulate(), breaks critical_path()
    report = lint_task_graph(g)
    assert report.ok
    assert "graph-task-order" in report.rules()


def test_task_graph_clean():
    g = TaskGraph(nproc=2)
    a = g.add_task(0, 1.0)
    b = g.add_task(1, 1.0)
    g.add_edge(a, b, words=8)
    assert lint_task_graph(g).ok
