"""Correctness and scaling behaviour of the parallel triangular solvers."""

import numpy as np
import pytest

from repro.core.backward import parallel_backward
from repro.core.blocks import SupernodeBlocks
from repro.core.forward import parallel_forward
from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d, ideal_machine
from repro.mapping.subtree_subcube import ProcSet, subtree_to_subcube
from repro.numeric.trisolve import backward_supernodal, forward_supernodal
from repro.sparse.generators import fe_mesh_2d, grid2d_laplacian, grid3d_laplacian, random_spd
from tests.conftest import clone_for_p


class TestSupernodeBlocks:
    def test_triangle_alignment(self):
        blocks = SupernodeBlocks(n=13, t=6, b=4, procs=ProcSet(0, 2))
        assert blocks.n_tri_blocks == 2
        assert blocks.bounds(0) == (0, 4)
        assert blocks.bounds(1) == (4, 6)  # short: stops at the triangle edge
        assert blocks.bounds(2) == (6, 10)  # below region restarts at t
        assert blocks.bounds(3) == (10, 13)

    def test_owners_cyclic_with_offset(self):
        blocks = SupernodeBlocks(n=16, t=8, b=4, procs=ProcSet(4, 4))
        assert [blocks.owner(k) for k in range(4)] == [4, 5, 6, 7]

    def test_blocks_of_inverse(self):
        blocks = SupernodeBlocks(n=20, t=8, b=4, procs=ProcSet(0, 4))
        seen = sorted(k for r in range(4) for k in blocks.blocks_of(r))
        assert seen == list(range(blocks.nblocks))

    def test_ring_arithmetic(self):
        blocks = SupernodeBlocks(n=8, t=8, b=2, procs=ProcSet(8, 4))
        assert blocks.ring_rank(8, 1) == 9
        assert blocks.ring_rank(11, 1) == 8  # wraps inside the proc set
        assert blocks.ring_distance(11, 8) == 1

    def test_rejects_bad_t(self):
        with pytest.raises(ValueError):
            SupernodeBlocks(n=4, t=5, b=2, procs=ProcSet(0, 1))


@pytest.fixture(scope="module")
def fwd_fixture():
    a = grid2d_laplacian(11)
    base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
    rng = np.random.default_rng(7)
    b = rng.normal(size=(a.n, 3))
    bp = base.symbolic.perm.apply_to_vector(b)
    y_ref = forward_supernodal(base.factor, bp)
    x_ref = backward_supernodal(base.factor, y_ref)
    return base, bp, y_ref, x_ref


class TestParallelForwardCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_matches_serial(self, fwd_fixture, p):
        base, bp, y_ref, _ = fwd_fixture
        assign = subtree_to_subcube(base.symbolic.stree, p)
        y, _ = parallel_forward(base.factor, assign, cray_t3d(), bp, b=4, nproc=p)
        np.testing.assert_allclose(y, y_ref, atol=1e-11)

    @pytest.mark.parametrize("b", [1, 2, 3, 8, 64])
    def test_block_size_does_not_change_answer(self, fwd_fixture, b):
        base, bp, y_ref, _ = fwd_fixture
        assign = subtree_to_subcube(base.symbolic.stree, 8)
        y, _ = parallel_forward(base.factor, assign, cray_t3d(), bp, b=b, nproc=8)
        np.testing.assert_allclose(y, y_ref, atol=1e-11)

    @pytest.mark.parametrize("variant", ["column", "row"])
    def test_variants_agree(self, fwd_fixture, variant):
        base, bp, y_ref, _ = fwd_fixture
        assign = subtree_to_subcube(base.symbolic.stree, 4)
        y, _ = parallel_forward(
            base.factor, assign, cray_t3d(), bp, b=4, variant=variant, nproc=4
        )
        np.testing.assert_allclose(y, y_ref, atol=1e-11)

    def test_single_rhs_vector_shape(self, fwd_fixture):
        base, bp, y_ref, _ = fwd_fixture
        assign = subtree_to_subcube(base.symbolic.stree, 4)
        y, _ = parallel_forward(base.factor, assign, cray_t3d(), bp[:, 0], nproc=4)
        assert y.ndim == 1
        np.testing.assert_allclose(y, y_ref[:, 0], atol=1e-11)

    def test_unknown_variant_rejected(self, fwd_fixture):
        base, bp, _, _ = fwd_fixture
        assign = subtree_to_subcube(base.symbolic.stree, 4)
        with pytest.raises(ValueError):
            parallel_forward(base.factor, assign, cray_t3d(), bp, variant="spiral", nproc=4)


class TestParallelBackwardCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_matches_serial(self, fwd_fixture, p):
        base, _, y_ref, x_ref = fwd_fixture
        assign = subtree_to_subcube(base.symbolic.stree, p)
        x, _ = parallel_backward(base.factor, assign, cray_t3d(), y_ref, b=4, nproc=p)
        np.testing.assert_allclose(x, x_ref, atol=1e-11)

    @pytest.mark.parametrize("b", [1, 2, 3, 8, 64])
    def test_block_size_invariant(self, fwd_fixture, b):
        base, _, y_ref, x_ref = fwd_fixture
        assign = subtree_to_subcube(base.symbolic.stree, 8)
        x, _ = parallel_backward(base.factor, assign, cray_t3d(), y_ref, b=b, nproc=8)
        np.testing.assert_allclose(x, x_ref, atol=1e-11)


class TestSimulatedScaling:
    def test_speedup_monotone_in_ideal_machine(self):
        """With zero-cost communication, adding processors cannot slow the
        solve (up to scheduling ties)."""
        a = grid2d_laplacian(16)
        spec = ideal_machine()
        base = ParallelSparseSolver(a, p=1, spec=spec).prepare()
        b = np.ones(a.n)
        times = []
        for p in (1, 4, 16):
            solver = clone_for_p(base, p, spec=spec)
            _, rep = solver.solve(b, check=False)
            times.append(rep.fbsolve_seconds)
        assert times[1] < times[0]
        assert times[2] <= times[1] * 1.05

    def test_speedup_on_t3d_preset(self, prepared_grid12):
        b = np.ones(prepared_grid12.a.n)
        _, rep1 = prepared_grid12.solve(b, check=False)
        s4 = clone_for_p(prepared_grid12, 4)
        _, rep4 = s4.solve(b, check=False)
        assert rep4.fbsolve_seconds < rep1.fbsolve_seconds

    def test_multiple_rhs_boosts_mflops(self, prepared_grid12, rng):
        """Paper Figure 8: higher NRHS gives strictly better MFLOPS."""
        b30 = rng.normal(size=(prepared_grid12.a.n, 30))
        _, rep1 = prepared_grid12.solve(b30[:, :1], check=False)
        _, rep30 = prepared_grid12.solve(b30, check=False)
        assert rep30.fbsolve_mflops > 2 * rep1.fbsolve_mflops

    def test_messages_only_between_assigned_procs(self, fwd_fixture):
        base, bp, _, _ = fwd_fixture
        p = 8
        assign = subtree_to_subcube(base.symbolic.stree, p)
        _, sim = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=p)
        for msg in sim.messages:
            assert 0 <= msg.src_proc < p and 0 <= msg.dst_proc < p
            assert msg.src_proc != msg.dst_proc

    def test_forward_comm_volume_grows_with_p(self, fwd_fixture):
        base, bp, _, _ = fwd_fixture
        vols = []
        for p in (2, 8):
            assign = subtree_to_subcube(base.symbolic.stree, p)
            _, sim = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=p)
            vols.append(sim.comm_volume_words)
        assert vols[1] > vols[0]


class TestEndToEndSolver:
    @pytest.mark.parametrize(
        "matrix_fn,p",
        [
            (lambda: grid2d_laplacian(10), 4),
            (lambda: grid3d_laplacian(5), 8),
            (lambda: fe_mesh_2d(8, seed=2), 4),
            (lambda: random_spd(80, density=0.04, seed=4), 8),
        ],
    )
    def test_residual_small(self, matrix_fn, p, rng):
        a = matrix_fn()
        solver = ParallelSparseSolver(a, p=p).prepare()
        b = rng.normal(size=(a.n, 2))
        x, rep = solver.solve(b)
        assert rep.residual < 1e-10

    def test_solution_matches_scipy(self, prepared_grid12, rng):
        from scipy.sparse.linalg import spsolve

        b = rng.normal(size=prepared_grid12.a.n)
        x, _ = prepared_grid12.solve(b)
        xs = spsolve(prepared_grid12.a.to_scipy().tocsc(), b)
        np.testing.assert_allclose(x, xs, atol=1e-9)

    def test_report_fields_consistent(self, prepared_grid12):
        b = np.ones((prepared_grid12.a.n, 2))
        _, rep = prepared_grid12.solve(b, check=False)
        assert rep.nrhs == 2
        assert rep.fbsolve_seconds == rep.forward.seconds + rep.backward.seconds
        assert rep.forward.flops == rep.backward.flops
        assert rep.factor_seconds > 0 and rep.factor_flops > 0
        assert rep.fbsolve_mflops > 0

    def test_solve_before_prepare_rejected(self):
        a = grid2d_laplacian(5)
        solver = ParallelSparseSolver(a, p=1)
        with pytest.raises(ValueError, match="prepare"):
            solver.solve(np.ones(a.n))

    def test_non_power_of_two_p_rejected(self):
        with pytest.raises(ValueError):
            ParallelSparseSolver(grid2d_laplacian(4), p=3)

    def test_rhs_size_mismatch(self, prepared_grid12):
        with pytest.raises(ValueError, match="mismatch"):
            prepared_grid12.solve(np.ones(7))

    def test_relaxed_supernodes_end_to_end(self, rng):
        a = grid2d_laplacian(9)
        solver = ParallelSparseSolver(a, p=4, relax=4).prepare()
        b = rng.normal(size=a.n)
        _, rep = solver.solve(b)
        assert rep.residual < 1e-10

    def test_row_priority_end_to_end(self, rng):
        a = grid2d_laplacian(9)
        solver = ParallelSparseSolver(a, p=4, variant="row").prepare()
        b = rng.normal(size=a.n)
        _, rep = solver.solve(b)
        assert rep.residual < 1e-10


class TestFactorModel:
    def test_serial_equals_parallel_at_p1(self, prepared_grid12):
        from repro.core.factor_model import parallel_factor_time, serial_factor_time

        stree = prepared_grid12.symbolic.stree
        assign = subtree_to_subcube(stree, 1)
        ts = serial_factor_time(cray_t3d(), stree)
        tp = parallel_factor_time(cray_t3d(), stree, assign)
        assert tp == pytest.approx(ts, rel=1e-9)

    def test_parallel_factor_speeds_up(self, prepared_grid12):
        from repro.core.factor_model import parallel_factor_time, serial_factor_time

        stree = prepared_grid12.symbolic.stree
        ts = serial_factor_time(cray_t3d(), stree)
        tp = parallel_factor_time(cray_t3d(), stree, subtree_to_subcube(stree, 16))
        assert tp < ts
        assert tp > ts / 16  # cannot be superlinear

    def test_factor_dominates_solve(self):
        """Paper headline: even in parallel, factorization time exceeds one
        triangular solve.  Needs a matrix with realistic fill (the flop
        ratio factor/solve grows with N; tiny grids are solve-dominated)."""
        a = fe_mesh_2d(30, seed=6)
        base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        b = np.ones(a.n)
        for p in (1, 8):
            solver = clone_for_p(base, p)
            _, rep = solver.solve(b, check=False)
            assert rep.factor_seconds > rep.fbsolve_seconds
