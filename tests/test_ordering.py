import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.graph.structure import adjacency_from_matrix
from repro.ordering.api import order
from repro.ordering.minimum_degree import minimum_degree
from repro.ordering.nested_dissection import nested_dissection
from repro.ordering.permutation import Permutation
from repro.ordering.rcm import reverse_cuthill_mckee
from repro.sparse.generators import grid2d_laplacian, random_spd
from repro.symbolic.analyze import analyze


class TestPermutation:
    def test_identity(self):
        p = Permutation.identity(4)
        np.testing.assert_array_equal(p.perm, [0, 1, 2, 3])

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Permutation(np.array([0, 0, 1]))

    def test_inverse_roundtrip(self):
        p = Permutation(np.array([2, 0, 3, 1]))
        q = p.inverse()
        np.testing.assert_array_equal(q.perm[p.perm], np.arange(4))

    def test_apply_unapply_roundtrip(self, rng):
        p = Permutation(np.array([2, 0, 3, 1]))
        x = rng.normal(size=4)
        np.testing.assert_allclose(p.unapply_to_vector(p.apply_to_vector(x)), x)

    def test_apply_matrix_rhs(self, rng):
        p = Permutation(np.array([1, 2, 0]))
        x = rng.normal(size=(3, 2))
        np.testing.assert_allclose(p.apply_to_vector(x), x[p.perm])

    def test_compose(self):
        inner = Permutation(np.array([1, 2, 0]))
        outer = Permutation(np.array([2, 0, 1]))
        composed = outer.compose(inner)
        np.testing.assert_array_equal(composed.perm, inner.perm[outer.perm])

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            Permutation.identity(3).compose(Permutation.identity(4))

    def test_equality(self):
        assert Permutation.identity(3) == Permutation(np.arange(3))
        assert Permutation.identity(3) != Permutation(np.array([1, 0, 2]))


@given(st.permutations(list(range(8))))
def test_permutation_inverse_property(perm_list):
    p = Permutation(np.array(perm_list))
    assert p.inverse().inverse() == p


class TestMinimumDegree:
    def test_is_permutation(self, grid8):
        g = adjacency_from_matrix(grid8)
        p = minimum_degree(g)
        assert p.n == grid8.n  # Permutation validates internally

    def test_star_graph_center_last(self):
        # star: center 0 connected to 1..5; MD must eliminate leaves first
        from repro.sparse.build import from_triplets

        a = from_triplets(6, [1, 2, 3, 4, 5], [0] * 5, [-1.0] * 5)
        g = adjacency_from_matrix(a)
        p = minimum_degree(g)
        # leaves (degree 1) are eliminated before the center (degree 5);
        # once one leaf remains, the center ties it at degree 1 and the
        # index tie-break may pick either, so the center lands in the
        # last two positions.
        assert 0 in list(p.perm[-2:])

    def test_reduces_fill_vs_natural(self, grid8):
        fill_md = analyze(grid8, method="minimum_degree").factor_nnz
        fill_nat = analyze(grid8, method="natural").factor_nnz
        assert fill_md < fill_nat

    def test_rejects_unknown_tiebreak(self, grid8):
        g = adjacency_from_matrix(grid8)
        with pytest.raises(ValueError):
            minimum_degree(g, tie_break="random")


class TestNestedDissection:
    def test_is_permutation(self, grid8):
        g = adjacency_from_matrix(grid8)
        nested_dissection(g)  # validates as Permutation internally

    def test_separator_numbered_last(self):
        a = grid2d_laplacian(8)
        g = adjacency_from_matrix(a)
        p = nested_dissection(g, leaf_size=4)
        # The last-numbered vertices must form a valid separator of the grid:
        # removing them disconnects the graph into >= 2 components.
        from repro.graph.traversal import connected_components

        sep_size = 8  # top-level separator of an 8x8 grid has ~8 vertices
        keep = np.sort(p.perm[: a.n - sep_size])
        sub, _ = g.subgraph(keep)
        labels = connected_components(sub)
        assert labels.max() >= 1

    def test_fill_beats_natural_on_large_grid(self):
        a = grid2d_laplacian(14)
        fill_nd = analyze(a, method="nested_dissection").factor_nnz
        fill_nat = analyze(a, method="natural").factor_nnz
        assert fill_nd < fill_nat

    def test_max_depth_limits_recursion(self, grid8):
        g = adjacency_from_matrix(grid8)
        p = nested_dissection(g, max_depth=1)
        assert p.n == 64

    def test_works_without_coords(self):
        a = random_spd(50, density=0.05, seed=11)
        g = adjacency_from_matrix(a)
        p = nested_dissection(g)
        assert p.n == 50


class TestRCM:
    def test_is_permutation(self, fe9):
        g = adjacency_from_matrix(fe9)
        reverse_cuthill_mckee(g)

    def test_reduces_bandwidth(self, grid8):
        g = adjacency_from_matrix(grid8)
        p = reverse_cuthill_mckee(g)
        a_perm = grid8.permuted(p.perm)

        def bandwidth(a):
            worst = 0
            for j in range(a.n):
                rows, _ = a.column(j)
                if rows.shape[0] > 1:
                    worst = max(worst, int(rows[-1]) - j)
            return worst

        # natural ordering of an 8x8 grid has bandwidth 8; RCM should not
        # be dramatically worse and usually matches it
        assert bandwidth(a_perm) <= bandwidth(grid8) + 1

    def test_handles_disconnected(self):
        from repro.sparse.build import from_triplets

        a = from_triplets(4, [1, 3], [0, 2], [-1.0, -1.0])
        g = adjacency_from_matrix(a)
        p = reverse_cuthill_mckee(g)
        assert p.n == 4


class TestOrderAPI:
    @pytest.mark.parametrize("method", ["nested_dissection", "minimum_degree", "rcm", "natural"])
    def test_all_methods_give_permutations(self, grid8, method):
        p = order(grid8, method)
        assert p.n == grid8.n

    def test_natural_is_identity(self, grid8):
        assert order(grid8, "natural") == Permutation.identity(grid8.n)

    def test_unknown_method(self, grid8):
        with pytest.raises(ValueError, match="unknown ordering"):
            order(grid8, "magic")

    @pytest.mark.parametrize("method", ["nested_dissection", "minimum_degree", "rcm", "natural"])
    def test_every_ordering_solves_correctly(self, grid8, method, rng):
        from repro.core.solver import ParallelSparseSolver

        solver = ParallelSparseSolver(grid8, p=1, ordering=method).prepare()
        b = rng.normal(size=grid8.n)
        x, rep = solver.solve(b)
        assert rep.residual < 1e-10
