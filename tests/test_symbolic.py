import numpy as np
import pytest

from repro.sparse.build import from_dense, from_triplets
from repro.sparse.generators import grid2d_laplacian, random_spd
from repro.symbolic.analyze import analyze
from repro.symbolic.etree import NO_PARENT, elimination_tree, is_valid_etree
from repro.symbolic.pattern import column_counts, symbolic_factor_pattern
from repro.symbolic.postorder import (
    children_lists,
    postorder,
    relabel_tree,
    subtree_sizes,
    tree_levels,
)
from repro.symbolic.supernodes import SupernodePartition, find_supernodes
from repro.symbolic.stree import build_supernodal_tree


def brute_force_etree(dense):
    """Reference elimination tree from a dense Cholesky fill pattern."""
    n = dense.shape[0]
    l = np.linalg.cholesky(dense)
    pattern = np.abs(l) > 1e-12
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    for j in range(n):
        below = np.flatnonzero(pattern[j + 1 :, j])
        if below.size:
            parent[j] = j + 1 + below[0]
    return parent


class TestEliminationTree:
    def test_tridiagonal_is_path(self):
        dense = np.diag([4.0] * 5) + np.diag([-1.0] * 4, 1) + np.diag([-1.0] * 4, -1)
        parent = elimination_tree(from_dense(dense))
        np.testing.assert_array_equal(parent, [1, 2, 3, 4, NO_PARENT])

    def test_matches_brute_force_on_grid(self, grid8):
        parent = elimination_tree(grid8)
        np.testing.assert_array_equal(parent, brute_force_etree(grid8.to_dense()))

    def test_matches_brute_force_on_random(self):
        a = random_spd(40, density=0.08, seed=5)
        parent = elimination_tree(a)
        np.testing.assert_array_equal(parent, brute_force_etree(a.to_dense()))

    def test_valid_structure(self, fe9):
        assert is_valid_etree(elimination_tree(fe9))

    def test_diagonal_matrix_is_forest_of_roots(self):
        a = from_dense(np.eye(4) * 2.0)
        parent = elimination_tree(a)
        assert all(p == NO_PARENT for p in parent)


class TestPostorder:
    def test_postorder_children_before_parents(self, grid8):
        parent = elimination_tree(grid8)
        post = postorder(parent)
        seen = set()
        for old in post.perm:
            for child in children_lists(parent)[old]:
                assert child in seen
            seen.add(int(old))

    def test_relabelled_tree_monotone(self, grid8):
        parent = elimination_tree(grid8)
        post = postorder(parent)
        parent2 = relabel_tree(parent, post)
        for j, p in enumerate(parent2):
            assert p == NO_PARENT or p > j

    def test_levels_root_zero(self, sym_grid8):
        lev = tree_levels(sym_grid8.etree_parent)
        roots = [j for j, p in enumerate(sym_grid8.etree_parent) if p == NO_PARENT]
        for r in roots:
            assert lev[r] == 0
        assert lev.min() == 0

    def test_levels_parent_child_differ_by_one(self, sym_grid8):
        parent = sym_grid8.etree_parent
        lev = tree_levels(parent)
        for j, p in enumerate(parent):
            if p != NO_PARENT:
                assert lev[j] == lev[p] + 1

    def test_subtree_sizes_root_total(self, sym_grid8):
        parent = sym_grid8.etree_parent
        sizes = subtree_sizes(parent)
        roots = [j for j, p in enumerate(parent) if p == NO_PARENT]
        assert sum(int(sizes[r]) for r in roots) == parent.shape[0]


class TestPattern:
    def test_pattern_contains_numeric_fill(self, sym_grid8):
        dense = sym_grid8.a_perm.to_dense()
        l = np.linalg.cholesky(dense)
        mask = np.zeros_like(l, dtype=bool)
        for j in range(dense.shape[0]):
            lo, hi = sym_grid8.l_indptr[j], sym_grid8.l_indptr[j + 1]
            mask[sym_grid8.l_indices[lo:hi], j] = True
        assert np.abs(l[~mask]).max() < 1e-12

    def test_pattern_exact_for_tridiagonal(self):
        dense = np.diag([4.0] * 5) + np.diag([-1.0] * 4, 1) + np.diag([-1.0] * 4, -1)
        a = from_dense(dense)
        parent = elimination_tree(a)
        indptr, indices = symbolic_factor_pattern(a, parent)
        assert int(indptr[-1]) == 9  # 5 diag + 4 subdiag, no fill

    def test_counts_match_pattern(self, grid8):
        parent = elimination_tree(grid8)
        indptr, _ = symbolic_factor_pattern(grid8, parent)
        np.testing.assert_array_equal(column_counts(grid8, parent), np.diff(indptr))

    def test_columns_diag_first_sorted(self, sym_grid8):
        for j in range(sym_grid8.n):
            lo, hi = sym_grid8.l_indptr[j], sym_grid8.l_indptr[j + 1]
            col = sym_grid8.l_indices[lo:hi]
            assert col[0] == j
            assert np.all(np.diff(col) > 0)

    def test_arrow_matrix_no_fill(self):
        # arrow pointing down-right: dense last row/col; zero fill
        n = 6
        dense = np.eye(n) * float(n)
        dense[-1, :] = dense[:, -1] = -1.0
        dense[-1, -1] = float(n)
        a = from_dense(dense)
        parent = elimination_tree(a)
        indptr, _ = symbolic_factor_pattern(a, parent)
        assert int(indptr[-1]) == 2 * n - 1

    def test_reverse_arrow_full_fill(self):
        # arrow pointing up-left: dense FIRST row/col => complete fill
        n = 6
        dense = np.eye(n) * float(n)
        dense[0, :] = dense[:, 0] = -1.0
        dense[0, 0] = float(n)
        a = from_dense(dense)
        parent = elimination_tree(a)
        indptr, _ = symbolic_factor_pattern(a, parent)
        assert int(indptr[-1]) == n * (n + 1) // 2


class TestSupernodes:
    def test_partition_validation(self):
        with pytest.raises(ValueError):
            SupernodePartition(np.array([1, 3]))  # must start at 0
        with pytest.raises(ValueError):
            SupernodePartition(np.array([0, 3, 3]))  # strictly increasing

    def test_partition_queries(self):
        part = SupernodePartition(np.array([0, 2, 5]))
        assert part.nsuper == 2
        assert part.columns(1) == (2, 5)
        assert part.width(0) == 2
        np.testing.assert_array_equal(part.column_to_supernode(), [0, 0, 1, 1, 1])

    def test_dense_block_single_supernode(self):
        # A fully dense SPD matrix is one supernode.
        rng = np.random.default_rng(0)
        m = rng.normal(size=(5, 5))
        a = from_dense(m @ m.T + 5 * np.eye(5))
        parent = elimination_tree(a)
        counts = column_counts(a, parent)
        part = find_supernodes(parent, counts)
        assert part.nsuper == 1

    def test_tridiagonal_no_merging(self):
        dense = np.diag([4.0] * 5) + np.diag([-1.0] * 4, 1) + np.diag([-1.0] * 4, -1)
        a = from_dense(dense)
        parent = elimination_tree(a)
        part = find_supernodes(parent, column_counts(a, parent))
        # every interior column has count 2 (diag + subdiag), so the
        # count(j) == count(j+1) + 1 rule only merges the last two columns
        assert part.nsuper == 4
        assert part.columns(3) == (3, 5)

    def test_fundamental_pattern_identical_within_supernode(self, sym_grid8):
        lptr, lidx = sym_grid8.l_indptr, sym_grid8.l_indices
        for s in range(sym_grid8.partition.nsuper):
            lo, hi = sym_grid8.partition.columns(s)
            first = set(int(i) for i in lidx[lptr[lo] : lptr[lo + 1]])
            for j in range(lo + 1, hi):
                colj = set(int(i) for i in lidx[lptr[j] : lptr[j + 1]])
                # nested-pattern property of fundamental supernodes
                assert colj == {i for i in first if i >= j}

    def test_relaxation_reduces_supernode_count(self):
        a = grid2d_laplacian(10)
        strict = analyze(a, relax=0).partition.nsuper
        relaxed = analyze(a, relax=4).partition.nsuper
        assert relaxed <= strict


class TestSupernodalTree:
    def test_rows_structure(self, sym_grid8):
        for sn in sym_grid8.stree.supernodes:
            t = sn.t
            np.testing.assert_array_equal(sn.rows[:t], np.arange(sn.col_lo, sn.col_hi))
            below = sn.rows[t:]
            assert np.all(below >= sn.col_hi)
            assert np.all(np.diff(below) > 0)

    def test_parent_owns_first_below_row(self, sym_grid8):
        stree = sym_grid8.stree
        col2sn = sym_grid8.partition.column_to_supernode()
        for s, sn in enumerate(stree.supernodes):
            if sn.n > sn.t:
                assert stree.parent[s] == col2sn[sn.below[0]]
            else:
                assert stree.parent[s] == NO_PARENT

    def test_levels_consistent(self, sym_grid8):
        stree = sym_grid8.stree
        for s in range(stree.nsuper):
            p = int(stree.parent[s])
            if p != NO_PARENT:
                assert stree.level[s] == stree.level[p] + 1

    def test_factor_nnz_matches_pattern(self, sym_grid8):
        assert sym_grid8.stree.factor_nnz() == sym_grid8.factor_nnz

    def test_children_inverse_of_parent(self, sym_grid8):
        stree = sym_grid8.stree
        for s in range(stree.nsuper):
            for c in stree.children[s]:
                assert stree.parent[c] == s

    def test_child_update_rows_inside_parent(self, sym_grid3d5):
        """The multifrontal invariant: a child's below rows are a subset of
        the parent's rows (columns + below)."""
        stree = sym_grid3d5.stree
        for s, sn in enumerate(stree.supernodes):
            p = int(stree.parent[s])
            if p == NO_PARENT:
                continue
            parent_rows = set(int(r) for r in stree.supernodes[p].rows)
            parent_cols = set(range(stree.supernodes[p].col_lo, stree.supernodes[p].col_hi))
            for r in sn.below:
                assert int(r) in parent_rows or int(r) in parent_cols


class TestAnalyzeDriver:
    def test_permutation_composes_ordering_and_postorder(self, grid8, rng):
        sym = analyze(grid8)
        x = rng.normal(size=grid8.n)
        from repro.sparse.ops import matvec

        b = matvec(grid8, x)
        # P A P^T (P x) == P b
        lhs = matvec(sym.a_perm, sym.perm.apply_to_vector(x))
        np.testing.assert_allclose(lhs, sym.perm.apply_to_vector(b), atol=1e-10)

    def test_postordered_etree(self, sym_grid8):
        for j, p in enumerate(sym_grid8.etree_parent):
            assert p == NO_PARENT or p > j

    def test_supernode_columns_contiguous_in_tree(self, sym_grid8):
        # within a supernode, column j's etree parent is j+1
        for s in range(sym_grid8.partition.nsuper):
            lo, hi = sym_grid8.partition.columns(s)
            for j in range(lo, hi - 1):
                assert sym_grid8.etree_parent[j] == j + 1

    def test_build_supernodal_tree_roundtrip(self, sym_grid8):
        stree2 = build_supernodal_tree(
            sym_grid8.l_indptr, sym_grid8.l_indices, sym_grid8.partition
        )
        assert stree2.nsuper == sym_grid8.stree.nsuper
        for a, b in zip(stree2.supernodes, sym_grid8.stree.supernodes):
            np.testing.assert_array_equal(a.rows, b.rows)
