"""The worked example of the paper's Figure 1.

Figure 1 shows a small symmetric matrix whose elimination tree, under a
nested-dissection-style numbering, is a balanced binary tree mapped
subtree-to-subcube onto 8 processors, with nodes {16, 17, 18} forming the
root supernode.  We rebuild an equivalent instance: a 2-level dissection
of two 3x3 blocks joined by separators, and check every structural claim
the figure makes.
"""

import numpy as np
import pytest

from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse.build import from_triplets
from repro.symbolic.analyze import analyze
from repro.symbolic.etree import NO_PARENT


@pytest.fixture(scope="module")
def fig1_matrix():
    """A 19-node matrix in the spirit of Figure 1(a).

    Two 9-node halves (each: two 3-node leaf cliques + 3-node separator)
    joined by a 1-node top separator would not match the paper's 3-wide
    root supernode, so we use a 3-node top separator: 4 leaf blocks of 3
    nodes, 2 mid separators of 2 nodes, 1 top separator of 3 nodes =
    4*3 + 2*2 + 3 = 19 nodes, numbered leaves first, separators last
    (a nested-dissection numbering).
    """
    edges = []

    def clique(nodes):
        for a in nodes:
            for b in nodes:
                if a < b:
                    edges.append((a, b))

    leaves = [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10, 11]]
    mids = [[12, 13], [14, 15]]
    top = [16, 17, 18]
    for blk in leaves:
        clique(blk)
    for blk in mids:
        clique(blk)
    clique(top)
    # leaf blocks attach to their side's mid separator
    for leaf, mid in ((0, 0), (1, 0), (2, 1), (3, 1)):
        for v in leaves[leaf]:
            for s in mids[mid]:
                edges.append((min(v, s), max(v, s)))
    # mid separators attach to the top separator
    for mid in mids:
        for v in mid:
            for s in top:
                edges.append((v, s))
    rows = np.array([e[1] for e in edges])
    cols = np.array([e[0] for e in edges])
    vals = -np.ones(rows.shape[0]) * 0.1
    # diagonally dominant diagonal makes the instance SPD
    deg = np.zeros(19)
    np.add.at(deg, rows, 0.1)
    np.add.at(deg, cols, 0.1)
    rows = np.concatenate([rows, np.arange(19)])
    cols = np.concatenate([cols, np.arange(19)])
    vals = np.concatenate([vals, deg + 1.0])
    return from_triplets(19, rows, cols, vals)


@pytest.fixture(scope="module")
def fig1_sym(fig1_matrix):
    # natural ordering: the matrix is already nested-dissection numbered
    return analyze(fig1_matrix, method="natural")


class TestFigure1:
    def test_root_supernode_is_top_separator(self, fig1_sym):
        stree = fig1_sym.stree
        roots = stree.roots()
        assert len(roots) == 1
        root = stree.supernodes[roots[0]]
        assert (root.col_lo, root.col_hi) == (16, 19)  # nodes 16,17,18

    def test_tree_depth_three_levels(self, fig1_sym):
        assert int(fig1_sym.stree.level.max()) == 2

    def test_balanced_binary_structure(self, fig1_sym):
        stree = fig1_sym.stree
        root = stree.roots()[0]
        assert len(stree.children[root]) == 2
        for mid in stree.children[root]:
            assert len(stree.children[mid]) == 2

    def test_subtree_to_subcube_eight_procs(self, fig1_sym):
        """Figure 1(b): root on all 8, mid separators on 4 each, leaf
        subtrees on 2 each."""
        stree = fig1_sym.stree
        assign = subtree_to_subcube(stree, 8)
        root = stree.roots()[0]
        assert assign[root].size == 8
        mids = stree.children[root]
        assert sorted(assign[m].size for m in mids) == [4, 4]
        # the two mid subcubes are disjoint halves
        assert {(assign[m].start, assign[m].stop) for m in mids} == {(0, 4), (4, 8)}
        for m in mids:
            for leaf in stree.children[m]:
                assert assign[leaf].size == 2

    def test_supernode_trapezoids(self, fig1_sym):
        """Leaf supernodes are 3 columns wide with 2 below rows (their mid
        separator); mids are 2 wide with 3 below rows (the top)."""
        stree = fig1_sym.stree
        root = stree.roots()[0]
        for mid in stree.children[root]:
            sn = stree.supernodes[mid]
            assert sn.t == 2 and sn.n == 5
            for leaf in stree.children[mid]:
                ln = stree.supernodes[leaf]
                assert ln.t == 3 and ln.n == 5

    def test_etree_parents_within_supernodes(self, fig1_sym):
        parent = fig1_sym.etree_parent
        assert parent[16] == 17 and parent[17] == 18
        assert parent[18] == NO_PARENT

    def test_solve_on_eight_procs(self, fig1_matrix, rng):
        from repro.core.solver import ParallelSparseSolver

        solver = ParallelSparseSolver(fig1_matrix, p=8, ordering="natural").prepare()
        x, rep = solver.solve(rng.normal(size=19))
        assert rep.residual < 1e-12
