"""SPMD sparse backward solver vs the task-graph implementation."""

import numpy as np
import pytest

from repro.core.backward import parallel_backward
from repro.core.spmd_backward import spmd_backward
from repro.core.spmd_forward import spmd_forward
from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.numeric.trisolve import backward_supernodal
from repro.sparse.generators import fe_mesh_2d, grid2d_laplacian, grid3d_laplacian


@pytest.fixture(scope="module")
def setup():
    a = grid2d_laplacian(11)
    base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
    rng = np.random.default_rng(19)
    bp = base.symbolic.perm.apply_to_vector(rng.normal(size=(a.n, 2)))
    return base, bp, backward_supernodal(base.factor, bp)


class TestSpmdBackwardCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_matches_serial(self, setup, p):
        base, bp, x_ref = setup
        assign = subtree_to_subcube(base.symbolic.stree, p)
        x, _ = spmd_backward(base.factor, assign, cray_t3d(), bp, b=4, nproc=p)
        np.testing.assert_allclose(x, x_ref, atol=1e-12)

    @pytest.mark.parametrize("b", [1, 3, 8, 32])
    def test_block_size_invariant(self, setup, b):
        base, bp, x_ref = setup
        assign = subtree_to_subcube(base.symbolic.stree, 8)
        x, _ = spmd_backward(base.factor, assign, cray_t3d(), bp, b=b, nproc=8)
        np.testing.assert_allclose(x, x_ref, atol=1e-12)

    def test_3d_matrix(self, rng):
        a = grid3d_laplacian(5)
        base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        bp = base.symbolic.perm.apply_to_vector(rng.normal(size=a.n))
        x_ref = backward_supernodal(base.factor, bp)
        assign = subtree_to_subcube(base.symbolic.stree, 8)
        x, _ = spmd_backward(base.factor, assign, cray_t3d(), bp, nproc=8)
        np.testing.assert_allclose(x, x_ref, atol=1e-12)

    def test_vector_rhs_shape(self, setup):
        base, bp, x_ref = setup
        assign = subtree_to_subcube(base.symbolic.stree, 4)
        x, _ = spmd_backward(base.factor, assign, cray_t3d(), bp[:, 0], nproc=4)
        assert x.ndim == 1
        np.testing.assert_allclose(x, x_ref[:, 0], atol=1e-12)


class TestSpmdBackwardScaling:
    def test_speedup(self):
        a = fe_mesh_2d(24, seed=30)
        base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        rng = np.random.default_rng(2)
        bp = base.symbolic.perm.apply_to_vector(rng.normal(size=(a.n, 1)))
        times = {}
        for p in (1, 16):
            assign = subtree_to_subcube(base.symbolic.stree, p)
            _, res = spmd_backward(base.factor, assign, cray_t3d(), bp, nproc=p)
            times[p] = res.makespan
        assert times[16] < times[1] / 3

    def test_same_ballpark_as_task_graph(self, setup):
        base, bp, _ = setup
        for p in (2, 8):
            assign = subtree_to_subcube(base.symbolic.stree, p)
            _, spmd_res = spmd_backward(base.factor, assign, cray_t3d(), bp, nproc=p)
            _, tg_res = parallel_backward(base.factor, assign, cray_t3d(), bp, nproc=p)
            ratio = spmd_res.makespan / tg_res.makespan
            assert 0.3 < ratio < 3.0, f"p={p}: ratio {ratio}"


class TestFullSpmdSolve:
    def test_forward_then_backward_solves_system(self, rng):
        """The complete SPMD pipeline solves A x = b end to end."""
        from repro.sparse.ops import relative_residual

        a = grid2d_laplacian(9)
        base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
        b = rng.normal(size=(a.n, 2))
        bp = base.symbolic.perm.apply_to_vector(b)
        assign = subtree_to_subcube(base.symbolic.stree, 8)
        y, _ = spmd_forward(base.factor, assign, cray_t3d(), bp, nproc=8)
        xp, _ = spmd_backward(base.factor, assign, cray_t3d(), y, nproc=8)
        x = base.symbolic.perm.unapply_to_vector(xp)
        assert relative_residual(a, x, b) < 1e-12
