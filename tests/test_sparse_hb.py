"""Harwell-Boeing format reader/writer."""

import numpy as np
import pytest

from repro.sparse.generators import fe_mesh_2d, grid2d_laplacian
from repro.sparse.hb import (
    parse_fortran_format,
    read_harwell_boeing,
    write_harwell_boeing,
)


class TestFortranFormats:
    @pytest.mark.parametrize(
        "fmt,expect",
        [
            ("(13I6)", (13, "I", 6)),
            ("(5E15.8)", (5, "E", 15)),
            ("(16I5)", (16, "I", 5)),
            ("(1P,5E15.8)", (5, "E", 15)),
            ("(4D20.12)", (4, "D", 20)),
            ("  (10F7.1) ", (10, "F", 7)),
        ],
    )
    def test_parse(self, fmt, expect):
        assert parse_fortran_format(fmt) == expect

    def test_reject_garbage(self):
        with pytest.raises(ValueError):
            parse_fortran_format("not a format")


class TestRoundtrip:
    def test_write_read_identity(self, tmp_path, grid8):
        path = tmp_path / "g.rsa"
        write_harwell_boeing(grid8, path)
        back = read_harwell_boeing(path)
        np.testing.assert_allclose(back.to_dense(), grid8.to_dense(), atol=1e-7)

    def test_roundtrip_bigger_values(self, tmp_path):
        a = fe_mesh_2d(7, seed=13)
        path = tmp_path / "m.rsa"
        write_harwell_boeing(a, path)
        back = read_harwell_boeing(path)
        np.testing.assert_allclose(back.to_dense(), a.to_dense(), rtol=1e-7)

    def test_header_fields(self, tmp_path, grid8):
        path = tmp_path / "g.rsa"
        write_harwell_boeing(grid8, path, title="my matrix", key="KEY01")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("my matrix")
        assert "RSA" in lines[2]
        assert f"{grid8.n}" in lines[2]


class TestReader:
    def _mini_rsa(self):
        # 3x3 tridiagonal: diag 2, off-diag -1 (lower triangle)
        return (
            "tiny                                                                    TINY\n"
            "             3             1             1             1\n"
            "RSA                       3             3             5             0\n"
            "(13I6)          (13I6)          (5E15.8)            \n"
            "     1     3     5     6\n"
            "     1     2     2     3     3\n"
            " 2.00000000E+00-1.00000000E+00 2.00000000E+00-1.00000000E+00 2.00000000E+00\n"
        )

    def test_reads_values(self, tmp_path):
        path = tmp_path / "t.rsa"
        path.write_text(self._mini_rsa())
        a = read_harwell_boeing(path)
        expect = np.array([[2.0, -1.0, 0.0], [-1.0, 2.0, -1.0], [0.0, -1.0, 2.0]])
        np.testing.assert_allclose(a.to_dense(), expect)

    def test_pattern_matrix_becomes_spd(self, tmp_path):
        text = (
            "pat                                                                     PAT\n"
            "             2             1             1             0\n"
            "PSA                       3             3             4             0\n"
            "(13I6)          (13I6)          \n"
            "     1     3     4     5\n"
            "     1     2     2     3\n"
        )
        path = tmp_path / "p.psa"
        path.write_text(text)
        a = read_harwell_boeing(path)
        assert np.linalg.eigvalsh(a.to_dense()).min() > 0

    def test_rejects_unsymmetric(self, tmp_path):
        text = self._mini_rsa().replace("RSA", "RUA")
        path = tmp_path / "u.rua"
        path.write_text(text)
        with pytest.raises(ValueError, match="symmetric"):
            read_harwell_boeing(path)

    def test_rejects_truncated(self, tmp_path):
        text = "\n".join(self._mini_rsa().splitlines()[:5])
        path = tmp_path / "bad.rsa"
        path.write_text(text)
        with pytest.raises(ValueError):
            read_harwell_boeing(path)

    def test_d_exponent_values(self, tmp_path):
        text = self._mini_rsa().replace("E+00", "D+00")
        path = tmp_path / "d.rsa"
        path.write_text(text)
        a = read_harwell_boeing(path)
        assert a.to_dense()[0, 0] == 2.0


def test_hb_file_solves(tmp_path, rng):
    """A matrix round-tripped through HB factors and solves identically."""
    from repro.core.solver import ParallelSparseSolver

    a = grid2d_laplacian(7)
    path = tmp_path / "g.rsa"
    write_harwell_boeing(a, path)
    b = read_harwell_boeing(path)
    rhs = rng.normal(size=a.n)
    xa, _ = ParallelSparseSolver(a, p=2).prepare().solve(rhs)
    xb, _ = ParallelSparseSolver(b, p=2).prepare().solve(rhs)
    np.testing.assert_allclose(xa, xb, atol=1e-6)
