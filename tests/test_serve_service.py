"""SolveService behaviour: transparency, lifecycle, and error paths.

All tests run the service in manual-pump mode on a :class:`FakeClock` —
no dispatcher thread, no sleeps — except where noted.  The headline
invariant is *bitwise transparency*: a request's answer out of any
coalesced batch equals the standalone solve of the same right-hand
side, ``np.array_equal``-exact, across backends and matrix classes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d
from repro.numeric.supernodal import cholesky_supernodal
from repro.serve import SERVE_BACKENDS, FakeClock, QueueFullError, SolveService
from repro.sparse.generators import grid2d_laplacian
from repro.symbolic.analyze import analyze

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def factor_grid8(grid8):
    return cholesky_supernodal(analyze(grid8))


def make_service(factor, **kwargs):
    kwargs.setdefault("backend", "fused")
    kwargs.setdefault("clock", FakeClock())
    service = SolveService(**kwargs)
    service.register("m", factor)
    return service


# ------------------------------------------------------------ transparency
@pytest.mark.parametrize("backend", SERVE_BACKENDS)
@pytest.mark.parametrize("fixture", ["grid8", "grid3d5", "fe9", "rand60"])
def test_bitwise_transparency_across_matrices_and_backends(
    backend, fixture, request, rng
):
    """Coalesced answers are bitwise equal to standalone solves.

    16 width-1 requests land in batches of 6 (full flushes plus a
    drain); every future's result must equal the standalone solve of
    its own right-hand side on the same backend — not merely close:
    identical to the last bit.
    """
    from repro.exec import solve_exec, solve_fused
    from repro.numeric.trisolve import solve_supernodal

    a = request.getfixturevalue(fixture)
    factor = cholesky_supernodal(analyze(a))
    standalone = {
        "serial": solve_supernodal,
        "threads": solve_exec,
        "fused": solve_fused,
    }[backend]

    rhs = [rng.normal(size=a.n) for _ in range(16)]
    with make_service(factor, backend=backend, max_batch=6) as service:
        futures = [service.submit(b, key="m") for b in rhs]
        service.pump_until_idle()
        service.drain()
        for b, fut in zip(rhs, futures):
            got = fut.result(timeout=0)
            assert got.shape == (a.n,)
            assert np.array_equal(got, standalone(factor, b))


def test_transparency_for_multi_column_requests(factor_grid8, rng):
    """Width-w requests batched next to others still slice out bitwise."""
    from repro.exec import solve_fused

    n = factor_grid8.n
    blocks = [rng.normal(size=(n, w)) for w in (1, 3, 2, 1, 4)]
    with make_service(factor_grid8, max_batch=8) as service:
        futures = [service.submit(b, key="m") for b in blocks]
        service.drain()
        for b, fut in zip(blocks, futures):
            got = fut.result(timeout=0)
            assert got.shape == b.shape
            assert np.array_equal(got, solve_fused(factor_grid8, b))


def test_vector_in_vector_out_matrix_in_matrix_out(factor_grid8, rng):
    n = factor_grid8.n
    with make_service(factor_grid8) as service:
        fv = service.submit(rng.normal(size=n), key="m")
        fm = service.submit(rng.normal(size=(n, 1)), key="m")
        service.drain()
        assert fv.result(timeout=0).shape == (n,)
        assert fm.result(timeout=0).shape == (n, 1)


def test_result_is_an_independent_copy(factor_grid8, rng):
    """Mutating one caller's answer cannot corrupt a batch-mate's."""
    n = factor_grid8.n
    with make_service(factor_grid8) as service:
        b = rng.normal(size=n)
        f1 = service.submit(b, key="m")
        f2 = service.submit(b, key="m")
        service.drain()
        x1, x2 = f1.result(timeout=0), f2.result(timeout=0)
        assert np.array_equal(x1, x2)
        x1 += 1.0
        assert not np.array_equal(x1, x2)


# ----------------------------------------------------- solver integration
def test_solver_serving_context_manager(rng):
    """serving() answers in the original ordering, bitwise-equal to solve()."""
    a = grid2d_laplacian(10)
    solver = ParallelSparseSolver(a, p=4, spec=cray_t3d()).prepare()
    rhs = [rng.normal(size=a.n) for _ in range(8)]
    with solver.serving(clock=FakeClock(), max_batch=4) as service:
        futures = [service.submit(b) for b in rhs]
        service.drain()
        for b, fut in zip(rhs, futures):
            got = fut.result(timeout=0)
            x, _ = solver.solve(b, check=False, backend="fused")
            assert np.array_equal(got, x)
    assert service.closed


def test_serving_requires_prepared_solver():
    a = grid2d_laplacian(6)
    solver = ParallelSparseSolver(a, p=1, spec=cray_t3d())
    with pytest.raises(ValueError, match="prepare"):
        with solver.serving(clock=FakeClock()):
            pass  # pragma: no cover - prepare() guard fires first


# ----------------------------------------------------------- registration
def test_register_rejects_duplicate_key(factor_grid8):
    with make_service(factor_grid8) as service:
        with pytest.raises(ValueError, match="already registered"):
            service.register("m", factor_grid8)


def test_register_rejects_wrong_type(factor_grid8):
    with make_service(factor_grid8) as service:
        with pytest.raises(TypeError, match="SupernodalFactor"):
            service.register("x", np.eye(4))


def test_keys_lists_registered_systems(factor_grid8, grid3d5):
    other = cholesky_supernodal(analyze(grid3d5))
    with make_service(factor_grid8) as service:
        service.register("other", other)
        assert service.keys == ("m", "other")


# ------------------------------------------------------------ error paths
def test_submit_unknown_key_raises_keyerror(factor_grid8, rng):
    with make_service(factor_grid8) as service:
        with pytest.raises(KeyError, match="nope"):
            service.submit(rng.normal(size=factor_grid8.n), key="nope")


def test_submit_wrong_length_raises(factor_grid8, rng):
    with make_service(factor_grid8) as service:
        with pytest.raises(ValueError):
            service.submit(rng.normal(size=factor_grid8.n + 1), key="m")


def test_submit_wider_than_max_batch_raises(factor_grid8, rng):
    with make_service(factor_grid8, max_batch=4) as service:
        with pytest.raises(ValueError, match="max_batch"):
            service.submit(rng.normal(size=(factor_grid8.n, 5)), key="m")


def test_submit_after_close_raises(factor_grid8, rng):
    service = make_service(factor_grid8)
    service.close()
    with pytest.raises(RuntimeError, match="closed"):
        service.submit(rng.normal(size=factor_grid8.n), key="m")
    service.close()  # idempotent


def test_backpressure_surfaces_queue_full(factor_grid8, rng):
    with make_service(factor_grid8, max_batch=2, max_queue=2) as service:
        service.submit(rng.normal(size=factor_grid8.n), key="m")
        service.submit(rng.normal(size=factor_grid8.n), key="m")
        with pytest.raises(QueueFullError):
            service.submit(rng.normal(size=factor_grid8.n), key="m")
        assert service.report().rejected == 1
        service.drain()


def test_solve_failure_resolves_every_future_with_the_exception(rng):
    """A poisoned batch fails its requests; the service keeps serving."""
    import dataclasses

    a = grid2d_laplacian(6)
    factor = cholesky_supernodal(analyze(a))
    with make_service(factor, max_batch=4) as service:
        good_entry = service._entries["m"]

        def boom(bmat):
            raise RuntimeError("packed solve exploded")

        service._entries["m"] = dataclasses.replace(good_entry, solve=boom)
        f1 = service.submit(rng.normal(size=a.n), key="m")
        f2 = service.submit(rng.normal(size=a.n), key="m")
        service.drain()
        for fut in (f1, f2):
            with pytest.raises(RuntimeError, match="exploded"):
                fut.result(timeout=0)
        report = service.report()
        assert report.failed == 2 and report.completed == 0
        # The service still works once the backend behaves again.
        service._entries["m"] = good_entry
        ok = service.submit(rng.normal(size=a.n), key="m")
        service.drain()
        assert ok.result(timeout=0).shape == (a.n,)


def test_cancelled_future_is_skipped_not_solved(factor_grid8, rng):
    with make_service(factor_grid8, max_batch=4) as service:
        f1 = service.submit(rng.normal(size=factor_grid8.n), key="m")
        f2 = service.submit(rng.normal(size=factor_grid8.n), key="m")
        assert f1.cancel()
        service.drain()
        assert f1.cancelled()
        assert f2.result(timeout=0).shape == (factor_grid8.n,)
        report = service.report()
        assert report.cancelled == 1 and report.completed == 1


def test_manual_pump_apis_rejected_on_threaded_service(factor_grid8):
    service = SolveService(backend="fused")  # real clock -> dispatcher thread
    try:
        service.register("m", factor_grid8)
        assert service.manual is False
        for method in (service.pump, service.drain):
            with pytest.raises(RuntimeError, match="manual-pump"):
                method()
    finally:
        service.close()


def test_invalid_backend_and_workers_combinations(factor_grid8):
    with pytest.raises(ValueError, match="backend"):
        SolveService(backend="quantum")
    with pytest.raises(ValueError, match="workers"):
        SolveService(backend="fused", workers=2)


# ----------------------------------------------------------------- report
def test_report_counts_and_triggers(factor_grid8, rng):
    clk = FakeClock()
    with make_service(
        factor_grid8, clock=clk, max_batch=4, max_wait=1.0, idle_wait=None
    ) as service:
        futures = [
            service.submit(rng.normal(size=factor_grid8.n), key="m") for _ in range(5)
        ]
        assert service.pending_columns == 5
        service.pump_until_idle()  # the full batch of 4
        clk.advance(1.0)
        service.pump_until_idle()  # the deadline batch of 1
        report = service.report()
        assert report.submitted == 5 and report.completed == 5
        assert report.nbatches == 2
        assert report.trigger_counts == {"full": 1, "deadline": 1}
        assert report.total_columns == 5
        assert report.mean_batch_width == 2.5
        assert report.peak_queue_columns == 5
        assert report.wait_max == 1.0
        assert report.columns_per_second > 0
        assert "5 submitted" in report.summary()
        assert all(f.done() for f in futures)


def test_report_snapshot_is_independent(factor_grid8, rng):
    with make_service(factor_grid8) as service:
        service.submit(rng.normal(size=factor_grid8.n), key="m")
        service.drain()
        snap = service.report()
        nbatches = snap.nbatches
        service.submit(rng.normal(size=factor_grid8.n), key="m")
        service.drain()
        assert snap.nbatches == nbatches
        assert service.report().nbatches == nbatches + 1


def test_close_drains_pending_requests(factor_grid8, rng):
    service = make_service(factor_grid8, max_batch=8)
    fut = service.submit(rng.normal(size=factor_grid8.n), key="m")
    service.close()
    assert fut.result(timeout=0).shape == (factor_grid8.n,)
    assert service.report().trigger_counts == {"drain": 1}
