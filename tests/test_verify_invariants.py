"""Structural invariant checkers: catch seeded defects, pass real structures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping.subtree_subcube import ProcSet, subtree_to_subcube
from repro.sparse.generators import grid2d_laplacian
from repro.symbolic.analyze import analyze
from repro.symbolic.supernodes import SupernodePartition
from repro.verify.invariants import (
    check_assignment,
    check_block_cyclic_conformance,
    check_csc,
    check_csc_arrays,
    check_etree,
    check_postordered,
    check_supernode_partition,
    check_symbolic,
)


@pytest.fixture(scope="module")
def sym6():
    return analyze(grid2d_laplacian(6))


# ------------------------------------------------------------------ CSC rules
def test_clean_csc_passes(grid8):
    assert check_csc(grid8).ok


def test_decreasing_indptr():
    report = check_csc_arrays(3, np.array([0, 2, 1, 4]), np.array([0, 2, 1, 9]))
    assert "csc-indptr-monotone" in report.rules()


def test_index_out_of_range():
    report = check_csc_arrays(2, np.array([0, 2, 3]), np.array([0, 1, 9]))
    assert "csc-index-range" in report.rules()


def test_indptr_must_start_at_zero():
    report = check_csc_arrays(2, np.array([1, 2, 3]), np.array([0, 1]))
    assert "csc-indptr-start" in report.rules()


def test_indices_length_mismatch():
    report = check_csc_arrays(2, np.array([0, 1, 2]), np.array([0]))
    assert "csc-indices-length" in report.rules()


def test_diagonal_first_and_upper_entry():
    # Column 1 starts with row 0: above the diagonal and not diagonal-first.
    report = check_csc_arrays(2, np.array([0, 1, 2]), np.array([0, 0]))
    assert "csc-diagonal-first" in report.rules()
    assert "csc-lower-triangular" in report.rules()


def test_duplicate_and_unsorted_indices():
    dup = check_csc_arrays(3, np.array([0, 3, 3, 3]), np.array([0, 1, 1]))
    assert "csc-duplicate-index" in dup.rules()
    unsorted = check_csc_arrays(3, np.array([0, 3, 3, 3]), np.array([0, 2, 1]))
    assert "csc-sorted-indices" in unsorted.rules()


def test_findings_are_capped():
    # 100 decreasing columns must not produce 100 findings.
    indptr = np.zeros(102, dtype=np.int64)
    indptr[1::2] = 5
    report = check_csc_arrays(101, indptr, np.zeros(0, dtype=np.int64))
    assert len(report.by_rule("csc-indptr-monotone")) <= 11


# ---------------------------------------------------------------- etree rules
def test_valid_etree_and_postorder(sym6):
    assert check_etree(sym6.etree_parent).ok
    assert check_postordered(sym6.etree_parent).ok


def test_parent_below_child_rejected():
    report = check_etree(np.array([-1, 0, 1]))
    assert "etree-parent-order" in report.rules()


def test_valid_but_non_postordered_etree():
    # Subtrees interleave: 0 under 2, 1 under 3 — valid etree, bad postorder.
    parent = np.array([2, 3, 3, -1])
    assert check_etree(parent).ok
    report = check_postordered(parent)
    assert "etree-not-postordered" in report.rules()


# ------------------------------------------------------------ supernode rules
def test_partition_checks(sym6):
    assert check_supernode_partition(
        sym6.partition, sym6.etree_parent, n=sym6.n
    ).ok


def test_broken_supernode_chain():
    parent = np.array([1, 4, 3, 4, -1])
    partition = SupernodePartition(np.array([0, 3, 5]))
    report = check_supernode_partition(partition, parent, n=5)
    assert "supernode-chain" in report.rules()


def test_partition_coverage():
    partition = SupernodePartition(np.array([0, 2]))
    report = check_supernode_partition(partition, n=5)
    assert "supernode-coverage" in report.rules()


# ---------------------------------------------------------- mapping / layouts
def test_real_assignment_conforms(sym6):
    for p in (1, 2, 8):
        assign = subtree_to_subcube(sym6.stree, p)
        assert check_assignment(sym6.stree, assign, p).ok
        assert check_block_cyclic_conformance(sym6.stree, assign, b=4).ok


def test_assignment_size_mismatch(sym6):
    report = check_assignment(sym6.stree, [ProcSet(0, 1)], 1)
    assert "mapping-assignment-size" in report.rules()


def test_out_of_machine_and_uncontained_sets(sym6):
    stree = sym6.stree
    assign = [ProcSet(s % 3, 2) for s in range(stree.nsuper)]
    report = check_assignment(stree, assign, 2)
    assert "mapping-proc-range" in report.rules()
    assert "mapping-subcube-containment" in report.rules()


def test_whole_symbolic_battery(sym6):
    assert check_symbolic(sym6).ok
