"""Dense pipelined triangular solver (the Section 3.3 comparator)."""

import numpy as np
import pytest
from scipy.linalg import solve_triangular

from repro.core.dense import dense_backward, dense_forward, dense_trisolve_time
from repro.machine.presets import cray_t3d, ideal_machine


@pytest.fixture(scope="module")
def dense_l(request):
    rng = np.random.default_rng(11)
    n = 48
    m = rng.normal(size=(n, n))
    return np.tril(m) + n * np.eye(n)


class TestDenseForward:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_matches_scipy(self, dense_l, p, rng):
        b = rng.normal(size=(dense_l.shape[0], 3))
        y, _ = dense_forward(dense_l, b, cray_t3d(), p, b=4)
        np.testing.assert_allclose(y, solve_triangular(dense_l, b, lower=True), atol=1e-10)

    @pytest.mark.parametrize("variant", ["column", "row"])
    def test_variants_agree(self, dense_l, variant, rng):
        b = rng.normal(size=dense_l.shape[0])
        y, _ = dense_forward(dense_l, b, cray_t3d(), 4, b=4, variant=variant)
        np.testing.assert_allclose(y, solve_triangular(dense_l, b, lower=True), atol=1e-10)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            dense_forward(np.zeros((3, 4)), np.zeros(3), cray_t3d(), 2)

    def test_rejects_bad_p(self, dense_l):
        with pytest.raises(ValueError):
            dense_forward(dense_l, np.zeros(dense_l.shape[0]), cray_t3d(), 3)


class TestDenseBackward:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_matches_scipy(self, dense_l, p, rng):
        b = rng.normal(size=(dense_l.shape[0], 2))
        x, _ = dense_backward(dense_l, b, cray_t3d(), p, b=4)
        np.testing.assert_allclose(
            x, solve_triangular(dense_l, b, lower=True, trans="T"), atol=1e-10
        )


class TestDenseScalability:
    def test_speedup_with_p(self):
        spec = cray_t3d()
        t1 = dense_trisolve_time(96, spec, 1, b=4)
        t8 = dense_trisolve_time(96, spec, 8, b=4)
        assert t8 < t1
        assert t1 / t8 < 8.0  # never superlinear

    def test_ideal_machine_near_critical_path(self):
        """With free communication, the pipeline's makespan approaches the
        2n-step wavefront bound (paper Figure 3a)."""
        spec = ideal_machine()
        t1 = dense_trisolve_time(64, spec, 1, b=4)
        t16 = dense_trisolve_time(64, spec, 16, b=4)
        assert t16 < t1 / 4  # far better than 4x on 16 procs

    def test_same_isoefficiency_class_as_sparse(self):
        """Section 3.3: the dense comm time is b(p-1) + N per solve; at
        fixed N, going from p to 2p must not halve the time once the
        pipeline-fill term dominates."""
        spec = cray_t3d()
        n = 64
        t8 = dense_trisolve_time(n, spec, 8, b=4)
        t64 = dense_trisolve_time(n, spec, 64, b=4)
        assert t64 > t8 / 8  # efficiency strictly drops: O(p) fill term
