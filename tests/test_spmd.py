"""SPMD process layer: semantics, timing, and a pipelined-solve port."""

import numpy as np
import pytest
from scipy.linalg import solve_triangular

from repro.machine.spec import MachineSpec
from repro.machine.spmd import DeadlockError, run_spmd


def spec(**kw):
    defaults = dict(t_flop=1e-6, t_s=1e-5, t_w=1e-6, t_call=0.0, topology="full")
    defaults.update(kw)
    return MachineSpec(**defaults)


class TestBasics:
    def test_compute_advances_clock(self):
        def prog(rank, env):
            yield env.compute(seconds=2.0)

        res = run_spmd(prog, 3, spec())
        assert res.makespan == 2.0
        assert res.busy == [2.0] * 3

    def test_send_recv_data_and_delay(self):
        s = spec()

        def prog(rank, env):
            if rank == 0:
                yield env.compute(seconds=1.0)
                yield env.send(1, data={"x": 42}, words=100)
            else:
                msg = yield env.recv(0)
                assert msg == {"x": 42}
                yield env.compute(seconds=0.5)

        res = run_spmd(prog, 2, s)
        assert res.makespan == pytest.approx(1.0 + s.message_time(100, 1) + 0.5)
        assert res.message_count == 1
        assert res.comm_volume_words == 100

    def test_messages_fifo_per_channel(self):
        def prog(rank, env):
            if rank == 0:
                yield env.send(1, data="first", words=1)
                yield env.send(1, data="second", words=1)
            else:
                a = yield env.recv(0)
                b = yield env.recv(0)
                assert (a, b) == ("first", "second")

        run_spmd(prog, 2, spec())

    def test_tags_select_messages(self):
        def prog(rank, env):
            if rank == 0:
                yield env.send(1, data="beta", words=1, tag=2)
                yield env.send(1, data="alpha", words=1, tag=1)
            else:
                a = yield env.recv(0, tag=1)
                b = yield env.recv(0, tag=2)
                assert (a, b) == ("alpha", "beta")

        run_spmd(prog, 2, spec())

    def test_return_values_collected(self):
        def prog(rank, env):
            yield env.compute(seconds=0.1)
            return rank * rank

        res = run_spmd(prog, 4, spec())
        assert res.returns == [0, 1, 4, 9]

    def test_barrier_synchronises(self):
        after = []

        def prog(rank, env):
            yield env.compute(seconds=float(rank))
            yield env.barrier()
            after.append(rank)

        res = run_spmd(prog, 4, spec())
        assert len(after) == 4
        assert res.makespan >= 3.0

    def test_deadlock_detected(self):
        def prog(rank, env):
            yield env.recv((rank + 1) % 2)  # both wait forever

        with pytest.raises(DeadlockError, match="deadlock"):
            run_spmd(prog, 2, spec())

    def test_partial_deadlock_detected(self):
        def prog(rank, env):
            if rank == 0:
                yield env.compute(seconds=1.0)
            else:
                yield env.recv(2)  # rank 2 never sends

        with pytest.raises(DeadlockError):
            run_spmd(prog, 3, spec())

    def test_self_send_free(self):
        def prog(rank, env):
            yield env.send(rank, data=7, words=50)
            v = yield env.recv(rank)
            assert v == 7

        res = run_spmd(prog, 1, spec())
        assert res.makespan == 0.0
        assert res.message_count == 0

    def test_invalid_destination(self):
        def prog(rank, env):
            yield env.send(9, words=1)

        with pytest.raises(ValueError):
            run_spmd(prog, 2, spec())


class TestRingPipeline:
    def test_ring_latency(self):
        """Token around a p-ring: makespan = p * (t_s + t_w*w)."""
        s = spec()
        size, words = 6, 10

        def prog(rank, env):
            if rank == 0:
                yield env.send(1, data=0, words=words)
                yield env.recv(size - 1)
            else:
                v = yield env.recv(rank - 1)
                yield env.send((rank + 1) % size, data=v, words=words)

        res = run_spmd(prog, size, s)
        assert res.makespan == pytest.approx(size * s.message_time(words, 1))


class TestSpmdPipelinedSolve:
    """A rank-local port of the paper's column-priority pipelined forward
    elimination (cyclic rows, b = 1), cross-validated against scipy and
    against the task-graph implementation's timing model."""

    @staticmethod
    def make_program(l, b_rhs, size, out):
        n = l.shape[0]

        def prog(rank, env):
            y = {i: b_rhs[i].copy() for i in range(rank, n, size)}
            for j in range(n):
                owner = j % size
                if owner == rank:
                    # updates to row j have already been applied locally
                    xj = y[j] / l[j, j]
                    out[j] = xj
                    if size > 1:
                        yield env.send((rank + 1) % size, data=(j, xj), words=1)
                else:
                    # solved piece arrives around the ring; forward it on
                    # unless the next hop is the owner (full circle done)
                    jj, xj = yield env.recv((rank - 1) % size)
                    assert jj == j
                    nxt = (rank + 1) % size
                    if nxt != owner:
                        yield env.send(nxt, data=(j, xj), words=1)
                flops = 0
                for i in y:
                    if i > j:
                        y[i] -= l[i, j] * xj
                        flops += 2
                yield env.compute(flops=flops)

        return prog

    def test_matches_scipy(self):
        rng = np.random.default_rng(5)
        n, size = 24, 4
        m = rng.normal(size=(n, n))
        l = np.tril(m) + n * np.eye(n)
        b = rng.normal(size=n)
        out = np.zeros(n)
        run_spmd(self.make_program(l, b, size, out), size, spec())
        np.testing.assert_allclose(out, solve_triangular(l, b, lower=True), atol=1e-10)

    def test_parallel_faster_than_serial(self):
        rng = np.random.default_rng(6)
        n = 32
        m = rng.normal(size=(n, n))
        l = np.tril(m) + n * np.eye(n)
        b = rng.normal(size=n)
        times = {}
        for size in (1, 4):
            out = np.zeros(n)
            res = run_spmd(self.make_program(l, b, size, out), size, spec(t_s=1e-7, t_w=1e-8))
            times[size] = res.makespan
        assert times[4] < times[1]
