"""Deterministic fake-clock tests of the coalescer's flush policy.

Every timing decision here happens at an exact simulated instant — the
tests advance a :class:`FakeClock` by hand and ask the coalescer what is
due.  There is not a single ``time.sleep`` (or wall-clock dependence of
any kind) in this file; the flush policy is tested as the pure state
machine it is.
"""

from __future__ import annotations

from concurrent.futures import Future

import numpy as np
import pytest

from repro.serve import Coalescer, FakeClock, QueueFullError, SolveRequest

pytestmark = pytest.mark.serve


def make_request(key="k", width=1, n=4, seq=0):
    return SolveRequest(
        key=key,
        rhs=np.zeros((n, width)),
        squeeze=width == 1,
        future=Future(),
        seq=seq,
    )


def make_coalescer(clk, **kwargs):
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait", 1.0)
    kwargs.setdefault("idle_wait", None)
    return Coalescer(clock=clk, **kwargs)


# --------------------------------------------------------------- full rule
def test_full_flush_at_exactly_max_batch_columns():
    clk = FakeClock()
    c = make_coalescer(clk, max_batch=4)
    for i in range(3):
        c.offer(make_request(seq=i))
        assert c.take_ready() is None, "must not flush below max_batch"
    c.offer(make_request(seq=3))
    batch = c.take_ready()
    assert batch is not None
    assert batch.trigger == "full"
    assert batch.columns == 4
    assert [r.seq for r in batch.requests] == [0, 1, 2, 3], "FIFO order"
    assert c.empty


def test_full_flush_counts_columns_not_requests():
    clk = FakeClock()
    c = make_coalescer(clk, max_batch=4)
    c.offer(make_request(width=3, seq=0))
    assert c.take_ready() is None
    c.offer(make_request(width=2, seq=1))  # 5 columns pending >= 4
    batch = c.take_ready()
    assert batch.trigger == "full"
    # A request's columns never split: the width-2 request does not fit
    # next to the width-3 one, so it stays queued for the next batch.
    assert [r.seq for r in batch.requests] == [0]
    assert c.pending_columns == 2


def test_wide_request_is_never_split_across_batches():
    clk = FakeClock()
    c = make_coalescer(clk, max_batch=4)
    c.offer(make_request(width=2, seq=0))
    c.offer(make_request(width=2, seq=1))
    c.offer(make_request(width=2, seq=2))
    batch = c.take_ready()
    assert batch.columns == 4 and [r.seq for r in batch.requests] == [0, 1]
    assert c.pending_columns == 2


# ----------------------------------------------------------- deadline rule
def test_deadline_flush_fires_exactly_at_max_wait():
    clk = FakeClock()
    c = make_coalescer(clk, max_wait=1.0)
    c.offer(make_request(seq=0))
    clk.advance(0.999)
    assert c.take_ready() is None, "one tick early: not due"
    clk.advance(0.001)
    batch = c.take_ready()
    assert batch is not None and batch.trigger == "deadline"
    assert batch.waits == [1.0]


def test_deadline_is_oldest_request_not_newest():
    clk = FakeClock()
    c = make_coalescer(clk, max_wait=1.0)
    c.offer(make_request(seq=0))
    clk.advance(0.9)
    c.offer(make_request(seq=1))  # young, but rides the old one's deadline
    clk.advance(0.1)
    batch = c.take_ready()
    assert batch.trigger == "deadline"
    assert [r.seq for r in batch.requests] == [0, 1]
    assert batch.waits == [1.0, pytest.approx(0.1)]


# --------------------------------------------------------------- idle rule
def test_idle_flush_fires_on_arrival_gap():
    clk = FakeClock()
    c = make_coalescer(clk, max_wait=1.0, idle_wait=0.25)
    c.offer(make_request(seq=0))
    clk.advance(0.25)
    batch = c.take_ready()
    assert batch is not None and batch.trigger == "idle"


def test_arrivals_push_the_idle_deadline_back():
    clk = FakeClock()
    c = make_coalescer(clk, max_wait=10.0, idle_wait=0.25)
    c.offer(make_request(seq=0))
    clk.advance(0.2)
    c.offer(make_request(seq=1))  # gap resets: stream is not idle
    clk.advance(0.2)
    assert c.take_ready() is None
    clk.advance(0.05)
    batch = c.take_ready()
    assert batch.trigger == "idle" and len(batch.requests) == 2


def test_default_idle_wait_is_quarter_of_max_wait():
    c = make_coalescer(FakeClock(), max_wait=2.0, idle_wait=-1.0)
    assert c.idle_wait == 0.5


def test_idle_none_disables_the_rule():
    clk = FakeClock()
    c = make_coalescer(clk, max_wait=1.0, idle_wait=None)
    c.offer(make_request(seq=0))
    clk.advance(0.999)
    assert c.take_ready() is None, "only the deadline can fire"
    clk.advance(0.001)
    assert c.take_ready().trigger == "deadline"


def test_idle_wins_tie_with_deadline():
    clk = FakeClock()
    c = make_coalescer(clk, max_wait=1.0, idle_wait=1.0)
    c.offer(make_request(seq=0))
    clk.advance(5.0)
    assert c.take_ready().trigger == "idle"


# ------------------------------------------------------------ backpressure
def test_backpressure_rejects_past_max_queue_columns():
    clk = FakeClock()
    c = make_coalescer(clk, max_batch=2, max_queue=3)
    c.offer(make_request(seq=0, width=2))
    c.offer(make_request(seq=1))
    with pytest.raises(QueueFullError):
        c.offer(make_request(seq=2))
    assert c.rejected == 1 and c.offered == 2
    # Draining frees capacity again.
    assert c.take_drain() is not None
    assert c.take_drain() is not None
    c.offer(make_request(seq=3))
    assert c.pending_columns == 1


def test_over_wide_request_is_a_value_error_not_backpressure():
    c = make_coalescer(FakeClock(), max_batch=4)
    with pytest.raises(ValueError, match="max_batch"):
        c.offer(make_request(width=5))
    assert c.rejected == 0


# ------------------------------------------------------------------ drain
def test_drain_flushes_everything_regardless_of_deadlines():
    clk = FakeClock()
    c = make_coalescer(clk, max_batch=4, max_wait=100.0)
    for i in range(6):
        c.offer(make_request(seq=i))
    assert c.take_ready().trigger == "full"
    batch = c.take_drain()
    assert batch.trigger == "drain" and len(batch.requests) == 2
    assert c.take_drain() is None
    assert c.empty


def test_drain_respects_max_batch_width():
    c = make_coalescer(FakeClock(), max_batch=2, max_queue=10)
    for i in range(5):
        c.offer(make_request(seq=i))
    widths = []
    while (b := c.take_drain()) is not None:
        widths.append(b.columns)
    assert widths == [2, 2, 1]


# ----------------------------------------------------------- multiple keys
def test_keys_batch_independently():
    clk = FakeClock()
    c = make_coalescer(clk, max_batch=2)
    c.offer(make_request(key="a", seq=0))
    c.offer(make_request(key="b", seq=1))
    assert c.take_ready() is None, "two keys with one column each: no batch"
    c.offer(make_request(key="b", seq=2))
    batch = c.take_ready()
    assert batch.key == "b" and [r.seq for r in batch.requests] == [1, 2]
    assert c.pending_columns == 1


def test_full_queues_flush_before_due_queues():
    clk = FakeClock()
    c = make_coalescer(clk, max_batch=2, max_wait=0.5)
    c.offer(make_request(key="a", seq=0))
    clk.advance(1.0)  # "a" is long past its deadline
    c.offer(make_request(key="b", seq=1))
    c.offer(make_request(key="b", seq=2))  # "b" is full
    assert c.take_ready().key == "b"
    assert c.take_ready().key == "a"


# ---------------------------------------------------------- next_deadline
def test_next_deadline_empty_is_none():
    c = make_coalescer(FakeClock())
    assert c.next_deadline() is None


def test_next_deadline_is_min_of_deadline_and_idle():
    clk = FakeClock(start=10.0)
    c = make_coalescer(clk, max_wait=1.0, idle_wait=0.25)
    c.offer(make_request(seq=0))
    assert c.next_deadline() == pytest.approx(10.25)
    c2 = make_coalescer(clk, max_wait=1.0, idle_wait=None)
    c2.offer(make_request(seq=0))
    assert c2.next_deadline() == pytest.approx(11.0)


def test_next_deadline_full_queue_is_now():
    clk = FakeClock(start=3.0)
    c = make_coalescer(clk, max_batch=2)
    c.offer(make_request(seq=0))
    c.offer(make_request(seq=1))
    assert c.next_deadline() == 3.0


# ------------------------------------------------------------- validation
@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_batch": 0},
        {"max_wait": -0.1},
        {"idle_wait": -0.5},
        {"max_batch": 8, "max_queue": 4},
    ],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ValueError):
        make_coalescer(FakeClock(), **kwargs)


def test_fake_clock_is_monotonic_and_refuses_to_wait():
    import threading

    clk = FakeClock(start=2.0)
    assert clk.now() == 2.0
    assert clk.advance(0.5) == 2.5
    with pytest.raises(ValueError):
        clk.advance(-0.1)
    with pytest.raises(RuntimeError, match="manual-pump"):
        clk.wait(threading.Condition(), 1.0)
    assert clk.drives_threads is False
