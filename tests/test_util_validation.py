import pytest

from repro.util.validation import (
    as_int,
    check_index,
    check_positive,
    check_power_of_two,
    check_square,
    is_power_of_two,
    require,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(1e-300, "x")

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive(0, "x")

    def test_accepts_zero_when_not_strict(self):
        check_positive(0, "x", strict=False)

    def test_rejects_negative_when_not_strict(self):
        with pytest.raises(ValueError):
            check_positive(-1, "x", strict=False)


class TestCheckIndex:
    def test_accepts_bounds(self):
        check_index(0, 3)
        check_index(2, 3)

    @pytest.mark.parametrize("bad", [-1, 3, 100])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(IndexError):
            check_index(bad, 3)


class TestPowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 4, 8, 256, 2**20])
    def test_powers(self, good):
        assert is_power_of_two(good)
        check_power_of_two(good, "p")

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 12, 255])
    def test_non_powers(self, bad):
        assert not is_power_of_two(bad)
        with pytest.raises(ValueError):
            check_power_of_two(bad, "p")


class TestCheckSquare:
    def test_accepts_square(self):
        check_square((4, 4))

    @pytest.mark.parametrize("shape", [(3, 4), (4,), (2, 2, 2)])
    def test_rejects_non_square(self, shape):
        with pytest.raises(ValueError):
            check_square(shape)


class TestAsInt:
    def test_exact(self):
        assert as_int(5.0, "k") == 5

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            as_int(5.5, "k")
