"""Simulated parallel supernodal factorization (the paper's ref [4])."""

import numpy as np
import pytest

from repro.core.factor_model import parallel_factor_time, serial_factor_time
from repro.core.parallel_factor import build_factor_graph, simulated_factor_time
from repro.core.solver import ParallelSparseSolver
from repro.machine.events import simulate
from repro.machine.presets import cray_t3d, ideal_machine
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse.generators import fe_mesh_2d, grid2d_laplacian


@pytest.fixture(scope="module")
def stree():
    a = grid2d_laplacian(14)
    base = ParallelSparseSolver(a, p=1).prepare()
    return base.symbolic.stree


class TestFactorGraph:
    def test_p1_matches_serial_model(self, stree):
        spec = cray_t3d()
        assign = subtree_to_subcube(stree, 1)
        tsim, _ = simulated_factor_time(spec, stree, assign, nproc=1)
        assert tsim == pytest.approx(serial_factor_time(spec, stree), rel=1e-9)

    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_speedup_bounds(self, stree, p):
        spec = cray_t3d()
        ts = serial_factor_time(spec, stree)
        tsim, _ = simulated_factor_time(spec, stree, subtree_to_subcube(stree, p), nproc=p)
        assert tsim < ts  # parallel helps
        # p=1 graph charges cheaper monolithic per-supernode kernels than
        # the blocked parallel graph, so the speedup can't exceed p by much
        assert ts / tsim < p * 1.1

    def test_tracks_closed_form_model(self, stree):
        spec = cray_t3d()
        sims, mods = [], []
        for p in (2, 8, 32):
            assign = subtree_to_subcube(stree, p)
            tsim, _ = simulated_factor_time(spec, stree, assign, nproc=p)
            sims.append(tsim)
            mods.append(parallel_factor_time(spec, stree, assign))
        corr = np.corrcoef(np.log(sims), np.log(mods))[0, 1]
        assert corr > 0.9

    def test_graph_structure(self, stree):
        spec = cray_t3d()
        assign = subtree_to_subcube(stree, 4)
        g = build_factor_graph(stree, assign, spec, nproc=4)
        assert g.ntasks > stree.nsuper  # shared supernodes expand into blocks
        for e in g.edges:
            assert e.src < e.dst  # topological ids

    def test_ideal_machine_speedup_larger(self, stree):
        """Removing communication costs improves the parallel time."""
        assign = subtree_to_subcube(stree, 16)
        t_real, _ = simulated_factor_time(cray_t3d(), stree, assign, nproc=16)
        spec0 = cray_t3d().with_(t_s=0.0, t_w=0.0, t_h=0.0)
        t_free, _ = simulated_factor_time(spec0, stree, assign, nproc=16)
        assert t_free < t_real

    def test_assignment_size_checked(self, stree):
        with pytest.raises(ValueError):
            simulated_factor_time(cray_t3d(), stree, [], nproc=2)


class TestSolverIntegration:
    def test_simulate_mode(self):
        a = fe_mesh_2d(16, seed=3)
        solver = ParallelSparseSolver(a, p=8, factor_time_mode="simulate").prepare()
        x, rep = solver.solve(np.ones(a.n))
        assert rep.residual < 1e-10
        assert rep.factor_seconds > 0

    def test_modes_agree_roughly(self):
        a = fe_mesh_2d(16, seed=3)
        t = {}
        for mode in ("model", "simulate"):
            solver = ParallelSparseSolver(a, p=8, factor_time_mode=mode).prepare()
            t[mode] = solver.factorization_seconds()
        assert 0.3 < t["simulate"] / t["model"] < 3.0

    def test_unknown_mode_rejected(self):
        a = grid2d_laplacian(6)
        solver = ParallelSparseSolver(a, p=2, factor_time_mode="guess").prepare()
        with pytest.raises(ValueError, match="factor_time_mode"):
            solver.factorization_seconds()

    def test_result_cached(self):
        a = grid2d_laplacian(8)
        solver = ParallelSparseSolver(a, p=4, factor_time_mode="simulate").prepare()
        t1 = solver.factorization_seconds()
        assert solver.factorization_seconds() == t1
