import numpy as np
import pytest

from repro.machine.collectives import (
    all_to_all_personalized_time,
    broadcast_time,
    gather_time,
    reduce_time,
)
from repro.machine.events import TaskGraph, critical_path, simulate
from repro.machine.presets import cray_t3d, ideal_machine, laptop_like
from repro.machine.spec import MachineSpec
from repro.machine.topology import (
    FullyConnected,
    Hypercube,
    Mesh2D,
    Mesh3D,
    make_topology,
)


class TestMachineSpec:
    def test_flop_efficiency_limits(self):
        spec = MachineSpec(blas3_factor=0.25)
        assert spec.flop_efficiency(1) == 1.0
        assert spec.flop_efficiency(10**9) == pytest.approx(0.25, rel=1e-6)

    def test_compute_time_components(self):
        spec = MachineSpec(t_flop=1e-6, t_call=1e-3, blas3_factor=1.0)
        assert spec.compute_time(1000, calls=2) == pytest.approx(2e-3 + 1e-3)

    def test_message_time_linear(self):
        spec = MachineSpec(t_s=1e-5, t_w=1e-6, t_h=1e-7)
        assert spec.message_time(100, hops=3) == pytest.approx(1e-5 + 1e-4 + 3e-7)

    def test_zero_words_free(self):
        assert MachineSpec().message_time(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(t_flop=0)
        with pytest.raises(ValueError):
            MachineSpec(blas3_factor=0.0)
        with pytest.raises(ValueError):
            MachineSpec(t_s=-1)

    def test_with_override(self):
        spec = cray_t3d().with_(t_s=0.0)
        assert spec.t_s == 0.0
        assert spec.t_flop == cray_t3d().t_flop

    def test_mflops(self):
        assert MachineSpec().mflops(2e6, 1.0) == 2.0

    def test_presets_construct(self):
        for preset in (cray_t3d, ideal_machine, laptop_like):
            preset()


class TestTopologies:
    def test_hypercube_hops_hamming(self):
        h = Hypercube(8)
        assert h.hops(0, 7) == 3
        assert h.hops(5, 5) == 0
        assert h.hops(0b001, 0b011) == 1

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(ValueError):
            Hypercube(6)

    def test_hypercube_neighbors(self):
        assert sorted(Hypercube(8).neighbors(0)) == [1, 2, 4]

    def test_hypercube_diameter(self):
        assert Hypercube(16).diameter() == 4

    def test_fully_connected(self):
        f = FullyConnected(5)
        assert f.hops(0, 4) == 1
        assert f.hops(2, 2) == 0
        assert f.diameter() == 1

    def test_mesh2d_manhattan(self):
        m = Mesh2D(16)  # 4x4
        assert m.hops(0, 15) == 6
        assert m.hops(0, 1) == 1

    def test_mesh3d_wraparound(self):
        m = Mesh3D(8)  # 2x2x2
        assert m.diameter() <= 3

    def test_make_topology_dispatch(self):
        assert isinstance(make_topology("hypercube", 4), Hypercube)
        assert isinstance(make_topology("mesh2d", 6), Mesh2D)
        assert isinstance(make_topology("mesh3d", 8), Mesh3D)
        assert isinstance(make_topology("full", 3), FullyConnected)
        with pytest.raises(ValueError):
            make_topology("torus9d", 4)

    def test_symmetry_property(self):
        for topo in (Hypercube(16), Mesh2D(12), Mesh3D(27), FullyConnected(9)):
            for s in range(0, topo.p, 3):
                for d in range(0, topo.p, 4):
                    assert topo.hops(s, d) == topo.hops(d, s)


class TestSimulator:
    def spec(self, **kw):
        defaults = dict(t_flop=1e-6, t_s=1e-5, t_w=1e-6, t_call=0.0, topology="full")
        defaults.update(kw)
        return MachineSpec(**defaults)

    def test_single_task(self):
        g = TaskGraph(nproc=1)
        g.add_task(0, 2.5)
        r = simulate(g, self.spec())
        assert r.makespan == 2.5
        assert r.busy == [2.5]

    def test_serialization_on_one_proc(self):
        g = TaskGraph(nproc=2)
        for _ in range(4):
            g.add_task(0, 1.0)
        r = simulate(g, self.spec())
        assert r.makespan == 4.0
        assert r.busy[1] == 0.0

    def test_parallel_tasks_overlap(self):
        g = TaskGraph(nproc=4)
        for p in range(4):
            g.add_task(p, 1.0)
        assert simulate(g, self.spec()).makespan == 1.0

    def test_dependency_serializes(self):
        g = TaskGraph(nproc=2)
        a = g.add_task(0, 1.0)
        b = g.add_task(1, 1.0)
        g.add_edge(a, b, words=0)
        r = simulate(g, self.spec())
        # zero words -> no message cost, but still ordering
        assert r.start[b] == pytest.approx(1.0)

    def test_cross_proc_message_cost(self):
        spec = self.spec()
        g = TaskGraph(nproc=2)
        a = g.add_task(0, 1.0)
        b = g.add_task(1, 1.0)
        g.add_edge(a, b, words=100)
        r = simulate(g, spec)
        assert r.start[b] == pytest.approx(1.0 + spec.message_time(100, 1))
        assert r.message_count == 1

    def test_same_proc_edge_free(self):
        g = TaskGraph(nproc=1)
        a = g.add_task(0, 1.0)
        b = g.add_task(0, 1.0)
        g.add_edge(a, b, words=1000)
        r = simulate(g, self.spec())
        assert r.makespan == pytest.approx(2.0)
        assert r.message_count == 0

    def test_priority_breaks_ties(self):
        g = TaskGraph(nproc=1)
        lo = g.add_task(0, 1.0, priority=(5,))
        hi = g.add_task(0, 1.0, priority=(1,))
        r = simulate(g, self.spec())
        assert r.start[hi] < r.start[lo]

    def test_work_conserving_when_best_not_ready(self):
        spec = self.spec()
        g = TaskGraph(nproc=2)
        feeder = g.add_task(1, 5.0)
        blocked = g.add_task(0, 1.0, priority=(0,))
        g.add_edge(feeder, blocked, words=0)
        free = g.add_task(0, 1.0, priority=(9,))
        r = simulate(g, spec)
        # proc 0 should not idle waiting for the high-priority blocked task
        assert r.start[free] == 0.0

    def test_thunks_run_in_dependency_order(self):
        order = []
        g = TaskGraph(nproc=2)
        a = g.add_task(0, 1.0, run=lambda: order.append("a"))
        b = g.add_task(1, 1.0, run=lambda: order.append("b"))
        g.add_edge(a, b)
        simulate(g, self.spec())
        assert order == ["a", "b"]

    def test_makespan_bounds(self):
        """makespan >= critical path and >= total work / p."""
        rng = np.random.default_rng(0)
        g = TaskGraph(nproc=4)
        prev = None
        for k in range(40):
            tid = g.add_task(int(rng.integers(4)), float(rng.uniform(0.1, 1.0)), priority=(k,))
            if prev is not None and rng.uniform() < 0.5:
                g.add_edge(prev, tid, words=int(rng.integers(0, 50)))
            prev = tid
        spec = self.spec()
        r = simulate(g, spec)
        assert r.makespan >= critical_path(g, spec) - 1e-12
        assert r.makespan >= g.total_work() / 4 - 1e-12

    def test_trace_conservation(self):
        g = TaskGraph(nproc=3)
        for k in range(9):
            g.add_task(k % 3, 0.5, priority=(k,))
        r = simulate(g, self.spec())
        for p in range(3):
            assert r.busy[p] <= r.makespan + 1e-12
        assert 0.0 <= r.idle_fraction() <= 1.0

    def test_message_causality(self):
        g = TaskGraph(nproc=2)
        a = g.add_task(0, 1.0)
        b = g.add_task(1, 1.0)
        g.add_edge(a, b, words=10)
        r = simulate(g, self.spec())
        for msg in r.messages:
            assert msg.arrive > msg.depart

    def test_efficiency_helper(self):
        g = TaskGraph(nproc=2)
        g.add_task(0, 1.0)
        g.add_task(1, 1.0)
        r = simulate(g, self.spec())
        assert r.efficiency(serial_time=2.0) == pytest.approx(1.0)

    def test_invalid_proc_rejected(self):
        g = TaskGraph(nproc=2)
        with pytest.raises(ValueError):
            g.add_task(2, 1.0)

    def test_self_edge_rejected(self):
        g = TaskGraph(nproc=1)
        a = g.add_task(0, 1.0)
        with pytest.raises(ValueError):
            g.add_edge(a, a)

    def test_unknown_task_edge_rejected(self):
        g = TaskGraph(nproc=1)
        a = g.add_task(0, 1.0)
        with pytest.raises(ValueError):
            g.add_edge(a, a + 5)

    def test_pipeline_timing_formula(self):
        """A q-stage one-directional pipeline of unit tasks matches
        (q - 1) * (cost + msg) + cost."""
        spec = self.spec()
        q, words = 5, 20
        g = TaskGraph(nproc=q)
        prev = None
        for k in range(q):
            tid = g.add_task(k, 1.0)
            if prev is not None:
                g.add_edge(prev, tid, words=words)
            prev = tid
        r = simulate(g, spec)
        expect = q * 1.0 + (q - 1) * spec.message_time(words, 1)
        assert r.makespan == pytest.approx(expect)


class TestCollectives:
    def spec(self):
        return MachineSpec(t_s=1e-5, t_w=1e-6)

    def test_broadcast_log_steps(self):
        spec = self.spec()
        assert broadcast_time(spec, 8, 100) == pytest.approx(3 * (1e-5 + 1e-4))

    def test_broadcast_trivial_cases(self):
        spec = self.spec()
        assert broadcast_time(spec, 1, 100) == 0.0
        assert broadcast_time(spec, 8, 0) == 0.0

    def test_reduce_equals_broadcast(self):
        spec = self.spec()
        assert reduce_time(spec, 16, 50) == broadcast_time(spec, 16, 50)

    def test_gather(self):
        spec = self.spec()
        assert gather_time(spec, 4, 10) == pytest.approx(2 * 1e-5 + 1e-6 * 10 * 3)

    def test_alltoall_pairwise(self):
        spec = self.spec()
        t = all_to_all_personalized_time(spec, 4, 100, algorithm="pairwise")
        assert t == pytest.approx(3 * (1e-5 + 1e-4))

    def test_alltoall_hypercube(self):
        spec = self.spec()
        t = all_to_all_personalized_time(spec, 4, 100, algorithm="hypercube")
        assert t == pytest.approx(2 * (1e-5 + 1e-6 * 200))

    def test_alltoall_unknown_algorithm(self):
        with pytest.raises(ValueError):
            all_to_all_personalized_time(self.spec(), 4, 10, algorithm="magic")

    def test_alltoall_volume_scaling(self):
        """Pairwise all-to-all time is O(q m): doubling both q and m
        roughly quadruples it."""
        spec = self.spec()
        t1 = all_to_all_personalized_time(spec, 8, 1000)
        t2 = all_to_all_personalized_time(spec, 16, 2000)
        assert 3.0 < t2 / t1 < 5.0
