"""Edge cases and robustness across the whole pipeline."""

import numpy as np
import pytest

from repro.core.solver import ParallelSparseSolver
from repro.machine.presets import cray_t3d
from repro.sparse.build import from_dense, from_triplets
from repro.sparse.generators import grid2d_laplacian, random_spd
from repro.symbolic.analyze import analyze


class TestTinySystems:
    def test_one_by_one(self):
        a = from_dense(np.array([[4.0]]))
        solver = ParallelSparseSolver(a, p=1).prepare()
        x, rep = solver.solve(np.array([8.0]))
        assert x[0] == pytest.approx(2.0)
        assert rep.residual < 1e-15

    def test_one_by_one_many_procs(self):
        a = from_dense(np.array([[4.0]]))
        solver = ParallelSparseSolver(a, p=8).prepare()
        x, _ = solver.solve(np.array([8.0]))
        assert x[0] == pytest.approx(2.0)

    def test_two_by_two(self, rng):
        a = from_dense(np.array([[4.0, -1.0], [-1.0, 3.0]]))
        solver = ParallelSparseSolver(a, p=2).prepare()
        b = rng.normal(size=2)
        x, rep = solver.solve(b)
        np.testing.assert_allclose(a.to_dense() @ x, b, atol=1e-12)

    def test_diagonal_matrix_forest(self, rng):
        """A diagonal matrix has a forest of singleton roots."""
        a = from_dense(np.diag([2.0, 3.0, 4.0, 5.0]))
        solver = ParallelSparseSolver(a, p=4, ordering="natural").prepare()
        b = rng.normal(size=4)
        x, rep = solver.solve(b)
        np.testing.assert_allclose(x, b / np.array([2.0, 3.0, 4.0, 5.0]), atol=1e-14)

    def test_block_diagonal_disconnected(self, rng):
        """Two disconnected components: forest etree, parallel subtrees."""
        rows = [1, 3]
        cols = [0, 2]
        vals = [-1.0, -1.0]
        diag_r = [0, 1, 2, 3]
        a = from_triplets(
            4,
            np.array(rows + diag_r),
            np.array(cols + diag_r),
            np.array(vals + [3.0] * 4),
        )
        solver = ParallelSparseSolver(a, p=2).prepare()
        b = rng.normal(size=4)
        x, rep = solver.solve(b)
        assert rep.residual < 1e-12


class TestExtremeParameters:
    def test_block_size_larger_than_matrix(self, rng):
        a = grid2d_laplacian(5)
        solver = ParallelSparseSolver(a, p=4, b=1024).prepare()
        _, rep = solver.solve(rng.normal(size=a.n))
        assert rep.residual < 1e-10

    def test_block_size_one(self, rng):
        a = grid2d_laplacian(5)
        solver = ParallelSparseSolver(a, p=4, b=1).prepare()
        _, rep = solver.solve(rng.normal(size=a.n))
        assert rep.residual < 1e-10

    def test_more_procs_than_unknowns(self, rng):
        a = from_dense(np.diag([2.0] * 3) + 0.5 * (np.ones((3, 3)) - np.eye(3)))
        solver = ParallelSparseSolver(a, p=16).prepare()
        _, rep = solver.solve(rng.normal(size=3))
        assert rep.residual < 1e-12

    def test_wide_rhs_block(self, rng):
        a = grid2d_laplacian(5)
        solver = ParallelSparseSolver(a, p=2).prepare()
        b = rng.normal(size=(a.n, 64))
        x, rep = solver.solve(b)
        assert rep.residual < 1e-10
        assert x.shape == (a.n, 64)

    def test_nrhs_zero_columns_rejected(self):
        a = grid2d_laplacian(4)
        solver = ParallelSparseSolver(a, p=1).prepare()
        with pytest.raises(ValueError, match="at least one column"):
            solver.solve(np.zeros((a.n, 0)), check=False)

    def test_huge_relaxation(self, rng):
        a = grid2d_laplacian(6)
        solver = ParallelSparseSolver(a, p=2, relax=10_000).prepare()
        _, rep = solver.solve(rng.normal(size=a.n))
        assert rep.residual < 1e-10


class TestNumericalEdges:
    def test_nearly_singular_still_solves(self, rng):
        d = np.diag([1.0, 1.0, 1e-12])
        a = from_dense(d)
        solver = ParallelSparseSolver(a, p=1, ordering="natural").prepare()
        b = np.array([1.0, 1.0, 1e-12])
        x, rep = solver.solve(b)
        np.testing.assert_allclose(x, [1.0, 1.0, 1.0], rtol=1e-6)

    def test_large_value_spread(self, rng):
        scales = np.array([1e-6, 1.0, 1e6, 1.0, 1e-6, 1.0])
        base = grid2d_laplacian(6).to_dense()[:6, :6]
        m = np.diag(scales) @ (base + 6 * np.eye(6)) @ np.diag(scales)
        a = from_dense(m)
        solver = ParallelSparseSolver(a, p=2).prepare()
        b = rng.normal(size=6)
        x, rep = solver.solve(b)
        # the 1e12 diagonal spread makes the system extremely
        # ill-conditioned; the ||r||/||b|| metric degrades accordingly
        assert rep.residual < 1e-4
        _, rep2 = solver.solve(b, refine=2)
        assert rep2.residual <= rep.residual

    def test_rhs_of_zeros(self):
        a = grid2d_laplacian(6)
        solver = ParallelSparseSolver(a, p=4).prepare()
        x, _ = solver.solve(np.zeros(a.n), check=False)
        np.testing.assert_allclose(x, 0.0)


class TestAnalyzeEdges:
    def test_analyze_singleton(self):
        sym = analyze(from_dense(np.array([[2.0]])))
        assert sym.stree.nsuper == 1
        assert sym.factor_nnz == 1

    def test_dense_matrix_one_supernode(self, rng):
        m = rng.normal(size=(7, 7))
        a = from_dense(m @ m.T + 7 * np.eye(7))
        sym = analyze(a)
        assert sym.stree.nsuper == 1
        assert sym.stree.supernodes[0].t == 7

    def test_random_matrix_full_pipeline(self, rng):
        a = random_spd(64, density=0.08, seed=42)
        for p in (1, 8):
            solver = ParallelSparseSolver(a, p=p, spec=cray_t3d()).prepare()
            _, rep = solver.solve(rng.normal(size=a.n))
            assert rep.residual < 1e-9
