"""Factor persistence and tree rendering."""

import numpy as np
import pytest

from repro.numeric.serialize import load_factor, save_factor
from repro.numeric.supernodal import cholesky_supernodal
from repro.numeric.trisolve import solve_supernodal
from repro.symbolic.analyze import analyze
from repro.symbolic.render import to_ascii, to_dot
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse.generators import fe_mesh_2d


class TestSerialization:
    @pytest.fixture(scope="class")
    def factored(self):
        a = fe_mesh_2d(8, seed=4)
        sym = analyze(a)
        return a, sym, cholesky_supernodal(sym)

    def test_roundtrip_structure(self, factored, tmp_path):
        _, sym, f = factored
        path = tmp_path / "factor.npz"
        save_factor(f, path)
        back = load_factor(path)
        assert back.stree.nsuper == f.stree.nsuper
        np.testing.assert_array_equal(back.stree.parent, f.stree.parent)
        for a, b in zip(back.stree.supernodes, f.stree.supernodes):
            np.testing.assert_array_equal(a.rows, b.rows)

    def test_roundtrip_values(self, factored, tmp_path):
        _, _, f = factored
        path = tmp_path / "factor.npz"
        save_factor(f, path)
        back = load_factor(path)
        np.testing.assert_allclose(back.to_dense(), f.to_dense())

    def test_loaded_factor_solves(self, factored, tmp_path, rng):
        a, sym, f = factored
        path = tmp_path / "factor.npz"
        save_factor(f, path)
        back = load_factor(path)
        b = rng.normal(size=a.n)
        bp = sym.perm.apply_to_vector(b)
        np.testing.assert_allclose(
            solve_supernodal(back, bp), solve_supernodal(f, bp), atol=1e-14
        )

    def test_version_checked(self, factored, tmp_path):
        _, _, f = factored
        path = tmp_path / "factor.npz"
        save_factor(f, path)
        import numpy as np_

        data = dict(np_.load(path))
        data["version"] = np_.array([999])
        np_.savez(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_factor(path)


class TestRendering:
    def test_dot_structure(self, sym_grid8):
        dot = to_dot(sym_grid8.stree)
        assert dot.startswith("digraph etree {")
        assert dot.count("->") == sum(1 for p in sym_grid8.stree.parent if p >= 0)
        assert f"n{sym_grid8.stree.nsuper - 1}" in dot

    def test_dot_with_assignment(self, sym_grid8):
        assign = subtree_to_subcube(sym_grid8.stree, 4)
        dot = to_dot(sym_grid8.stree, assign=assign)
        assert "P0-P3" in dot

    def test_ascii_contains_all_roots(self, sym_grid8):
        text = to_ascii(sym_grid8.stree)
        for root in sym_grid8.stree.roots():
            assert f"sn{root}:" in text

    def test_ascii_truncation(self, sym_grid8):
        text = to_ascii(sym_grid8.stree, max_nodes=3)
        assert "more supernodes" in text
