"""Determinism: every simulated quantity is a pure function of its inputs.

Reproducibility is a headline property of a simulation-based study; these
tests re-run each pipeline stage twice and require bit-identical outputs.
"""

import numpy as np
import pytest

from repro.core.forward import parallel_forward
from repro.core.solver import ParallelSparseSolver
from repro.core.spmd_forward import spmd_forward
from repro.machine.events import TaskGraph, simulate
from repro.machine.presets import cray_t3d
from repro.machine.spec import MachineSpec
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.symbolic.analyze import analyze
from repro.sparse.generators import fe_mesh_2d


class TestDeterminism:
    def test_analyze_deterministic(self):
        a = fe_mesh_2d(10, seed=3)
        s1, s2 = analyze(a), analyze(a)
        np.testing.assert_array_equal(s1.perm.perm, s2.perm.perm)
        np.testing.assert_array_equal(s1.l_indices, s2.l_indices)
        assert s1.partition.nsuper == s2.partition.nsuper

    def test_simulation_deterministic(self):
        rng = np.random.default_rng(4)
        spec = MachineSpec(t_flop=1e-6, t_s=1e-5, t_w=1e-6, topology="full")

        def build():
            g = TaskGraph(nproc=4)
            for k in range(50):
                g.add_task(int(rng_local.integers(4)), float(rng_local.uniform(0, 1)), priority=(k,))
            for dst in range(1, 50):
                src = int(rng_local.integers(0, dst))
                g.add_edge(src, dst, words=10)
            return g

        rng_local = np.random.default_rng(4)
        r1 = simulate(build(), spec)
        rng_local = np.random.default_rng(4)
        r2 = simulate(build(), spec)
        assert r1.makespan == r2.makespan
        assert r1.start == r2.start
        assert r1.finish == r2.finish

    def test_parallel_solve_bitwise_repeatable(self, prepared_grid12, rng):
        b = rng.normal(size=(prepared_grid12.a.n, 2))
        x1, rep1 = prepared_grid12.solve(b, check=False)
        x2, rep2 = prepared_grid12.solve(b, check=False)
        np.testing.assert_array_equal(x1, x2)
        assert rep1.fbsolve_seconds == rep2.fbsolve_seconds

    def test_forward_timing_repeatable(self, prepared_grid12, rng):
        base = prepared_grid12
        assign = subtree_to_subcube(base.symbolic.stree, 8)
        bp = base.symbolic.perm.apply_to_vector(rng.normal(size=(base.a.n, 1)))
        _, s1 = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=8)
        _, s2 = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=8)
        assert s1.makespan == s2.makespan
        assert s1.message_count == s2.message_count

    def test_spmd_timing_repeatable(self, prepared_grid12, rng):
        base = prepared_grid12
        assign = subtree_to_subcube(base.symbolic.stree, 4)
        bp = base.symbolic.perm.apply_to_vector(rng.normal(size=(base.a.n, 1)))
        _, r1 = spmd_forward(base.factor, assign, cray_t3d(), bp, nproc=4)
        _, r2 = spmd_forward(base.factor, assign, cray_t3d(), bp, nproc=4)
        assert r1.makespan == r2.makespan
        assert r1.finish_times == r2.finish_times

    def test_factorization_deterministic(self):
        a = fe_mesh_2d(9, seed=5)
        f1 = ParallelSparseSolver(a, p=1).prepare().factor
        f2 = ParallelSparseSolver(a, p=1).prepare().factor
        for b1, b2 in zip(f1.blocks, f2.blocks):
            np.testing.assert_array_equal(b1, b2)
