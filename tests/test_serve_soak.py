"""Concurrency soak: many submitter threads against a live dispatcher.

This is the one serve test file that uses real threads and the real
clock — the deterministic fake-clock files prove the flush policy; this
one proves the locking: 8 submitter threads firing 200 requests each
across 2 registered factors, every future resolving, no deadlock, every
leased workspace back in the arena afterwards, and the answers bitwise
stable across independent service runs.

Marked ``slow``: CI runs it in the dedicated ``-m slow`` job.  There is
still no ``time.sleep`` anywhere — synchronisation is futures and
joins, never timing guesses.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exec import prepare_factor, solve_fused
from repro.numeric.supernodal import cholesky_supernodal
from repro.serve import QueueFullError, SolveService
from repro.sparse.generators import grid2d_laplacian, grid3d_laplacian
from repro.symbolic.analyze import analyze

pytestmark = [pytest.mark.serve, pytest.mark.slow]

N_THREADS = 8
N_REQUESTS = 200  # per thread
JOIN_TIMEOUT = 120.0  # generous deadlock bound; normal runs finish in seconds


@pytest.fixture(scope="module")
def factors():
    return {
        "g2": cholesky_supernodal(analyze(grid2d_laplacian(9))),
        "g3": cholesky_supernodal(analyze(grid3d_laplacian(4))),
    }


def _soak_once(factors, seed):
    """One full soak run; returns {(thread, i): solution} for stability checks."""
    service = SolveService(backend="fused", max_batch=16, max_wait=5e-4)
    for key, factor in factors.items():
        service.register(key, factor)

    results = {}
    errors = []
    barrier = threading.Barrier(N_THREADS)

    def submitter(tid):
        rng = np.random.default_rng(seed + tid)
        keys = sorted(factors)
        try:
            barrier.wait(timeout=JOIN_TIMEOUT)
            futures = []
            for i in range(N_REQUESTS):
                key = keys[(tid + i) % len(keys)]
                b = rng.normal(size=factors[key].n)
                while True:
                    try:
                        futures.append((i, key, b, service.submit(b, key=key)))
                        break
                    except QueueFullError:
                        # Backpressure: yield to the dispatcher and retry.
                        # result() blocks until a batch flushes, which is
                        # exactly the signal that capacity freed up.
                        if futures:
                            futures[-1][3].result(timeout=JOIN_TIMEOUT)
            for i, key, b, fut in futures:
                results[(tid, i)] = (key, b, fut.result(timeout=JOIN_TIMEOUT))
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors.append((tid, exc))

    threads = [
        threading.Thread(target=submitter, args=(tid,), name=f"submit-{tid}")
        for tid in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(JOIN_TIMEOUT)
    alive = [t.name for t in threads if t.is_alive()]
    service.close()
    assert not alive, f"submitter threads deadlocked: {alive}"
    assert not errors, f"submitter threads raised: {errors}"
    return service, results


def test_soak_all_futures_resolve_and_arena_balances(factors):
    service, results = _soak_once(factors, seed=100)
    assert len(results) == N_THREADS * N_REQUESTS

    report = service.report()
    assert report.completed == N_THREADS * N_REQUESTS
    assert report.failed == 0 and report.cancelled == 0
    assert report.total_columns == N_THREADS * N_REQUESTS
    assert set(b.key for b in report.batches) == {"g2", "g3"}
    # Under concurrent load the coalescer must actually coalesce.
    assert report.mean_batch_width > 1.0

    # Every leased workspace is back on the free list: the arena built
    # some workspaces, leased one per batch, and leaked none.
    for factor in factors.values():
        stats = prepare_factor(factor).arena.stats()
        assert stats["leases"] >= 1
        assert stats["free"] == stats["built"], f"leaked workspaces: {stats}"

    # Spot-check transparency on a sample (full check is the fast tests' job).
    for (tid, i) in list(results)[:: max(1, len(results) // 37)]:
        key, b, got = results[(tid, i)]
        assert np.array_equal(got, solve_fused(factors[key], b))


def test_soak_answers_stable_across_runs(factors):
    """Same seeds, two independent services: bitwise-identical answers.

    Batch composition differs run to run (real-clock scheduling), but
    column-slice invariance means the answers cannot.
    """
    _, first = _soak_once(factors, seed=7)
    _, second = _soak_once(factors, seed=7)
    assert first.keys() == second.keys()
    for k in first:
        key1, b1, x1 = first[k]
        key2, b2, x2 = second[k]
        assert key1 == key2
        assert np.array_equal(b1, b2)
        assert np.array_equal(x1, x2)
