import numpy as np
import pytest

from repro.graph.structure import adjacency_from_matrix
from repro.graph.traversal import connected_components
from repro.sparse.generators import (
    fe_mesh_2d,
    fe_mesh_3d,
    grid2d_laplacian,
    grid3d_laplacian,
    model_problem,
    random_spd,
)


def is_spd(a):
    eig = np.linalg.eigvalsh(a.to_dense())
    return eig.min() > 0


class TestGrid2D:
    def test_size(self):
        assert grid2d_laplacian(5).n == 25

    def test_spd(self):
        assert is_spd(grid2d_laplacian(6))

    def test_stencil_degree(self):
        a = grid2d_laplacian(4)
        g = adjacency_from_matrix(a)
        degrees = [g.degree(v) for v in range(a.n)]
        assert max(degrees) == 4  # interior of the 5-point stencil
        assert min(degrees) == 2  # corners

    def test_has_coordinates(self):
        a = grid2d_laplacian(4)
        assert a.coords is not None and a.coords.shape == (16, 2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            grid2d_laplacian(0)


class TestGrid3D:
    def test_size(self):
        assert grid3d_laplacian(3).n == 27

    def test_spd(self):
        assert is_spd(grid3d_laplacian(3))

    def test_stencil_degree(self):
        a = grid3d_laplacian(3)
        g = adjacency_from_matrix(a)
        assert max(g.degree(v) for v in range(a.n)) == 6

    def test_coordinates_3d(self):
        assert grid3d_laplacian(3).coords.shape == (27, 3)


class TestFEMeshes:
    def test_fe2d_spd_and_denser_than_grid(self):
        a = fe_mesh_2d(6, seed=1)
        assert is_spd(a)
        assert a.nnz > grid2d_laplacian(6).nnz

    def test_fe3d_spd(self):
        assert is_spd(fe_mesh_3d(3, seed=1))

    def test_deterministic_given_seed(self):
        a = fe_mesh_2d(5, seed=42)
        b = fe_mesh_2d(5, seed=42)
        np.testing.assert_allclose(a.to_dense(), b.to_dense())

    def test_different_seeds_differ(self):
        a = fe_mesh_2d(5, seed=1)
        b = fe_mesh_2d(5, seed=2)
        assert not np.allclose(a.to_dense(), b.to_dense())

    def test_jittered_coords_present(self):
        a = fe_mesh_2d(5, seed=1)
        assert a.coords is not None
        # jitter keeps points near the lattice
        assert np.abs(a.coords - np.round(a.coords)).max() <= 0.25 + 1e-12


class TestRandomSPD:
    def test_spd(self):
        assert is_spd(random_spd(40, density=0.1, seed=0))

    def test_connected(self):
        a = random_spd(50, density=0.02, seed=3)
        labels = connected_components(adjacency_from_matrix(a))
        assert labels.max() == 0

    def test_no_coords(self):
        assert random_spd(20, seed=0).coords is None

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            random_spd(10, density=0.0)
        with pytest.raises(ValueError):
            random_spd(10, density=1.5)


class TestModelProblem:
    @pytest.mark.parametrize(
        "name,size,expected_n",
        [("grid2d", 4, 16), ("grid3d", 3, 27), ("fe2d", 4, 16), ("fe3d", 3, 27), ("random", 30, 30)],
    )
    def test_dispatch(self, name, size, expected_n):
        assert model_problem(name, size).n == expected_n

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown model problem"):
            model_problem("nope", 4)
