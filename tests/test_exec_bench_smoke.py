"""The exec-backend benchmark harness must run and emit schema-valid JSON.

CI runs ``bench_exec_backend.py --quick --guard`` and uploads
``BENCH_exec.json`` as an artifact; this smoke test runs the same command
end to end in a temp directory and validates the payload against the
documented schema (required per-record keys: backend, n, nrhs, workers,
seconds, mflops, and the per-phase seconds under ``phases``).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
BENCH = ROOT / "benchmarks" / "bench_exec_backend.py"


def _load_bench_module():
    sys.path.insert(0, str(ROOT))
    try:
        from benchmarks import bench_exec_backend
    finally:
        sys.path.pop(0)
    return bench_exec_backend


@pytest.fixture(scope="module")
def quick_payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_exec.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--quick", "--guard", "--out", str(out)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, f"bench failed:\n{proc.stdout}\n{proc.stderr}"
    return json.loads(out.read_text()), proc.stdout


class TestBenchSmoke:
    def test_schema_is_valid(self, quick_payload):
        payload, _ = quick_payload
        bench = _load_bench_module()
        assert bench.validate_payload(payload) == []

    def test_required_record_keys(self, quick_payload):
        payload, _ = quick_payload
        for rec in payload["results"]:
            for key in ("backend", "n", "nrhs", "workers", "seconds", "mflops",
                        "phases"):
                assert key in rec

    def test_all_backends_and_nrhs_covered(self, quick_payload):
        payload, _ = quick_payload
        backends = {rec["backend"] for rec in payload["results"]}
        assert backends == {"serial", "threads", "fused", "scipy"}
        assert {rec["nrhs"] for rec in payload["results"]} == {1, 4, 16}

    def test_phase_timings_present_and_consistent(self, quick_payload):
        payload, _ = quick_payload
        for rec in payload["results"]:
            phases = rec["phases"]
            assert set(phases) == {"plan", "prepare", "forward", "backward"}
            assert all(v >= 0 for v in phases.values())
            assert phases["forward"] > 0 and phases["backward"] > 0
            if rec["backend"] in ("threads", "fused"):
                # Real backends compile a plan / program once per structure.
                assert phases["plan"] > 0 and phases["prepare"] > 0

    def test_meta_records_worker_policy(self, quick_payload):
        payload, _ = quick_payload
        meta = payload["meta"]
        assert meta["default_workers"] >= 1
        assert isinstance(meta["skipped_workers"], list)
        ncpu = meta["cpu_count"]
        for rec in payload["results"]:
            if rec["backend"] == "threads":
                assert rec["workers"] <= ncpu, (
                    "an oversubscribing worker count was benchmarked"
                )

    def test_guard_passes_in_quick_mode(self, quick_payload):
        _, stdout = quick_payload
        assert "guard: fused within" in stdout

    def test_table_and_speedups_printed(self, quick_payload):
        _, stdout = quick_payload
        assert "MFLOPS" in stdout
        assert "vs serial" in stdout
        assert "fused vs serial" in stdout

    def test_validator_rejects_broken_payloads(self):
        bench = _load_bench_module()
        assert bench.validate_payload({"schema": "nope", "results": []})
        good_rec = {
            "backend": "threads",
            "n": 10,
            "nrhs": 1,
            "workers": 2,
            "seconds": 0.1,
            "mflops": 1.0,
            "phases": {"plan": 0.01, "prepare": 0.01,
                       "forward": 0.05, "backward": 0.05},
        }
        good = {"schema": bench.SCHEMA, "results": [good_rec]}
        assert bench.validate_payload(good) == []
        bad = {"schema": bench.SCHEMA, "results": [{"backend": "threads"}]}
        errors = bench.validate_payload(bad)
        assert errors and "missing keys" in errors[0]
        no_phase = {"schema": bench.SCHEMA,
                    "results": [{**good_rec, "phases": {"plan": 0.01}}]}
        errors = bench.validate_payload(no_phase)
        assert errors and "phases" in errors[0]

    def test_guard_checker_flags_slow_fused(self):
        bench = _load_bench_module()
        phases = {"plan": 0.0, "prepare": 0.0, "forward": 0.1, "backward": 0.1}
        results = [
            {"matrix": "grid3d(5)", "backend": "serial", "n": 125, "nrhs": 1,
             "workers": 1, "seconds": 0.01, "mflops": 1.0, "phases": phases},
            {"matrix": "grid3d(5)", "backend": "fused", "n": 125, "nrhs": 1,
             "workers": 1, "seconds": 0.1, "mflops": 1.0, "phases": phases},
        ]
        assert bench.check_guard(results)
        results[1]["seconds"] = 0.005
        assert bench.check_guard(results) == []

    def test_committed_trajectory_file_is_valid_when_present(self):
        committed = ROOT / "BENCH_exec.json"
        if not committed.exists():
            pytest.skip("no committed BENCH_exec.json")
        bench = _load_bench_module()
        assert bench.validate_payload(json.loads(committed.read_text())) == []
