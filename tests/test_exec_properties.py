"""Property-based cross-validation of every triangular-solve implementation.

For random SPD-patterned systems, the serial supernodal solvers
(``numeric/trisolve``), the simplicial reference, and the threaded exec
backend must all agree with ``scipy.sparse.linalg.spsolve_triangular`` to
1e-10, for vector and ``(n, nrhs)`` right-hand sides.  Runs derandomized
(seeded) so CI is stable.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st
from scipy.sparse.linalg import spsolve_triangular

from repro.exec import backward_exec, forward_exec, solve_exec
from repro.numeric.supernodal import cholesky_supernodal
from repro.numeric.trisolve import (
    backward_simplicial,
    backward_supernodal,
    forward_simplicial,
    forward_supernodal,
)
from repro.sparse.build import from_triplets
from repro.symbolic.analyze import analyze

SEEDED = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

ATOL = 1e-10


@st.composite
def factored_system(draw, max_n=32):
    """Random connected SPD matrix (path + extra edges), factored."""
    n = draw(st.integers(3, max_n))
    extra = draw(st.integers(0, 2 * n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    rows = list(range(1, n))
    cols = list(range(0, n - 1))
    for _ in range(extra):
        i, j = rng.integers(0, n, 2)
        if i != j:
            rows.append(int(max(i, j)))
            cols.append(int(min(i, j)))
    vals = -rng.uniform(0.1, 1.0, len(rows))
    deg = np.zeros(n)
    np.add.at(deg, rows, np.abs(vals))
    np.add.at(deg, cols, np.abs(vals))
    rows += list(range(n))
    cols += list(range(n))
    vals = np.concatenate([vals, deg + 0.5])
    a = from_triplets(n, np.array(rows), np.array(cols), vals)
    sym = analyze(a)
    factor = cholesky_supernodal(sym)
    nrhs = draw(st.sampled_from([0, 1, 3, 8]))  # 0 encodes "plain vector"
    rhs_seed = draw(st.integers(0, 2**31 - 1))
    rhs_rng = np.random.default_rng(rhs_seed)
    b = rhs_rng.normal(size=n if nrhs == 0 else (n, nrhs))
    return sym, factor, b


def _lower_csr(sym, factor):
    return factor.to_lower_csc(sym.l_indptr, sym.l_indices).to_scipy().tocsr()


@SEEDED
@given(system=factored_system())
def test_forward_implementations_agree_with_scipy(system):
    sym, factor, b = system
    lower = _lower_csr(sym, factor)
    bmat = b if b.ndim == 2 else b[:, None]
    y_scipy = spsolve_triangular(lower, bmat, lower=True)
    if b.ndim == 1:
        y_scipy = y_scipy[:, 0]
    lcsc = factor.to_lower_csc(sym.l_indptr, sym.l_indices)
    for name, y in [
        ("supernodal", forward_supernodal(factor, b)),
        ("simplicial", forward_simplicial(lcsc, b)),
        ("exec-threads", forward_exec(factor, b, workers=2)),
    ]:
        assert np.allclose(y, y_scipy, atol=ATOL), f"{name} deviates from scipy"


@SEEDED
@given(system=factored_system())
def test_backward_implementations_agree_with_scipy(system):
    sym, factor, b = system
    upper = _lower_csr(sym, factor).T.tocsr()
    bmat = b if b.ndim == 2 else b[:, None]
    x_scipy = spsolve_triangular(upper, bmat, lower=False)
    if b.ndim == 1:
        x_scipy = x_scipy[:, 0]
    lcsc = factor.to_lower_csc(sym.l_indptr, sym.l_indices)
    for name, x in [
        ("supernodal", backward_supernodal(factor, b)),
        ("simplicial", backward_simplicial(lcsc, b)),
        ("exec-threads", backward_exec(factor, b, workers=2)),
    ]:
        assert np.allclose(x, x_scipy, atol=ATOL), f"{name} deviates from scipy"


@SEEDED
@given(system=factored_system(), workers=st.sampled_from([1, 2, 4]))
def test_full_solve_recovers_known_solution(system, workers):
    sym, factor, b = system
    # Solve against the permuted matrix directly: A_perm = L L^T.
    x = solve_exec(factor, b, workers=workers)
    a_dense = sym.a_perm.to_dense()
    x_ref = np.linalg.solve(a_dense, b if b.ndim == 2 else b)
    assert np.allclose(x, x_ref, atol=1e-8)
