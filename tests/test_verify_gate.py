"""The repo-wide verification gate, its known-bad corpus, and the CLIs."""

from __future__ import annotations

import pytest

from repro.verify.__main__ import main as verify_main
from repro.verify.corpus import known_bad_cases, racy_program_case
from repro.verify.gate import (
    run_bad_corpus,
    run_gate,
    run_solver_comm_lint,
    run_source_lint,
    run_structure_checks,
    severity_exit_code,
)


def test_source_lint_is_clean():
    report = run_source_lint()
    assert report.ok, report.render()


def test_structure_battery_is_clean():
    report = run_structure_checks()
    assert report.ok, report.render()


def test_real_solver_programs_lint_clean_and_solve_right():
    report = run_solver_comm_lint(p=4, b=4)
    assert report.ok, report.render()
    assert "spmd-wrong-solution" not in report.rules()


def test_full_gate_clean_and_exit_zero():
    report = run_gate()
    assert report.ok, report.render()
    assert severity_exit_code(report) == 0


@pytest.mark.parametrize("case", known_bad_cases(), ids=lambda c: c.name)
def test_every_bad_case_fires_its_expected_rule(case):
    report = case.run()
    assert not report.ok, f"{case.name} slipped through clean"
    assert case.expect_rules & report.rules(), (
        f"{case.name} fired {sorted(report.rules())}, "
        f"expected one of {sorted(case.expect_rules)}"
    )
    for finding in report.errors():
        assert finding.location, "every error must name a location"


def test_racy_case_warns_without_failing():
    case = racy_program_case()
    report = case.run()
    assert report.ok
    assert case.expect_rules <= report.rules()


def test_bad_corpus_reports_errors_but_no_regressions():
    report = run_bad_corpus()
    assert not report.ok, "the corpus exists to be caught"
    assert "corpus-missed" not in report.rules(), report.render()


def test_cli_exit_codes(capsys):
    assert verify_main(["--no-solvers"]) == 0
    assert verify_main(["--corpus", "bad"]) == 1
    out = capsys.readouterr().out
    assert "spmd-deadlock-cycle" in out


def test_cli_lint_only(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("assert x\n")
    assert verify_main(["--lint-only", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "lint-bare-assert" in out


def test_main_cli_verify_subcommand(capsys):
    from repro.__main__ import main

    assert main(["verify", "--no-solvers"]) == 0
    assert "clean" in capsys.readouterr().out
