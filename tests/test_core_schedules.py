import numpy as np
import pytest

from repro.core.schedules import (
    pipelined_backward_schedule,
    pipelined_forward_schedule,
    pram_forward_schedule,
)


def trapezoid_cells(nb, tb):
    return [(i, j) for i in range(nb) for j in range(min(i + 1, tb))]


class TestPRAMSchedule:
    def test_antidiagonal_wavefront(self):
        step = pram_forward_schedule(8, 4)
        for i, j in trapezoid_cells(8, 4):
            assert step[i, j] == i + j + 1

    def test_max_parallelism_bound(self):
        """Paper: at most max(t, n/2) blocks are active at any time step."""
        nb, tb = 10, 5
        step = pram_forward_schedule(nb, tb)
        for s in range(1, int(step.max()) + 1):
            active = int((step == s).sum())
            assert active <= max(tb, nb // 2)

    def test_rejects_inverted_trapezoid(self):
        with pytest.raises(ValueError):
            pram_forward_schedule(3, 4)


def check_forward_valid(step, nb, tb, q):
    """Dependency + resource constraints of pipelined forward elimination."""
    # one block per proc per step
    for s in range(1, int(step.max()) + 1):
        procs = [i % q for (i, j) in trapezoid_cells(nb, tb) if step[i, j] == s]
        assert len(procs) == len(set(procs)), f"proc conflict at step {s}"
    for i, j in trapezoid_cells(nb, tb):
        if i == j:
            continue
        # update (i, j) strictly after diagonal solve of column j ...
        assert step[i, j] > step[j, j]
        # ... plus the ring delay from owner(j) to owner(i)
        hops = (i - j) % q
        if hops:
            assert step[i, j] >= step[j, j] + hops
    for j in range(tb):
        for jp in range(j):
            # diagonal solve after all updates to its row
            assert step[j, j] > step[j, jp]


class TestPipelinedForward:
    @pytest.mark.parametrize("priority", ["column", "row"])
    @pytest.mark.parametrize("nb,tb,q", [(8, 4, 4), (8, 4, 2), (6, 6, 3), (12, 4, 4), (5, 2, 8)])
    def test_schedules_valid(self, nb, tb, q, priority):
        step = pipelined_forward_schedule(nb, tb, q, priority=priority)
        check_forward_valid(step, nb, tb, q)

    def test_q1_is_serial(self):
        step = pipelined_forward_schedule(6, 3, 1)
        cells = trapezoid_cells(6, 3)
        # every step distinct, total steps == number of blocks
        values = sorted(int(step[i, j]) for i, j in cells)
        assert values == list(range(1, len(cells) + 1))

    def test_column_priority_finishes_columns_in_order(self):
        """Column j's last use never precedes column j-1's diagonal solve."""
        step = pipelined_forward_schedule(8, 4, 4, priority="column")
        for j in range(1, 4):
            assert step[j, j] > step[j - 1, j - 1]

    def test_makespan_near_paper_bound(self):
        """Total steps ~ (q - 1) + blocks/q * something small: for the
        hypothetical supernode the pipeline should finish in O(n + t)."""
        nb, tb, q = 16, 8, 4
        step = pipelined_forward_schedule(nb, tb, q)
        # per-proc block load (cyclic rows) + pipeline fill, not ntb * q
        max_load = max(
            sum(min(i + 1, tb) for i in range(p, nb, q)) for p in range(q)
        )
        assert step.max() <= max_load + tb + 2 * q  # loose but shape-correct

    def test_priority_variants_differ(self):
        col = pipelined_forward_schedule(8, 4, 4, priority="column")
        row = pipelined_forward_schedule(8, 4, 4, priority="row")
        assert not np.array_equal(col, row)

    def test_unknown_priority(self):
        with pytest.raises(ValueError):
            pipelined_forward_schedule(8, 4, 4, priority="diagonal")


class TestPipelinedBackward:
    @pytest.mark.parametrize("nb,tb,q", [(8, 4, 4), (8, 4, 2), (6, 6, 3), (10, 3, 4)])
    def test_valid_dependencies(self, nb, tb, q):
        step = pipelined_backward_schedule(nb, tb, q)
        # one block per proc per step
        for s in range(1, int(step.max()) + 1):
            procs = [i % q for (i, j) in trapezoid_cells(nb, tb) if step[i, j] == s]
            assert len(procs) == len(set(procs))
        for i, j in trapezoid_cells(nb, tb):
            if i == j:
                # diagonal solve of column j needs every update below it
                for ip in range(j + 1, nb):
                    assert step[j, j] > step[ip, j]
            elif i < tb:
                # triangle update (i, j) uses x_i, solved at step[i, i]
                assert step[i, j] > step[i, i]

    def test_columns_processed_right_to_left(self):
        step = pipelined_backward_schedule(8, 4, 4)
        diag = [step[j, j] for j in range(4)]
        assert diag == sorted(diag, reverse=True)

    def test_below_blocks_start_immediately(self):
        """Rectangle contributions don't wait for any solve."""
        step = pipelined_backward_schedule(8, 4, 4)
        assert step[4:, :].min() >= 1
        assert (step[4:, :] == 1).any()
