"""The examples must actually run (the fast ones, as smoke tests)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "residual" in out
        assert "FBsolve total" in out

    def test_elimination_tree_demo(self, capsys):
        out = run_example("elimination_tree_demo.py", capsys)
        assert "Figure 1(a)" in out
        assert "supernode" in out

    def test_pipeline_trace(self, capsys):
        out = run_example("pipeline_trace.py", capsys)
        assert "makespan" in out
        assert "P0" in out

    def test_spmd_programming(self, capsys):
        out = run_example("spmd_programming.py", capsys)
        assert "ring all-reduce" in out
        assert "SPMD" in out

    def test_all_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 6
        for script in scripts:
            text = script.read_text()
            assert text.startswith('"""'), f"{script.name} lacks a module docstring"
            assert "__main__" in text, f"{script.name} is not runnable"
