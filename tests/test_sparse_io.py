import numpy as np
import pytest

from repro.sparse.generators import fe_mesh_2d
from repro.sparse.io import read_matrix_market, write_matrix_market


class TestRoundtrip:
    def test_write_read_identity(self, tmp_path, fe9):
        path = tmp_path / "m.mtx"
        write_matrix_market(fe9, path)
        back = read_matrix_market(path)
        np.testing.assert_allclose(back.to_dense(), fe9.to_dense())

    def test_header_written(self, tmp_path, grid8):
        path = tmp_path / "g.mtx"
        write_matrix_market(grid8, path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("%%MatrixMarket matrix coordinate real symmetric")


class TestReader:
    def test_pattern_matrix_becomes_spd(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 3\n"
            "1 1\n"
            "2 1\n"
            "3 2\n"
        )
        a = read_matrix_market(path)
        eig = np.linalg.eigvalsh(a.to_dense())
        assert eig.min() > 0

    def test_rejects_non_mm_file(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text("not a matrix\n1 1 1\n")
        with pytest.raises(ValueError, match="MatrixMarket"):
            read_matrix_market(path)

    def test_rejects_general_symmetry(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n")
        with pytest.raises(ValueError, match="symmetric"):
            read_matrix_market(path)

    def test_rejects_rectangular(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1.0\n")
        with pytest.raises(ValueError, match="square"):
            read_matrix_market(path)

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% a comment\n"
            "% another\n"
            "2 2 3\n"
            "1 1 2.0\n"
            "2 2 2.0\n"
            "2 1 -1.0\n"
        )
        a = read_matrix_market(path)
        np.testing.assert_allclose(a.to_dense(), [[2.0, -1.0], [-1.0, 2.0]])


def test_roundtrip_preserves_solvability(tmp_path):
    """A matrix written and re-read factors to the same solution."""
    from repro.core.solver import ParallelSparseSolver

    a = fe_mesh_2d(6, seed=9)
    path = tmp_path / "m.mtx"
    write_matrix_market(a, path)
    b = read_matrix_market(path)
    rhs = np.ones(a.n)
    xa, _ = ParallelSparseSolver(a, p=1).prepare().solve(rhs)
    xb, _ = ParallelSparseSolver(b, p=1).prepare().solve(rhs)
    np.testing.assert_allclose(xa, xb, atol=1e-10)
