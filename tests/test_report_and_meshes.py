"""Report generator and the extra mesh generators."""

import numpy as np
import pytest

from repro.core.solver import ParallelSparseSolver
from repro.experiments.report import ReportOptions, generate_report
from repro.sparse.generators import anisotropic_laplacian, graded_mesh_2d, model_problem


class TestExtraMeshes:
    def test_anisotropic_spd(self):
        a = anisotropic_laplacian(7, epsilon=0.05)
        assert np.linalg.eigvalsh(a.to_dense()).min() > 0

    def test_anisotropic_weak_direction(self):
        a = anisotropic_laplacian(5, epsilon=0.01)
        d = a.to_dense()
        # x-neighbours (adjacent columns) couple at -1, y-neighbours at -eps
        assert d[0, 1] == pytest.approx(-1.0)
        assert d[0, 5] == pytest.approx(-0.01)

    def test_anisotropic_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            anisotropic_laplacian(5, epsilon=0.0)

    def test_graded_coords_skewed(self):
        g = graded_mesh_2d(9, grading=3.0)
        # grading pushes mass toward the origin: the median coordinate is
        # well below the midpoint
        assert np.median(g.coords[:, 0]) < 0.35 * g.coords[:, 0].max()

    def test_graded_rejects_bad_grading(self):
        with pytest.raises(ValueError):
            graded_mesh_2d(5, grading=0.5)

    @pytest.mark.parametrize("name", ["aniso2d", "graded2d"])
    def test_model_problem_dispatch(self, name):
        assert model_problem(name, 6).n == 36

    @pytest.mark.parametrize("name", ["aniso2d", "graded2d"])
    def test_solve_end_to_end(self, name, rng):
        a = model_problem(name, 8)
        solver = ParallelSparseSolver(a, p=4).prepare()
        _, rep = solver.solve(rng.normal(size=a.n))
        assert rep.residual < 1e-10

    def test_graded_mesh_still_parallelises(self, rng):
        """Even with skewed separators the solver must keep a speedup."""
        from repro.mapping.subtree_subcube import subtree_to_subcube

        a = graded_mesh_2d(20, grading=2.5)
        base = ParallelSparseSolver(a, p=1).prepare()
        b = rng.normal(size=a.n)
        _, rep1 = base.solve(b, check=False)
        par = ParallelSparseSolver(a, p=8)
        par.symbolic, par.factor = base.symbolic, base.factor
        par.assign = subtree_to_subcube(base.symbolic.stree, 8)
        _, rep8 = par.solve(b, check=False)
        assert rep8.fbsolve_seconds < rep1.fbsolve_seconds / 2


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(
            ReportOptions(
                matrices=("grid2d-small",),
                ps=(1, 4),
                nrhs_list=(1, 10),
                iso_ps=(64, 128, 256),
                include_fig8=False,
            )
        )

    def test_contains_sections(self, report):
        for section in ("Figure 7", "Figure 5", "redistribution"):
            assert section in report

    def test_contains_measured_exponents(self, report):
        assert "W ~ p^" in report

    def test_residuals_reported_small(self, report):
        assert "worst residual" in report
        # the rendered residual is in scientific notation with e-1x
        assert "e-1" in report

    def test_redistribution_within_bound(self, report):
        line = [l for l in report.splitlines() if l.startswith("  max")][0]
        max_ratio = float(line.split("max")[1].split(",")[0])
        assert max_ratio <= 0.9
