import numpy as np
import pytest

from repro.numeric.frontal import (
    NotPositiveDefiniteError,
    dense_cholesky,
    trsm_lower,
    trsm_lower_t,
)
from repro.numeric.simplicial import cholesky_simplicial
from repro.numeric.supernodal import cholesky_supernodal
from repro.numeric.trisolve import (
    backward_simplicial,
    backward_supernodal,
    forward_simplicial,
    forward_supernodal,
    solve_supernodal,
)
from repro.sparse.build import from_dense
from repro.sparse.generators import fe_mesh_3d, grid2d_laplacian, random_spd
from repro.symbolic.analyze import analyze


class TestFrontalKernels:
    def test_dense_cholesky_matches_numpy(self, rng):
        m = rng.normal(size=(6, 6))
        a = m @ m.T + 6 * np.eye(6)
        np.testing.assert_allclose(dense_cholesky(a), np.linalg.cholesky(a))

    def test_dense_cholesky_reads_lower_only(self, rng):
        m = rng.normal(size=(5, 5))
        a = m @ m.T + 5 * np.eye(5)
        junk = a.copy()
        junk[np.triu_indices(5, 1)] = 1e9  # garbage above the diagonal
        np.testing.assert_allclose(dense_cholesky(junk), np.linalg.cholesky(a))

    def test_not_positive_definite(self):
        with pytest.raises(NotPositiveDefiniteError):
            dense_cholesky(np.array([[1.0, 0.0], [0.0, -1.0]]))

    def test_trsm_roundtrip(self, rng):
        l = np.tril(rng.normal(size=(5, 5))) + 5 * np.eye(5)
        b = rng.normal(size=(5, 3))
        np.testing.assert_allclose(l @ trsm_lower(l, b), b)
        np.testing.assert_allclose(l.T @ trsm_lower_t(l, b), b)

    def test_trsm_empty(self):
        assert trsm_lower(np.zeros((0, 0)), np.zeros((0, 2))).shape == (0, 2)


class TestSimplicialCholesky:
    @pytest.mark.parametrize(
        "matrix_fn",
        [
            lambda: grid2d_laplacian(9),
            lambda: random_spd(50, density=0.06, seed=2),
            lambda: fe_mesh_3d(4, seed=1),
        ],
    )
    def test_l_lt_reconstructs_a(self, matrix_fn):
        a = matrix_fn()
        sym = analyze(a)
        l = cholesky_simplicial(sym).to_dense()
        np.testing.assert_allclose(l @ l.T, sym.a_perm.to_dense(), atol=1e-10)

    def test_matches_numpy_factor(self, sym_grid8):
        l = cholesky_simplicial(sym_grid8).to_dense()
        np.testing.assert_allclose(
            l, np.linalg.cholesky(sym_grid8.a_perm.to_dense()), atol=1e-12
        )

    def test_rejects_indefinite(self):
        a = from_dense(np.array([[1.0, 2.0], [2.0, 1.0]]))  # indefinite
        sym = analyze(a, method="natural")
        with pytest.raises(NotPositiveDefiniteError):
            cholesky_simplicial(sym)


class TestSupernodalCholesky:
    @pytest.mark.parametrize(
        "matrix_fn",
        [
            lambda: grid2d_laplacian(9),
            lambda: random_spd(50, density=0.06, seed=2),
            lambda: fe_mesh_3d(4, seed=1),
        ],
    )
    def test_matches_simplicial(self, matrix_fn):
        a = matrix_fn()
        sym = analyze(a)
        ls = cholesky_simplicial(sym).to_dense()
        lf = cholesky_supernodal(sym).to_dense()
        np.testing.assert_allclose(lf, ls, atol=1e-11)

    def test_relaxed_supernodes_still_correct(self):
        a = grid2d_laplacian(10)
        sym = analyze(a, relax=4)
        l = cholesky_supernodal(sym).to_dense()
        np.testing.assert_allclose(l @ l.T, sym.a_perm.to_dense(), atol=1e-10)

    def test_to_lower_csc_matches_dense(self, sym_grid8):
        f = cholesky_supernodal(sym_grid8)
        csc = f.to_lower_csc(sym_grid8.l_indptr, sym_grid8.l_indices)
        np.testing.assert_allclose(csc.to_dense(), f.to_dense(), atol=1e-14)

    def test_nnz_reported(self, sym_grid8):
        f = cholesky_supernodal(sym_grid8)
        assert f.nnz() == sym_grid8.stree.factor_nnz()

    def test_block_shapes(self, sym_grid8):
        f = cholesky_supernodal(sym_grid8)
        for sn, blk in zip(sym_grid8.stree.supernodes, f.blocks):
            assert blk.shape == (sn.n, sn.t)
            # top square is lower triangular
            top = blk[: sn.t, :]
            assert np.abs(np.triu(top, 1)).max() == 0.0


class TestSerialTrisolve:
    @pytest.fixture(scope="class")
    def factored(self):
        a = grid2d_laplacian(9)
        sym = analyze(a)
        return a, sym, cholesky_simplicial(sym), cholesky_supernodal(sym)

    def test_forward_simplicial(self, factored, rng):
        _, sym, l, _ = factored
        b = rng.normal(size=(sym.n, 2))
        y = forward_simplicial(l, b)
        np.testing.assert_allclose(l.to_dense() @ y, b, atol=1e-10)

    def test_backward_simplicial(self, factored, rng):
        _, sym, l, _ = factored
        b = rng.normal(size=sym.n)
        x = backward_simplicial(l, b)
        np.testing.assert_allclose(l.to_dense().T @ x, b, atol=1e-10)

    def test_forward_supernodal_matches_simplicial(self, factored, rng):
        _, sym, l, f = factored
        b = rng.normal(size=(sym.n, 3))
        np.testing.assert_allclose(
            forward_supernodal(f, b), forward_simplicial(l, b), atol=1e-11
        )

    def test_backward_supernodal_matches_simplicial(self, factored, rng):
        _, sym, l, f = factored
        b = rng.normal(size=(sym.n, 3))
        np.testing.assert_allclose(
            backward_supernodal(f, b), backward_simplicial(l, b), atol=1e-11
        )

    def test_full_solve_residual(self, factored, rng):
        a, sym, _, f = factored
        from repro.sparse.ops import relative_residual

        b = rng.normal(size=(a.n, 4))
        bp = sym.perm.apply_to_vector(b)
        x = sym.perm.unapply_to_vector(solve_supernodal(f, bp))
        assert relative_residual(a, x, b) < 1e-12

    def test_vector_shape_preserved(self, factored, rng):
        _, sym, _, f = factored
        b = rng.normal(size=sym.n)
        assert forward_supernodal(f, b).shape == (sym.n,)
        assert backward_supernodal(f, b).shape == (sym.n,)

    def test_rhs_size_validation(self, factored):
        _, _, _, f = factored
        with pytest.raises(ValueError):
            forward_supernodal(f, np.zeros(3))

    def test_multiple_rhs_columns_independent(self, factored, rng):
        """Solving a block is identical to solving each column alone."""
        _, sym, _, f = factored
        b = rng.normal(size=(sym.n, 3))
        block = solve_supernodal(f, b)
        for k in range(3):
            np.testing.assert_allclose(solve_supernodal(f, b[:, k]), block[:, k], atol=1e-12)

    def test_matches_scipy(self, factored, rng):
        a, sym, _, f = factored
        from scipy.sparse.linalg import spsolve

        b = rng.normal(size=a.n)
        bp = sym.perm.apply_to_vector(b)
        x = sym.perm.unapply_to_vector(solve_supernodal(f, bp))
        xs = spsolve(a.to_scipy().tocsc(), b)
        np.testing.assert_allclose(x, xs, atol=1e-9)
