import numpy as np
import pytest

from repro.symbolic.analyze import analyze
from repro.symbolic.stats import (
    per_level_profile,
    subtree_imbalance,
    tree_stats,
    work_per_processor,
)
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse.generators import fe_mesh_2d, grid2d_laplacian


class TestTreeStats:
    def test_counts_consistent(self, sym_grid8):
        st = tree_stats(sym_grid8.stree)
        assert st.nsuper == sym_grid8.stree.nsuper
        assert 1 <= st.height <= st.nsuper
        assert st.total_solve_flops == sym_grid8.stree.solve_flops()

    def test_nd_tree_is_bushy(self):
        a = grid2d_laplacian(16)
        st = tree_stats(analyze(a).stree)
        assert not st.is_chainlike
        assert st.n_leaves > st.nsuper // 10

    def test_rcm_tree_is_chainlike(self):
        a = grid2d_laplacian(16)
        st = tree_stats(analyze(a, method="rcm").stree)
        # RCM gives long chains: far fewer leaves than nested dissection
        nd = tree_stats(analyze(a).stree)
        assert st.n_leaves < nd.n_leaves / 2

    def test_top_separator_order_sqrt_n(self):
        a = grid2d_laplacian(20)
        st = tree_stats(analyze(a).stree)
        assert st.top_separator_width <= 3 * 20  # alpha * sqrt(N), alpha small


class TestWorkDistribution:
    def test_work_totals_conserved(self, sym_grid8):
        for p in (1, 4, 8):
            assign = subtree_to_subcube(sym_grid8.stree, p)
            work = work_per_processor(sym_grid8.stree, assign)
            assert work.sum() == pytest.approx(float(sym_grid8.stree.solve_flops()))

    def test_every_processor_gets_work(self):
        a = fe_mesh_2d(20, seed=1)
        stree = analyze(a).stree
        assign = subtree_to_subcube(stree, 16)
        work = work_per_processor(stree, assign)
        assert work.min() > 0

    def test_imbalance_reasonable(self):
        a = fe_mesh_2d(24, seed=2)
        stree = analyze(a).stree
        assert subtree_imbalance(stree, 8) < 2.0

    def test_paper_claim_imbalance_saturates(self):
        """Section 3.1: imbalance overheads 'saturate at 3 to 4 processors
        ... and do not continue to increase' — the imbalance factor at
        p=32 should not be much worse than at p=4."""
        a = fe_mesh_2d(32, seed=5)
        stree = analyze(a).stree
        i4 = subtree_imbalance(stree, 4)
        i32 = subtree_imbalance(stree, 32)
        assert i32 < i4 * 2.5

    def test_p1_perfectly_balanced(self, sym_grid8):
        assert subtree_imbalance(sym_grid8.stree, 1) == pytest.approx(1.0)


class TestLevelProfile:
    def test_profile_covers_all_supernodes(self, sym_grid8):
        prof = per_level_profile(sym_grid8.stree)
        assert sum(cnt for _, cnt, _ in prof) == sym_grid8.stree.nsuper

    def test_level_zero_is_root(self, sym_grid8):
        prof = dict((lvl, cnt) for lvl, cnt, _ in per_level_profile(sym_grid8.stree))
        assert prof[0] == len(sym_grid8.stree.roots())

    def test_flops_sum(self, sym_grid8):
        prof = per_level_profile(sym_grid8.stree)
        assert sum(fl for _, _, fl in prof) == sym_grid8.stree.solve_flops()
