"""Eviction behaviour of the weakref-keyed exec caches (plans, factors,
certificates)."""

from __future__ import annotations

import gc

import pytest

from repro.exec import (
    certificate_for,
    clear_exec_caches,
    exec_cache_stats,
    plan_for,
    prepare_factor,
)
from repro.numeric.supernodal import cholesky_supernodal
from repro.sparse.generators import grid2d_laplacian
from repro.symbolic.analyze import analyze


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_exec_caches()
    yield
    clear_exec_caches()


def _counts():
    stats = exec_cache_stats()
    return stats["plan_entries"], stats["factor_entries"], stats["cert_entries"]


def test_plan_cache_releases_when_structure_dies():
    sym = analyze(grid2d_laplacian(6))
    plan = plan_for(sym.stree)
    assert _counts() == (1, 0, 0)
    # The plan itself must not keep the structure alive: entries are
    # keyed by the structure's identity, and holding the *value* after
    # the anchor dies would resurrect stale schedules on id() reuse.
    del sym
    gc.collect()
    assert _counts() == (0, 0, 0)
    assert plan.ntasks > 0  # the evicted value stays usable for holders


def test_prepared_factor_evicted_with_factor():
    sym = analyze(grid2d_laplacian(6))
    factor = cholesky_supernodal(sym)
    prepare_factor(factor)
    assert exec_cache_stats()["factor_entries"] == 1
    del factor
    gc.collect()
    assert exec_cache_stats()["factor_entries"] == 0


def test_certificates_cached_alongside_plan_and_evicted_together():
    sym = analyze(grid2d_laplacian(6))
    plan_for(sym.stree, certify=True)
    assert _counts() == (1, 0, 1)

    stats = exec_cache_stats()
    assert stats["cert_misses"] == 1
    plan_for(sym.stree, certify=True)
    certificate_for(sym.stree)
    stats = exec_cache_stats()
    assert stats["cert_misses"] == 1  # memoized: the proof ran exactly once
    assert stats["cert_hits"] >= 2

    del sym
    gc.collect()
    assert _counts() == (0, 0, 0)


def test_uncertified_plan_does_not_pay_for_certification():
    sym = analyze(grid2d_laplacian(6))
    plan_for(sym.stree)
    assert exec_cache_stats()["cert_entries"] == 0


def test_distinct_grains_get_distinct_certificates():
    sym = analyze(grid2d_laplacian(6))
    c0 = certificate_for(sym.stree, grain=0)
    c1 = certificate_for(sym.stree, grain=4096)
    assert exec_cache_stats()["cert_entries"] == 2
    assert c0.digest != c1.digest


def test_program_and_panels_cached_and_evicted():
    from repro.exec import fused_panels_for, program_for

    sym = analyze(grid2d_laplacian(6))
    factor = cholesky_supernodal(sym)
    assert program_for(sym.stree) is program_for(sym.stree)
    assert fused_panels_for(factor) is fused_panels_for(factor)
    stats = exec_cache_stats()
    assert stats["program_misses"] == 1 and stats["program_hits"] >= 1
    assert stats["panels_misses"] == 1 and stats["panels_hits"] >= 1
    del sym, factor
    gc.collect()
    stats = exec_cache_stats()
    assert stats["program_entries"] == 0 and stats["panels_entries"] == 0


def test_fused_certificate_memoized_and_evicted():
    from repro.exec import fused_certificate_for, program_for

    sym = analyze(grid2d_laplacian(6))
    program_for(sym.stree, certify=True)
    program_for(sym.stree, certify=True)
    fused_certificate_for(sym.stree)
    stats = exec_cache_stats()
    assert stats["fused_cert_misses"] == 1  # the program proof ran once
    assert stats["fused_cert_hits"] >= 2
    del sym
    gc.collect()
    assert exec_cache_stats()["fused_cert_entries"] == 0
