"""Repo-specific AST lint rules."""

from __future__ import annotations

from repro.verify.findings import Severity
from repro.verify.lint import lint_source


def test_unseeded_default_rng():
    report = lint_source("import numpy as np\nrng = np.random.default_rng()\n")
    assert "lint-unseeded-random" in report.rules()


def test_seeded_default_rng_is_fine():
    report = lint_source("import numpy as np\nrng = np.random.default_rng(7)\n")
    assert "lint-unseeded-random" not in report.rules()


def test_legacy_global_random():
    report = lint_source("import numpy as np\nx = np.random.rand(3)\n")
    assert "lint-unseeded-random" in report.rules()


def test_legacy_random_allowed_in_generators_module():
    report = lint_source(
        "import numpy as np\nx = np.random.rand(3)\n",
        filename="src/repro/sparse/generators.py",
    )
    assert "lint-unseeded-random" not in report.rules()


def test_numpy_alias_tracking():
    report = lint_source("import numpy as xp\nxp.random.seed(0)\n")
    assert "lint-unseeded-random" in report.rules()


def test_csc_index_store_mutation():
    report = lint_source("def f(a):\n    a.indices[0] = 3\n")
    assert "lint-csc-mutation" in report.rules()


def test_csc_mutating_method():
    report = lint_source("def f(a):\n    a.indptr.sort()\n")
    assert "lint-csc-mutation" in report.rules()


def test_reading_csc_arrays_is_fine():
    report = lint_source("def f(a):\n    return a.indices[0] + a.indptr[1]\n")
    assert "lint-csc-mutation" not in report.rules()


def test_bare_assert():
    report = lint_source("assert x > 0\n")
    assert "lint-bare-assert" in report.rules()


def test_assert_with_message_is_fine():
    report = lint_source("assert x > 0, 'x must be positive'\n")
    assert "lint-bare-assert" not in report.rules()


def test_unused_import_is_warning():
    report = lint_source("import os\n")
    (finding,) = report.by_rule("lint-unused-import")
    assert finding.severity is Severity.WARNING
    assert report.ok


def test_dunder_all_export_counts_as_use():
    report = lint_source("from os import path\n__all__ = ['path']\n")
    assert "lint-unused-import" not in report.rules()


def test_string_annotation_counts_as_use():
    src = "from typing import Mapping\n\ndef f(x: 'Mapping[str, int]') -> None:\n    pass\n"
    report = lint_source(src)
    assert "lint-unused-import" not in report.rules()


def test_noqa_suppresses_the_line():
    report = lint_source("assert x  # noqa\n")
    assert len(report) == 0


def test_syntax_error_reported_not_raised():
    report = lint_source("def f(:\n", filename="broken.py")
    (finding,) = report.by_rule("lint-syntax-error")
    assert finding.location.startswith("broken.py:")


def test_findings_carry_file_and_line():
    report = lint_source("import numpy as np\n\n\nx = np.random.rand(2)\n", filename="m.py")
    (finding,) = report.by_rule("lint-unseeded-random")
    assert finding.location == "m.py:4"
