"""Execution-plan construction, levels, aggregation, and the plan cache."""

import numpy as np
import pytest

from repro.exec import (
    DEFAULT_GRAIN,
    build_plan,
    check_plan,
    clear_exec_caches,
    exec_cache_stats,
    plan_for,
)
from repro.symbolic.analyze import analyze
from repro.symbolic.etree import NO_PARENT


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_exec_caches()
    yield
    clear_exec_caches()


class TestPlanStructure:
    def test_partition_and_topology(self, sym_grid8, sym_grid3d5):
        for sym in (sym_grid8, sym_grid3d5):
            plan = build_plan(sym.stree)
            check_plan(plan, sym.stree)
            covered = sorted(s for task in plan.tasks for s in task.nodes)
            assert covered == list(range(sym.stree.nsuper))

    def test_tasks_respect_tree_edges(self, sym_grid8):
        stree = sym_grid8.stree
        plan = build_plan(stree)
        task_of = {}
        for ti, task in enumerate(plan.tasks):
            for s in task.nodes:
                task_of[s] = ti
        for s in range(stree.nsuper):
            p = int(stree.parent[s])
            if p == NO_PARENT:
                continue
            # A node's parent is either in the same task or in the task's
            # parent task — never in an unrelated task.
            if task_of[s] != task_of[p]:
                assert plan.task_parent[task_of[s]] == task_of[p]

    def test_grain_zero_gives_singleton_tasks(self, sym_grid8):
        plan = build_plan(sym_grid8.stree, grain=0)
        assert plan.ntasks == sym_grid8.stree.nsuper
        assert all(len(task.nodes) == 1 for task in plan.tasks)

    def test_huge_grain_gives_one_task_per_root_tree(self, sym_grid8):
        plan = build_plan(sym_grid8.stree, grain=10**12)
        assert plan.ntasks == len(sym_grid8.stree.roots())

    def test_aggregated_subtrees_stay_below_grain(self, sym_grid3d5):
        grain = 512
        plan = build_plan(sym_grid3d5.stree, grain=grain)
        for task in plan.tasks:
            if len(task.nodes) > 1:
                assert task.flops1 <= grain

    def test_negative_grain_rejected(self, sym_grid8):
        with pytest.raises(ValueError):
            build_plan(sym_grid8.stree, grain=-1)


class TestLevels:
    def test_node_levels_match_stree(self, sym_grid8):
        stree = sym_grid8.stree
        plan = build_plan(stree)
        assert np.array_equal(plan.node_level, stree.bottom_up_levels())

    def test_bottom_up_levels_invariants(self, sym_grid3d5):
        stree = sym_grid3d5.stree
        lv = stree.bottom_up_levels()
        for s in range(stree.nsuper):
            if not stree.children[s]:
                assert lv[s] == 0
            else:
                assert lv[s] == 1 + max(lv[c] for c in stree.children[s])

    def test_task_levels_strictly_increase_to_parent(self, sym_grid3d5):
        plan = build_plan(sym_grid3d5.stree)
        for ti in range(plan.ntasks):
            tp = int(plan.task_parent[ti])
            if tp != -1:
                assert plan.task_level[ti] < plan.task_level[tp]
        assert plan.nlevels == int(plan.task_level.max()) + 1


class TestDeps:
    def test_forward_and_backward_deps_are_inverse(self, sym_grid8):
        plan = build_plan(sym_grid8.stree)
        fwd_ndeps, fwd_dependents = plan.forward_deps()
        bwd_ndeps, bwd_dependents = plan.backward_deps()
        # forward: child tasks gate parents; backward: parents gate children.
        assert sum(fwd_ndeps) == sum(len(d) for d in fwd_dependents)
        assert sum(bwd_ndeps) == sum(len(d) for d in bwd_dependents)
        for ti in range(plan.ntasks):
            for d in fwd_dependents[ti]:
                assert ti in plan.task_children[d]
            for d in bwd_dependents[ti]:
                assert plan.task_parent[d] == ti

    def test_stats_keys(self, sym_grid8):
        stats = build_plan(sym_grid8.stree).stats()
        assert stats["nsuper"] == sym_grid8.stree.nsuper
        assert stats["ntasks"] == stats["subtree_tasks"] + stats["singleton_tasks"]
        assert stats["grain"] == DEFAULT_GRAIN


class TestPlanCache:
    def test_hit_returns_same_object(self, sym_grid8):
        p1 = plan_for(sym_grid8.stree)
        p2 = plan_for(sym_grid8.stree)
        assert p1 is p2
        stats = exec_cache_stats()
        assert stats["plan_hits"] >= 1 and stats["plan_misses"] == 1

    def test_distinct_grains_get_distinct_plans(self, sym_grid8):
        p1 = plan_for(sym_grid8.stree, grain=0)
        p2 = plan_for(sym_grid8.stree, grain=DEFAULT_GRAIN)
        assert p1 is not p2

    def test_distinct_structures_get_distinct_plans(self, grid8):
        sym_a = analyze(grid8)
        sym_b = analyze(grid8)
        pa = plan_for(sym_a.stree)
        pb = plan_for(sym_b.stree)
        assert pa is not pb

    def test_clear_resets_counters(self, sym_grid8):
        plan_for(sym_grid8.stree)
        clear_exec_caches()
        stats = exec_cache_stats()
        assert stats["plan_entries"] == 0 and stats["plan_misses"] == 0

    def test_entries_evicted_when_structure_dies(self, grid8):
        import gc

        sym = analyze(grid8)
        plan_for(sym.stree)
        assert exec_cache_stats()["plan_entries"] == 1
        del sym
        gc.collect()
        assert exec_cache_stats()["plan_entries"] == 0
