"""Cross-validation battery and fault/edge tests for the real exec engine.

Every matrix in the shared fixtures must solve identically (bitwise)
across repeated runs and across ``workers in {1, 2, 4}``, must agree with
the serial supernodal solvers and the SPMD-simulated solvers to 1e-10,
and the engine must fail cleanly — never hang — on bad inputs.
"""

import numpy as np
import pytest

from repro.core.solver import ParallelSparseSolver
from repro.exec import (
    backward_exec,
    clear_exec_caches,
    forward_exec,
    plan_for,
    prepare_factor,
    solve_exec,
)
from repro.exec import engine as engine_mod
from repro.exec.engine import _run_task_graph, resolve_workers
from repro.numeric.supernodal import SupernodalFactor, cholesky_supernodal
from repro.numeric.trisolve import (
    backward_supernodal,
    forward_supernodal,
    solve_supernodal,
)
from repro.sparse.build import from_triplets
from repro.symbolic.analyze import analyze
from repro.symbolic.etree import NO_PARENT
from repro.symbolic.stree import Supernode, SupernodalTree


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_exec_caches()
    yield
    clear_exec_caches()


@pytest.fixture(scope="module", params=["grid8", "grid3d5", "fe9", "rand60"])
def factored(request):
    a = request.getfixturevalue(request.param)
    sym = analyze(a)
    return a, sym, cholesky_supernodal(sym)


class TestCrossValidation:
    def test_matches_serial_supernodal(self, factored, rng):
        a, sym, factor = factored
        b = rng.normal(size=(a.n, 7))
        x_exec = solve_exec(factor, b, workers=2)
        assert np.allclose(x_exec, solve_supernodal(factor, b), atol=1e-10)

    def test_forward_backward_match_serial(self, factored, rng):
        a, sym, factor = factored
        b = rng.normal(size=(a.n, 3))
        assert np.allclose(
            forward_exec(factor, b, workers=2), forward_supernodal(factor, b), atol=1e-10
        )
        assert np.allclose(
            backward_exec(factor, b, workers=2), backward_supernodal(factor, b),
            atol=1e-10,
        )

    def test_bitwise_reproducible_across_workers_and_runs(self, factored, rng):
        a, sym, factor = factored
        b = rng.normal(size=(a.n, 5))
        runs = [solve_exec(factor, b, workers=w) for w in (1, 2, 4, 1, 2, 4)]
        for other in runs[1:]:
            assert np.array_equal(runs[0], other), (
                "threaded backend is not bitwise reproducible"
            )

    def test_vector_rhs_round_trip(self, factored, rng):
        a, sym, factor = factored
        v = rng.normal(size=a.n)
        x = solve_exec(factor, v, workers=2)
        assert x.shape == (a.n,)
        assert np.allclose(x, solve_supernodal(factor, v), atol=1e-10)

    def test_matches_spmd_simulated_numerics(self, factored, rng):
        a, sym, factor = factored
        solver = ParallelSparseSolver(a, p=4)
        solver.symbolic = sym
        solver.factor = factor
        from repro.mapping.subtree_subcube import subtree_to_subcube

        solver.assign = subtree_to_subcube(sym.stree, 4)
        b = rng.normal(size=(a.n, 4))
        x_sim, rep_sim = solver.solve(b, backend="sim")
        x_thr, rep_thr = solver.solve(b, backend="threads", workers=2)
        assert np.allclose(x_thr, x_sim, atol=1e-10)
        assert rep_sim.backend == "sim" and rep_thr.backend == "threads"
        assert rep_thr.forward.sim is None and rep_sim.forward.sim is not None


class TestSolverBackends:
    def test_serial_backend_reports_wall_clock(self, prepared_grid12, rng):
        b = rng.normal(size=(prepared_grid12.a.n, 2))
        x, rep = prepared_grid12.solve(b, backend="serial")
        assert rep.backend == "serial"
        assert rep.forward.sim is None and rep.backward.sim is None
        assert rep.fbsolve_seconds > 0
        assert rep.residual < 1e-12

    def test_threads_backend_with_refinement(self, prepared_grid12, rng):
        b = rng.normal(size=prepared_grid12.a.n)
        x, rep = prepared_grid12.solve(b, backend="threads", workers=2, refine=1)
        assert rep.residual < 1e-13

    def test_unknown_backend_rejected(self, prepared_grid12, rng):
        with pytest.raises(ValueError, match="backend"):
            prepared_grid12.solve(rng.normal(size=prepared_grid12.a.n), backend="mpi")

    def test_workers_require_threads_backend(self, prepared_grid12, rng):
        with pytest.raises(ValueError, match="workers"):
            prepared_grid12.solve(
                rng.normal(size=prepared_grid12.a.n), backend="serial", workers=2
            )


class TestEdgeCases:
    def test_n1_system(self):
        a = from_triplets(1, np.array([0]), np.array([0]), np.array([4.0]))
        sym = analyze(a)
        factor = cholesky_supernodal(sym)
        x = solve_exec(factor, np.array([8.0]), workers=2)
        assert np.allclose(x, [2.0])

    def test_empty_supernode_is_tolerated(self):
        # A hand-built factor containing a zero-width supernode: the engine
        # must skip it without touching the solution.
        stree = SupernodalTree(
            supernodes=[
                Supernode(index=0, col_lo=0, col_hi=1, rows=np.array([0])),
                Supernode(index=1, col_lo=1, col_hi=1, rows=np.array([], dtype=np.int64)),
                Supernode(index=2, col_lo=1, col_hi=2, rows=np.array([1])),
            ],
            parent=np.array([NO_PARENT, NO_PARENT, NO_PARENT]),
        )
        factor = SupernodalFactor(
            stree=stree,
            blocks=[np.array([[2.0]]), np.zeros((0, 0)), np.array([[4.0]])],
        )
        x = solve_exec(factor, np.array([2.0, 8.0]), workers=2)
        assert np.allclose(x, [0.5, 0.5])

    def test_multi_rhs_wide_block(self, sym_grid8, rng):
        factor = cholesky_supernodal(sym_grid8)
        b = rng.normal(size=(sym_grid8.n, 16))
        assert np.allclose(
            solve_exec(factor, b, workers=4), solve_supernodal(factor, b), atol=1e-10
        )

    def test_rhs_shape_mismatch_rejected(self, sym_grid8, rng):
        factor = cholesky_supernodal(sym_grid8)
        with pytest.raises(ValueError, match="rows"):
            solve_exec(factor, rng.normal(size=3), workers=1)
        with pytest.raises(ValueError, match="vector"):
            solve_exec(factor, rng.normal(size=(sym_grid8.n, 2, 2)), workers=1)


class TestFaults:
    def test_singular_diagonal_raises_value_error(self, sym_grid8, rng):
        base = cholesky_supernodal(sym_grid8)
        blocks = [blk.copy() for blk in base.blocks]
        blocks[0][0, 0] = 0.0
        broken = SupernodalFactor(stree=base.stree, blocks=blocks)
        with pytest.raises(ValueError, match="singular"):
            solve_exec(broken, rng.normal(size=sym_grid8.n), workers=2)

    def test_nonfinite_diagonal_raises_value_error(self, sym_grid8, rng):
        base = cholesky_supernodal(sym_grid8)
        blocks = [blk.copy() for blk in base.blocks]
        blocks[-1][0, 0] = np.nan
        broken = SupernodalFactor(stree=base.stree, blocks=blocks)
        with pytest.raises(ValueError, match="singular or non-finite"):
            prepare_factor(broken)

    @pytest.mark.parametrize("workers", [0, -1, -7])
    def test_nonpositive_workers_rejected(self, sym_grid8, rng, workers):
        factor = cholesky_supernodal(sym_grid8)
        with pytest.raises(ValueError, match="workers"):
            solve_exec(factor, rng.normal(size=sym_grid8.n), workers=workers)

    @pytest.mark.parametrize("workers", [1.5, "2", True])
    def test_non_integral_workers_rejected(self, workers):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(workers)

    def test_default_workers_positive(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(np.int64(3)) == 3

    def test_raising_task_does_not_deadlock_pool(self):
        # A linear chain of 6 tasks; task 2 explodes.  The pool must drain
        # and re-raise instead of waiting on never-submitted successors.
        ran: list[int] = []

        def body(i: int) -> None:
            if i == 2:
                raise RuntimeError("boom in task 2")
            ran.append(i)

        ndeps = [0, 1, 1, 1, 1, 1]
        dependents = [[1], [2], [3], [4], [5], []]
        with pytest.raises(RuntimeError, match="boom in task 2"):
            _run_task_graph(6, ndeps, dependents, body, workers=2)
        assert 3 not in ran and 4 not in ran and 5 not in ran

    def test_raising_kernel_inside_engine_propagates(self, sym_grid8, rng, monkeypatch):
        factor = cholesky_supernodal(sym_grid8)

        def boom(*args, **kwargs):
            raise RuntimeError("kernel failure injected")

        monkeypatch.setattr(engine_mod, "solve_lower", boom)
        with pytest.raises(RuntimeError, match="kernel failure injected"):
            forward_exec(factor, rng.normal(size=(sym_grid8.n, 2)), workers=2)

    def test_dependency_cycle_detected(self):
        # Two tasks that gate each other: no ready task exists.
        with pytest.raises(ValueError, match="cycle"):
            _run_task_graph(2, [1, 1], [[1], [0]], lambda i: None, workers=1)

    def test_plan_rejects_rows_not_contained_in_parent(self):
        # Child below-row 2 does not appear in its parent's rows [1].
        stree = SupernodalTree(
            supernodes=[
                Supernode(index=0, col_lo=0, col_hi=1, rows=np.array([0, 2])),
                Supernode(index=1, col_lo=1, col_hi=2, rows=np.array([1])),
                Supernode(index=2, col_lo=2, col_hi=3, rows=np.array([2])),
            ],
            parent=np.array([1, NO_PARENT, NO_PARENT]),
        )
        from repro.exec import build_plan

        with pytest.raises(ValueError, match="assembly tree"):
            build_plan(stree)


class TestPreparedFactorCache:
    def test_prepare_is_cached_per_factor(self, sym_grid8):
        factor = cholesky_supernodal(sym_grid8)
        assert prepare_factor(factor) is prepare_factor(factor)

    def test_plan_reused_across_solves(self, sym_grid8, rng):
        from repro.exec import exec_cache_stats

        factor = cholesky_supernodal(sym_grid8)
        for _ in range(3):
            solve_exec(factor, rng.normal(size=sym_grid8.n), workers=2)
        stats = exec_cache_stats()
        assert stats["plan_misses"] == 1 and stats["plan_hits"] >= 2
