"""Simulated collectives validate the closed-form cost formulas."""

import math

import pytest

from repro.machine.coll_sim import (
    all_to_all_personalized_graph,
    broadcast_graph,
    reduce_graph,
    simulated_collective_time,
)
from repro.machine.collectives import (
    all_to_all_personalized_time,
    broadcast_time,
    reduce_time,
)
from repro.machine.spec import MachineSpec


def spec():
    return MachineSpec(t_s=1e-5, t_w=1e-6, t_flop=1e-9, t_call=0.0, topology="hypercube")


class TestBroadcast:
    @pytest.mark.parametrize("q", [2, 4, 8, 16])
    def test_matches_formula(self, q):
        s = spec()
        t, _ = simulated_collective_time(broadcast_graph(q, 100), s)
        assert t == pytest.approx(broadcast_time(s, q, 100), rel=1e-9)

    def test_all_procs_reached(self):
        g = broadcast_graph(8, 10)
        procs = {task.proc for task in g.tasks}
        assert procs == set(range(8))

    def test_log_steps(self):
        s = spec()
        t4, _ = simulated_collective_time(broadcast_graph(4, 100), s)
        t16, _ = simulated_collective_time(broadcast_graph(16, 100), s)
        assert t16 / t4 == pytest.approx(2.0, rel=1e-9)  # log 16 / log 4

    def test_nonroot_source(self):
        s = spec()
        t, _ = simulated_collective_time(broadcast_graph(8, 50, root=5), s)
        assert t == pytest.approx(broadcast_time(s, 8, 50), rel=1e-9)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            broadcast_graph(6, 10)


class TestReduce:
    @pytest.mark.parametrize("q", [2, 4, 8])
    def test_matches_formula(self, q):
        s = spec()
        t, _ = simulated_collective_time(reduce_graph(q, 64), s)
        assert t == pytest.approx(reduce_time(s, q, 64), rel=1e-9)


class TestAllToAll:
    @pytest.mark.parametrize("q", [2, 4, 8])
    def test_matches_pairwise_formula(self, q):
        s = spec()
        t, _ = simulated_collective_time(all_to_all_personalized_graph(q, 32), s)
        expect = all_to_all_personalized_time(s, q, 32, algorithm="pairwise")
        assert t == pytest.approx(expect, rel=1e-9)

    def test_message_count(self):
        g = all_to_all_personalized_graph(4, 10)
        s = spec()
        _, sim = simulated_collective_time(g, s)
        # q(q-1) personalized messages
        assert sim.message_count == 4 * 3

    def test_volume(self):
        g = all_to_all_personalized_graph(8, 25)
        _, sim = simulated_collective_time(g, spec())
        assert sim.comm_volume_words == 8 * 7 * 25


class TestHopsMatter:
    def test_mesh_slower_than_hypercube_with_hop_cost(self):
        """On a 2-D mesh with per-hop cost, the exchange partners of the
        pairwise algorithm are far apart, so the same collective is
        slower than on a hypercube."""
        base = dict(t_s=1e-5, t_w=1e-6, t_flop=1e-9, t_call=0.0, t_h=5e-6)
        hyper = MachineSpec(topology="hypercube", **base)
        mesh = MachineSpec(topology="mesh2d", **base)
        g = all_to_all_personalized_graph(16, 64)
        th, _ = simulated_collective_time(g, hyper)
        g2 = all_to_all_personalized_graph(16, 64)
        tm, _ = simulated_collective_time(g2, mesh)
        assert tm > th
