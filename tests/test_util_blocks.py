import pytest
from hypothesis import given, strategies as st

from repro.util.blocks import (
    block_count,
    block_of,
    block_owner_cyclic,
    block_range,
    cyclic_blocks_of_owner,
    split_blocks,
)


class TestBlockCount:
    def test_exact_division(self):
        assert block_count(12, 4) == 3

    def test_ragged_last_block(self):
        assert block_count(13, 4) == 4

    def test_zero_items(self):
        assert block_count(0, 4) == 0

    def test_rejects_zero_block(self):
        with pytest.raises(ValueError):
            block_count(8, 0)


class TestBlockRange:
    def test_interior(self):
        assert block_range(1, 4, 13) == (4, 8)

    def test_short_tail(self):
        assert block_range(3, 4, 13) == (12, 13)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            block_range(4, 4, 13)


class TestCyclicOwnership:
    def test_round_robin(self):
        assert [block_owner_cyclic(k, 3) for k in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_blocks_of_owner(self):
        assert cyclic_blocks_of_owner(1, 7, 3) == [1, 4]

    def test_owners_partition_blocks(self):
        blocks = set()
        for owner in range(4):
            blocks.update(cyclic_blocks_of_owner(owner, 10, 4))
        assert blocks == set(range(10))


class TestSplitBlocks:
    def test_covers_everything(self):
        ranges = split_blocks(13, 5)
        assert ranges == [(0, 5), (5, 10), (10, 13)]


@given(n=st.integers(1, 500), b=st.integers(1, 64))
def test_blocks_tile_range_exactly(n, b):
    """Property: blocks are disjoint, ordered, and cover [0, n)."""
    ranges = split_blocks(n, b)
    assert ranges[0][0] == 0
    assert ranges[-1][1] == n
    for (lo1, hi1), (lo2, _) in zip(ranges, ranges[1:]):
        assert hi1 == lo2
        assert hi1 - lo1 == b  # only the last block may be short
    lo, hi = ranges[-1]
    assert 0 < hi - lo <= b


@given(i=st.integers(0, 10_000), b=st.integers(1, 64))
def test_block_of_inverts_range(i, b):
    k = block_of(i, b)
    lo, hi = k * b, (k + 1) * b
    assert lo <= i < hi
