"""Quickstart: solve a sparse SPD system on a simulated parallel machine.

Builds a 2-D finite-difference Laplacian, runs the full pipeline
(nested-dissection ordering -> symbolic analysis -> supernodal Cholesky ->
subtree-to-subcube mapping -> pipelined parallel forward/backward solve),
and prints the per-phase report that mirrors the paper's Figure 7 rows.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ParallelSparseSolver, grid2d_laplacian


def main() -> None:
    a = grid2d_laplacian(32)  # N = 1024 unknowns
    print(f"matrix: 32x32 grid Laplacian, N = {a.n}, nnz = {a.nnz}")

    solver = ParallelSparseSolver(a, p=16).prepare()
    sym = solver.symbolic
    print(
        f"analysis: factor nnz = {sym.factor_nnz}, "
        f"{sym.stree.nsuper} supernodes, "
        f"solve flops = {sym.stree.solve_flops()}"
    )

    rng = np.random.default_rng(0)
    x_true = rng.normal(size=a.n)
    from repro.sparse import matvec

    b = matvec(a, x_true)

    x, report = solver.solve(b)
    print(f"\nsimulated machine: Cray-T3D-like, p = {report.p}")
    print(f"factorization     : {report.factor_seconds * 1e3:8.2f} ms "
          f"({report.factor_mflops:6.1f} MFLOPS)")
    print(f"redistribute L    : {report.redistribute_seconds * 1e3:8.2f} ms "
          f"({report.redistribution_ratio:.2f}x of FBsolve)")
    print(f"forward solve     : {report.forward.seconds * 1e3:8.2f} ms")
    print(f"backward solve    : {report.backward.seconds * 1e3:8.2f} ms")
    print(f"FBsolve total     : {report.fbsolve_seconds * 1e3:8.2f} ms "
          f"({report.fbsolve_mflops:6.1f} MFLOPS)")
    print(f"\nsolution error    : {np.abs(x - x_true).max():.2e} (max abs)")
    print(f"residual          : {report.residual:.2e} (relative)")


if __name__ == "__main__":
    main()
