"""Figure 1 walkthrough: matrix pattern, elimination tree, subtree-to-subcube.

Renders, for a small nested-dissection-ordered mesh: the lower-triangular
pattern of A with the fill of L, the supernodal elimination tree in ASCII,
and the subtree-to-subcube processor assignment for p = 8 — the three
panels of the paper's Figure 1.

Run:  python examples/elimination_tree_demo.py
"""

from repro import analyze, grid2d_laplacian
from repro.mapping.subtree_subcube import subtree_to_subcube


def render_pattern(sym) -> str:
    """'x' = entry of A, 'o' = fill-in of L (lower triangle)."""
    n = sym.n
    a_mask = [[False] * n for _ in range(n)]
    for j in range(n):
        rows, _ = sym.a_perm.column(j)
        for i in rows:
            a_mask[int(i)][j] = True
    lines = []
    for i in range(n):
        row = []
        for j in range(i + 1):
            in_l = False
            lo, hi = int(sym.l_indptr[j]), int(sym.l_indptr[j + 1])
            in_l = i in sym.l_indices[lo:hi]
            row.append("x" if a_mask[i][j] else ("o" if in_l else "."))
        lines.append(f"{i:3d} " + " ".join(row))
    return "\n".join(lines)


def render_tree(stree, assign) -> str:
    lines = []

    def walk(s: int, depth: int) -> None:
        sn = stree.supernodes[s]
        procs = assign[s]
        cols = f"cols {sn.col_lo}..{sn.col_hi - 1}"
        pset = (
            f"P{procs.start}"
            if procs.size == 1
            else f"P{procs.start}..P{procs.stop - 1}"
        )
        lines.append(
            "  " * depth
            + f"supernode {s} ({cols}, t={sn.t}, n={sn.n})  ->  {pset}"
        )
        for c in sorted(stree.children[s], reverse=True):
            walk(c, depth + 1)

    for root in stree.roots():
        walk(root, 0)
    return "\n".join(lines)


def main() -> None:
    a = grid2d_laplacian(6)  # 36 unknowns: small enough to print
    sym = analyze(a)
    print("Figure 1(a): lower triangle of P A P^T ('x') and fill of L ('o')\n")
    print(render_pattern(sym))
    assign = subtree_to_subcube(sym.stree, 8)
    print("\nFigure 1(b): supernodal elimination tree with subtree-to-subcube")
    print("mapping onto 8 processors (root at top)\n")
    print(render_tree(sym.stree, assign))
    shared = sum(1 for ps in assign if ps.size > 1)
    print(f"\n{shared} supernodes are processed by the pipelined parallel "
          f"algorithm; the rest run sequentially inside their subtree's "
          f"processor.")


if __name__ == "__main__":
    main()
