"""Structural analysis with many load cases (the paper's NRHS story).

The motivating workload for multiple right-hand sides: a structure is
factored once and then solved against many load vectors (wind, dead load,
seismic combinations...).  The paper shows (Figures 7-8) that solving a
block of 30 right-hand sides runs at several times the MFLOPS of repeated
single solves — BLAS-3 kernels plus amortised index arithmetic — and that
the one-time 2-D -> 1-D factor redistribution becomes negligible.

Run:  python examples/structural_multiload.py
"""

import numpy as np

from repro import ParallelSparseSolver, fe_mesh_2d

N_LOADS = 30
P = 64


def main() -> None:
    # A BCSSTK15-like 2-D structural mesh (N = 3969).
    a = fe_mesh_2d(63, seed=15)
    print(f"structure: 2-D FE mesh, N = {a.n}, nnz = {a.nnz}")
    solver = ParallelSparseSolver(a, p=P).prepare()
    print(f"factored once on p = {P} simulated processors "
          f"({solver.factorization_seconds() * 1e3:.1f} ms)")

    rng = np.random.default_rng(42)
    loads = rng.normal(size=(a.n, N_LOADS))

    # Strategy 1: solve the load cases one at a time.
    total_single = 0.0
    for k in range(N_LOADS):
        _, rep = solver.solve(loads[:, k], check=False)
        total_single += rep.fbsolve_seconds
    print(f"\n{N_LOADS} single solves : {total_single * 1e3:9.2f} ms "
          f"(plus redistribution {rep.redistribute_seconds * 1e3:.2f} ms, once)")

    # Strategy 2: solve them as one 30-column block.
    x, rep_block = solver.solve(loads)
    print(f"one blocked solve : {rep_block.fbsolve_seconds * 1e3:9.2f} ms "
          f"({rep_block.fbsolve_mflops:.0f} MFLOPS, "
          f"residual {rep_block.residual:.1e})")
    print(f"block speedup     : {total_single / rep_block.fbsolve_seconds:9.2f}x")
    print(f"redistribution    : {rep_block.redistribution_ratio:.3f}x of the "
          f"blocked solve (amortised)")

    # Sanity: each column of the blocked solution solves its load case.
    from repro.sparse import relative_residual

    worst = max(
        relative_residual(a, x[:, k], loads[:, k]) for k in range(0, N_LOADS, 7)
    )
    print(f"worst per-case residual: {worst:.2e}")


if __name__ == "__main__":
    main()
