"""Scalability study: speedup curves and the isoefficiency exponent.

Reproduces the paper's Section 3 story end to end on the simulated T3D:

1. fixed-size speedup of the triangular solvers on a 3-D problem
   (Equation 2's three regimes are visible as the curve bends);
2. the measured isoefficiency trend — keeping efficiency fixed while
   doubling p requires growing the problem ~p^2 (Equations 5/9), compared
   against factorization's p^{3/2} from the closed-form models.

Run:  python examples/scalability_study.py
"""

import numpy as np

from repro import ParallelSparseSolver, grid3d_laplacian
from repro.experiments.fig5 import isoefficiency_experiment
from repro.mapping.subtree_subcube import subtree_to_subcube


def speedup_table() -> None:
    a = grid3d_laplacian(12)  # N = 1728, a CUBE-class 3-D problem
    print(f"3-D grid, N = {a.n}: FBsolve speedup vs p (NRHS = 1 and 10)")
    base = ParallelSparseSolver(a, p=1).prepare()
    rng = np.random.default_rng(3)
    b = rng.normal(size=(a.n, 10))
    t1 = {}
    print(f"{'p':>5} {'time(1)':>10} {'S(1)':>7} {'E(1)':>6} {'time(10)':>10} {'S(10)':>7}")
    for p in (1, 2, 4, 8, 16, 32, 64, 128, 256):
        solver = ParallelSparseSolver(a, p=p)
        solver.symbolic, solver.factor = base.symbolic, base.factor
        solver.assign = subtree_to_subcube(base.symbolic.stree, p)
        _, r1 = solver.solve(b[:, :1], check=False)
        _, r10 = solver.solve(b, check=False)
        if p == 1:
            t1 = {1: r1.fbsolve_seconds, 10: r10.fbsolve_seconds}
        s1 = t1[1] / r1.fbsolve_seconds
        s10 = t1[10] / r10.fbsolve_seconds
        print(
            f"{p:>5} {r1.fbsolve_seconds * 1e3:>9.2f}m {s1:>7.2f} {s1 / p:>6.2f} "
            f"{r10.fbsolve_seconds * 1e3:>9.2f}m {s10:>7.2f}"
        )


def isoefficiency_summary() -> None:
    print("\nisoefficiency exponents (W ~ p^k at fixed efficiency 0.5):")
    for kind in ("2d", "3d"):
        solve = isoefficiency_experiment(
            kind=kind, system="trisolve-model", ps=(64, 128, 256, 512, 1024)
        )
        factor = isoefficiency_experiment(
            kind=kind, system="factor-model", ps=(64, 128, 256, 512, 1024)
        )
        print(
            f"  {kind}: triangular solve k = {solve.exponent:.2f} (paper: 2.00), "
            f"factorization k = {factor.exponent:.2f} (paper: 1.50)"
        )
    print("  => the solver is less scalable than factorization, but optimal:")
    print("     a dense triangular solver also has k = 2 (paper Section 3.3).")


if __name__ == "__main__":
    speedup_table()
    isoefficiency_summary()
