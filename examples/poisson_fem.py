"""Solving a Poisson problem on an irregular 3-D mesh (CUBE/COPTER class).

The workload the paper's Equation 2 analyses: a 3-D neighbourhood-graph
matrix from a finite-element discretisation.  We set up -div(grad u) = f
with a manufactured solution on a jittered 3-D mesh, solve it at several
simulated machine sizes, and verify the discrete solution, showing how the
three terms of Equation 2 (work / separator drain / pipeline startup)
shape the speedup curve.

Run:  python examples/poisson_fem.py
"""

import numpy as np

from repro import ParallelSparseSolver, fe_mesh_3d
from repro.analysis.models import sparse_trisolve_model_3d
from repro.machine.presets import cray_t3d
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse import matvec


def main() -> None:
    k = 11
    a = fe_mesh_3d(k, seed=7)  # N = 1331 irregular 3-D mesh
    print(f"3-D FE mesh: N = {a.n}, nnz = {a.nnz}")

    # Manufactured solution: u = product of coordinate sines.
    coords = a.coords / k
    u_true = np.sin(np.pi * coords).prod(axis=1)
    f = matvec(a, u_true)

    base = ParallelSparseSolver(a, p=1).prepare()
    print(f"factor nnz = {base.symbolic.factor_nnz}, "
          f"{base.symbolic.stree.nsuper} supernodes\n")

    spec = cray_t3d()
    print(f"{'p':>5} {'FBsolve(ms)':>12} {'speedup':>8} {'Eq.2 model(ms)':>15}")
    t1 = None
    for p in (1, 4, 16, 64, 256):
        solver = ParallelSparseSolver(a, p=p, spec=spec)
        solver.symbolic, solver.factor = base.symbolic, base.factor
        solver.assign = subtree_to_subcube(base.symbolic.stree, p)
        u, rep = solver.solve(f)
        if t1 is None:
            t1 = rep.fbsolve_seconds
        model = 2.0 * sparse_trisolve_model_3d(spec, a.n, p)
        print(
            f"{p:>5} {rep.fbsolve_seconds * 1e3:>12.3f} "
            f"{t1 / rep.fbsolve_seconds:>8.2f} {model * 1e3:>15.3f}"
        )
        err = np.abs(u - u_true).max()
        assert err < 1e-10, f"verification failed: {err}"
    print("\nall parallel solves reproduce the manufactured solution to 1e-10.")


if __name__ == "__main__":
    main()
