"""Visualising the pipelined wavefront (Figures 3/4 in motion).

Builds the forward-elimination task graph for a single large supernode
distributed over 8 processors, simulates it, and renders an ASCII Gantt
chart: the diagonal wavefront of Figure 3 appears as staggered bands of
work marching across the processors.  Also prints the per-processor
utilisation summary for a full sparse solve, showing how subtree-to-
subcube keeps every processor busy in the sequential phase and hands over
to the pipeline at the top levels.

Run:  python examples/pipeline_trace.py
"""

import numpy as np

from repro.core.dense import _as_single_supernode_factor
from repro.core.forward import build_forward_graph
from repro.core.solver import ParallelSparseSolver
from repro.machine.events import simulate
from repro.machine.presets import cray_t3d
from repro.machine.trace import critical_tasks, gantt, utilisation_summary
from repro.mapping.subtree_subcube import ProcSet, subtree_to_subcube


def dense_supernode_trace() -> None:
    print("=== one 96x96 dense triangular supernode, 8 processors, b = 8 ===\n")
    rng = np.random.default_rng(0)
    n, p = 96, 8
    m = rng.normal(size=(n, n))
    factor = _as_single_supernode_factor(np.tril(m) + n * np.eye(n))
    spec = cray_t3d()
    rhs = rng.normal(size=(n, 1))
    g, _ = build_forward_graph(factor, [ProcSet(0, p)], spec, rhs, b=8, nproc=p)
    sim = simulate(g, spec)
    print(gantt(g, sim, width=96))
    print()
    print(utilisation_summary(g, sim))


def sparse_solve_trace() -> None:
    print("\n=== full sparse forward solve (20x20 grid, 8 processors) ===\n")
    from repro.sparse import grid2d_laplacian

    a = grid2d_laplacian(20)
    base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
    assign = subtree_to_subcube(base.symbolic.stree, 8)
    rng = np.random.default_rng(1)
    rhs = base.symbolic.perm.apply_to_vector(rng.normal(size=(a.n, 1)))
    g, _ = build_forward_graph(base.factor, assign, base.spec, rhs, b=8, nproc=8)
    sim = simulate(g, base.spec)
    print(utilisation_summary(g, sim))
    print("\ntasks deciding the makespan:")
    for tid, label, finish in critical_tasks(g, sim, top=5):
        print(f"  {label:<16s} finishes at {finish * 1e3:.3f} ms")


if __name__ == "__main__":
    dense_supernode_trace()
    sparse_solve_trace()
