"""Writing message-passing programs against the simulated machine.

The library's SPMD layer lets you write rank-local programs (the style the
paper's T3D code was written in) and run them on the simulated machine:
``yield env.send(...)`` / ``yield env.recv(...)`` / ``yield
env.compute(...)``.  This example:

1. implements a ring all-reduce by hand and checks its simulated time
   against the closed-form collective model;
2. runs the library's SPMD forward/backward sparse solvers and compares
   them with the task-graph implementations on the same problem.

Run:  python examples/spmd_programming.py
"""

import numpy as np

from repro.core import parallel_backward, parallel_forward, spmd_backward, spmd_forward
from repro.core.solver import ParallelSparseSolver
from repro.machine import cray_t3d, run_spmd
from repro.machine.collectives import reduce_time, broadcast_time
from repro.mapping.subtree_subcube import subtree_to_subcube
from repro.sparse import fe_mesh_2d, relative_residual


def ring_allreduce_demo() -> None:
    print("=== hand-written ring all-reduce on 8 simulated PEs ===")
    spec = cray_t3d()
    size, words = 8, 512
    values = np.arange(size, dtype=float)
    result = np.zeros(size)

    def program(rank, env):
        acc = values[rank]
        # reduce ring: accumulate while passing left to right
        if rank > 0:
            acc = acc + (yield env.recv(rank - 1))
        if rank < size - 1:
            yield env.send(rank + 1, data=acc, words=words)
        # broadcast the total back around
        if rank == size - 1:
            total = acc
        else:
            total = yield env.recv(rank + 1)
        if rank > 0:
            yield env.send(rank - 1, data=total, words=words)
        result[rank] = total

    res = run_spmd(program, size, spec)
    assert np.all(result == values.sum())
    tree = reduce_time(spec, size, words) + broadcast_time(spec, size, words)
    print(f"ring all-reduce: {res.makespan * 1e3:.3f} ms "
          f"(binomial-tree model would take {tree * 1e3:.3f} ms — "
          f"rings pay O(p), trees O(log p))\n")


def spmd_solver_demo() -> None:
    print("=== SPMD vs task-graph sparse solvers (N = 1024, p = 16) ===")
    a = fe_mesh_2d(32, seed=5)
    base = ParallelSparseSolver(a, p=1, spec=cray_t3d()).prepare()
    rng = np.random.default_rng(0)
    b = rng.normal(size=(a.n, 1))
    bp = base.symbolic.perm.apply_to_vector(b)
    assign = subtree_to_subcube(base.symbolic.stree, 16)

    y_sp, f_sp = spmd_forward(base.factor, assign, cray_t3d(), bp, nproc=16)
    x_sp, b_sp = spmd_backward(base.factor, assign, cray_t3d(), y_sp, nproc=16)
    y_tg, f_tg = parallel_forward(base.factor, assign, cray_t3d(), bp, nproc=16)
    x_tg, b_tg = parallel_backward(base.factor, assign, cray_t3d(), y_tg, nproc=16)

    x = base.symbolic.perm.unapply_to_vector(x_sp)
    print(f"residual (SPMD path)    : {relative_residual(a, x, b):.2e}")
    print(f"max |x_spmd - x_taskgraph|: {np.abs(x_sp - x_tg).max():.2e}")
    print(f"forward : SPMD {f_sp.makespan * 1e3:6.3f} ms   "
          f"task-graph {f_tg.makespan * 1e3:6.3f} ms")
    print(f"backward: SPMD {b_sp.makespan * 1e3:6.3f} ms   "
          f"task-graph {b_tg.makespan * 1e3:6.3f} ms")


if __name__ == "__main__":
    ring_allreduce_demo()
    spmd_solver_demo()
